// Ablations for the liveness/verification extensions:
//   (a) BFT cluster overhead — stage-1 commit cost of the 3f+1 replica
//       cluster (f = 1, 2) vs the single Offchain Node, and the effect
//       of f faulty replicas on commit latency;
//   (b) audit modes — the paper's per-entry audit (Figure 9 discipline)
//       vs the batched multi-proof audit path (one signature + one
//       multi-proof per position): verification time and proof bytes.

#include "bench/bench_util.h"
#include "cluster/bft_cluster.h"
#include "contracts/root_record.h"

namespace wedge {
namespace bench {
namespace {

void ClusterOverhead() {
  std::printf("\n-- (a) BFT cluster overhead (batch=500) --\n");
  std::printf("%-22s %14s %16s\n", "configuration", "commit(ms)",
              "sim-latency(ms)");

  constexpr int kBatch = 500;
  KeyPair publisher = KeyPair::FromSeed(42);
  std::vector<AppendRequest> batch;
  for (int i = 0; i < kBatch; ++i) {
    batch.push_back(AppendRequest::Make(publisher, i, ToBytes("k"),
                                        ToBytes(std::string(1024, 'v'))));
  }

  // Single node reference.
  {
    auto d = MakeBenchDeployment(kBatch);
    Stopwatch sw(RealClock::Global());
    if (!d->node().Append(batch).ok()) std::abort();
    std::printf("%-22s %14.1f %16s\n", "single node",
                sw.ElapsedSeconds() * 1e3, "-");
  }

  for (int f : {1, 2}) {
    for (int faults : {0, f}) {
      SimClock clock(0);
      ClusterConfig config;
      config.f = f;
      OffchainCluster cluster(config, &clock, nullptr, Address::Zero());
      for (int i = 0; i < faults; ++i) {
        cluster.replica(1 + i).set_fault(ReplicaFault::kOmitAcks);
      }
      Micros sim_before = clock.NowMicros();
      Stopwatch sw(RealClock::Global());
      auto commit = cluster.Append(batch);
      if (!commit.ok()) std::abort();
      char label[64];
      std::snprintf(label, sizeof(label), "cluster f=%d (%d faulty)", f,
                    faults);
      std::printf("%-22s %14.1f %16.1f\n", label, sw.ElapsedSeconds() * 1e3,
                  static_cast<double>(clock.NowMicros() - sim_before) / 1e3);
    }
  }
  std::printf("cluster cost = replica co-signing (n ECDSA signs + quorum "
              "verification) + one network round trip; omission faults "
              "do not add latency while a quorum remains.\n");
}

void AuditModes() {
  std::printf("\n-- (b) audit modes: per-entry vs batched multi-proof --\n");
  std::printf("%-12s %18s %18s %14s\n", "entries", "per-entry(ms)",
              "multi-proof(ms)", "speedup");

  constexpr uint32_t kBatch = 500;
  auto d = MakeBenchDeployment(kBatch);
  auto kvs = MakeWorkload(4000);
  auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
  if (!d->node().Append(reqs).ok()) std::abort();
  d->AdvanceBlocks(4);
  AuditorClient auditor = d->MakeAuditor(9);

  for (size_t n : {500u, 1000u, 2000u, 4000u}) {
    uint64_t last = n / kBatch - 1;
    auto slow = auditor.Audit(0, last);
    auto fast = auditor.AuditFast(0, last);
    if (!slow.ok() || !fast.ok() || !slow->Clean() || !fast->Clean()) {
      std::abort();
    }
    double slow_ms =
        static_cast<double>(slow->read_micros + slow->verify_micros) / 1e3;
    double fast_ms =
        static_cast<double>(fast->read_micros + fast->verify_micros) / 1e3;
    std::printf("%-12zu %18.1f %18.1f %13.0fx\n", n, slow_ms, fast_ms,
                slow_ms / fast_ms);
  }

  // Proof-size comparison for one position.
  auto batch_resp = d->node().ReadBatch(0).value();
  size_t single_proof_bytes = 0;
  for (uint32_t i = 0; i < kBatch; ++i) {
    single_proof_bytes +=
        d->node().ReadOne(EntryIndex{0, i})->Serialize().size();
  }
  std::printf("bandwidth for one %u-entry position: %zu B batched vs %zu B "
              "as individual responses (%.2fx smaller)\n",
              kBatch, batch_resp.Serialize().size(), single_proof_bytes,
              static_cast<double>(single_proof_bytes) /
                  batch_resp.Serialize().size());
}

}  // namespace

void Main() {
  PrintHeader("Ablations: BFT cluster & audit modes");
  ClusterOverhead();
  AuditModes();
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
