// Economics ablation (paper §3.3 / §5 "Penalty amount configuration"):
// the paper defers escrow sizing to future work; this harness explores
// the first-order model bundled in core/economics.h —
//   (a) required escrow vs detection window for the paper's default
//       workload (1 KB ops at the measured stage-1 rate);
//   (b) sampled-audit detection probability vs sample size, and the
//       audit-cost/escrow trade-off it induces.

#include "bench/bench_util.h"
#include "core/economics.h"

namespace wedge {
namespace bench {
namespace {

void EscrowSizing() {
  std::printf("\n-- (a) escrow vs detection window --\n");
  std::printf("%-24s %16s %16s\n", "detection window", "escrow (ETH)",
              "escrow/daily-rev");

  // Model: node serves 1000 ops/s; a lie nets the adversary the fee a
  // client would pay for the op (1e-5 ETH, generous); service revenue is
  // 1e-6 ETH/op (logging-as-a-service pricing).
  EscrowModel model;
  model.gain_per_op = GweiToWei(10'000);  // 1e-5 ETH.
  model.ops_per_second = 1000;
  model.safety_margin = 2.0;
  const double daily_revenue_eth = 1e-6 * 1000 * 86400;

  struct Window {
    const char* label;
    double seconds;
  };
  const Window kWindows[] = {
      {"1 block (13 s)", 13},
      {"1 payment period (10 m)", 600},
      {"hourly audit", 3600},
      {"daily audit", 86400},
      {"weekly audit", 7 * 86400},
  };
  for (const Window& w : kWindows) {
    model.detection_window_seconds = w.seconds;
    Wei escrow = RequiredEscrow(model);
    std::printf("%-24s %16s %15.1fx\n", w.label,
                WeiToEthString(escrow).c_str(),
                WeiToEthDouble(escrow) / daily_revenue_eth);
  }
  std::printf("the paper's periodic payment mechanism bounds the window "
              "(§3.3): frequent settlement keeps the deposit small.\n");
}

void SamplingTradeoff() {
  std::printf("\n-- (b) sampled audit: detection vs cost (batch=2000, "
              "10 tampered entries) --\n");
  std::printf("%-10s %18s %20s\n", "samples", "P(detect/position)",
              "verify cost vs full");
  for (uint32_t s : {1u, 10u, 50u, 100u, 500u, 2000u}) {
    double p = SampleDetectionProbability(2000, 10, s);
    std::printf("%-10u %18.4f %19.1f%%\n", s, p,
                100.0 * std::min<uint32_t>(s, 2000) / 2000.0);
  }
  std::printf("root-level lies (equivocation/omission) are caught with "
              "certainty by ANY sample size — sampling only trades off "
              "detection of single-entry data tampering.\n");
}

}  // namespace

void Main() {
  PrintHeader("Ablations: punishment economics");
  EscrowSizing();
  SamplingTradeoff();
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
