// Ablations for the design choices DESIGN.md calls out:
//   (a) stage-2 digest grouping: gas per operation when one updateRecords
//       transaction carries 1, 2, 5, 10 or 20 batch digests — the
//       "minimum writing" lever beyond per-batch amortization;
//   (b) Merkle proof size vs batch size — the stage-1 bandwidth cost of
//       larger batches (the flip side of cheaper stage 2);
//   (c) punishment-path gas — what invoking Algorithm 2 costs a client;
//   (d) lazy vs eager trust: operation-commit latency under LMT (stage 1)
//       vs waiting for the digest on-chain (the SOCL discipline).

#include "bench/bench_util.h"
#include "bench/shard_equiv.h"

namespace wedge {
namespace bench {
namespace {

void StageTwoGrouping() {
  std::printf("\n-- (a) stage-2 digest grouping (batch=2000, 20 batches) --\n");
  std::printf("%-18s %14s %12s\n", "digests per tx", "gas/op", "ETH/op");
  constexpr uint32_t kBatch = 2000;
  constexpr int kBatches = 20;
  for (int group : {1, 2, 5, 10, 20}) {
    auto d = MakeBenchDeployment(kBatch, 0, /*sign_responses=*/false,
                                 /*auto_stage2=*/false);
    auto kvs = MakeWorkload(kBatch);
    Wei fees_before = d->chain().TotalFeesPaid(d->node().address());
    uint64_t gas_before = d->chain().TotalGasUsed(d->node().address());
    for (int b = 0; b < kBatches; ++b) {
      auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
      if (!d->node().Append(reqs).ok()) std::abort();
      if ((b + 1) % group == 0) {
        if (!d->node().CommitPendingDigests().ok()) std::abort();
        d->AdvanceBlocks(1);
      }
    }
    d->AdvanceBlocks(4);
    uint64_t ops = static_cast<uint64_t>(kBatch) * kBatches;
    uint64_t gas = d->chain().TotalGasUsed(d->node().address()) - gas_before;
    double eth =
        WeiToEthDouble(d->chain().TotalFeesPaid(d->node().address()) -
                       fees_before) /
        ops;
    std::printf("%-18d %14.2f %12.3e\n", group,
                static_cast<double>(gas) / ops, eth);
  }
  std::printf("grouping digests amortizes the 21k tx base across batches.\n");
}

void ProofSizeVsBatch() {
  std::printf("\n-- (b) merkle proof size vs batch size --\n");
  std::printf("%-10s %18s %20s\n", "batch", "proof bytes", "response bytes");
  for (uint32_t batch : {500u, 1000u, 2000u, 4000u, 8000u, 10000u}) {
    auto d = MakeBenchDeployment(batch);
    auto kvs = MakeWorkload(batch);
    auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
    auto responses = d->node().Append(reqs);
    if (!responses.ok()) std::abort();
    const Stage1Response& r = responses->front();
    std::printf("%-10u %18zu %20zu\n", batch,
                r.proof.merkle_proof.Serialize().size(),
                r.Serialize().size());
  }
  std::printf("proof size grows logarithmically: doubling the batch adds "
              "33 bytes (one sibling hash + side flag).\n");
}

void PunishmentGas() {
  std::printf("\n-- (c) punishment-path gas --\n");
  DeploymentConfig config;
  config.node.batch_size = 2000;
  config.node.verify_client_signatures = false;
  config.node.byzantine_mode = ByzantineMode::kEquivocateRoot;
  config.offchain_funding = EthToWei(10'000);
  config.client_funding = EthToWei(10'000);
  auto d = Deployment::Create(config);
  if (!d.ok()) std::abort();
  auto& pub = (*d)->publisher();
  auto kvs = MakeWorkload(2000);
  auto reqs = MakeUnsignedRequests(pub.address(), kvs);
  auto responses = (*d)->node().Append(reqs);
  if (!responses.ok()) std::abort();
  (*d)->AdvanceBlocks(4);
  auto receipt = pub.TriggerPunishment(responses->front());
  if (!receipt.ok() || !receipt->success) std::abort();
  std::printf("invokePunishment gas: %llu (%.4f ETH at %s wei/gas) — paid "
              "once, recovers the full escrow\n",
              static_cast<unsigned long long>(receipt->gas_used),
              WeiToEthDouble(receipt->fee),
              (*d)->chain().config().gas_price.ToDecimal().c_str());
}

void LazyVsEager() {
  std::printf("\n-- (d) lazy (LMT) vs eager trust: commit latency --\n");
  auto d = MakeBenchDeployment(2000);
  auto kvs = MakeWorkload(2000);
  auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);

  Stopwatch sw(RealClock::Global());
  Micros sim_before = d->clock().NowMicros();
  auto responses = d->node().Append(reqs);
  if (!responses.ok()) std::abort();
  double stage1_s = sw.ElapsedSeconds();

  // Eager discipline: wait for the digest's on-chain confirmation.
  auto txs = d->node().Stage2TxIds();
  if (txs.empty()) std::abort();
  if (!d->chain().WaitForReceipt(txs.back()).ok()) std::abort();
  double eager_s = stage1_s +
                   static_cast<double>(d->clock().NowMicros() - sim_before) /
                       kMicrosPerSecond;
  std::printf("LMT stage-1 commit: %.2f s (real compute)\n", stage1_s);
  std::printf("eager (SOCL-style) commit: %.2f s (stage 1 + %.0f s chain "
              "wait) -> LMT is %.0fx faster to usable commitment\n",
              eager_s, eager_s - stage1_s, eager_s / stage1_s);
}

}  // namespace

void Main() {
  PrintHeader("Ablations: LMT design choices");
  // The ablation baselines are single-node numbers; make sure the
  // 1-shard engine still IS that baseline, byte for byte.
  AssertDegenerateEngineMatchesBareNode(/*batch_size=*/2000,
                                        /*n_entries=*/2000);
  StageTwoGrouping();
  ProofSizeVsBatch();
  PunishmentGas();
  LazyVsEager();
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
