#ifndef WEDGEBLOCK_BENCH_BENCH_UTIL_H_
#define WEDGEBLOCK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/random.h"
#include "core/wedgeblock.h"
#include "telemetry/export.h"

namespace wedge {
namespace bench {

/// Paper default append payload: 64-byte key + value (default 1024 B),
/// ~1 KB per operation (§6.2).
constexpr size_t kDefaultKeySize = 64;
constexpr size_t kDefaultValueSize = 1024;

/// Generates a key-value workload.
inline std::vector<std::pair<Bytes, Bytes>> MakeWorkload(
    size_t n, size_t value_size = kDefaultValueSize,
    size_t key_size = kDefaultKeySize, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<std::pair<Bytes, Bytes>> kvs;
  kvs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    kvs.emplace_back(rng.NextBytes(key_size), rng.NextBytes(value_size));
  }
  return kvs;
}

/// Builds append requests WITHOUT paying client-side ECDSA cost (dummy
/// signatures). Pair with OffchainNodeConfig.verify_client_signatures =
/// false: the benches measure the Offchain Node pipeline, and this keeps
/// our single-core harness comparable to the paper's 96-thread client
/// machine (see EXPERIMENTS.md, "calibration").
inline std::vector<AppendRequest> MakeUnsignedRequests(
    const Address& publisher,
    const std::vector<std::pair<Bytes, Bytes>>& kvs) {
  std::vector<AppendRequest> reqs;
  reqs.reserve(kvs.size());
  uint64_t seq = 0;
  for (const auto& [k, v] : kvs) {
    AppendRequest req;
    req.publisher = publisher;
    req.sequence = seq++;
    req.key = k;
    req.value = v;
    req.signature.r = U256(1);
    req.signature.s = U256(1);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// A deployment pre-configured for benchmarking: signature verification
/// off (see above), everything else per the paper's defaults.
inline std::unique_ptr<Deployment> MakeBenchDeployment(
    uint32_t batch_size, int replication_followers = 0,
    bool sign_responses = true, bool auto_stage2 = true) {
  DeploymentConfig config;
  config.node.batch_size = batch_size;
  config.node.worker_threads = 4;
  config.node.verify_client_signatures = false;
  config.node.sign_stage1_responses = sign_responses;
  config.node.auto_stage2 = auto_stage2;
  config.replication_followers = replication_followers;
  config.offchain_funding = EthToWei(1'000'000);
  config.client_funding = EthToWei(1'000'000);
  auto d = Deployment::Create(config);
  if (!d.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 d.status().ToString().c_str());
    std::abort();
  }
  return std::move(d).value();
}

/// Mines all pending stage-2 transactions and returns the on-chain cost
/// per operation in ETH, excluding fees paid before `fees_before` (e.g.
/// the deployment-phase gas).
inline double Stage2EthPerOp(Deployment& d, const Wei& fees_before,
                             uint64_t ops) {
  d.AdvanceBlocks(4);
  Wei fees = d.chain().TotalFeesPaid(d.node().address()) - fees_before;
  return WeiToEthDouble(fees) / static_cast<double>(ops);
}

/// Pretty printing helpers shared by the figure harnesses.
inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// Machine-readable bench output: one JSON object per line (JSON Lines),
/// fields emitted in call order. Keys and string values must not need
/// escaping (plain identifiers).
class JsonRow {
 public:
  JsonRow& Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonRow& Field(const std::string& key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonRow& Field(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + value + "\"");
  }
  void Print() const { std::printf("{%s}\n", fields_.c_str()); }

 private:
  JsonRow& Raw(const std::string& key, const std::string& literal) {
    if (!fields_.empty()) fields_ += ", ";
    fields_ += "\"" + key + "\": " + literal;
    return *this;
  }
  std::string fields_;
};

/// The single bench-row factory: every bench row starts here so each one
/// carries the run configuration (bench name, seed, batch size) and rows
/// from different benches stay mergeable in one JSONL stream.
inline JsonRow MakeRow(const std::string& bench_name, uint64_t seed,
                       uint32_t batch_size) {
  JsonRow row;
  row.Field("bench", bench_name)
      .Field("seed", seed)
      .Field("batch_size", static_cast<uint64_t>(batch_size));
  return row;
}

/// Stamps the chain fault configuration onto a row (only the non-zero
/// probabilities, to keep fault-free rows compact).
inline JsonRow& StampFaults(JsonRow& row, const FaultConfig& faults) {
  if (faults.drop_probability > 0) {
    row.Field("fault_drop_p", faults.drop_probability);
  }
  if (faults.evict_probability > 0) {
    row.Field("fault_evict_p", faults.evict_probability);
  }
  if (faults.revert_probability > 0) {
    row.Field("fault_revert_p", faults.revert_probability);
  }
  if (faults.delay_probability > 0) {
    row.Field("fault_delay_p", faults.delay_probability);
  }
  if (faults.gas_spike_probability > 0) {
    row.Field("fault_gas_spike_p", faults.gas_spike_probability);
  }
  return row;
}

/// Adds `<prefix>_p50/_p95/_p99/_max` of the named registry histogram to
/// the row. No-op when the histogram is absent or empty.
inline JsonRow& StampHistogram(JsonRow& row, const MetricsSnapshot& snap,
                               const std::string& metric,
                               const std::string& prefix) {
  const HistogramSnapshot* h = snap.FindHistogram(metric);
  if (h == nullptr || h->count == 0) return row;
  row.Field(prefix + "_p50", static_cast<uint64_t>(h->ValueAtQuantile(0.50)))
      .Field(prefix + "_p95", static_cast<uint64_t>(h->ValueAtQuantile(0.95)))
      .Field(prefix + "_p99", static_cast<uint64_t>(h->ValueAtQuantile(0.99)))
      .Field(prefix + "_max", static_cast<uint64_t>(h->max));
  return row;
}

/// Adds the injected-fault counters (`wedge.faults.*`) and the stage-2
/// pipeline's observed retry/timeout/revert counters (`wedge.stage2.*`)
/// to the row, so reports can compare injected vs observed fault counts.
inline JsonRow& StampFaultAndRetryCounters(JsonRow& row,
                                           const MetricsSnapshot& snap) {
  row.Field("injected_txs_dropped",
            snap.CounterValue("wedge.faults.txs_dropped"))
      .Field("injected_txs_evicted",
             snap.CounterValue("wedge.faults.txs_evicted"))
      .Field("injected_txs_reverted",
             snap.CounterValue("wedge.faults.txs_reverted"))
      .Field("observed_txs_timed_out",
             snap.CounterValue("wedge.stage2.txs_timed_out"))
      .Field("observed_txs_reverted",
             snap.CounterValue("wedge.stage2.txs_reverted"))
      .Field("stage2_txs_retried",
             snap.CounterValue("wedge.stage2.txs_retried"))
      .Field("stage2_digests_confirmed",
             snap.CounterValue("wedge.stage2.digests_confirmed"));
  return row;
}

/// Parses an optional `--telemetry-out <path>` flag. Returns "" when the
/// flag is absent (benches that take no other flags share this).
inline std::string TelemetryOutArg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--telemetry-out") return argv[i + 1];
  }
  return "";
}

/// Appends (or creates, when `truncate` is set) a telemetry dump at
/// `path`. Errors are reported to stderr but never fail the bench.
inline void MaybeWriteTelemetry(const std::string& path,
                                const Telemetry& telemetry,
                                bool truncate = false) {
  if (path.empty()) return;
  Status s = WriteTelemetryFile(path, telemetry, /*append=*/!truncate);
  if (!s.ok()) {
    std::fprintf(stderr, "telemetry write failed: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace wedge

#endif  // WEDGEBLOCK_BENCH_BENCH_UTIL_H_
