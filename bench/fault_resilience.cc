// Robustness sweep: publisher latency and digest-confirmation lag as the
// simulated chain drops 0-20% of submitted transactions. The stage-2
// submitter's timeout/backoff/retry pipeline must land every batch root
// on-chain regardless of the drop rate; the expected shape is a flat
// stage-1 latency (the publisher never waits on the chain) and a
// confirmation lag that grows with the drop probability as timed-out
// submissions are retried.
//
// Emits one JSON row per drop rate (JSON Lines) for plotting.
//
// A second phase runs the sharded crash-recovery scenario: a journaled
// two-shard deployment acks entries and closes an epoch, "crashes"
// before the forest transaction confirms (the deployment — and with it
// the simulated chain — is dropped, like a SIGKILL'd process), and a new
// deployment over the same log directory runs Recover(). The phase
// writes BENCH_chaos.json (recovery time, entries at risk, zero-loss
// flag) — the in-process counterpart of tools/chaos.sh.

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <map>

#include "bench/bench_util.h"
#include "shard/sharded_engine.h"

namespace wedge {
namespace bench {
namespace {

constexpr uint32_t kBatch = 50;
constexpr int kRounds = 30;  // One stage-2 tx per round: enough draws
                             // for drops to materialize at 5-20%.
constexpr uint64_t kMaxBlocksPerRound = 512;  // Safety cap, never hit.

/// Crash-recovery over a journaled sharded deployment; writes `json_out`.
/// Returns true on zero loss.
bool RunShardedCrashRecovery(const std::string& json_out) {
  PrintHeader("Fault resilience: sharded crash recovery (BENCH_chaos)");
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("wedge_bench_chaos_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ShardedDeploymentConfig config;
  config.engine.num_shards = 2;
  config.engine.node.batch_size = 16;
  config.engine.node.worker_threads = 2;
  config.engine.node.verify_client_signatures = false;
  config.log_dir = dir;

  constexpr uint64_t kTenants = 4;
  constexpr int kBatchesPerTenant = 4;
  KeyPair publisher = KeyPair::FromSeed(0xC4A0);
  uint64_t seq = 0;
  struct Acked {
    TenantId tenant;
    EntryIndex index;
  };
  std::vector<Acked> ledger;

  {
    // Life 1: ack entries, close the epoch (journal record + forest tx),
    // crash before confirmation.
    auto made = ShardedDeployment::Create(config);
    if (!made.ok()) std::abort();
    auto d = std::move(made).value();
    for (uint64_t t = 0; t < kTenants; ++t) {
      for (int b = 0; b < kBatchesPerTenant; ++b) {
        auto kvs = MakeWorkload(config.engine.node.batch_size,
                                kDefaultValueSize, kDefaultKeySize,
                                /*seed=*/t * 100 + b);
        std::vector<AppendRequest> batch;
        for (const auto& [k, v] : kvs) {
          batch.push_back(AppendRequest::Make(publisher, seq++, k, v));
        }
        auto responses = d->engine().Append(t, batch);
        if (!responses.ok()) std::abort();
        for (const auto& r : *responses) ledger.push_back(Acked{t, r.index});
      }
    }
    d->AdvanceBlocks(1);  // Epoch closes; its tx never confirms.
  }

  // Life 2: fresh deployment (fresh chain) over the same log directory.
  Stopwatch recovery_watch(RealClock::Global());
  auto made = ShardedDeployment::Create(config);
  if (!made.ok()) std::abort();
  auto d = std::move(made).value();
  auto report = d->engine().Recover();
  if (!report.ok()) std::abort();
  double recovery_ms = recovery_watch.ElapsedSeconds() * 1e3;
  d->AdvanceBlocks(2);  // Confirm the resubmitted epochs.

  // Audit: every acked entry readable + stage-1 verified, every touched
  // log covered by a verifying forest proof.
  uint64_t readable = 0, stage1_ok = 0;
  std::map<std::pair<TenantId, uint64_t>, bool> logs;
  for (const Acked& acked : ledger) {
    auto read = d->engine().ReadOne(acked.tenant, acked.index);
    if (!read.ok()) continue;
    ++readable;
    if (read->Verify(d->engine().address())) ++stage1_ok;
    logs.emplace(std::make_pair(acked.tenant, acked.index.log_id), false);
  }
  uint64_t proofs_ok = 0;
  for (auto& [key, unused] : logs) {
    (void)unused;
    auto proof = d->engine().ProveAggregation(key.first, key.second);
    if (proof.ok() && proof->Verify(d->engine().address())) ++proofs_ok;
  }
  bool zero_loss =
      stage1_ok == ledger.size() && proofs_ok == logs.size();

  JsonRow row = MakeRow("fault_resilience_chaos", /*seed=*/0xC4A0,
                        config.engine.node.batch_size);
  row.Field("shards", static_cast<uint64_t>(config.engine.num_shards))
      .Field("tenants", kTenants)
      .Field("entries_at_risk", static_cast<uint64_t>(ledger.size()))
      .Field("readable", readable)
      .Field("stage1_ok", stage1_ok)
      .Field("proofs_ok", proofs_ok)
      .Field("proofs_total", static_cast<uint64_t>(logs.size()))
      .Field("journaled_epochs", report->journaled_epochs)
      .Field("resubmitted_epochs", report->resubmitted_epochs)
      .Field("recovery_ms", recovery_ms)
      .Field("zero_loss", std::string(zero_loss ? "true" : "false"));
  row.Print();

  FILE* f = std::fopen(json_out.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"fault_resilience_chaos\",\n"
        "  \"shards\": %u,\n  \"tenants\": %llu,\n"
        "  \"entries_at_risk\": %zu,\n  \"readable\": %llu,\n"
        "  \"stage1_ok\": %llu,\n  \"proofs_ok\": %llu,\n"
        "  \"proofs_total\": %zu,\n  \"journaled_epochs\": %llu,\n"
        "  \"resubmitted_epochs\": %llu,\n  \"recovery_ms\": %.3f,\n"
        "  \"zero_loss\": %s,\n  \"criteria_passed\": %s\n}\n",
        config.engine.num_shards,
        static_cast<unsigned long long>(kTenants), ledger.size(),
        static_cast<unsigned long long>(readable),
        static_cast<unsigned long long>(stage1_ok),
        static_cast<unsigned long long>(proofs_ok), logs.size(),
        static_cast<unsigned long long>(report->journaled_epochs),
        static_cast<unsigned long long>(report->resubmitted_epochs),
        recovery_ms, zero_loss ? "true" : "false",
        zero_loss ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
  }
  std::filesystem::remove_all(dir);
  return zero_loss;
}

}  // namespace

int Main(int argc, char** argv) {
  PrintHeader("Fault resilience: stage-2 confirmation vs tx drop rate");
  const std::string telemetry_out = TelemetryOutArg(argc, argv);
  std::string chaos_json = "BENCH_chaos.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--chaos-json") chaos_json = argv[i + 1];
  }

  const double kDropRates[] = {0.0, 0.05, 0.10, 0.15, 0.20};
  bool first_rate = true;
  for (double drop : kDropRates) {
    DeploymentConfig config;
    config.node.batch_size = kBatch;
    config.node.worker_threads = 4;
    config.node.verify_client_signatures = false;
    config.chain.faults.drop_probability = drop;
    // Independent draws per rate: with a shared seed the same uniform
    // sequence decides every rate and one unlucky seed flattens the sweep.
    config.chain.faults.seed = 0xBE7C + static_cast<uint64_t>(drop * 1000.0);
    config.offchain_funding = EthToWei(1'000'000);
    config.client_funding = EthToWei(1'000'000);
    auto made = Deployment::Create(config);
    if (!made.ok()) std::abort();
    auto d = std::move(made).value();
    auto& pub = d->publisher();

    double stage1_ms_total = 0.0;
    uint64_t lag_blocks_total = 0;
    for (int round = 0; round < kRounds; ++round) {
      auto kvs = MakeWorkload(kBatch, kDefaultValueSize, kDefaultKeySize,
                              /*seed=*/1000 + round);
      Stopwatch sw(RealClock::Global());
      auto responses = pub.Publish(pub.MakeRequests(kvs));
      stage1_ms_total += sw.ElapsedSeconds() * 1e3;
      if (!responses.ok()) std::abort();

      // Simulated chain time until every digest of the round is past the
      // confirmation depth — retries included.
      uint64_t blocks = 0;
      while (d->node().UncommittedDigests() > 0 &&
             blocks < kMaxBlocksPerRound) {
        d->AdvanceBlocks(1);
        ++blocks;
      }
      if (d->node().UncommittedDigests() > 0) std::abort();  // Lost root.
      lag_blocks_total += blocks;
    }

    double lag_blocks_avg = static_cast<double>(lag_blocks_total) / kRounds;
    double lag_s_avg =
        lag_blocks_avg * d->chain().config().block_interval_seconds;
    MetricsSnapshot snap = d->telemetry().metrics.Snapshot();
    JsonRow row = MakeRow("fault_resilience", config.chain.faults.seed, kBatch);
    StampFaults(row, config.chain.faults);
    row.Field("drop_probability", drop)
        .Field("rounds", static_cast<uint64_t>(kRounds))
        .Field("stage1_latency_ms_avg", stage1_ms_total / kRounds)
        .Field("confirm_lag_blocks_avg", lag_blocks_avg)
        .Field("confirm_lag_s_avg", lag_s_avg);
    StampHistogram(row, snap, "wedge.node.append_us", "stage1_append_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_us", "confirm_lag_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_blocks",
                   "confirm_lag_blocks");
    StampFaultAndRetryCounters(row, snap);
    row.Print();
    // One telemetry file for the sweep: truncate on the first rate,
    // append the rest (each dump is a self-contained JSONL section).
    MaybeWriteTelemetry(telemetry_out, d->telemetry(),
                        /*truncate=*/first_rate);
    first_rate = false;
  }
  std::printf(
      "\nshape checks: stage-1 latency flat across drop rates; "
      "confirmation lag grows with drop probability (timeout + backoff "
      "per retry); digests_confirmed equals rounds at every rate — no "
      "root is ever lost.\n");

  return RunShardedCrashRecovery(chaos_json) ? 0 : 1;
}

}  // namespace bench
}  // namespace wedge

int main(int argc, char** argv) { return wedge::bench::Main(argc, argv); }
