// Robustness sweep: publisher latency and digest-confirmation lag as the
// simulated chain drops 0-20% of submitted transactions. The stage-2
// submitter's timeout/backoff/retry pipeline must land every batch root
// on-chain regardless of the drop rate; the expected shape is a flat
// stage-1 latency (the publisher never waits on the chain) and a
// confirmation lag that grows with the drop probability as timed-out
// submissions are retried.
//
// Emits one JSON row per drop rate (JSON Lines) for plotting.

#include "bench/bench_util.h"

namespace wedge {
namespace bench {
namespace {

constexpr uint32_t kBatch = 50;
constexpr int kRounds = 30;  // One stage-2 tx per round: enough draws
                             // for drops to materialize at 5-20%.
constexpr uint64_t kMaxBlocksPerRound = 512;  // Safety cap, never hit.

}  // namespace

void Main(int argc, char** argv) {
  PrintHeader("Fault resilience: stage-2 confirmation vs tx drop rate");
  const std::string telemetry_out = TelemetryOutArg(argc, argv);

  const double kDropRates[] = {0.0, 0.05, 0.10, 0.15, 0.20};
  bool first_rate = true;
  for (double drop : kDropRates) {
    DeploymentConfig config;
    config.node.batch_size = kBatch;
    config.node.worker_threads = 4;
    config.node.verify_client_signatures = false;
    config.chain.faults.drop_probability = drop;
    // Independent draws per rate: with a shared seed the same uniform
    // sequence decides every rate and one unlucky seed flattens the sweep.
    config.chain.faults.seed = 0xBE7C + static_cast<uint64_t>(drop * 1000.0);
    config.offchain_funding = EthToWei(1'000'000);
    config.client_funding = EthToWei(1'000'000);
    auto made = Deployment::Create(config);
    if (!made.ok()) std::abort();
    auto d = std::move(made).value();
    auto& pub = d->publisher();

    double stage1_ms_total = 0.0;
    uint64_t lag_blocks_total = 0;
    for (int round = 0; round < kRounds; ++round) {
      auto kvs = MakeWorkload(kBatch, kDefaultValueSize, kDefaultKeySize,
                              /*seed=*/1000 + round);
      Stopwatch sw(RealClock::Global());
      auto responses = pub.Publish(pub.MakeRequests(kvs));
      stage1_ms_total += sw.ElapsedSeconds() * 1e3;
      if (!responses.ok()) std::abort();

      // Simulated chain time until every digest of the round is past the
      // confirmation depth — retries included.
      uint64_t blocks = 0;
      while (d->node().UncommittedDigests() > 0 &&
             blocks < kMaxBlocksPerRound) {
        d->AdvanceBlocks(1);
        ++blocks;
      }
      if (d->node().UncommittedDigests() > 0) std::abort();  // Lost root.
      lag_blocks_total += blocks;
    }

    double lag_blocks_avg = static_cast<double>(lag_blocks_total) / kRounds;
    double lag_s_avg =
        lag_blocks_avg * d->chain().config().block_interval_seconds;
    MetricsSnapshot snap = d->telemetry().metrics.Snapshot();
    JsonRow row = MakeRow("fault_resilience", config.chain.faults.seed, kBatch);
    StampFaults(row, config.chain.faults);
    row.Field("drop_probability", drop)
        .Field("rounds", static_cast<uint64_t>(kRounds))
        .Field("stage1_latency_ms_avg", stage1_ms_total / kRounds)
        .Field("confirm_lag_blocks_avg", lag_blocks_avg)
        .Field("confirm_lag_s_avg", lag_s_avg);
    StampHistogram(row, snap, "wedge.node.append_us", "stage1_append_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_us", "confirm_lag_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_blocks",
                   "confirm_lag_blocks");
    StampFaultAndRetryCounters(row, snap);
    row.Print();
    // One telemetry file for the sweep: truncate on the first rate,
    // append the rest (each dump is a self-contained JSONL section).
    MaybeWriteTelemetry(telemetry_out, d->telemetry(),
                        /*truncate=*/first_rate);
    first_rate = false;
  }
  std::printf(
      "\nshape checks: stage-1 latency flat across drop rates; "
      "confirmation lag grows with drop probability (timeout + backoff "
      "per retry); digests_confirmed equals rounds at every rate — no "
      "root is ever lost.\n");
}

}  // namespace bench
}  // namespace wedge

int main(int argc, char** argv) { wedge::bench::Main(argc, argv); }
