// Reproduces Figure 3: Offchain Node ingest throughput and on-chain
// monetary cost per operation as a function of the batch size, with and
// without replication (paper §6.3, "Varying the Batch Size").
//
// Paper shape to reproduce: throughput declines mildly (<~18%) as batch
// size grows 500 -> 10000; cost per op drops steeply (~87%) because one
// stage-2 digest write amortizes over more operations.

#include "bench/bench_util.h"
#include "bench/shard_equiv.h"

namespace wedge {
namespace bench {
namespace {

struct Row {
  uint32_t batch_size;
  double tput_ops;        // Signed stage-1 throughput, ops/s.
  double tput_repl_ops;   // Same with 2 replication followers.
  double merkle_ops;      // Tree+proof-only throughput (shows log factor).
  double eth_per_op;      // Stage-2 cost per operation.
};

double RunIngest(uint32_t batch_size, int followers, bool sign,
                 size_t n_entries, double* eth_per_op,
                 MetricsSnapshot* snap_out = nullptr,
                 const std::string& telemetry_out = "",
                 bool telemetry_truncate = false) {
  auto d = MakeBenchDeployment(batch_size, followers, sign);
  auto kvs = MakeWorkload(n_entries);
  auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
  Wei fees_before = d->chain().TotalFeesPaid(d->node().address());

  Stopwatch sw(RealClock::Global());
  auto responses = d->node().Append(reqs);
  double secs = sw.ElapsedSeconds();
  if (!responses.ok()) {
    std::fprintf(stderr, "append failed: %s\n",
                 responses.status().ToString().c_str());
    std::abort();
  }
  if (eth_per_op != nullptr) {
    *eth_per_op = Stage2EthPerOp(*d, fees_before, n_entries);
  }
  if (snap_out != nullptr) *snap_out = d->telemetry().metrics.Snapshot();
  MaybeWriteTelemetry(telemetry_out, d->telemetry(), telemetry_truncate);
  return static_cast<double>(n_entries) / secs;
}

}  // namespace

void Main(int argc, char** argv) {
  PrintHeader("Figure 3: throughput & cost/op vs batch size");
  // These single-node rows must also describe `wedgeblockd --shards 1`:
  // pin the degenerate engine to the bare node before measuring.
  AssertDegenerateEngineMatchesBareNode(/*batch_size=*/500,
                                        /*n_entries=*/1000);
  const std::string telemetry_out = TelemetryOutArg(argc, argv);
  std::printf("%-10s %14s %18s %16s %14s\n", "batch", "tput(ops/s)",
              "tput-repl(ops/s)", "merkle-only(ops/s)", "ETH/op");

  const uint32_t kBatchSizes[] = {500, 1000, 2000, 4000, 8000, 10000};
  double first_tput = 0, last_tput = 0, first_cost = 0, last_cost = 0;
  for (uint32_t batch : kBatchSizes) {
    // One full batch per config keeps total runtime bounded; signing
    // dominates so per-batch throughput is representative.
    size_t n = batch;
    double eth = 0;
    MetricsSnapshot snap;
    double tput = RunIngest(batch, 0, true, n, &eth, &snap, telemetry_out,
                            /*telemetry_truncate=*/batch == kBatchSizes[0]);
    double tput_repl = RunIngest(batch, 2, true, n, nullptr);
    double merkle = RunIngest(batch, 0, false, n, nullptr);
    std::printf("%-10u %14.0f %18.0f %16.0f %14.3e\n", batch, tput, tput_repl,
                merkle, eth);
    JsonRow row = MakeRow("fig3_batch_size", /*seed=*/42, batch);
    row.Field("throughput_ops", tput)
        .Field("throughput_repl_ops", tput_repl)
        .Field("merkle_only_ops", merkle)
        .Field("eth_per_op", eth);
    StampHistogram(row, snap, "wedge.node.append_us", "stage1_append_us");
    StampHistogram(row, snap, "wedge.node.seal_us", "seal_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_us", "confirm_lag_us");
    StampFaultAndRetryCounters(row, snap);
    row.Print();
    if (batch == kBatchSizes[0]) {
      first_tput = tput;
      first_cost = eth;
    }
    last_tput = tput;
    last_cost = eth;
  }
  std::printf(
      "\nshape checks: throughput change 500->10000 = %+.1f%% "
      "(paper: ~-18%%), cost change = %+.1f%% (paper: ~-87%%)\n",
      100.0 * (last_tput - first_tput) / first_tput,
      100.0 * (last_cost - first_cost) / first_cost);
}

}  // namespace bench
}  // namespace wedge

int main(int argc, char** argv) { wedge::bench::Main(argc, argv); }
