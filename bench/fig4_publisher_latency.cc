// Reproduces Figure 4: Publisher-side latency vs batch size (paper §6.3):
//   - first operation delay: time to the first stage-1 response (includes
//     building the whole Merkle tree),
//   - last operation delay: time until every response is produced,
//   - stage-1 commitment delay: last delay + the publisher verifying all
//     responses.
// Also reports the average stage-2 commitment latency (paper: ~43 s of
// chain time, independent of batch size).

#include "bench/bench_util.h"

namespace wedge {
namespace bench {
namespace {

constexpr int kVerifySample = 128;  // Responses verified to project the
                                    // full-batch verification cost.

}  // namespace

void Main(int argc, char** argv) {
  PrintHeader("Figure 4: publisher latency vs batch size");
  const std::string telemetry_out = TelemetryOutArg(argc, argv);
  std::printf("%-10s %12s %12s %14s %14s\n", "batch", "first(ms)", "last(ms)",
              "stage1(ms)", "stage2(s,sim)");

  const uint32_t kBatchSizes[] = {500, 1000, 2000, 4000, 8000, 10000};
  for (uint32_t batch : kBatchSizes) {
    auto d = MakeBenchDeployment(batch);
    auto kvs = MakeWorkload(batch);
    auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);

    // First-op delay: tree construction + one proof + one signature. We
    // measure it directly by sealing a single-entry... no: the first
    // response cannot be produced before the whole batch's tree exists,
    // so measure tree build over the real leaves + one sign.
    std::vector<Bytes> leaves;
    leaves.reserve(reqs.size());
    for (const auto& r : reqs) leaves.push_back(r.Serialize());
    Stopwatch sw(RealClock::Global());
    auto tree = MerkleTree::Build(leaves);
    Hash256 h = Sha256::Digest("probe");
    KeyPair probe = KeyPair::FromSeed(1);
    (void)EcdsaSign(probe.private_key(), h);
    double first_ms = sw.ElapsedSeconds() * 1e3;

    // Last-op delay: the full Append call.
    sw.Reset();
    auto responses = d->node().Append(reqs);
    double last_ms = sw.ElapsedSeconds() * 1e3;
    if (!responses.ok()) std::abort();

    // Stage-1 commitment delay: + verification of all responses
    // (projected from a sample; verification cost is linear).
    sw.Reset();
    int sample = std::min<int>(kVerifySample, responses->size());
    for (int i = 0; i < sample; ++i) {
      if (!(*responses)[i].Verify(d->node().address())) std::abort();
    }
    double verify_ms =
        sw.ElapsedSeconds() * 1e3 / sample * responses->size();
    double stage1_ms = last_ms + verify_ms;

    // Stage-2 latency in simulated chain time: submission to confirmed.
    Micros t0 = d->clock().NowMicros();
    d->AdvanceBlocks(d->chain().config().confirmations + 1);
    double stage2_s =
        static_cast<double>(d->clock().NowMicros() - t0) / kMicrosPerSecond;

    std::printf("%-10u %12.1f %12.1f %14.1f %14.1f\n", batch, first_ms,
                last_ms, stage1_ms, stage2_s);

    MetricsSnapshot snap = d->telemetry().metrics.Snapshot();
    JsonRow row = MakeRow("fig4_publisher_latency", /*seed=*/42, batch);
    row.Field("first_op_ms", first_ms)
        .Field("last_op_ms", last_ms)
        .Field("stage1_commit_ms", stage1_ms)
        .Field("stage2_commit_s", stage2_s);
    StampHistogram(row, snap, "wedge.node.append_us", "stage1_append_us");
    StampHistogram(row, snap, "wedge.node.seal_us", "seal_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_us", "confirm_lag_us");
    StampHistogram(row, snap, "wedge.stage2.confirm_lag_blocks",
                   "confirm_lag_blocks");
    StampFaultAndRetryCounters(row, snap);
    row.Print();
    MaybeWriteTelemetry(telemetry_out, d->telemetry(),
                        /*truncate=*/batch == kBatchSizes[0]);
  }
  std::printf(
      "\nshape checks: all three delays grow with batch size; first-op "
      "delay grows fastest relative (tree build up front); stage-2 is flat "
      "(~4 block intervals ~= paper's 43 s average).\n");
}

}  // namespace bench
}  // namespace wedge

int main(int argc, char** argv) { wedge::bench::Main(argc, argv); }
