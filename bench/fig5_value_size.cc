// Reproduces Figure 5: throughput (MB/s and ops/s) and cost/op as the
// append value size varies, batch size fixed at 2000 (paper §6.3,
// "Varying the Value Size").
//
// Paper shape: MB/s throughput INCREASES with value size (hashing larger
// leaves is cheap relative to the per-op pipeline), replication changes
// little, and cost/op stays flat (digest size is independent of value
// size).

#include "bench/bench_util.h"

namespace wedge {
namespace bench {

void Main() {
  PrintHeader("Figure 5: throughput & cost/op vs value size (batch=2000)");
  std::printf("%-12s %12s %14s %16s %14s\n", "value(B)", "ops/s", "MB/s",
              "MB/s-repl", "ETH/op");

  const size_t kValueSizes[] = {512, 1024, 2048, 4096};
  constexpr uint32_t kBatch = 2000;
  double first_mbps = 0, last_mbps = 0, first_cost = 0, last_cost = 0;
  for (size_t value_size : kValueSizes) {
    double op_bytes = static_cast<double>(value_size + kDefaultKeySize);

    auto run = [&](int followers, double* eth) {
      auto d = MakeBenchDeployment(kBatch, followers);
      auto kvs = MakeWorkload(kBatch, value_size);
      auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
      Wei fees_before = d->chain().TotalFeesPaid(d->node().address());
      Stopwatch sw(RealClock::Global());
      auto responses = d->node().Append(reqs);
      double secs = sw.ElapsedSeconds();
      if (!responses.ok()) std::abort();
      if (eth != nullptr) *eth = Stage2EthPerOp(*d, fees_before, kBatch);
      return (kBatch * op_bytes / (1024.0 * 1024.0)) / secs;
    };

    double eth = 0;
    double mbps = run(0, &eth);
    double mbps_repl = run(2, nullptr);
    double ops = mbps * (1024.0 * 1024.0) / op_bytes;
    std::printf("%-12zu %12.0f %14.2f %16.2f %14.3e\n", value_size, ops, mbps,
                mbps_repl, eth);
    if (value_size == kValueSizes[0]) {
      first_mbps = mbps;
      first_cost = eth;
    }
    last_mbps = mbps;
    last_cost = eth;
  }
  std::printf(
      "\nshape checks: MB/s grows %0.1fx from 512B to 4096B (paper: grows "
      "with value size); cost/op changes %+.1f%% (paper: ~flat).\n",
      last_mbps / first_mbps,
      100.0 * (last_cost - first_cost) / (first_cost > 0 ? first_cost : 1));
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
