// Reproduces Figure 6: publisher latency vs value size, batch fixed at
// 2000 (paper §6.3). Paper shape: all delays grow moderately with value
// size; stage-1 commitment delay grows ~66% over an 8x value increase —
// much slower than the payload growth.

#include "bench/bench_util.h"

namespace wedge {
namespace bench {

void Main() {
  PrintHeader("Figure 6: publisher latency vs value size (batch=2000)");
  std::printf("%-12s %12s %12s %14s\n", "value(B)", "first(ms)", "last(ms)",
              "stage1(ms)");

  const size_t kValueSizes[] = {512, 1024, 2048, 4096};
  constexpr uint32_t kBatch = 2000;
  constexpr int kVerifySample = 128;
  double first_stage1 = 0, last_stage1 = 0;
  for (size_t value_size : kValueSizes) {
    auto d = MakeBenchDeployment(kBatch);
    auto kvs = MakeWorkload(kBatch, value_size);
    auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);

    std::vector<Bytes> leaves;
    leaves.reserve(reqs.size());
    for (const auto& r : reqs) leaves.push_back(r.Serialize());
    Stopwatch sw(RealClock::Global());
    (void)MerkleTree::Build(leaves);
    KeyPair probe = KeyPair::FromSeed(1);
    (void)EcdsaSign(probe.private_key(), Sha256::Digest("p"));
    double first_ms = sw.ElapsedSeconds() * 1e3;

    sw.Reset();
    auto responses = d->node().Append(reqs);
    double last_ms = sw.ElapsedSeconds() * 1e3;
    if (!responses.ok()) std::abort();

    sw.Reset();
    int sample = std::min<int>(kVerifySample, responses->size());
    for (int i = 0; i < sample; ++i) {
      if (!(*responses)[i].Verify(d->node().address())) std::abort();
    }
    double stage1_ms =
        last_ms + sw.ElapsedSeconds() * 1e3 / sample * responses->size();

    std::printf("%-12zu %12.1f %12.1f %14.1f\n", value_size, first_ms, last_ms,
                stage1_ms);
    if (value_size == kValueSizes[0]) first_stage1 = stage1_ms;
    last_stage1 = stage1_ms;
  }
  std::printf(
      "\nshape check: stage-1 delay grows %+.0f%% over the 8x value-size "
      "increase (paper: +66%%) — far sublinear in payload size.\n",
      100.0 * (last_stage1 - first_stage1) / first_stage1);
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
