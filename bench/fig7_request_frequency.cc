// Reproduces Figure 7: stage-1 commit throughput vs offered request
// frequency, value size 1024 B (paper §6.3, "Varying the request
// frequency"). Batch size here is 500 (scaled from the paper's 2000 to
// keep each point's run short on the harness machine — shape preserved).
//
// Paper shape: achieved throughput tracks the offered frequency until the
// node's compute capacity (paper: ~900 req/s on their hardware), then
// stops climbing as unprocessed operations accumulate.

#include <thread>

#include "bench/bench_util.h"

namespace wedge {
namespace bench {
namespace {

constexpr uint32_t kBatch = 500;
constexpr double kWindowSecs = 2.0;

/// Offers requests at `frequency` per second for kWindowSecs, flushes the
/// tail, and returns the achieved stage-1 commit rate.
double RunAtFrequency(double frequency) {
  auto d = MakeBenchDeployment(kBatch);
  size_t n = std::max<size_t>(kBatch,
                              static_cast<size_t>(frequency * kWindowSecs));
  auto kvs = MakeWorkload(n);
  auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);

  std::atomic<uint64_t> committed{0};
  d->node().SetResponseCallback(
      [&committed](std::vector<Stage1Response>&& batch) {
        committed.fetch_add(batch.size());
      });

  const Clock* clock = RealClock::Global();
  Micros start = clock->NowMicros();
  size_t sent = 0;
  while (sent < reqs.size()) {
    Micros elapsed = clock->NowMicros() - start;
    size_t due = static_cast<size_t>(frequency * elapsed / kMicrosPerSecond);
    if (due > reqs.size()) due = reqs.size();
    while (sent < due) {
      (void)d->node().SubmitAppend(reqs[sent]);
      ++sent;
    }
    if (sent < reqs.size()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (d->node().StagedRequests() > 0) {
    (void)d->node().FlushStagedBatch();
  }
  double elapsed_secs =
      static_cast<double>(clock->NowMicros() - start) / kMicrosPerSecond;
  return static_cast<double>(committed.load()) / elapsed_secs;
}

}  // namespace

void Main() {
  PrintHeader("Figure 7: stage-1 throughput vs request frequency");
  std::printf("%-14s %16s\n", "offered(req/s)", "committed(op/s)");

  const double kFrequencies[] = {500, 1000, 2000, 3000, 4000, 6000, 8000};
  double peak = 0, knee_freq = 0, last = 0;
  bool tracked_below_peak = true;
  for (double f : kFrequencies) {
    double tput = RunAtFrequency(f);
    std::printf("%-14.0f %16.0f\n", f, tput);
    peak = std::max(peak, tput);
    // The knee: first offered rate the node can no longer keep up with.
    if (knee_freq == 0 && tput < 0.85 * f) knee_freq = f;
    if (tput >= 0.85 * f && tput < 0.7 * f) tracked_below_peak = false;
    last = tput;
  }
  std::printf(
      "\nshape check: throughput tracks the offered rate below capacity "
      "(%s), saturates at ~%.0f op/s once offered load passes ~%.0f req/s "
      "(paper: capacity knee at ~900 req/s on their hardware), and does "
      "not keep climbing past the knee (last point %.0f ~= peak %.0f).\n",
      tracked_below_peak ? "yes" : "NO", peak, knee_freq, last, peak);
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
