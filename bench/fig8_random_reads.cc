// Reproduces Figure 8: random-key read throughput as a function of the
// batch size used at ingest time (paper §6.3, "Reading Experiments").
//
// Paper setup: 10M-entry log, 50k random reads, throughput 1800-2100
// ops/s, roughly independent of batch size. Scaled here to a 30k-entry
// log and 600 random reads per configuration (single-core harness); the
// shape — flat across batch sizes — is what is being reproduced. Each
// read includes the Offchain Node generating a signed response and the
// User verifying it.

#include "bench/bench_util.h"

namespace wedge {
namespace bench {
namespace {

constexpr size_t kLogEntries = 30'000;
constexpr size_t kReads = 600;

}  // namespace

void Main() {
  PrintHeader("Figure 8: random read throughput vs ingest batch size");
  std::printf("%-10s %16s\n", "batch", "reads/s");

  const uint32_t kBatchSizes[] = {500, 1000, 2000, 4000, 8000, 10000};
  double min_tput = 1e18, max_tput = 0;
  for (uint32_t batch : kBatchSizes) {
    // Preload the log without response signatures (setup cost only).
    auto d = MakeBenchDeployment(batch, 0, /*sign_responses=*/false,
                                 /*auto_stage2=*/false);
    auto kvs = MakeWorkload(kLogEntries);
    auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
    if (!d->node().Append(reqs).ok()) std::abort();

    UserClient user = d->MakeUser(7);
    Rng rng(batch);
    std::vector<EntryIndex> indices;
    indices.reserve(kReads);
    uint64_t positions = d->node().LogPositions();
    for (size_t i = 0; i < kReads; ++i) {
      uint64_t log_id = rng.Uniform(positions);
      uint32_t limit = static_cast<uint32_t>(
          std::min<uint64_t>(batch, kLogEntries - log_id * batch));
      indices.push_back(
          EntryIndex{log_id, static_cast<uint32_t>(rng.Uniform(limit))});
    }

    Stopwatch sw(RealClock::Global());
    for (const EntryIndex& idx : indices) {
      auto r = user.ReadVerified(idx);
      if (!r.ok()) {
        std::fprintf(stderr, "read failed: %s\n", r.status().ToString().c_str());
        std::abort();
      }
    }
    double tput = kReads / sw.ElapsedSeconds();
    std::printf("%-10u %16.0f\n", batch, tput);
    min_tput = std::min(min_tput, tput);
    max_tput = std::max(max_tput, tput);
  }
  std::printf(
      "\nshape check: read throughput varies only %.1f%% across batch "
      "sizes (paper: flat, 1800-2100 ops/s on their hardware).\n",
      100.0 * (max_tput - min_tput) / max_tput);
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
