// Reproduces Figure 9: full-log audit latency vs number of audited
// operations, and the share of time spent in verification (paper §6.3,
// "Reading Experiments": latency linear in audit size; ~42% of time in
// verification).
//
// Scaled from the paper's 10k-200k operations to 500-4000 (single-core
// harness; the paper's client verified with 96 threads). Linearity and
// the verification share are the reproduced shapes.

#include "bench/bench_util.h"

namespace wedge {
namespace bench {

void Main() {
  PrintHeader("Figure 9: audit latency vs audited operations (batch=500)");
  std::printf("%-12s %14s %16s %14s\n", "operations", "latency(s)",
              "verify-share(%)", "ops/s");

  constexpr uint32_t kBatch = 500;
  constexpr size_t kLogEntries = 4000;
  auto d = MakeBenchDeployment(kBatch);
  auto kvs = MakeWorkload(kLogEntries);
  auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
  if (!d->node().Append(reqs).ok()) std::abort();
  d->AdvanceBlocks(4);  // Stage-2 digests all land.

  AuditorClient auditor = d->MakeAuditor(9);
  // Warm-up pass: fill CPU caches / ramp the clock before measuring so
  // the smallest audit is not penalized.
  if (!auditor.Audit(0, 1).ok()) std::abort();

  const size_t kAuditSizes[] = {500, 1000, 2000, 4000};
  double first_latency = 0, first_n = 0, last_latency = 0, last_n = 0;
  for (size_t n : kAuditSizes) {
    uint64_t last_position = n / kBatch - 1;
    auto report = auditor.Audit(0, last_position);
    if (!report.ok()) {
      std::fprintf(stderr, "audit failed: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
    if (!report->Clean()) std::abort();
    double total_s = static_cast<double>(report->read_micros +
                                         report->verify_micros) /
                     kMicrosPerSecond;
    double share = 100.0 * report->verify_micros /
                   (report->read_micros + report->verify_micros);
    std::printf("%-12zu %14.2f %16.1f %14.0f\n", n, total_s, share,
                report->entries_checked / total_s);
    if (n == kAuditSizes[0]) {
      first_latency = total_s;
      first_n = n;
    }
    last_latency = total_s;
    last_n = n;
  }
  double scaling = (last_latency / first_latency) / (last_n / first_n);
  std::printf(
      "\nshape checks: latency scales ~linearly with audit size "
      "(normalized slope %.2f, 1.0 = perfectly linear; paper: linear); "
      "verification consumes a large share of audit time (paper: ~42%%).\n",
      scaling);
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
