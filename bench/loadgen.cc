// loadgen — open/closed-loop workload driver for the TCP serving stack.
//
// Drives a wedgeblockd-style RpcServer over real sockets with a pool of
// pipelined TcpNodeClient connections and emits one JSONL row per run:
// achieved throughput, p50/p99/p999 append and read latency (sourced from
// the local telemetry registry), and error counts.
//
// Modes:
//   closed  — fixed concurrency: each of --threads workers keeps exactly
//             one RPC in flight (classic closed loop).
//   open    — target rate: workers fire at a paced schedule targeting
//             --rate ops/s total, independent of response latency (late
//             ops fire immediately and are counted in sched_lagged).
//
// Usage:
//   loadgen --spawn-server [--mode open|closed] [--rate N] [--threads N]
//           [--connections N] [--duration-s N] [--batch N] [--value-bytes N]
//           [--read-fraction F] [--server-workers N] [--verify-sigs]
//           [--seed N] [--telemetry-out PATH]
//           [--tenants N] [--tenant-skew S] [--server-shards N]
//           [--tenant-rate N] [--tenant-burst N] [--tenant-inflight N]
//           [--store memory|file|segment] [--log-dir PATH] [--fsync]
//   loadgen --host H --port P ...   # against an external wedgeblockd
//
// --store picks the spawned sharded server's shard store (default
// memory, the historical behaviour). file/segment need a --log-dir
// (auto-created under /tmp when omitted); --fsync makes acks durable —
// per-record fsync on file, group commit on segment — so closed-loop
// runs across the three backends measure the real durability cost. The
// JSONL row stamps `store` and payload `bytes_per_s` either way.
//
// With --spawn-server the server runs in-process on an ephemeral loopback
// port (the ctest smoke run uses this); traffic still crosses real TCP.
//
// Multi-tenant mode (--tenants > 1): every operation first samples a
// tenant from a Zipf(S) distribution (--tenant-skew 0 = uniform), signs
// with that tenant's own publisher keypair, and uses the tenant-scoped
// RPCs against a sharded daemon (wedgeblockd --shards, or the in-process
// sharded engine with --spawn-server). The JSONL row then carries
// per-tenant append p50/p99 and quota-rejection counts — a rejection is
// a typed ResourceExhausted status from admission control, counted
// separately from transport errors. --tenant-rate/--tenant-burst/
// --tenant-inflight set the spawned server's admission quotas.
//
// Fleet mode (--fleet h:p,h:p,...): drives a FleetRouter over one
// wedgeblockd process per endpoint instead of a single connection pool —
// every op is tenant-routed on the client-side consistent-hash ring and
// per-shard breakers convert dead processes into typed fast-fails.
//
// Trace sampling (--trace-every N): every Nth append runs under a fresh
// propagated trace context — the client stamps client_enqueue /
// client_acked spans locally and the trace_id rides the RPC frame so the
// serving daemon's spans (rpc_recv, ingest, seal, ...) carry the same id.
// Dump with --telemetry-out and stitch with tools/trace_summary.py.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "rpc/rpc_server.h"
#include "rpc/tcp_client.h"
#include "shard/fleet_router.h"
#include "shard/router.h"
#include "shard/shard_rpc.h"
#include "shard/sharded_engine.h"
#include "telemetry/tracer.h"

namespace wedge {
namespace {

struct Options {
  bool spawn_server = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string mode = "closed";
  double rate = 2000;  // Total target ops/s (open mode).
  int threads = 4;
  int connections = 2;
  int64_t duration_s = 5;
  uint32_t batch = 64;  // Append requests per RPC.
  size_t value_bytes = 1024;
  double read_fraction = 0.2;
  int server_workers = 2;
  bool verify_sigs = false;
  uint64_t seed = 42;
  std::string telemetry_out;
  uint64_t tenants = 1;
  double tenant_skew = 0;   ///< Zipf exponent (0 = uniform).
  uint32_t server_shards = 2;  ///< Spawned server shards (tenants > 1).
  uint64_t tenant_rate = 0;
  uint64_t tenant_burst = 0;
  uint64_t tenant_inflight = 0;
  std::string fleet;        ///< Comma-separated host:port shard endpoints.
  uint64_t trace_every = 0; ///< Trace every Nth append (0 = off).
  StoreBackend store = StoreBackend::kMemory;  ///< Spawned server store.
  std::string log_dir;      ///< Spawned server durable dir ("" = temp).
  bool fsync = false;       ///< Durable acks on the spawned server.
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--spawn-server | --host H --port P]\n"
      "          [--mode open|closed] [--rate OPS_PER_S] [--threads N]\n"
      "          [--connections N] [--duration-s N] [--batch N]\n"
      "          [--value-bytes N] [--read-fraction F] [--server-workers N]\n"
      "          [--verify-sigs] [--seed N] [--telemetry-out PATH]\n"
      "          [--tenants N] [--tenant-skew S] [--server-shards N]\n"
      "          [--tenant-rate N] [--tenant-burst N] [--tenant-inflight N]\n"
      "          [--fleet H:P,H:P,...] [--trace-every N]\n"
      "          [--store memory|file|segment] [--log-dir PATH] [--fsync]\n",
      argv0);
  return 2;
}

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--spawn-server") {
      opts.spawn_server = true;
    } else if (flag == "--host") {
      WEDGE_ASSIGN_OR_RETURN(opts.host, next());
    } else if (flag == "--port") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--mode") {
      WEDGE_ASSIGN_OR_RETURN(opts.mode, next());
      if (opts.mode != "open" && opts.mode != "closed") {
        return Status::InvalidArgument("--mode must be open or closed");
      }
    } else if (flag == "--rate") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.rate = std::atof(v.c_str());
    } else if (flag == "--threads") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.threads = std::atoi(v.c_str());
    } else if (flag == "--connections") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.connections = std::atoi(v.c_str());
    } else if (flag == "--duration-s") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.duration_s = std::atoll(v.c_str());
    } else if (flag == "--batch") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--value-bytes") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.value_bytes = std::strtoul(v.c_str(), nullptr, 10);
    } else if (flag == "--read-fraction") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.read_fraction = std::atof(v.c_str());
    } else if (flag == "--server-workers") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.server_workers = std::atoi(v.c_str());
    } else if (flag == "--verify-sigs") {
      opts.verify_sigs = true;
    } else if (flag == "--seed") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--telemetry-out") {
      WEDGE_ASSIGN_OR_RETURN(opts.telemetry_out, next());
    } else if (flag == "--tenants") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenants = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--tenant-skew") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_skew = std::atof(v.c_str());
    } else if (flag == "--server-shards") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.server_shards =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--tenant-rate") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_rate = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--tenant-burst") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_burst = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--tenant-inflight") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.tenant_inflight = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--fleet") {
      WEDGE_ASSIGN_OR_RETURN(opts.fleet, next());
    } else if (flag == "--store") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      WEDGE_ASSIGN_OR_RETURN(opts.store, ParseStoreBackend(v));
    } else if (flag == "--log-dir") {
      WEDGE_ASSIGN_OR_RETURN(opts.log_dir, next());
    } else if (flag == "--fsync") {
      opts.fsync = true;
    } else if (flag == "--trace-every") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.trace_every = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (!opts.fleet.empty() && opts.spawn_server) {
    return Status::InvalidArgument("--fleet drives external daemons; drop "
                                   "--spawn-server");
  }
  if (!opts.spawn_server && opts.port == 0 && opts.fleet.empty()) {
    return Status::InvalidArgument(
        "need --spawn-server, --host/--port, or --fleet");
  }
  if (opts.threads < 1 || opts.connections < 1 || opts.batch == 0 ||
      opts.duration_s < 1 || opts.rate <= 0 || opts.read_fraction < 0 ||
      opts.read_fraction > 1 || opts.tenants < 1 || opts.tenant_skew < 0 ||
      opts.server_shards < 1 || opts.tenants > 4096) {
    return Status::InvalidArgument("bad flag value");
  }
  if (opts.store != StoreBackend::kMemory &&
      (!opts.spawn_server || opts.tenants < 2)) {
    return Status::InvalidArgument(
        "--store file|segment needs --spawn-server with --tenants >= 2 "
        "(the sharded engine owns the durable stores)");
  }
  return opts;
}

/// Zipf(s) over [0, n): tenant 0 is the hottest. s = 0 degenerates to
/// uniform. Inverse-CDF sampling against a precomputed table.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) {
    cdf_.reserve(n);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    size_t i = static_cast<size_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return std::min(i, cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

/// "h:p,h:p,..." -> endpoints, with the permissive parsing a shell
/// one-liner deserves (spaces trimmed, empty items rejected).
Result<std::vector<FleetEndpoint>> ParseFleet(const std::string& spec) {
  std::vector<FleetEndpoint> endpoints;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    size_t colon = item.rfind(':');
    if (item.empty() || colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("--fleet item must be host:port: '" +
                                     item + "'");
    }
    unsigned long p = std::strtoul(item.c_str() + colon + 1, nullptr, 10);
    if (p == 0 || p > 65535) {
      return Status::InvalidArgument("--fleet bad port in '" + item + "'");
    }
    FleetEndpoint ep;
    ep.host = item.substr(0, colon);
    ep.port = static_cast<uint16_t>(p);
    endpoints.push_back(std::move(ep));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return endpoints;
}

/// Uniform client surface over the two transports loadgen can drive: a
/// single pooled TcpNodeClient or a FleetRouter fanning out to one TCP
/// endpoint per shard process (--fleet). The fleet path is always
/// tenant-routed (that is what a fleet is); the direct path picks the
/// tenant-scoped ops only in multi-tenant runs so the single-tenant
/// smoke keeps exercising the original RPCs.
struct ClientAdapter {
  TcpNodeClient* direct = nullptr;
  FleetRouter* fleet = nullptr;

  Result<std::vector<Stage1Response>> Append(
      uint64_t tenant, bool tenant_ops,
      const std::vector<AppendRequest>& batch) {
    if (fleet != nullptr) return fleet->Append(tenant, batch);
    return tenant_ops ? direct->AppendForTenant(tenant, batch)
                      : direct->Append(batch);
  }

  Result<Stage1Response> ReadOne(uint64_t tenant, bool tenant_ops,
                                 const EntryIndex& index) {
    if (fleet != nullptr) return fleet->ReadOne(tenant, index);
    return tenant_ops ? direct->ReadOneForTenant(tenant, index)
                      : direct->ReadOne(index);
  }
};

/// Per-tenant slice of the workload: its own publisher keypair (signed
/// corpus), its own readable-index sample (log ids are tenant-routed in
/// sharded mode), and per-tenant latency/rejection metrics.
struct TenantState {
  std::vector<std::vector<AppendRequest>> corpus;  // Batches to cycle.
  std::mutex indices_mu;
  std::vector<EntryIndex> indices;
  Histogram* append_hist;
  Counter* quota_rejections;
  std::atomic<uint64_t> next_batch{0};
};

/// Shared run state: per-tenant corpora and the client-side registry.
struct RunState {
  std::vector<std::unique_ptr<TenantState>> tenants;
  std::unique_ptr<ZipfSampler> zipf;
  Telemetry telemetry{RealClock::Global()};
  Histogram* append_hist;
  Histogram* read_hist;
  Counter* append_ops;
  Counter* read_ops;
  Counter* errors;
  Counter* quota_rejections;
  Counter* sched_lagged;
  Counter* traces;
  /// Monotone op number driving --trace-every sampling (shared across
  /// workers so "every Nth append" means fleet-wide, not per-thread).
  std::atomic<uint64_t> append_seq{0};
  /// Client-side tenant->shard map (same consistent-hash ring the sharded
  /// engine uses), so failures are attributable to the shard that died
  /// rather than vanishing into one aggregate counter. Null when the
  /// target is single-shard.
  std::unique_ptr<ShardRouter> ring;
  std::vector<Counter*> shard_errors;

  void CountError(uint64_t tenant) {
    errors->Add(1);
    if (ring != nullptr) shard_errors[ring->ShardFor(tenant)]->Add(1);
  }
};

void DoOne(const Options& opts, RunState& state, ClientAdapter& client,
           Rng& rng) {
  // Tenant 0 is the only tenant (and gets the legacy ops) when --tenants
  // is 1, so the single-tenant smoke run exercises the original path.
  size_t tenant = state.zipf->Sample(rng);
  TenantState& ten = *state.tenants[tenant];
  bool tenant_ops = opts.tenants > 1;
  bool do_read = rng.NextDouble() < opts.read_fraction;
  if (do_read) {
    EntryIndex target;
    {
      std::lock_guard<std::mutex> lock(ten.indices_mu);
      if (ten.indices.empty()) {
        do_read = false;  // Nothing appended yet: fall through to append.
      } else {
        target = ten.indices[rng.Uniform(ten.indices.size())];
      }
    }
    if (do_read) {
      Micros start = RealClock::Global()->NowMicros();
      auto response = client.ReadOne(tenant, tenant_ops, target);
      state.read_hist->Record(RealClock::Global()->NowMicros() - start);
      if (response.ok()) {
        state.read_ops->Add(1);
      } else {
        state.CountError(tenant);
      }
      return;
    }
  }
  // Every --trace-every'th append runs under a fresh propagated trace
  // context: the id is stamped onto the wire frame by TcpNodeClient, so
  // the daemon's spans join ours. Ids are derived from (seed, op number)
  // — unique within a run, reproducible across runs of the same seed.
  uint64_t trace_id = 0;
  if (opts.trace_every > 0) {
    uint64_t n = state.append_seq.fetch_add(1);
    if (n % opts.trace_every == 0) {
      trace_id = (opts.seed << 24) + n + 1;
      if (trace_id == 0) trace_id = n + 1;
      state.traces->Add(1);
    }
  }
  ScopedTrace scope(trace_id, trace_id != 0 ? "loadgen" : "");
  uint64_t i = ten.next_batch.fetch_add(1) % ten.corpus.size();
  if (trace_id != 0) {
    state.telemetry.tracer.Event(0, trace_stage::kClientEnqueue, opts.batch,
                                 "tenant=" + std::to_string(tenant));
  }
  Micros start = RealClock::Global()->NowMicros();
  auto responses = client.Append(tenant, tenant_ops, ten.corpus[i]);
  Micros took = RealClock::Global()->NowMicros() - start;
  if (trace_id != 0) {
    uint64_t log_id =
        responses.ok() && !responses->empty() ? responses->front().index.log_id
                                              : 0;
    state.telemetry.tracer.Event(
        log_id, trace_stage::kClientAcked, opts.batch,
        std::string("us=") + std::to_string(took) +
            (responses.ok() ? "" : " err=1"));
  }
  state.append_hist->Record(took);
  ten.append_hist->Record(took);
  if (!responses.ok()) {
    if (responses.status().code() == Code::kResourceExhausted) {
      // Admission control said no — a quota signal, not a failure.
      ten.quota_rejections->Add(1);
      state.quota_rejections->Add(1);
    } else {
      state.CountError(tenant);
    }
    return;
  }
  state.append_ops->Add(1);
  // Keep a bounded sample of readable indices.
  std::lock_guard<std::mutex> lock(ten.indices_mu);
  if (ten.indices.size() < 65536 && !responses->empty()) {
    ten.indices.push_back(responses->front().index);
  }
}

void WorkerLoop(const Options& opts, RunState& state, ClientAdapter& client,
                int worker_id, Micros deadline) {
  Rng rng(opts.seed * 7919 + worker_id);
  if (opts.mode == "closed") {
    while (RealClock::Global()->NowMicros() < deadline) {
      DoOne(opts, state, client, rng);
    }
    return;
  }
  // Open loop: this worker owns every (threads)-th slot of the global
  // schedule. A slot that comes due while the previous RPC is still
  // running fires immediately and is counted as lagged.
  Micros interval =
      static_cast<Micros>(opts.threads * kMicrosPerSecond / opts.rate);
  if (interval <= 0) interval = 1;
  Micros next_fire = RealClock::Global()->NowMicros() +
                     static_cast<Micros>(worker_id * interval / opts.threads);
  while (next_fire < deadline) {
    Micros now = RealClock::Global()->NowMicros();
    if (now < next_fire) {
      usleep(static_cast<useconds_t>(next_fire - now));
    } else if (now > next_fire + interval) {
      state.sched_lagged->Add(1);
    }
    DoOne(opts, state, client, rng);
    next_fire += interval;
  }
}

bench::JsonRow& StampQuantiles(bench::JsonRow& row, const MetricsSnapshot& snap,
                               const std::string& metric,
                               const std::string& prefix) {
  bench::StampHistogram(row, snap, metric, prefix);
  const HistogramSnapshot* h = snap.FindHistogram(metric);
  if (h != nullptr && h->count > 0) {
    row.Field(prefix + "_p999",
              static_cast<uint64_t>(h->ValueAtQuantile(0.999)));
  }
  return row;
}

int Run(const Options& opts) {
  using bench::JsonRow;

  // Optional in-process server (still real TCP over loopback). With
  // --tenants > 1 the spawned server is the sharded engine so the
  // tenant-scoped ops and admission quotas are live end to end.
  std::unique_ptr<Deployment> deployment;
  std::unique_ptr<ShardedDeployment> sharded;
  std::unique_ptr<RpcServer> server;
  std::string host = opts.host;
  uint16_t port = opts.port;
  if (opts.spawn_server && opts.tenants > 1) {
    ShardedDeploymentConfig config;
    config.engine.num_shards = opts.server_shards;
    config.engine.node.batch_size = opts.batch;
    config.engine.node.worker_threads = 4;
    config.engine.node.verify_client_signatures = opts.verify_sigs;
    config.engine.forest_stage2 = opts.server_shards > 1;
    config.engine.quota.entries_per_second = opts.tenant_rate;
    config.engine.quota.burst_entries = opts.tenant_burst;
    config.engine.quota.max_inflight_appends = opts.tenant_inflight;
    if (opts.store != StoreBackend::kMemory) {
      config.store_backend = opts.store;
      config.log_fsync = opts.fsync;
      config.log_dir = opts.log_dir;
      if (config.log_dir.empty()) {
        char tmpl[] = "/tmp/wedge-loadgen-XXXXXX";
        if (mkdtemp(tmpl) == nullptr) {
          std::fprintf(stderr, "mkdtemp failed for --store %s\n",
                       std::string(StoreBackendName(opts.store)).c_str());
          return 1;
        }
        config.log_dir = tmpl;
      }
    }
    auto d = ShardedDeployment::Create(config);
    if (!d.ok()) {
      std::fprintf(stderr, "sharded deployment failed: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    sharded = std::move(d).value();
    RpcServerConfig server_config;
    server_config.num_workers = opts.server_workers;
    ShardedLogEngine& engine = sharded->engine();
    server = std::make_unique<RpcServer>(
        [&engine](std::string_view op, const Bytes& body) {
          return DispatchEngineRpc(engine, op, body);
        },
        KeyPair::FromSeed(config.engine_key_seed), server_config,
        &sharded->telemetry());
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = server->port();
  } else if (opts.spawn_server) {
    DeploymentConfig config;
    config.node.batch_size = opts.batch;
    config.node.worker_threads = 4;
    config.node.verify_client_signatures = opts.verify_sigs;
    auto d = Deployment::Create(config);
    if (!d.ok()) {
      std::fprintf(stderr, "deployment failed: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    deployment = std::move(d).value();
    RpcServerConfig server_config;
    server_config.num_workers = opts.server_workers;
    server = std::make_unique<RpcServer>(
        &deployment->node(), KeyPair::FromSeed(config.offchain_key_seed),
        server_config, &deployment->telemetry());
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = server->port();
  }

  // Pre-sign the append corpus once so client-side ECDSA signing does not
  // serialize the load loop (the paper's client machine signs on 96
  // threads; see EXPERIMENTS.md "calibration").
  RunState state;
  state.append_hist =
      state.telemetry.metrics.GetHistogram("wedge.loadgen.append_us");
  state.read_hist =
      state.telemetry.metrics.GetHistogram("wedge.loadgen.read_us");
  state.append_ops =
      state.telemetry.metrics.GetCounter("wedge.loadgen.appends");
  state.read_ops = state.telemetry.metrics.GetCounter("wedge.loadgen.reads");
  state.errors = state.telemetry.metrics.GetCounter("wedge.loadgen.errors");
  state.quota_rejections =
      state.telemetry.metrics.GetCounter("wedge.loadgen.quota_rejections");
  state.sched_lagged =
      state.telemetry.metrics.GetCounter("wedge.loadgen.sched_lagged");
  state.traces = state.telemetry.metrics.GetCounter("wedge.loadgen.traces");
  state.zipf = std::make_unique<ZipfSampler>(opts.tenants, opts.tenant_skew);
  std::vector<FleetEndpoint> fleet_endpoints;
  if (!opts.fleet.empty()) {
    auto parsed = ParseFleet(opts.fleet);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    fleet_endpoints = std::move(parsed).value();
  }
  // --server-shards doubles as the ring size for remote daemons, so
  // per-shard error attribution works against a fleet we did not spawn.
  // In --fleet mode the ring is simply one slot per endpoint.
  uint32_t ring_shards = !fleet_endpoints.empty()
                             ? static_cast<uint32_t>(fleet_endpoints.size())
                             : opts.server_shards;
  if (ring_shards > 1 && (opts.tenants > 1 || !fleet_endpoints.empty())) {
    state.ring = std::make_unique<ShardRouter>(ring_shards);
    for (uint32_t s = 0; s < ring_shards; ++s) {
      state.shard_errors.push_back(state.telemetry.metrics.GetCounter(
          "wedge.loadgen.s" + std::to_string(s) + ".errors"));
    }
  }
  // Fewer pre-signed batches per tenant as the tenant count grows, so a
  // 1024-tenant run does not sign a million requests up front.
  size_t batches_per_tenant = opts.tenants > 1 ? 4 : 8;
  for (uint64_t t = 0; t < opts.tenants; ++t) {
    auto ten = std::make_unique<TenantState>();
    // Tenant t signs with its own keypair, so per-tenant streams are
    // independently attributable (and sequence numbers independent).
    KeyPair publisher = KeyPair::FromSeed(opts.seed + t * 7919);
    auto kvs =
        bench::MakeWorkload(opts.batch * batches_per_tenant, opts.value_bytes,
                            bench::kDefaultKeySize, opts.seed + t);
    uint64_t seq = 0;
    for (size_t b = 0; b < batches_per_tenant; ++b) {
      std::vector<AppendRequest> batch;
      batch.reserve(opts.batch);
      for (uint32_t i = 0; i < opts.batch; ++i) {
        const auto& [k, v] = kvs[b * opts.batch + i];
        batch.push_back(AppendRequest::Make(publisher, seq++, k, v));
      }
      ten->corpus.push_back(std::move(batch));
    }
    std::string prefix = "wedge.loadgen.t" + std::to_string(t);
    ten->append_hist =
        state.telemetry.metrics.GetHistogram(prefix + ".append_us");
    ten->quota_rejections =
        state.telemetry.metrics.GetCounter(prefix + ".quota_rejections");
    state.tenants.push_back(std::move(ten));
  }

  TcpClientConfig client_config;
  client_config.host = host;
  client_config.port = port;
  client_config.pool_size = opts.connections;
  client_config.telemetry = &state.telemetry;
  KeyPair client_key = KeyPair::FromSeed(opts.seed ^ 0xC11E);
  const Address engine_address = KeyPair::FromSeed(0xED6E).address();
  ClientAdapter adapter;
  std::unique_ptr<TcpNodeClient> direct;
  std::unique_ptr<FleetRouter> fleet;
  std::string target_label = host + ":" + std::to_string(port);
  if (!fleet_endpoints.empty()) {
    FleetRouterConfig fleet_config;
    fleet_config.endpoints = fleet_endpoints;
    fleet_config.client = client_config;  // host/port overridden per shard.
    fleet = std::make_unique<FleetRouter>(client_key, engine_address,
                                          fleet_config, &state.telemetry);
    Status connected = fleet->Connect();
    if (!connected.ok()) {
      std::fprintf(stderr, "fleet connect failed: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    adapter.fleet = fleet.get();
    target_label = "fleet of " + std::to_string(fleet_endpoints.size());
  } else {
    direct = std::make_unique<TcpNodeClient>(client_key, engine_address,
                                             client_config);
    Status connected = direct->Connect();
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.ToString().c_str());
      return 1;
    }
    adapter.direct = direct.get();
  }

  bench::PrintHeader("loadgen (" + opts.mode + " loop, " + target_label + ")");
  Micros start = RealClock::Global()->NowMicros();
  Micros deadline = start + opts.duration_s * kMicrosPerSecond;
  std::vector<std::thread> workers;
  workers.reserve(opts.threads);
  for (int t = 0; t < opts.threads; ++t) {
    workers.emplace_back(
        [&, t] { WorkerLoop(opts, state, adapter, t, deadline); });
  }
  for (auto& w : workers) w.join();
  double elapsed_s =
      static_cast<double>(RealClock::Global()->NowMicros() - start) /
      kMicrosPerSecond;
  if (direct != nullptr) direct->Close();
  if (fleet != nullptr) fleet->Close();
  if (server != nullptr) server->Shutdown();

  MetricsSnapshot snap = state.telemetry.metrics.Snapshot();
  uint64_t appends = snap.CounterValue("wedge.loadgen.appends");
  uint64_t reads = snap.CounterValue("wedge.loadgen.reads");
  uint64_t errors = snap.CounterValue("wedge.loadgen.errors");
  double rpc_per_s = (appends + reads) / elapsed_s;

  JsonRow row = bench::MakeRow("loadgen", opts.seed, opts.batch);
  row.Field("mode", opts.mode)
      .Field("threads", static_cast<uint64_t>(opts.threads))
      .Field("connections", static_cast<uint64_t>(opts.connections))
      .Field("duration_s", elapsed_s)
      .Field("append_rpcs", appends)
      .Field("read_rpcs", reads)
      .Field("errors", errors)
      .Field("rpc_per_s", rpc_per_s)
      .Field("appends_per_s", appends * opts.batch / elapsed_s)
      // Acked payload bytes (key + value per entry) per second, plus the
      // store backend serving them, so durability-cost runs across
      // memory/file/segment are comparable from the row alone.
      .Field("value_bytes", static_cast<uint64_t>(opts.value_bytes))
      .Field("bytes_per_s",
             appends * opts.batch *
                 (opts.value_bytes + bench::kDefaultKeySize) / elapsed_s)
      .Field("store", std::string(StoreBackendName(opts.store)));
  if (direct != nullptr) {
    row.Field("client_reconnects", direct->reconnects())
        .Field("client_retries", direct->retries())
        .Field("discarded_responses", direct->discarded_responses());
  }
  if (fleet != nullptr) {
    row.Field("fleet_shards", static_cast<uint64_t>(fleet->num_shards()))
        .Field("client_retries", fleet->retries())
        .Field("router_fast_fails", fleet->fast_fails())
        .Field("breaker_trips", fleet->breaker_trips());
  }
  if (opts.trace_every > 0) {
    row.Field("traces", snap.CounterValue("wedge.loadgen.traces"));
  }
  if (state.ring != nullptr) {
    for (uint32_t s = 0; s < state.ring->num_shards(); ++s) {
      row.Field("s" + std::to_string(s) + "_errors",
                snap.CounterValue("wedge.loadgen.s" + std::to_string(s) +
                                  ".errors"));
    }
  }
  if (opts.mode == "open") {
    row.Field("target_rate", opts.rate)
        .Field("sched_lagged", snap.CounterValue("wedge.loadgen.sched_lagged"));
  }
  StampQuantiles(row, snap, "wedge.loadgen.append_us", "append_us");
  StampQuantiles(row, snap, "wedge.loadgen.read_us", "read_us");
  if (opts.tenants > 1) {
    row.Field("tenants", opts.tenants)
        .Field("tenant_skew", opts.tenant_skew)
        .Field("quota_rejections",
               snap.CounterValue("wedge.loadgen.quota_rejections"));
    for (uint64_t t = 0; t < opts.tenants; ++t) {
      std::string metric = "wedge.loadgen.t" + std::to_string(t);
      std::string prefix = "t" + std::to_string(t);
      bench::StampHistogram(row, snap, metric + ".append_us",
                            prefix + "_append_us");
      row.Field(prefix + "_quota_rejections",
                snap.CounterValue(metric + ".quota_rejections"));
    }
  }
  if (sharded != nullptr) {
    MetricsSnapshot server_snap = sharded->telemetry().metrics.Snapshot();
    row.Field("server_shards", static_cast<uint64_t>(opts.server_shards))
        .Field("server_requests",
               server_snap.CounterValue("wedge.rpc.requests"))
        .Field("server_quota_rejections",
               server_snap.CounterValue("wedge.engine.quota_rejections_rate") +
                   server_snap.CounterValue(
                       "wedge.engine.quota_rejections_inflight") +
                   server_snap.CounterValue(
                       "wedge.engine.quota_rejections_tenant"));
    StampQuantiles(row, server_snap, "wedge.rpc.append_us", "server_append_us");
  }
  if (deployment != nullptr) {
    // Server-side view (same process when --spawn-server).
    MetricsSnapshot server_snap = deployment->telemetry().metrics.Snapshot();
    row.Field("server_requests", server_snap.CounterValue("wedge.rpc.requests"))
        .Field("server_bytes_in", server_snap.CounterValue("wedge.rpc.bytes_in"))
        .Field("server_bytes_out",
               server_snap.CounterValue("wedge.rpc.bytes_out"))
        .Field("server_malformed",
               server_snap.CounterValue("wedge.rpc.malformed_frames"));
    StampQuantiles(row, server_snap, "wedge.rpc.append_us", "server_append_us");
    StampQuantiles(row, server_snap, "wedge.rpc.read_us", "server_read_us");
  }
  row.Print();

  bench::MaybeWriteTelemetry(opts.telemetry_out, state.telemetry,
                             /*truncate=*/true);
  if (deployment != nullptr) {
    bench::MaybeWriteTelemetry(opts.telemetry_out, deployment->telemetry());
  }
  if (sharded != nullptr) {
    bench::MaybeWriteTelemetry(opts.telemetry_out, sharded->telemetry());
  }
  // Any failed request is a loud failure: a dead shard or unreachable
  // daemon mid-run must not exit 0 just because other requests landed.
  if (errors > 0) {
    std::fprintf(stderr,
                 "loadgen: %llu request(s) failed (shard down or daemon "
                 "unreachable mid-run); see errors / s<i>_errors in the "
                 "JSONL row\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) {
  // Runtime escape hatch mirroring the WEDGE_SKIP_SOCKET_TESTS CMake
  // option: the whole tool is socket-bound, so skip cleanly.
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  if (skip != nullptr && skip[0] == '1') {
    std::printf("loadgen SKIPPED (WEDGE_SKIP_SOCKET_TESTS)\n");
    return 0;
  }
  auto opts = wedge::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return wedge::Usage(argv[0]);
  }
  return wedge::Run(*opts);
}
