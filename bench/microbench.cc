// Google-benchmark microbenchmarks for the primitives every WedgeBlock
// operation is built from: hashing, ECDSA, Merkle trees and the U256
// field arithmetic. These bound the end-to-end numbers reported by the
// figure harnesses.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/offchain_node.h"
#include "crypto/ecdsa.h"
#include "crypto/keccak256.h"
#include "crypto/sha256_dispatch.h"
#include "merkle/merkle_tree.h"
#include "storage/log_store.h"

namespace wedge {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1088)->Arg(4096);

// Batch hashing through the multi-lane dispatcher: `range(0)` messages of
// 1088 bytes each (the paper's serialized-entry size). Compare against
// BM_Sha256/1088 × N to see the multibuffer win.
void BM_Sha256Many(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> msgs;
  std::vector<const uint8_t*> ptrs;
  for (int64_t i = 0; i < state.range(0); ++i) msgs.push_back(rng.NextBytes(1088));
  for (const Bytes& m : msgs) ptrs.push_back(m.data());
  std::vector<Hash256> out(msgs.size());
  for (auto _ : state) {
    Sha256ManySameLen(ptrs.data(), 1088, ptrs.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() * state.range(0) * 1088);
}
BENCHMARK(BM_Sha256Many)->Arg(8)->Arg(64)->Arg(2000);

void BM_Keccak256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256::Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(1088);

void BM_EcdsaSign(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(1);
  Hash256 h = Sha256::Digest("message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaSign(kp.private_key(), h));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(1);
  Hash256 h = Sha256::Digest("message");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaVerify(kp.public_key(), h, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdsaRecover(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(1);
  Hash256 h = Sha256::Digest("message");
  EcdsaSignature sig = EcdsaSign(kp.private_key(), h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecoverSigner(h, sig));
  }
}
BENCHMARK(BM_EcdsaRecover);

// A full sealing batch of signatures through the batched-inversion path;
// per-signature cost is this divided by the arg — compare against
// BM_EcdsaSign to see the amortization win.
void BM_EcdsaSignMany(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(1);
  std::vector<Hash256> hashes(state.range(0));
  for (size_t i = 0; i < hashes.size(); ++i) {
    hashes[i] = Sha256::Digest("entry-" + std::to_string(i));
  }
  std::vector<EcdsaSignature> sigs(hashes.size());
  for (auto _ : state) {
    EcdsaSignMany(kp.private_key(), hashes.data(), hashes.size(),
                  sigs.data());
    benchmark::DoNotOptimize(sigs.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EcdsaSignMany)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_EcdsaVerifyMany(benchmark::State& state) {
  KeyPair kp = KeyPair::FromSeed(1);
  std::vector<Hash256> hashes(state.range(0));
  std::vector<EcdsaSignature> sigs(hashes.size());
  for (size_t i = 0; i < hashes.size(); ++i) {
    hashes[i] = Sha256::Digest("entry-" + std::to_string(i));
    sigs[i] = EcdsaSign(kp.private_key(), hashes[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcdsaVerifyMany(kp.public_key(), hashes, sigs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EcdsaVerifyMany)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(rng.NextBytes(1088));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Build(leaves));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleBuild)->Arg(500)->Arg(2000)->Arg(10000);

// Pool-parallel build over the same leaves; byte-identical roots (see
// tests/merkle_test.cc), so this isolates the partitioning overhead/win.
void BM_MerkleBuildParallel(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(rng.NextBytes(1088));
  }
  ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Build(leaves, &pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleBuildParallel)->Arg(500)->Arg(2000)->Arg(10000);

// The full stage-1 seal: serialize, Merkle-build, persist, sign one
// response per entry. 2000 requests of ~1088 serialized bytes — the
// paper's default batch. Dominated by ECDSA signing; the hashing and
// copy-elision work shows up in the spread over BM_EcdsaSign × 2000.
void BM_SealBatch(benchmark::State& state) {
  OffchainNodeConfig config;
  config.batch_size = static_cast<uint32_t>(state.range(0));
  config.auto_stage2 = false;
  config.verify_client_signatures = false;
  config.sign_stage1_responses = true;
  OffchainNode node(config, KeyPair::FromSeed(1),
                    std::make_unique<MemoryLogStore>(), /*chain=*/nullptr,
                    Address{});
  KeyPair publisher = KeyPair::FromSeed(2);
  Rng rng(1);
  std::vector<AppendRequest> requests;
  for (int64_t i = 0; i < state.range(0); ++i) {
    // 1024-byte values serialize to ~1088-byte leaves.
    requests.push_back(AppendRequest::Make(publisher, i, rng.NextBytes(16),
                                           rng.NextBytes(1024)));
  }
  for (auto _ : state) {
    auto responses = node.Append(requests);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SealBatch)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_MerkleProve(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> leaves;
  for (int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(rng.NextBytes(1088));
  }
  auto tree = MerkleTree::Build(leaves);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Prove(i++ % state.range(0)));
  }
}
BENCHMARK(BM_MerkleProve)->Arg(500)->Arg(2000)->Arg(10000);

void BM_MerkleVerifyProof(benchmark::State& state) {
  Rng rng(1);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 2000; ++i) leaves.push_back(rng.NextBytes(1088));
  auto tree = MerkleTree::Build(leaves);
  auto proof = tree->Prove(1234).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyMerkleProof(leaves[1234], proof, tree->Root()));
  }
}
BENCHMARK(BM_MerkleVerifyProof);

void BM_FpMul(benchmark::State& state) {
  Rng rng(1);
  U256 a(rng.Next(), rng.Next(), rng.Next(), rng.Next());
  U256 b(rng.Next(), rng.Next(), rng.Next(), rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::FpMul(a, b));
    a = a + U256::One();
  }
}
BENCHMARK(BM_FpMul);

void BM_ScalarMulBase(benchmark::State& state) {
  Rng rng(1);
  U256 k(rng.Next(), rng.Next(), rng.Next(), rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::ScalarMulBase(k));
    k = k + U256::One();
  }
}
BENCHMARK(BM_ScalarMulBase);

}  // namespace
}  // namespace wedge

BENCHMARK_MAIN();
