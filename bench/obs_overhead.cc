// obs_overhead — proves the observability plane is cheap enough to leave
// on: measures Offchain Node ingest/seal throughput with the full
// observability stack live (every append under a propagated ScopedTrace,
// admin HTTP endpoint up, a scraper hammering /metrics and /metrics.json
// concurrently) against an identical run with all of it off, and
// enforces that the cost stays under --max-overhead-pct (default 6%).
//
// The budget is relative, so it must be recalibrated whenever the append
// path itself gets faster: the secp256k1 fast path cut per-append cost
// ~7x (≈160µs → ≈23µs/entry on the reference box), which inflated the
// same ≈0.7µs/entry absolute tracing cost from <1% to ≈3%. The report
// therefore also carries overhead_us_per_entry — compare that across
// runs to distinguish a genuinely more expensive observability plane
// from a cheaper base path.
//
// Rounds alternate untraced/traced and the medians are compared, so a
// single noisy round (CPU frequency excursion, page-cache miss) does not
// produce a phantom regression. Writes a BENCH_obs.json report in the
// same shape as BENCH_shard.json, with `criteria_passed`.
//
// Usage:
//   obs_overhead [--batch N] [--batches N] [--rounds N]
//                [--max-overhead-pct F] [--json-out PATH] [--seed N]

#include <algorithm>
#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/http_client.h"
#include "rpc/admin_http.h"
#include "telemetry/tracer.h"

namespace wedge {
namespace bench {
namespace {

struct Options {
  uint32_t batch = 2000;
  size_t batches = 8;
  int rounds = 3;
  double max_overhead_pct = 6.0;
  std::string json_out = "BENCH_obs.json";
  uint64_t seed = 42;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--batch N] [--batches N] [--rounds N]\n"
               "          [--max-overhead-pct F] [--json-out PATH] "
               "[--seed N]\n",
               argv0);
  return 2;
}

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--batch") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--batches") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.batches = std::strtoul(v.c_str(), nullptr, 10);
    } else if (flag == "--rounds") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.rounds = std::atoi(v.c_str());
    } else if (flag == "--max-overhead-pct") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.max_overhead_pct = std::atof(v.c_str());
    } else if (flag == "--json-out") {
      WEDGE_ASSIGN_OR_RETURN(opts.json_out, next());
    } else if (flag == "--seed") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (opts.batch == 0 || opts.batches == 0 || opts.rounds < 1) {
    return Status::InvalidArgument("bad flag value");
  }
  return opts;
}

/// One measured run: `batches` full batches through a fresh deployment.
/// `observed` turns on the whole plane: per-append ScopedTrace (a fresh
/// propagated trace id each batch, exactly what loadgen --trace-every 1
/// causes server-side) plus the admin endpoint with a live scraper.
double RunOnce(const Options& opts, bool observed, uint64_t* scrapes_out) {
  auto d = MakeBenchDeployment(opts.batch);
  auto kvs = MakeWorkload(opts.batch * opts.batches, kDefaultValueSize,
                          kDefaultKeySize, opts.seed);
  std::vector<std::vector<AppendRequest>> corpus;
  corpus.reserve(opts.batches);
  {
    auto all = MakeUnsignedRequests(d->publisher().address(), kvs);
    for (size_t b = 0; b < opts.batches; ++b) {
      corpus.emplace_back(all.begin() + b * opts.batch,
                          all.begin() + (b + 1) * opts.batch);
    }
  }

  std::unique_ptr<AdminHttpServer> admin;
  std::thread scraper;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0};
  if (observed) {
    AdminHttpConfig admin_config;  // Ephemeral port on loopback.
    admin = std::make_unique<AdminHttpServer>(&d->telemetry(), admin_config);
    Status started = admin->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "admin start failed: %s\n",
                   started.ToString().c_str());
      std::abort();
    }
    uint16_t port = admin->port();
    scraper = std::thread([port, &done, &scrapes] {
      uint64_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto r = HttpGet("127.0.0.1", port,
                         (i++ % 2 == 0) ? "/metrics" : "/metrics.json");
        if (r.ok()) scrapes.fetch_add(1, std::memory_order_relaxed);
        usleep(10'000);
      }
    });
  }

  Stopwatch sw(RealClock::Global());
  for (size_t b = 0; b < opts.batches; ++b) {
    uint64_t trace_id = observed ? (opts.seed << 24) + b + 1 : 0;
    ScopedTrace scope(trace_id, observed ? "obs_overhead" : "");
    auto responses = d->node().Append(corpus[b]);
    if (!responses.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   responses.status().ToString().c_str());
      std::abort();
    }
  }
  double secs = sw.ElapsedSeconds();

  if (observed) {
    done.store(true, std::memory_order_release);
    scraper.join();
    admin->Shutdown();
    if (scrapes_out != nullptr) *scrapes_out += scrapes.load();
  }
  return static_cast<double>(opts.batch) * opts.batches / secs;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int Main(int argc, char** argv) {
  auto parsed = Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return Usage(argv[0]);
  }
  const Options opts = *parsed;
  PrintHeader("observability overhead (trace + admin scrape vs off)");

  // Warm-up run (allocator, code paths) that is not measured.
  (void)RunOnce(opts, /*observed=*/false, nullptr);

  std::vector<double> untraced, traced;
  uint64_t scrapes = 0;
  for (int r = 0; r < opts.rounds; ++r) {
    untraced.push_back(RunOnce(opts, /*observed=*/false, nullptr));
    traced.push_back(RunOnce(opts, /*observed=*/true, &scrapes));
    std::printf("round %d: untraced %.0f entries/s, observed %.0f entries/s\n",
                r, untraced.back(), traced.back());
  }
  double untraced_eps = Median(untraced);
  double traced_eps = Median(traced);
  double overhead_pct = 100.0 * (untraced_eps - traced_eps) / untraced_eps;
  double overhead_us = 1e6 / traced_eps - 1e6 / untraced_eps;
  bool passed = overhead_pct <= opts.max_overhead_pct;
  std::printf(
      "median untraced %.0f entries/s, observed %.0f entries/s, "
      "overhead %.2f%% = %.2f us/entry (max %.1f%%), %llu scrapes served\n",
      untraced_eps, traced_eps, overhead_pct, overhead_us,
      opts.max_overhead_pct, static_cast<unsigned long long>(scrapes));

  JsonRow row = MakeRow("obs_overhead", opts.seed, opts.batch);
  row.Field("batches", static_cast<uint64_t>(opts.batches))
      .Field("rounds", static_cast<uint64_t>(opts.rounds))
      .Field("untraced_eps", untraced_eps)
      .Field("traced_eps", traced_eps)
      .Field("overhead_pct", overhead_pct)
      .Field("overhead_us_per_entry", overhead_us)
      .Field("scrapes", scrapes)
      .Field("criteria_passed", std::string(passed ? "true" : "false"));
  row.Print();

  if (!opts.json_out.empty()) {
    std::ofstream f(opts.json_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_out.c_str());
      return 1;
    }
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"obs_overhead\",\n"
                  "  \"batch\": %u,\n"
                  "  \"batches\": %zu,\n"
                  "  \"rounds\": %d,\n"
                  "  \"untraced_eps\": %.1f,\n"
                  "  \"traced_eps\": %.1f,\n"
                  "  \"overhead_pct\": %.3f,\n"
                  "  \"overhead_us_per_entry\": %.3f,\n"
                  "  \"max_overhead_pct\": %.1f,\n"
                  "  \"scrapes\": %llu,\n"
                  "  \"criteria_passed\": %s\n"
                  "}\n",
                  opts.batch, opts.batches, opts.rounds, untraced_eps,
                  traced_eps, overhead_pct, overhead_us,
                  opts.max_overhead_pct,
                  static_cast<unsigned long long>(scrapes),
                  passed ? "true" : "false");
    f << buf;
    std::printf("wrote %s\n", opts.json_out.c_str());
  }
  if (!passed) {
    std::fprintf(stderr,
                 "obs_overhead FAILED: %.2f%% > %.1f%% allowed overhead\n",
                 overhead_pct, opts.max_overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace wedge

int main(int argc, char** argv) {
  // The observed mode serves and scrapes real loopback sockets.
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  if (skip != nullptr && skip[0] == '1') {
    std::printf("obs_overhead SKIPPED (WEDGE_SKIP_SOCKET_TESTS)\n");
    return 0;
  }
  return wedge::bench::Main(argc, argv);
}
