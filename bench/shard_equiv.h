#ifndef WEDGEBLOCK_BENCH_SHARD_EQUIV_H_
#define WEDGEBLOCK_BENCH_SHARD_EQUIV_H_

#include <cstdio>

#include "bench/bench_util.h"
#include "shard/sharded_engine.h"

namespace wedge {
namespace bench {

/// Regression guard for the sharded engine's degenerate configuration:
/// a 1-shard engine with classic stage 2 must be the bare OffchainNode,
/// byte for byte. Feeds the same unsigned workload to both (same engine
/// key, so RFC 6979 signatures are deterministic) and compares every
/// serialized Stage1Response. Aborts on divergence — a silent behaviour
/// fork here would invalidate every single-node figure against the
/// sharded daemon.
inline void AssertDegenerateEngineMatchesBareNode(uint32_t batch_size,
                                                  size_t n_entries,
                                                  uint64_t seed = 42) {
  OffchainNodeConfig node_config;
  node_config.batch_size = batch_size;
  node_config.worker_threads = 2;
  node_config.verify_client_signatures = false;
  node_config.auto_stage2 = false;  // No chain attached below.
  KeyPair key = KeyPair::FromSeed(0xED6E);

  auto kvs = MakeWorkload(n_entries, kDefaultValueSize, kDefaultKeySize, seed);
  auto reqs = MakeUnsignedRequests(KeyPair::FromSeed(seed).address(), kvs);

  Telemetry node_telemetry;
  OffchainNode node(node_config, key, std::make_unique<MemoryLogStore>(),
                    /*chain=*/nullptr, Address{}, &node_telemetry);
  auto bare = node.Append(reqs);

  ShardedEngineConfig engine_config;
  engine_config.num_shards = 1;
  engine_config.node = node_config;
  engine_config.forest_stage2 = false;  // Degenerate: classic stage 2.
  Telemetry engine_telemetry;
  auto engine = ShardedLogEngine::Create(engine_config, key, {},
                                         /*chain=*/nullptr, Address{},
                                         &engine_telemetry);
  if (!engine.ok()) {
    std::fprintf(stderr, "degenerate engine create failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  auto sharded = (*engine)->Append(/*tenant=*/0, reqs);

  if (!bare.ok() || !sharded.ok() || bare->size() != sharded->size()) {
    std::fprintf(stderr, "degenerate-equivalence appends diverged\n");
    std::abort();
  }
  for (size_t i = 0; i < bare->size(); ++i) {
    if ((*bare)[i].Serialize() != (*sharded)[i].Serialize()) {
      std::fprintf(stderr,
                   "degenerate 1-shard engine diverged from the bare node "
                   "at response %zu\n",
                   i);
      std::abort();
    }
  }
  std::printf(
      "degenerate check: 1-shard engine == bare node (%zu responses "
      "byte-identical)\n",
      bare->size());
}

}  // namespace bench
}  // namespace wedge

#endif  // WEDGEBLOCK_BENCH_SHARD_EQUIV_H_
