// shard_scaling — sealed-entry throughput of the sharded engine vs a
// single node, plus the stage-2 economics of epoch aggregation.
//
// Phase 1 (throughput): drives T client threads of pre-built append
// batches into (a) a 1-shard engine and (b) an N-shard engine, both in
// forest mode with no chain attached and no ticking, so the measurement
// is pure stage-1 seal throughput. Shards run independent worker pools,
// so on a multi-core host the N-shard engine should scale.
//
// Phase 1b (sign throughput): per-shard stage-1 signing in isolation —
// scalar EcdsaSign vs one-thread EcdsaSignMany vs pool-fanned chunks —
// so the signer-pool core-scaling claim is visible in BENCH_shard.json
// rather than only end-to-end (informational, never enforced: the ratio
// is core-count dependent).
//
// Phase 2 (stage-2 txs): a full sharded deployment over the simulated
// chain; appends entries while mining, then drains. Counts one forest
// transaction per closed epoch versus the classic per-batch stage-2
// stream, normalised to txs per 100k entries.
//
// Writes a JSON report (--json-out, default BENCH_shard.json in the
// CWD) and exits non-zero when an enforced criterion fails:
//   - forest mode submits exactly one stage-2 tx per epoch (always);
//   - N-shard throughput >= 2x single-shard (only on hosts with >= 4
//     hardware threads — shard parallelism cannot show on fewer cores).
//
// Usage: shard_scaling [--shards N] [--entries N] [--batch N]
//                      [--threads N] [--json-out PATH] [--seed N]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "crypto/ecdsa.h"
#include "shard/sharded_engine.h"

namespace wedge {
namespace {

struct Options {
  uint32_t shards = 4;
  uint64_t entries = 100'000;
  uint32_t batch = 500;
  int threads = 4;
  uint64_t seed = 42;
  std::string json_out = "BENCH_shard.json";
};

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--shards") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.shards = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--entries") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.entries = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--batch") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.batch = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--threads") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.threads = std::atoi(v.c_str());
    } else if (flag == "--seed") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--json-out") {
      WEDGE_ASSIGN_OR_RETURN(opts.json_out, next());
    } else {
      return Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (opts.shards < 1 || opts.entries == 0 || opts.batch == 0 ||
      opts.threads < 1) {
    return Status::InvalidArgument("bad flag value");
  }
  return opts;
}

/// Stage-1 seal throughput of an engine with `num_shards` shards, no
/// chain, no ticking. Tenant t is pinned to thread t % threads so every
/// thread drives a disjoint tenant set (and, with enough tenants, every
/// shard sees traffic).
double MeasureThroughput(const Options& opts, uint32_t num_shards) {
  ShardedEngineConfig config;
  config.num_shards = num_shards;
  config.node.batch_size = opts.batch;
  config.node.worker_threads = 2;
  config.node.verify_client_signatures = false;
  config.forest_stage2 = true;  // Aggregator owns stage 2; never ticked.
  Telemetry telemetry;
  auto engine =
      ShardedLogEngine::Create(config, KeyPair::FromSeed(0xED6E), {},
                               /*chain=*/nullptr, Address{}, &telemetry);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine create failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  ShardedLogEngine& e = **engine;

  // 4 tenants per shard spreads load across the ring without making the
  // router the variable under test.
  uint64_t tenants = static_cast<uint64_t>(num_shards) * 4;
  auto kvs = bench::MakeWorkload(opts.batch, bench::kDefaultValueSize,
                                 bench::kDefaultKeySize, opts.seed);
  std::vector<AppendRequest> batch =
      bench::MakeUnsignedRequests(KeyPair::FromSeed(opts.seed).address(), kvs);

  uint64_t batches_total = (opts.entries + opts.batch - 1) / opts.batch;
  std::vector<std::thread> workers;
  Micros start = RealClock::Global()->NowMicros();
  for (int t = 0; t < opts.threads; ++t) {
    workers.emplace_back([&, t] {
      // Thread t owns batches t, t+T, t+2T, ... and cycles its tenants.
      for (uint64_t b = t; b < batches_total; b += opts.threads) {
        uint64_t tenant = b % tenants;
        auto r = e.Append(tenant, batch);
        if (!r.ok()) {
          std::fprintf(stderr, "append failed: %s\n",
                       r.status().ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  double elapsed_s =
      static_cast<double>(RealClock::Global()->NowMicros() - start) /
      kMicrosPerSecond;
  return static_cast<double>(batches_total * opts.batch) / elapsed_s;
}

struct SignThroughput {
  double single_per_s = 0;  ///< One EcdsaSign per entry, one thread.
  double batch_per_s = 0;   ///< One-thread EcdsaSignMany (batched inversions).
  double pooled_per_s = 0;  ///< Chunked EcdsaSignMany fanned over the pool.
};

/// Phase 1b: per-shard stage-1 sign throughput, isolating the signer
/// pool from the rest of sealing. The single->batch ratio shows the
/// batched-inversion win; batch->pooled shows core scaling (expect ~1x
/// on a 1-core host — the JSON records cores so readers can judge).
SignThroughput MeasureSignThroughput(const Options& opts) {
  constexpr size_t kCount = 4096;
  constexpr size_t kChunk = 128;  // Matches OffchainNode::SignResponsesPooled.
  KeyPair kp = KeyPair::FromSeed(0x5161);
  std::vector<Hash256> hashes(kCount);
  for (size_t i = 0; i < kCount; ++i) {
    hashes[i] = Sha256::Digest("sign-bench-" + std::to_string(i));
  }
  std::vector<EcdsaSignature> sigs(kCount);
  RealClock* clock = RealClock::Global();
  SignThroughput out;

  Micros t0 = clock->NowMicros();
  for (size_t i = 0; i < kCount; ++i) {
    sigs[i] = EcdsaSign(kp.private_key(), hashes[i]);
  }
  out.single_per_s =
      kCount * kMicrosPerSecond /
      static_cast<double>(clock->NowMicros() - t0);

  t0 = clock->NowMicros();
  EcdsaSignMany(kp.private_key(), hashes.data(), kCount, sigs.data());
  out.batch_per_s = kCount * kMicrosPerSecond /
                    static_cast<double>(clock->NowMicros() - t0);

  ThreadPool pool(opts.threads);
  const size_t chunks = (kCount + kChunk - 1) / kChunk;
  t0 = clock->NowMicros();
  pool.ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * kChunk;
    const size_t count = std::min(kChunk, kCount - begin);
    EcdsaSignMany(kp.private_key(), hashes.data() + begin, count,
                  sigs.data() + begin);
  });
  out.pooled_per_s = kCount * kMicrosPerSecond /
                     static_cast<double>(clock->NowMicros() - t0);
  return out;
}

struct Stage2Result {
  uint64_t entries = 0;
  uint64_t epochs = 0;
  uint64_t forest_txs = 0;
  uint64_t forest_retries = 0;
  uint64_t classic_txs = 0;
  double forest_txs_per_100k = 0;
  double classic_txs_per_100k = 0;
};

/// Phase 2: on-chain tx accounting. Forest mode over the simulated
/// chain, plus a classic single-node deployment as the baseline tx
/// stream, both fed the same number of entries.
Result<Stage2Result> MeasureStage2(const Options& opts) {
  Stage2Result out;
  // Keep the chain phase cheap: it measures tx counts, not throughput.
  out.entries = std::min<uint64_t>(opts.entries, 20'000);
  uint64_t batches = out.entries / opts.batch;

  auto kvs = bench::MakeWorkload(opts.batch, bench::kDefaultValueSize,
                                 bench::kDefaultKeySize, opts.seed);
  std::vector<AppendRequest> batch =
      bench::MakeUnsignedRequests(KeyPair::FromSeed(opts.seed).address(), kvs);

  {
    ShardedDeploymentConfig config;
    config.engine.num_shards = opts.shards;
    config.engine.node.batch_size = opts.batch;
    config.engine.node.worker_threads = 2;
    config.engine.node.verify_client_signatures = false;
    config.engine.epoch_ticks = 4;  // One epoch per 4 mined blocks.
    auto deployment = ShardedDeployment::Create(config);
    WEDGE_RETURN_IF_ERROR(deployment.status());
    ShardedDeployment& d = **deployment;
    for (uint64_t b = 0; b < batches; ++b) {
      WEDGE_RETURN_IF_ERROR(
          d.engine().Append(/*tenant=*/b % (opts.shards * 4), batch).status());
      if (b % 8 == 7) d.AdvanceBlocks(1);
    }
    // Drain: close the final epoch over everything still staged, then
    // mine until receipts land.
    (void)d.engine().AggregateNow();
    d.AdvanceBlocks(4);
    EpochRootAggregator* agg = d.engine().aggregator();
    out.epochs = agg->epochs_closed();
    out.forest_txs = agg->ForestTxIds().size();
    MetricsSnapshot snap = d.telemetry().metrics.Snapshot();
    out.forest_retries = snap.CounterValue("wedge.engine.forest_tx_retries");
    out.forest_txs_per_100k =
        static_cast<double>(out.forest_txs) * 100'000 / out.entries;
  }

  {
    auto d = bench::MakeBenchDeployment(opts.batch);
    for (uint64_t b = 0; b < batches; ++b) {
      WEDGE_RETURN_IF_ERROR(d->node().Append(batch).status());
      if (b % 8 == 7) d->AdvanceBlocks(1);
    }
    d->AdvanceBlocks(4);
    MetricsSnapshot snap = d->telemetry().metrics.Snapshot();
    out.classic_txs = snap.CounterValue("wedge.stage2.txs_submitted");
    out.classic_txs_per_100k =
        static_cast<double>(out.classic_txs) * 100'000 / out.entries;
  }
  return out;
}

int Run(const Options& opts) {
  unsigned cores = std::thread::hardware_concurrency();
  bench::PrintHeader("shard_scaling (" + std::to_string(opts.shards) +
                     " shards, " + std::to_string(cores) + " cores)");

  double single = MeasureThroughput(opts, 1);
  double sharded = MeasureThroughput(opts, opts.shards);
  double speedup = single > 0 ? sharded / single : 0;
  std::printf("  1 shard : %.0f entries/s\n", single);
  std::printf("  %u shards: %.0f entries/s (%.2fx)\n", opts.shards, sharded,
              speedup);

  SignThroughput sign = MeasureSignThroughput(opts);
  double sign_batch_speedup =
      sign.single_per_s > 0 ? sign.batch_per_s / sign.single_per_s : 0;
  double sign_pool_speedup =
      sign.batch_per_s > 0 ? sign.pooled_per_s / sign.batch_per_s : 0;
  std::printf("  sign    : %.0f/s single, %.0f/s batched (%.2fx), "
              "%.0f/s pooled x%d (%.2fx)\n",
              sign.single_per_s, sign.batch_per_s, sign_batch_speedup,
              sign.pooled_per_s, opts.threads, sign_pool_speedup);

  auto stage2 = MeasureStage2(opts);
  if (!stage2.ok()) {
    std::fprintf(stderr, "stage-2 phase failed: %s\n",
                 stage2.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "  stage-2: %llu forest txs over %llu epochs (%llu retries) vs "
      "%llu classic txs, for %llu entries\n",
      static_cast<unsigned long long>(stage2->forest_txs),
      static_cast<unsigned long long>(stage2->epochs),
      static_cast<unsigned long long>(stage2->forest_retries),
      static_cast<unsigned long long>(stage2->classic_txs),
      static_cast<unsigned long long>(stage2->entries));

  // Enforced criteria.
  std::vector<std::string> failures;
  // The fault-free simulated chain never drops a forest tx, so exactly
  // one submission per closed epoch is the invariant (retries would
  // mean the aggregator resubmitted unnecessarily).
  if (stage2->forest_txs != stage2->epochs) {
    failures.push_back("expected exactly one stage-2 tx per epoch, got " +
                       std::to_string(stage2->forest_txs) + " txs for " +
                       std::to_string(stage2->epochs) + " epochs");
  }
  bool enforce_speedup = cores >= 4;
  if (enforce_speedup && speedup < 2.0) {
    failures.push_back("sharded speedup " + std::to_string(speedup) +
                       "x < 2.0x on a " + std::to_string(cores) +
                       "-core host");
  }

  bench::JsonRow row = bench::MakeRow("shard_scaling", opts.seed, opts.batch);
  row.Field("shards", static_cast<uint64_t>(opts.shards))
      .Field("cores", static_cast<uint64_t>(cores))
      .Field("entries", opts.entries)
      .Field("threads", static_cast<uint64_t>(opts.threads))
      .Field("single_entries_per_s", single)
      .Field("sharded_entries_per_s", sharded)
      .Field("speedup", speedup)
      .Field("sign_single_per_s", sign.single_per_s)
      .Field("sign_batch_per_s", sign.batch_per_s)
      .Field("sign_pooled_per_s", sign.pooled_per_s)
      .Field("speedup_enforced", std::string(enforce_speedup ? "yes" : "no"))
      .Field("stage2_entries", stage2->entries)
      .Field("epochs", stage2->epochs)
      .Field("forest_txs", stage2->forest_txs)
      .Field("forest_tx_retries", stage2->forest_retries)
      .Field("forest_txs_per_100k", stage2->forest_txs_per_100k)
      .Field("classic_txs", stage2->classic_txs)
      .Field("classic_txs_per_100k", stage2->classic_txs_per_100k)
      .Field("criteria_passed",
             std::string(failures.empty() ? "true" : "false"));
  row.Print();

  if (!opts.json_out.empty()) {
    std::ofstream f(opts.json_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_out.c_str());
      return 1;
    }
    f << "{\n"
      << "  \"bench\": \"shard_scaling\",\n"
      << "  \"shards\": " << opts.shards << ",\n"
      << "  \"cores\": " << cores << ",\n"
      << "  \"entries\": " << opts.entries << ",\n"
      << "  \"single_entries_per_s\": " << static_cast<uint64_t>(single)
      << ",\n"
      << "  \"sharded_entries_per_s\": " << static_cast<uint64_t>(sharded)
      << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"speedup_enforced\": " << (enforce_speedup ? "true" : "false")
      << ",\n"
      << "  \"sign_single_per_s\": " << static_cast<uint64_t>(sign.single_per_s)
      << ",\n"
      << "  \"sign_batch_per_s\": " << static_cast<uint64_t>(sign.batch_per_s)
      << ",\n"
      << "  \"sign_pooled_per_s\": " << static_cast<uint64_t>(sign.pooled_per_s)
      << ",\n"
      << "  \"sign_batch_speedup\": " << sign_batch_speedup << ",\n"
      << "  \"sign_pool_speedup\": " << sign_pool_speedup << ",\n"
      << "  \"stage2_entries\": " << stage2->entries << ",\n"
      << "  \"epochs\": " << stage2->epochs << ",\n"
      << "  \"forest_txs\": " << stage2->forest_txs << ",\n"
      << "  \"forest_tx_retries\": " << stage2->forest_retries << ",\n"
      << "  \"forest_txs_per_100k\": " << stage2->forest_txs_per_100k << ",\n"
      << "  \"classic_txs\": " << stage2->classic_txs << ",\n"
      << "  \"classic_txs_per_100k\": " << stage2->classic_txs_per_100k
      << ",\n"
      << "  \"criteria_passed\": " << (failures.empty() ? "true" : "false")
      << "\n}\n";
    std::printf("wrote %s\n", opts.json_out.c_str());
  }

  for (const std::string& f : failures) {
    std::fprintf(stderr, "CRITERION FAILED: %s\n", f.c_str());
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) {
  auto opts = wedge::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  return wedge::Run(*opts);
}
