// storage_sweep — durability-cost and recovery-time sweep of the
// segmented storage engine (storage/segstore/) against the flat
// FileLogStore.
//
// Part 1 (throughput): N appender threads drive one store through the
// engine's real write protocol — AppendPrepare under a ticket mutex
// (mirroring OffchainNode's seal ticket), WaitDurable outside it — for
// each durability arm:
//   seg_group_commit   segment store, one fdatasync per batch window
//   seg_sync_each      segment store, fflush+fsync inline per append
//   seg_nosync         segment store, group fflush only
//   file_fsync         FileLogStore, fsync_on_append (per-record sync)
//   file_nosync        FileLogStore default (flush, no sync)
// The headline criterion: group-commit durable throughput >= 10x the
// per-append-fsync baseline (the syncs coalesce; both arms are
// power-loss durable before ack).
//
// Part 2 (recovery): writes a fixed number of entries at several
// segment sizes and measures reopen time. Segment recovery is one
// trailer pread per segment + a bounded WAL replay — flat in
// entries-per-segment — while the file backend replays every record.
// Criterion: 1M-entry segment recovery < 2s.
//
// Usage:
//   storage_sweep [--quick] [--threads N] [--depth N] [--per-arm-mb N]
//                 [--value-bytes N] [--entries-per-position N]
//                 [--recovery-entries N] [--dir PATH] [--json-out PATH]
//
// The default run writes ~1 GB per throughput arm (a sustained multi-GB
// disk workload overall); --quick shrinks everything for CI smoke use.
// Writes BENCH_storage.json (--json-out) and prints one JSONL row per
// arm as it completes.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "storage/log_store.h"
#include "storage/segstore/segment_store.h"
#include "telemetry/metrics.h"

namespace wedge {
namespace {

struct Options {
  bool quick = false;
  int threads = 32;
  size_t depth = 8;
  uint64_t per_arm_mb = 1024;
  // Small positions by default: a durable append's cost is then the
  // disk's fixed sync latency, not data bandwidth, which is the regime
  // group commit amortizes (N acks per sync). Bigger positions (e.g.
  // --entries-per-position 8 --value-bytes 1024) shift every durable
  // arm toward the disk's synced-write bandwidth, where the arms
  // converge and the ratio compresses toward 1.
  size_t value_bytes = 64;
  uint32_t entries_per_position = 1;
  uint64_t recovery_entries = 1'000'000;
  std::string dir;
  std::string json_out = "BENCH_storage.json";
  uint64_t seed = 42;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--threads N] [--depth N] "
               "[--per-arm-mb N]\n"
               "          [--value-bytes N] [--entries-per-position N]\n"
               "          [--recovery-entries N] [--dir PATH] "
               "[--json-out PATH]\n",
               argv0);
  return 2;
}

Result<Options> Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument(flag + " needs a value");
      }
      return std::string(argv[++i]);
    };
    if (flag == "--quick") {
      opts.quick = true;
    } else if (flag == "--threads") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.threads = std::atoi(v.c_str());
    } else if (flag == "--depth") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.depth = std::strtoul(v.c_str(), nullptr, 10);
    } else if (flag == "--per-arm-mb") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.per_arm_mb = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--value-bytes") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.value_bytes = std::strtoul(v.c_str(), nullptr, 10);
    } else if (flag == "--entries-per-position") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.entries_per_position =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag == "--recovery-entries") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.recovery_entries = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag == "--dir") {
      WEDGE_ASSIGN_OR_RETURN(opts.dir, next());
    } else if (flag == "--json-out") {
      WEDGE_ASSIGN_OR_RETURN(opts.json_out, next());
    } else if (flag == "--seed") {
      WEDGE_ASSIGN_OR_RETURN(std::string v, next());
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      return Usage(argv[0]), Status::InvalidArgument("unknown flag " + flag);
    }
  }
  if (opts.quick) {
    // CI smoke: small enough for seconds, still crossing seal
    // boundaries and coalescing real syncs. Thread count stays at the
    // default — the group-commit speedup scales with the number of
    // concurrent appenders a sync window can cover.
    opts.per_arm_mb = 4;
    opts.recovery_entries = 20'000;
  }
  if (opts.threads < 1 || opts.depth == 0 || opts.per_arm_mb == 0 ||
      opts.entries_per_position == 0 || opts.recovery_entries == 0) {
    return Status::InvalidArgument("bad flag value");
  }
  return opts;
}

/// Pre-built position templates: payload bytes are shared (refcounted),
/// so per-append cost is one struct copy + the store's own serialize.
std::vector<LogPosition> MakeTemplates(const Options& opts, size_t n) {
  Rng rng(opts.seed);
  std::vector<LogPosition> templates;
  templates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LogPosition pos;
    for (uint32_t e = 0; e < opts.entries_per_position; ++e) {
      pos.data_list.push_back(
          rng.NextBytes(bench::kDefaultKeySize + opts.value_bytes));
    }
    pos.mroot = MerkleTree::Build(pos.data_list)->Root();
    templates.push_back(std::move(pos));
  }
  return templates;
}

uint64_t PositionBytes(const Options& opts) {
  // Approximate on-disk bytes per position (payload dominates).
  return static_cast<uint64_t>(opts.entries_per_position) *
         (bench::kDefaultKeySize + opts.value_bytes);
}

struct ArmResult {
  std::string name;
  uint64_t positions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  double positions_per_s = 0;
  double entries_per_s = 0;
  double mb_per_s = 0;
  uint64_t syncs = 0;        ///< Group-commit windows (segment arms).
  double mean_batch = 0;     ///< Appends amortized per sync.
};

/// Runs one throughput arm: `threads` workers, ticketed prepare +
/// unticketed durability wait, `positions` appends total. Each worker
/// keeps up to `opts.depth` prepares in flight before waiting on the
/// newest token (tokens are orderable, so that wait covers the whole
/// window) — modeling an engine with more concurrent sealers than this
/// machine has spare OS threads. The per-append-fsync arms are
/// unaffected: their prepare pays the sync inline, which is the whole
/// point of the comparison.
ArmResult RunArm(const std::string& name, LogStore* store,
                 MetricsRegistry* metrics, const Options& opts,
                 uint64_t positions,
                 const std::vector<LogPosition>& templates) {
  ArmResult result;
  result.name = name;
  std::mutex ticket_mu;
  uint64_t next_id = 0;
  std::atomic<uint64_t> failures{0};

  Stopwatch watch(RealClock::Global());
  std::vector<std::thread> workers;
  workers.reserve(opts.threads);
  for (int t = 0; t < opts.threads; ++t) {
    workers.emplace_back([&] {
      uint64_t window_last = 0;
      size_t window = 0;
      for (;;) {
        bool done = false;
        {
          std::lock_guard<std::mutex> lock(ticket_mu);
          if (next_id >= positions) {
            done = true;
          } else {
            LogPosition pos = templates[next_id % templates.size()];
            pos.log_id = next_id;
            auto prepared = store->AppendPrepare(pos);
            if (!prepared.ok()) {
              failures.fetch_add(1);
              return;
            }
            ++next_id;
            window_last = *prepared;
            ++window;
          }
        }
        if (window > 0 && (done || window >= opts.depth)) {
          if (!store->WaitDurable(window_last).ok()) {
            failures.fetch_add(1);
            return;
          }
          window = 0;
        }
        if (done) return;
      }
    });
  }
  for (auto& w : workers) w.join();
  result.seconds =
      static_cast<double>(watch.ElapsedMicros()) / kMicrosPerSecond;
  if (failures.load() > 0) {
    std::fprintf(stderr, "arm %s: %llu failures\n", name.c_str(),
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  result.positions = positions;
  result.entries = positions * opts.entries_per_position;
  result.bytes = positions * PositionBytes(opts);
  result.positions_per_s = positions / result.seconds;
  result.entries_per_s = result.entries / result.seconds;
  result.mb_per_s =
      static_cast<double>(result.bytes) / (1 << 20) / result.seconds;
  if (metrics != nullptr) {
    MetricsSnapshot snap = metrics->Snapshot();
    const HistogramSnapshot* batch =
        snap.FindHistogram("wedge.store.group_commit_batch");
    if (batch != nullptr && batch->count > 0) {
      result.syncs = batch->count;
      result.mean_batch =
          static_cast<double>(positions) / static_cast<double>(batch->count);
    }
  }
  return result;
}

void PrintArm(const Options& opts, const ArmResult& r) {
  bench::JsonRow row = bench::MakeRow("storage_sweep", opts.seed,
                                      opts.entries_per_position);
  row.Field("arm", r.name)
      .Field("threads", static_cast<uint64_t>(opts.threads))
      .Field("depth", static_cast<uint64_t>(opts.depth))
      .Field("positions", r.positions)
      .Field("entries", r.entries)
      .Field("bytes", r.bytes)
      .Field("seconds", r.seconds)
      .Field("positions_per_s", r.positions_per_s)
      .Field("entries_per_s", r.entries_per_s)
      .Field("mb_per_s", r.mb_per_s);
  if (r.syncs > 0) {
    row.Field("syncs", r.syncs).Field("mean_commit_batch", r.mean_batch);
  }
  row.Print();
  std::fflush(stdout);
}

struct RecoveryResult {
  std::string name;
  uint64_t entries = 0;
  uint64_t positions = 0;
  uint32_t segment_positions = 0;  ///< 0 for the file backend.
  uint64_t segments = 0;
  double write_seconds = 0;
  double recover_seconds = 0;
};

/// Writes `positions` small positions with the given backend/segment
/// size, closes the store, and times a cold reopen.
RecoveryResult RunRecovery(const Options& opts, const std::string& dir,
                           uint32_t segment_positions, uint64_t positions,
                           uint32_t entries_per_position) {
  RecoveryResult result;
  result.positions = positions;
  result.entries = positions * entries_per_position;
  result.segment_positions = segment_positions;
  std::filesystem::remove_all(dir);

  Rng rng(opts.seed);
  LogPosition tmpl;
  for (uint32_t e = 0; e < entries_per_position; ++e) {
    tmpl.data_list.push_back(rng.NextBytes(32));
  }
  tmpl.mroot = MerkleTree::Build(tmpl.data_list)->Root();

  Stopwatch write_watch(RealClock::Global());
  if (segment_positions > 0) {
    result.name = "segment_" + std::to_string(segment_positions);
    SegmentLogStore::Options store_options;
    store_options.durability = SegmentLogStore::Durability::kNone;
    store_options.segment_positions = segment_positions;
    auto store = SegmentLogStore::Open(dir, store_options);
    if (!store.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   store.status().ToString().c_str());
      std::exit(1);
    }
    for (uint64_t i = 0; i < positions; ++i) {
      LogPosition pos = tmpl;
      pos.log_id = i;
      if (!(*store)->Append(pos).ok()) std::exit(1);
    }
    result.write_seconds =
        static_cast<double>(write_watch.ElapsedMicros()) / kMicrosPerSecond;
    store->reset();

    Stopwatch recover_watch(RealClock::Global());
    auto reopened = SegmentLogStore::Open(dir, store_options);
    result.recover_seconds =
        static_cast<double>(recover_watch.ElapsedMicros()) / kMicrosPerSecond;
    if (!reopened.ok() || (*reopened)->Size() != positions) {
      std::fprintf(stderr, "recovery mismatch for %s\n", result.name.c_str());
      std::exit(1);
    }
    result.segments = (*reopened)->SegmentCount();
  } else {
    result.name = "file";
    auto store = FileLogStore::Open(dir);
    if (!store.ok()) std::exit(1);
    for (uint64_t i = 0; i < positions; ++i) {
      LogPosition pos = tmpl;
      pos.log_id = i;
      if (!(*store)->Append(pos).ok()) std::exit(1);
    }
    if (!(*store)->Sync().ok()) std::exit(1);
    result.write_seconds =
        static_cast<double>(write_watch.ElapsedMicros()) / kMicrosPerSecond;
    store->reset();

    Stopwatch recover_watch(RealClock::Global());
    auto reopened = FileLogStore::Open(dir);
    result.recover_seconds =
        static_cast<double>(recover_watch.ElapsedMicros()) / kMicrosPerSecond;
    if (!reopened.ok() || (*reopened)->Size() != positions) {
      std::fprintf(stderr, "recovery mismatch for file backend\n");
      std::exit(1);
    }
  }
  std::filesystem::remove_all(dir);

  bench::JsonRow row = bench::MakeRow("storage_sweep_recovery", opts.seed,
                                      entries_per_position);
  row.Field("arm", result.name)
      .Field("positions", result.positions)
      .Field("entries", result.entries)
      .Field("segments", result.segments)
      .Field("write_seconds", result.write_seconds)
      .Field("recover_seconds", result.recover_seconds);
  row.Print();
  std::fflush(stdout);
  return result;
}

int Run(const Options& opts) {
  std::string root = opts.dir;
  if (root.empty()) {
    // Scratch must live on a real filesystem — sync costs are the whole
    // point — so default beside the output, not in some tmpfs.
    root = "wedge-storage-sweep-scratch";
  }
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);

  const uint64_t positions_per_arm =
      std::max<uint64_t>(opts.per_arm_mb * (1ull << 20) / PositionBytes(opts),
                         opts.threads * 4);
  // The per-append-fsync baseline pays one disk sync per position; cap
  // its arm so the sweep finishes, and scale its measured throughput
  // from the smaller sample (steady-state per-append cost is flat).
  const uint64_t sync_each_cap =
      opts.quick ? positions_per_arm
                 : std::min<uint64_t>(positions_per_arm, 20'000);

  bench::PrintHeader(
      "storage_sweep (" + std::to_string(opts.threads) + " threads, " +
      std::to_string(positions_per_arm) + " positions/arm, ~" +
      std::to_string(positions_per_arm * PositionBytes(opts) >> 20) +
      " MB/arm)");
  std::vector<LogPosition> templates = MakeTemplates(opts, 64);

  std::vector<ArmResult> arms;
  auto run_segment_arm = [&](const std::string& name,
                             SegmentLogStore::Durability durability,
                             uint64_t positions) {
    std::string dir = root + "/" + name;
    MetricsRegistry metrics;
    SegmentLogStore::Options store_options;
    store_options.durability = durability;
    store_options.metrics = &metrics;
    auto store = SegmentLogStore::Open(dir, store_options);
    if (!store.ok()) {
      std::fprintf(stderr, "open %s failed: %s\n", name.c_str(),
                   store.status().ToString().c_str());
      std::exit(1);
    }
    arms.push_back(
        RunArm(name, store->get(), &metrics, opts, positions, templates));
    PrintArm(opts, arms.back());
    store->reset();
    std::filesystem::remove_all(dir);
  };
  auto run_file_arm = [&](const std::string& name, bool fsync,
                          uint64_t positions) {
    std::string path = root + "/" + name + ".log";
    FileLogStore::Options store_options;
    store_options.fsync_on_append = fsync;
    auto store = FileLogStore::Open(path, store_options);
    if (!store.ok()) std::exit(1);
    arms.push_back(
        RunArm(name, store->get(), nullptr, opts, positions, templates));
    PrintArm(opts, arms.back());
    store->reset();
    std::filesystem::remove_all(path);
  };

  run_segment_arm("seg_group_commit", SegmentLogStore::Durability::kGroupCommit,
                  positions_per_arm);
  run_segment_arm("seg_sync_each", SegmentLogStore::Durability::kSyncEachAppend,
                  sync_each_cap);
  run_segment_arm("seg_nosync", SegmentLogStore::Durability::kNone,
                  positions_per_arm);
  run_file_arm("file_fsync", /*fsync=*/true, sync_each_cap);
  run_file_arm("file_nosync", /*fsync=*/false, positions_per_arm);

  const ArmResult& group = arms[0];
  const ArmResult& sync_each = arms[1];
  double speedup = group.positions_per_s / sync_each.positions_per_s;

  // Recovery sweep: fixed entry count, varying entries-per-segment —
  // segment recovery stays flat while the file backend replays all of
  // it. Small 2-entry positions keep the write phase quick.
  const uint32_t kRecoveryEntriesPerPosition = 2;
  const uint64_t recovery_positions =
      opts.recovery_entries / kRecoveryEntriesPerPosition;
  std::vector<RecoveryResult> recoveries;
  for (uint32_t segment_positions : {1024u, 4096u, 16384u}) {
    recoveries.push_back(RunRecovery(opts, root + "/recovery", segment_positions,
                                     recovery_positions,
                                     kRecoveryEntriesPerPosition));
  }
  recoveries.push_back(RunRecovery(opts, root + "/recovery-file", 0,
                                   recovery_positions,
                                   kRecoveryEntriesPerPosition));

  double worst_segment_recovery = 0;
  for (const RecoveryResult& r : recoveries) {
    if (r.segment_positions > 0 &&
        r.recover_seconds > worst_segment_recovery) {
      worst_segment_recovery = r.recover_seconds;
    }
  }

  std::vector<std::string> failures;
  if (speedup < 10.0) {
    failures.push_back("group-commit speedup " + std::to_string(speedup) +
                       "x < 10x over per-append fsync");
  }
  // The acceptance gate pins 1M entries; scale the bound when --quick
  // (or a flag) shrinks the sweep, keeping the criterion meaningful.
  double recovery_bound =
      2.0 * (static_cast<double>(opts.recovery_entries) / 1'000'000.0);
  if (recovery_bound < 0.25) recovery_bound = 0.25;  // Timer noise floor.
  if (worst_segment_recovery > recovery_bound) {
    failures.push_back("segment recovery " +
                       std::to_string(worst_segment_recovery) + "s > " +
                       std::to_string(recovery_bound) + "s for " +
                       std::to_string(opts.recovery_entries) + " entries");
  }

  std::filesystem::remove_all(root);

  if (!opts.json_out.empty()) {
    std::ofstream f(opts.json_out, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_out.c_str());
      return 1;
    }
    f << "{\n"
      << "  \"bench\": \"storage_sweep\",\n"
      << "  \"quick\": " << (opts.quick ? "true" : "false") << ",\n"
      << "  \"threads\": " << opts.threads << ",\n"
      << "  \"depth\": " << opts.depth << ",\n"
      << "  \"value_bytes\": " << opts.value_bytes << ",\n"
      << "  \"entries_per_position\": " << opts.entries_per_position << ",\n"
      << "  \"arms\": [\n";
    for (size_t i = 0; i < arms.size(); ++i) {
      const ArmResult& r = arms[i];
      f << "    {\"arm\": \"" << r.name << "\", \"positions\": " << r.positions
        << ", \"entries\": " << r.entries << ", \"bytes\": " << r.bytes
        << ", \"seconds\": " << r.seconds
        << ", \"positions_per_s\": " << static_cast<uint64_t>(r.positions_per_s)
        << ", \"entries_per_s\": " << static_cast<uint64_t>(r.entries_per_s)
        << ", \"mb_per_s\": " << r.mb_per_s << ", \"syncs\": " << r.syncs
        << ", \"mean_commit_batch\": " << r.mean_batch << "}"
        << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    f << "  ],\n"
      << "  \"group_commit_speedup_vs_sync_each\": " << speedup << ",\n"
      << "  \"recovery\": [\n";
    for (size_t i = 0; i < recoveries.size(); ++i) {
      const RecoveryResult& r = recoveries[i];
      f << "    {\"arm\": \"" << r.name << "\", \"entries\": " << r.entries
        << ", \"positions\": " << r.positions
        << ", \"segments\": " << r.segments
        << ", \"write_seconds\": " << r.write_seconds
        << ", \"recover_seconds\": " << r.recover_seconds << "}"
        << (i + 1 < recoveries.size() ? "," : "") << "\n";
    }
    f << "  ],\n"
      << "  \"recovery_entries\": " << opts.recovery_entries << ",\n"
      << "  \"worst_segment_recovery_seconds\": " << worst_segment_recovery
      << ",\n"
      << "  \"criteria_passed\": " << (failures.empty() ? "true" : "false")
      << "\n}\n";
    std::printf("wrote %s\n", opts.json_out.c_str());
  }

  for (const std::string& f : failures) {
    std::fprintf(stderr, "CRITERION FAILED: %s\n", f.c_str());
  }
  return failures.empty() ? 0 : 1;
}

}  // namespace
}  // namespace wedge

int main(int argc, char** argv) {
  auto opts = wedge::Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "%s\n", opts.status().ToString().c_str());
    return 2;
  }
  return wedge::Run(*opts);
}
