// Reproduces Table 1: commitment throughput (MB/s) and monetary cost per
// operation (ETH) of WedgeBlock vs the three prior-approach baselines —
// OCL (raw logs on-chain), SOCL (digests on-chain, synchronous wait) and
// RHL (rollup-inspired: data as calldata + challenge window) — at value
// sizes 1024 and 2048 bytes (paper §6.3, "Comparison With Prior
// Approaches").
//
// Paper shape to reproduce:
//   * WB throughput ~1470x OCL, ~5x SOCL, ~= RHL,
//   * WB cost ~= SOCL, hundreds of times cheaper than OCL and RHL,
//   * OCL/SOCL throughput is chain-bound, WB/RHL stage-1 is compute-bound.
// Baseline throughput is measured in simulated chain time; WedgeBlock's
// stage-1 throughput is real compute on this machine (see EXPERIMENTS.md).

#include "bench/bench_util.h"

namespace wedge {
namespace bench {
namespace {

struct Row {
  double mbps = 0;
  double eth_per_op = 0;
};

Row RunWedgeBlock(size_t value_size, uint32_t batch) {
  auto d = MakeBenchDeployment(batch);
  auto kvs = MakeWorkload(batch, value_size);
  auto reqs = MakeUnsignedRequests(d->publisher().address(), kvs);
  Wei fees_before = d->chain().TotalFeesPaid(d->node().address());
  Stopwatch sw(RealClock::Global());
  auto responses = d->node().Append(reqs);
  double secs = sw.ElapsedSeconds();
  if (!responses.ok()) std::abort();
  Row row;
  double bytes = static_cast<double>(batch) * (value_size + kDefaultKeySize);
  row.mbps = bytes / (1024.0 * 1024.0) / secs;
  row.eth_per_op = Stage2EthPerOp(*d, fees_before, batch);
  return row;
}

Row FromStats(const BaselineRunStats& stats) {
  Row row;
  row.mbps = stats.ThroughputMBps();
  row.eth_per_op = stats.EthPerOp();
  return row;
}

}  // namespace

void Main() {
  PrintHeader("Table 1: WedgeBlock vs OCL / SOCL / RHL");
  std::printf("%-8s %-8s %14s %16s\n", "value", "system", "tput(MB/s)",
              "ETH/op");

  constexpr uint32_t kBatch = 2000;
  for (size_t value_size : {size_t{1024}, size_t{2048}}) {
    SimClock clock(0);
    ChainConfig chain_config;
    Blockchain chain(chain_config, &clock);
    KeyPair actor = KeyPair::FromSeed(99);
    chain.Fund(actor.address(), EthToWei(100'000'000));

    // OCL: scaled-down op count (each op is a full on-chain write and
    // costs a block slot); per-op cost and throughput are flat in N.
    auto ocl = OclClient::Create(&chain, actor, /*max_pending=*/32);
    auto ocl_stats = (*ocl)->CommitAll(MakeWorkload(64, value_size));
    if (!ocl_stats.ok()) std::abort();
    Row ocl_row = FromStats(ocl_stats.value());

    auto socl = SoclClient::Create(&chain, actor, kBatch);
    auto socl_stats = (*socl)->CommitAll(MakeWorkload(20 * kBatch, value_size));
    if (!socl_stats.ok()) std::abort();
    Row socl_row = FromStats(socl_stats.value());

    auto rhl = RhlClient::Create(&chain, actor, kBatch);
    auto rhl_stats = (*rhl)->CommitAll(MakeWorkload(2 * kBatch, value_size));
    if (!rhl_stats.ok()) std::abort();
    Row rhl_row = FromStats(rhl_stats.value());
    // RHL stage-1 commitment is the sequencer ack — compute-bound like
    // WedgeBlock's stage 1; use WedgeBlock's measured pipeline rate as
    // the sequencer's (both just batch + respond).
    Row wb_row = RunWedgeBlock(value_size, kBatch);
    rhl_row.mbps = wb_row.mbps;

    std::printf("%-8zu %-8s %14.2e %16.3e\n", value_size, "OCL", ocl_row.mbps,
                ocl_row.eth_per_op);
    std::printf("%-8zu %-8s %14.2f %16.3e\n", value_size, "SOCL",
                socl_row.mbps, socl_row.eth_per_op);
    std::printf("%-8zu %-8s %14.2f %16.3e\n", value_size, "RHL", rhl_row.mbps,
                rhl_row.eth_per_op);
    std::printf("%-8zu %-8s %14.2f %16.3e\n", value_size, "WB", wb_row.mbps,
                wb_row.eth_per_op);

    std::printf(
        "  ratios @%zuB: WB/OCL tput = %.0fx (paper: up to 1470x), "
        "WB/SOCL tput = %.1fx (paper: ~5x), OCL/WB cost = %.0fx (paper: up "
        "to 310x), RHL/WB cost = %.0fx (paper: ~310x), WB cost ~= SOCL "
        "cost (%.2fx)\n",
        value_size, wb_row.mbps / ocl_row.mbps, wb_row.mbps / socl_row.mbps,
        ocl_row.eth_per_op / wb_row.eth_per_op,
        rhl_row.eth_per_op / wb_row.eth_per_op,
        socl_row.eth_per_op / wb_row.eth_per_op);
  }
}

}  // namespace bench
}  // namespace wedge

int main() { wedge::bench::Main(); }
