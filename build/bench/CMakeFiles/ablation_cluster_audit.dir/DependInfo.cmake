
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_cluster_audit.cc" "bench/CMakeFiles/ablation_cluster_audit.dir/ablation_cluster_audit.cc.o" "gcc" "bench/CMakeFiles/ablation_cluster_audit.dir/ablation_cluster_audit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/wedge_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wedge_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wedge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/wedge_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/wedge_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wedge_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/wedge_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wedge_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wedge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
