file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_audit.dir/ablation_cluster_audit.cc.o"
  "CMakeFiles/ablation_cluster_audit.dir/ablation_cluster_audit.cc.o.d"
  "ablation_cluster_audit"
  "ablation_cluster_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
