# Empty compiler generated dependencies file for ablation_cluster_audit.
# This may be replaced when dependencies are built.
