file(REMOVE_RECURSE
  "CMakeFiles/ablation_economics.dir/ablation_economics.cc.o"
  "CMakeFiles/ablation_economics.dir/ablation_economics.cc.o.d"
  "ablation_economics"
  "ablation_economics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
