# Empty dependencies file for ablation_economics.
# This may be replaced when dependencies are built.
