file(REMOVE_RECURSE
  "CMakeFiles/ablation_lmt.dir/ablation_lmt.cc.o"
  "CMakeFiles/ablation_lmt.dir/ablation_lmt.cc.o.d"
  "ablation_lmt"
  "ablation_lmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
