# Empty compiler generated dependencies file for ablation_lmt.
# This may be replaced when dependencies are built.
