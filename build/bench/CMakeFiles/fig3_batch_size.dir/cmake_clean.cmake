file(REMOVE_RECURSE
  "CMakeFiles/fig3_batch_size.dir/fig3_batch_size.cc.o"
  "CMakeFiles/fig3_batch_size.dir/fig3_batch_size.cc.o.d"
  "fig3_batch_size"
  "fig3_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
