# Empty dependencies file for fig3_batch_size.
# This may be replaced when dependencies are built.
