# Empty dependencies file for fig4_publisher_latency.
# This may be replaced when dependencies are built.
