file(REMOVE_RECURSE
  "CMakeFiles/fig6_value_latency.dir/fig6_value_latency.cc.o"
  "CMakeFiles/fig6_value_latency.dir/fig6_value_latency.cc.o.d"
  "fig6_value_latency"
  "fig6_value_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_value_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
