file(REMOVE_RECURSE
  "CMakeFiles/fig7_request_frequency.dir/fig7_request_frequency.cc.o"
  "CMakeFiles/fig7_request_frequency.dir/fig7_request_frequency.cc.o.d"
  "fig7_request_frequency"
  "fig7_request_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_request_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
