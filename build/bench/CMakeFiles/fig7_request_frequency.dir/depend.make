# Empty dependencies file for fig7_request_frequency.
# This may be replaced when dependencies are built.
