file(REMOVE_RECURSE
  "CMakeFiles/fig8_random_reads.dir/fig8_random_reads.cc.o"
  "CMakeFiles/fig8_random_reads.dir/fig8_random_reads.cc.o.d"
  "fig8_random_reads"
  "fig8_random_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_random_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
