# Empty compiler generated dependencies file for fig8_random_reads.
# This may be replaced when dependencies are built.
