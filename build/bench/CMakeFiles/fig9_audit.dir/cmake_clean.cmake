file(REMOVE_RECURSE
  "CMakeFiles/fig9_audit.dir/fig9_audit.cc.o"
  "CMakeFiles/fig9_audit.dir/fig9_audit.cc.o.d"
  "fig9_audit"
  "fig9_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
