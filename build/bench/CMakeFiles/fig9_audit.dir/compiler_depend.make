# Empty compiler generated dependencies file for fig9_audit.
# This may be replaced when dependencies are built.
