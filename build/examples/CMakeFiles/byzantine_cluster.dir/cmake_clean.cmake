file(REMOVE_RECURSE
  "CMakeFiles/byzantine_cluster.dir/byzantine_cluster.cpp.o"
  "CMakeFiles/byzantine_cluster.dir/byzantine_cluster.cpp.o.d"
  "byzantine_cluster"
  "byzantine_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
