# Empty dependencies file for byzantine_cluster.
# This may be replaced when dependencies are built.
