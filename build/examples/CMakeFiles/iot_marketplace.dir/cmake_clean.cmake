file(REMOVE_RECURSE
  "CMakeFiles/iot_marketplace.dir/iot_marketplace.cpp.o"
  "CMakeFiles/iot_marketplace.dir/iot_marketplace.cpp.o.d"
  "iot_marketplace"
  "iot_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
