# Empty compiler generated dependencies file for iot_marketplace.
# This may be replaced when dependencies are built.
