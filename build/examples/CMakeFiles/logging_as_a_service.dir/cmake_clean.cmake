file(REMOVE_RECURSE
  "CMakeFiles/logging_as_a_service.dir/logging_as_a_service.cpp.o"
  "CMakeFiles/logging_as_a_service.dir/logging_as_a_service.cpp.o.d"
  "logging_as_a_service"
  "logging_as_a_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_as_a_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
