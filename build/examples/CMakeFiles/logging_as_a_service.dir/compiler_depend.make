# Empty compiler generated dependencies file for logging_as_a_service.
# This may be replaced when dependencies are built.
