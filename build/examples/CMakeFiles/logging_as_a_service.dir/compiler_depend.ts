# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for logging_as_a_service.
