file(REMOVE_RECURSE
  "CMakeFiles/nft_game.dir/nft_game.cpp.o"
  "CMakeFiles/nft_game.dir/nft_game.cpp.o.d"
  "nft_game"
  "nft_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nft_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
