# Empty dependencies file for nft_game.
# This may be replaced when dependencies are built.
