file(REMOVE_RECURSE
  "CMakeFiles/punishment_demo.dir/punishment_demo.cpp.o"
  "CMakeFiles/punishment_demo.dir/punishment_demo.cpp.o.d"
  "punishment_demo"
  "punishment_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/punishment_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
