# Empty compiler generated dependencies file for punishment_demo.
# This may be replaced when dependencies are built.
