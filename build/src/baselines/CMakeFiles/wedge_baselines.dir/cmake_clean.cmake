file(REMOVE_RECURSE
  "CMakeFiles/wedge_baselines.dir/baselines.cc.o"
  "CMakeFiles/wedge_baselines.dir/baselines.cc.o.d"
  "libwedge_baselines.a"
  "libwedge_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
