file(REMOVE_RECURSE
  "libwedge_baselines.a"
)
