# Empty compiler generated dependencies file for wedge_baselines.
# This may be replaced when dependencies are built.
