file(REMOVE_RECURSE
  "CMakeFiles/wedge_chain.dir/blockchain.cc.o"
  "CMakeFiles/wedge_chain.dir/blockchain.cc.o.d"
  "CMakeFiles/wedge_chain.dir/contract.cc.o"
  "CMakeFiles/wedge_chain.dir/contract.cc.o.d"
  "CMakeFiles/wedge_chain.dir/gas.cc.o"
  "CMakeFiles/wedge_chain.dir/gas.cc.o.d"
  "libwedge_chain.a"
  "libwedge_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
