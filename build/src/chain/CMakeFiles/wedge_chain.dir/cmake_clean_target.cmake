file(REMOVE_RECURSE
  "libwedge_chain.a"
)
