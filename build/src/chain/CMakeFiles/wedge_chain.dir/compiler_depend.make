# Empty compiler generated dependencies file for wedge_chain.
# This may be replaced when dependencies are built.
