file(REMOVE_RECURSE
  "CMakeFiles/wedge_cluster.dir/bft_cluster.cc.o"
  "CMakeFiles/wedge_cluster.dir/bft_cluster.cc.o.d"
  "libwedge_cluster.a"
  "libwedge_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
