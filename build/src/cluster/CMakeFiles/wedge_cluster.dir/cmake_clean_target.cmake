file(REMOVE_RECURSE
  "libwedge_cluster.a"
)
