# Empty dependencies file for wedge_cluster.
# This may be replaced when dependencies are built.
