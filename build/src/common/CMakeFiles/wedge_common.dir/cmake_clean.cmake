file(REMOVE_RECURSE
  "CMakeFiles/wedge_common.dir/bytes.cc.o"
  "CMakeFiles/wedge_common.dir/bytes.cc.o.d"
  "CMakeFiles/wedge_common.dir/clock.cc.o"
  "CMakeFiles/wedge_common.dir/clock.cc.o.d"
  "CMakeFiles/wedge_common.dir/random.cc.o"
  "CMakeFiles/wedge_common.dir/random.cc.o.d"
  "CMakeFiles/wedge_common.dir/status.cc.o"
  "CMakeFiles/wedge_common.dir/status.cc.o.d"
  "CMakeFiles/wedge_common.dir/thread_pool.cc.o"
  "CMakeFiles/wedge_common.dir/thread_pool.cc.o.d"
  "libwedge_common.a"
  "libwedge_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
