file(REMOVE_RECURSE
  "libwedge_common.a"
)
