# Empty compiler generated dependencies file for wedge_common.
# This may be replaced when dependencies are built.
