
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contracts/baseline_contracts.cc" "src/contracts/CMakeFiles/wedge_contracts.dir/baseline_contracts.cc.o" "gcc" "src/contracts/CMakeFiles/wedge_contracts.dir/baseline_contracts.cc.o.d"
  "/root/repo/src/contracts/payment.cc" "src/contracts/CMakeFiles/wedge_contracts.dir/payment.cc.o" "gcc" "src/contracts/CMakeFiles/wedge_contracts.dir/payment.cc.o.d"
  "/root/repo/src/contracts/punishment.cc" "src/contracts/CMakeFiles/wedge_contracts.dir/punishment.cc.o" "gcc" "src/contracts/CMakeFiles/wedge_contracts.dir/punishment.cc.o.d"
  "/root/repo/src/contracts/root_record.cc" "src/contracts/CMakeFiles/wedge_contracts.dir/root_record.cc.o" "gcc" "src/contracts/CMakeFiles/wedge_contracts.dir/root_record.cc.o.d"
  "/root/repo/src/contracts/stage1_message.cc" "src/contracts/CMakeFiles/wedge_contracts.dir/stage1_message.cc.o" "gcc" "src/contracts/CMakeFiles/wedge_contracts.dir/stage1_message.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/wedge_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/wedge_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wedge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
