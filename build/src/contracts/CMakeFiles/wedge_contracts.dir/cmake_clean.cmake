file(REMOVE_RECURSE
  "CMakeFiles/wedge_contracts.dir/baseline_contracts.cc.o"
  "CMakeFiles/wedge_contracts.dir/baseline_contracts.cc.o.d"
  "CMakeFiles/wedge_contracts.dir/payment.cc.o"
  "CMakeFiles/wedge_contracts.dir/payment.cc.o.d"
  "CMakeFiles/wedge_contracts.dir/punishment.cc.o"
  "CMakeFiles/wedge_contracts.dir/punishment.cc.o.d"
  "CMakeFiles/wedge_contracts.dir/root_record.cc.o"
  "CMakeFiles/wedge_contracts.dir/root_record.cc.o.d"
  "CMakeFiles/wedge_contracts.dir/stage1_message.cc.o"
  "CMakeFiles/wedge_contracts.dir/stage1_message.cc.o.d"
  "libwedge_contracts.a"
  "libwedge_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
