file(REMOVE_RECURSE
  "libwedge_contracts.a"
)
