# Empty compiler generated dependencies file for wedge_contracts.
# This may be replaced when dependencies are built.
