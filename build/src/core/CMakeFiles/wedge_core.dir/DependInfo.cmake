
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_read.cc" "src/core/CMakeFiles/wedge_core.dir/batch_read.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/batch_read.cc.o.d"
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/wedge_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/client.cc.o.d"
  "/root/repo/src/core/data_model.cc" "src/core/CMakeFiles/wedge_core.dir/data_model.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/data_model.cc.o.d"
  "/root/repo/src/core/economics.cc" "src/core/CMakeFiles/wedge_core.dir/economics.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/economics.cc.o.d"
  "/root/repo/src/core/offchain_node.cc" "src/core/CMakeFiles/wedge_core.dir/offchain_node.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/offchain_node.cc.o.d"
  "/root/repo/src/core/remote.cc" "src/core/CMakeFiles/wedge_core.dir/remote.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/remote.cc.o.d"
  "/root/repo/src/core/stage2_watcher.cc" "src/core/CMakeFiles/wedge_core.dir/stage2_watcher.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/stage2_watcher.cc.o.d"
  "/root/repo/src/core/wedgeblock.cc" "src/core/CMakeFiles/wedge_core.dir/wedgeblock.cc.o" "gcc" "src/core/CMakeFiles/wedge_core.dir/wedgeblock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/contracts/CMakeFiles/wedge_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/wedge_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/wedge_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wedge_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wedge_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wedge_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
