file(REMOVE_RECURSE
  "CMakeFiles/wedge_core.dir/batch_read.cc.o"
  "CMakeFiles/wedge_core.dir/batch_read.cc.o.d"
  "CMakeFiles/wedge_core.dir/client.cc.o"
  "CMakeFiles/wedge_core.dir/client.cc.o.d"
  "CMakeFiles/wedge_core.dir/data_model.cc.o"
  "CMakeFiles/wedge_core.dir/data_model.cc.o.d"
  "CMakeFiles/wedge_core.dir/economics.cc.o"
  "CMakeFiles/wedge_core.dir/economics.cc.o.d"
  "CMakeFiles/wedge_core.dir/offchain_node.cc.o"
  "CMakeFiles/wedge_core.dir/offchain_node.cc.o.d"
  "CMakeFiles/wedge_core.dir/remote.cc.o"
  "CMakeFiles/wedge_core.dir/remote.cc.o.d"
  "CMakeFiles/wedge_core.dir/stage2_watcher.cc.o"
  "CMakeFiles/wedge_core.dir/stage2_watcher.cc.o.d"
  "CMakeFiles/wedge_core.dir/wedgeblock.cc.o"
  "CMakeFiles/wedge_core.dir/wedgeblock.cc.o.d"
  "libwedge_core.a"
  "libwedge_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
