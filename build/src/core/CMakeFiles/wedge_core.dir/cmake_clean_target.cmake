file(REMOVE_RECURSE
  "libwedge_core.a"
)
