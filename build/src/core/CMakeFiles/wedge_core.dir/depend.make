# Empty dependencies file for wedge_core.
# This may be replaced when dependencies are built.
