file(REMOVE_RECURSE
  "CMakeFiles/wedge_crypto.dir/ecdsa.cc.o"
  "CMakeFiles/wedge_crypto.dir/ecdsa.cc.o.d"
  "CMakeFiles/wedge_crypto.dir/hmac_sha256.cc.o"
  "CMakeFiles/wedge_crypto.dir/hmac_sha256.cc.o.d"
  "CMakeFiles/wedge_crypto.dir/keccak256.cc.o"
  "CMakeFiles/wedge_crypto.dir/keccak256.cc.o.d"
  "CMakeFiles/wedge_crypto.dir/secp256k1.cc.o"
  "CMakeFiles/wedge_crypto.dir/secp256k1.cc.o.d"
  "CMakeFiles/wedge_crypto.dir/sha256.cc.o"
  "CMakeFiles/wedge_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/wedge_crypto.dir/u256.cc.o"
  "CMakeFiles/wedge_crypto.dir/u256.cc.o.d"
  "libwedge_crypto.a"
  "libwedge_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
