file(REMOVE_RECURSE
  "libwedge_crypto.a"
)
