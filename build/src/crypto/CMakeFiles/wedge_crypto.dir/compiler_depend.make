# Empty compiler generated dependencies file for wedge_crypto.
# This may be replaced when dependencies are built.
