file(REMOVE_RECURSE
  "CMakeFiles/wedge_merkle.dir/merkle_tree.cc.o"
  "CMakeFiles/wedge_merkle.dir/merkle_tree.cc.o.d"
  "CMakeFiles/wedge_merkle.dir/multi_proof.cc.o"
  "CMakeFiles/wedge_merkle.dir/multi_proof.cc.o.d"
  "libwedge_merkle.a"
  "libwedge_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
