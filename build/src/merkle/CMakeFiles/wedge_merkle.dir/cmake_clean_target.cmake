file(REMOVE_RECURSE
  "libwedge_merkle.a"
)
