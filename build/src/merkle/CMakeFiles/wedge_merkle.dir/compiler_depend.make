# Empty compiler generated dependencies file for wedge_merkle.
# This may be replaced when dependencies are built.
