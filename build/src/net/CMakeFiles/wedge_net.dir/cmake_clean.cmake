file(REMOVE_RECURSE
  "CMakeFiles/wedge_net.dir/sim_network.cc.o"
  "CMakeFiles/wedge_net.dir/sim_network.cc.o.d"
  "libwedge_net.a"
  "libwedge_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
