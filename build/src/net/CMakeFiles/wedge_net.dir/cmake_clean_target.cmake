file(REMOVE_RECURSE
  "libwedge_net.a"
)
