# Empty dependencies file for wedge_net.
# This may be replaced when dependencies are built.
