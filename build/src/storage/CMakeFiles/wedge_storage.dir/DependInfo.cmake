
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/decentralized_archive.cc" "src/storage/CMakeFiles/wedge_storage.dir/decentralized_archive.cc.o" "gcc" "src/storage/CMakeFiles/wedge_storage.dir/decentralized_archive.cc.o.d"
  "/root/repo/src/storage/log_store.cc" "src/storage/CMakeFiles/wedge_storage.dir/log_store.cc.o" "gcc" "src/storage/CMakeFiles/wedge_storage.dir/log_store.cc.o.d"
  "/root/repo/src/storage/tiered_store.cc" "src/storage/CMakeFiles/wedge_storage.dir/tiered_store.cc.o" "gcc" "src/storage/CMakeFiles/wedge_storage.dir/tiered_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/wedge_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wedge_common.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/wedge_merkle.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
