file(REMOVE_RECURSE
  "CMakeFiles/wedge_storage.dir/decentralized_archive.cc.o"
  "CMakeFiles/wedge_storage.dir/decentralized_archive.cc.o.d"
  "CMakeFiles/wedge_storage.dir/log_store.cc.o"
  "CMakeFiles/wedge_storage.dir/log_store.cc.o.d"
  "CMakeFiles/wedge_storage.dir/tiered_store.cc.o"
  "CMakeFiles/wedge_storage.dir/tiered_store.cc.o.d"
  "libwedge_storage.a"
  "libwedge_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
