file(REMOVE_RECURSE
  "libwedge_storage.a"
)
