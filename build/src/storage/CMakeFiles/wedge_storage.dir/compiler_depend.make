# Empty compiler generated dependencies file for wedge_storage.
# This may be replaced when dependencies are built.
