file(REMOVE_RECURSE
  "CMakeFiles/batch_read_test.dir/batch_read_test.cc.o"
  "CMakeFiles/batch_read_test.dir/batch_read_test.cc.o.d"
  "batch_read_test"
  "batch_read_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
