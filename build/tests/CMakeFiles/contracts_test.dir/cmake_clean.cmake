file(REMOVE_RECURSE
  "CMakeFiles/contracts_test.dir/payment_test.cc.o"
  "CMakeFiles/contracts_test.dir/payment_test.cc.o.d"
  "CMakeFiles/contracts_test.dir/punishment_test.cc.o"
  "CMakeFiles/contracts_test.dir/punishment_test.cc.o.d"
  "CMakeFiles/contracts_test.dir/root_record_test.cc.o"
  "CMakeFiles/contracts_test.dir/root_record_test.cc.o.d"
  "contracts_test"
  "contracts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contracts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
