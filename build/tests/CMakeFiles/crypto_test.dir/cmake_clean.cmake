file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/ecdsa_test.cc.o"
  "CMakeFiles/crypto_test.dir/ecdsa_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/keccak256_test.cc.o"
  "CMakeFiles/crypto_test.dir/keccak256_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/secp256k1_test.cc.o"
  "CMakeFiles/crypto_test.dir/secp256k1_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/sha256_test.cc.o"
  "CMakeFiles/crypto_test.dir/sha256_test.cc.o.d"
  "CMakeFiles/crypto_test.dir/u256_test.cc.o"
  "CMakeFiles/crypto_test.dir/u256_test.cc.o.d"
  "crypto_test"
  "crypto_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
