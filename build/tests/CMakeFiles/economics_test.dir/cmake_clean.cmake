file(REMOVE_RECURSE
  "CMakeFiles/economics_test.dir/economics_test.cc.o"
  "CMakeFiles/economics_test.dir/economics_test.cc.o.d"
  "economics_test"
  "economics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/economics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
