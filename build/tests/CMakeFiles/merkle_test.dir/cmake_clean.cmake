file(REMOVE_RECURSE
  "CMakeFiles/merkle_test.dir/merkle_test.cc.o"
  "CMakeFiles/merkle_test.dir/merkle_test.cc.o.d"
  "merkle_test"
  "merkle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merkle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
