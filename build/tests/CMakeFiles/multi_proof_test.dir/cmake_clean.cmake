file(REMOVE_RECURSE
  "CMakeFiles/multi_proof_test.dir/multi_proof_test.cc.o"
  "CMakeFiles/multi_proof_test.dir/multi_proof_test.cc.o.d"
  "multi_proof_test"
  "multi_proof_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_proof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
