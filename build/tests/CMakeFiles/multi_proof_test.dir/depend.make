# Empty dependencies file for multi_proof_test.
# This may be replaced when dependencies are built.
