file(REMOVE_RECURSE
  "CMakeFiles/stage2_watcher_test.dir/stage2_watcher_test.cc.o"
  "CMakeFiles/stage2_watcher_test.dir/stage2_watcher_test.cc.o.d"
  "stage2_watcher_test"
  "stage2_watcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage2_watcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
