# Empty compiler generated dependencies file for stage2_watcher_test.
# This may be replaced when dependencies are built.
