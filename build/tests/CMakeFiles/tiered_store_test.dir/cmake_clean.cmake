file(REMOVE_RECURSE
  "CMakeFiles/tiered_store_test.dir/tiered_store_test.cc.o"
  "CMakeFiles/tiered_store_test.dir/tiered_store_test.cc.o.d"
  "tiered_store_test"
  "tiered_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
