# Empty dependencies file for tiered_store_test.
# This may be replaced when dependencies are built.
