file(REMOVE_RECURSE
  "CMakeFiles/wedgeblock_sim.dir/wedgeblock_sim.cc.o"
  "CMakeFiles/wedgeblock_sim.dir/wedgeblock_sim.cc.o.d"
  "wedgeblock_sim"
  "wedgeblock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedgeblock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
