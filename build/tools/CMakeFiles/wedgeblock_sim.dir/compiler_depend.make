# Empty compiler generated dependencies file for wedgeblock_sim.
# This may be replaced when dependencies are built.
