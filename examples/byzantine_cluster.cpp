// Liveness hardening (paper §4.7): a single Offchain Node can mount
// omission attacks — drop requests, crash, or vanish with the data. This
// example runs the 3f+1 BFT replica cluster instead: appends succeed as
// long as at most f replicas misbehave, a crashed primary is rotated
// away via view change, any member can submit stage-2, and a
// decentralized storage archive recovers the data even if every cluster
// replica is destroyed (the "extreme omission" case).
//
// Build & run:  ./build/examples/byzantine_cluster

#include <cstdio>

#include "cluster/bft_cluster.h"
#include "contracts/root_record.h"
#include "storage/decentralized_archive.h"

using namespace wedge;

int main() {
  SimClock clock(0);
  Blockchain chain(ChainConfig{}, &clock);

  // --- Set up a f=1 cluster (4 replicas) and a Root Record contract
  // that authorizes any member.
  ClusterConfig cluster_config;
  cluster_config.f = 1;
  OffchainCluster bootstrap(cluster_config, &clock, &chain, Address::Zero());
  auto members = bootstrap.MemberAddresses();
  for (const Address& m : members) chain.Fund(m, EthToWei(1000));
  Address root_record =
      chain.Deploy(members.front(),
                   std::make_unique<RootRecordContract>(members))
          .value();
  OffchainCluster cluster(cluster_config, &clock, &chain, root_record);
  std::printf("cluster: %zu replicas, quorum %zu, primary r%u\n",
              cluster.size(), cluster.quorum(), cluster.PrimaryIndex());

  KeyPair publisher = KeyPair::FromSeed(42);
  auto make_batch = [&publisher](int round) {
    std::vector<AppendRequest> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(AppendRequest::Make(
          publisher, round * 4 + i,
          ToBytes("round" + std::to_string(round)),
          ToBytes("entry" + std::to_string(i))));
    }
    return batch;
  };

  // --- Round 0: all healthy.
  auto commit0 = cluster.Append(make_batch(0));
  if (!commit0.ok()) return 1;
  std::printf("round 0: committed position %llu with %zu co-signatures\n",
              static_cast<unsigned long long>(commit0->certificate.log_id),
              commit0->certificate.acks.size());

  // --- Round 1: one replica mounts an omission attack. Quorum still
  // forms from the other three.
  cluster.replica(2).set_fault(ReplicaFault::kOmitAcks);
  auto commit1 = cluster.Append(make_batch(1));
  if (!commit1.ok()) return 1;
  std::printf("round 1 (r2 omitting): committed with %zu co-signatures — "
              "one omission tolerated\n",
              commit1->certificate.acks.size());

  // --- Round 2: the PRIMARY crashes. The client times out and rotates
  // to the next view; the same position commits under the new primary.
  cluster.replica(2).set_fault(ReplicaFault::kNone);
  cluster.replica(cluster.PrimaryIndex()).set_fault(ReplicaFault::kCrash);
  auto commit2 = cluster.Append(make_batch(2));
  if (!commit2.ok()) return 1;
  std::printf("round 2 (primary crashed): view changed to %u, new primary "
              "r%u, position %llu committed\n",
              cluster.view(), cluster.PrimaryIndex(),
              static_cast<unsigned long long>(commit2->certificate.log_id));

  // --- Stage-2 from whichever member is primary now.
  for (const auto* commit : {&*commit0, &*commit1, &*commit2}) {
    auto tx = cluster.SubmitStage2(*commit);
    if (!tx.ok()) return 1;
    auto receipt = chain.WaitForReceipt(tx.value());
    if (!receipt.ok() || !receipt->success) return 1;
  }
  std::printf("stage-2: all three digests on-chain (submitted by the "
              "current primary, authorized as a cluster member)\n");

  // --- Clients verify quorum certificates independently.
  bool cert_ok = VerifyQuorumCertificate(commit2->certificate, members,
                                         cluster.quorum());
  std::printf("client-side certificate verification: %s\n",
              cert_ok ? "valid (2f+1 distinct co-signers)" : "INVALID");

  // --- Extreme omission: archive every position to decentralized
  // storage, destroy the whole cluster, and recover from the archive
  // with on-chain roots as the integrity anchor.
  DecentralizedArchive archive(/*num_peers=*/12, /*replication_k=*/3,
                               /*seed=*/7);
  for (uint64_t id = 0; id < 3; ++id) {
    LogPosition pos = cluster.replica(1).store().Get(id).value();
    if (!archive.Archive(pos).ok()) return 1;
  }
  std::printf("archived 3 positions onto a 12-peer decentralized network "
              "(3 copies each)\n");

  // The cluster burns down. Fetch from the archive; verify against the
  // Root Record contract's roots.
  for (uint64_t id = 0; id < 3; ++id) {
    Bytes query;
    PutU64(query, id);
    Bytes raw = chain.Call(root_record, "getRootAtIndex", query).value();
    ByteReader reader(raw);
    (void)reader.ReadRaw(1);
    Hash256 onchain_root = HashFromBytes(reader.ReadRaw(32).value()).value();
    auto recovered = archive.Fetch(id, onchain_root);
    if (!recovered.ok()) return 1;
    std::printf("  recovered position %llu from the archive (root matches "
                "on-chain record)\n",
                static_cast<unsigned long long>(id));
  }
  std::printf("\nbyzantine_cluster OK\n");
  return 0;
}
