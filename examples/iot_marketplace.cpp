// IoT data marketplace (paper §2.3, use case 1): multiple IoT publishers
// stream sensor readings to a third-party WedgeBlock Offchain Node;
// consumers read and verify the data; a Payment contract compensates the
// node for its logging service.
//
// Build & run:  ./build/examples/iot_marketplace

#include <cstdio>
#include <string>

#include "core/wedgeblock.h"

using namespace wedge;

namespace {

struct Sensor {
  std::string name;
  KeyPair key;
  uint64_t next_seq = 0;
};

}  // namespace

int main() {
  DeploymentConfig config;
  config.node.batch_size = 16;  // Small demo batches.
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) return 1;
  Deployment& d = **deployment;

  // --- A logging-as-a-service subscription: 1 gwei per simulated minute.
  auto payment = d.CreatePaymentChannel(/*period_seconds=*/60,
                                        GweiToWei(1),
                                        /*max_overdue_periods=*/60);
  if (!payment.ok()) return 1;
  PaymentChannelClient subscriber(&d.chain(), payment.value(),
                                  d.publisher().address());
  if (!subscriber.Deposit(GweiToWei(600)).ok()) return 1;  // 10 hours.
  if (!subscriber.StartPayment().ok()) return 1;
  std::printf("subscription started: 1 gwei/min, %llu periods prepaid\n",
              static_cast<unsigned long long>(
                  subscriber.RemainingPeriods().value_or(0)));

  // --- Three sensors publish interleaved readings through the shared
  // publisher-facing node. (They share the marketplace's publisher
  // address for the punishment bond; each signs its own payloads.)
  std::vector<Sensor> sensors;
  for (int i = 0; i < 3; ++i) {
    sensors.push_back(
        Sensor{"sensor-" + std::to_string(i), KeyPair::FromSeed(5000 + i)});
  }

  std::vector<AppendRequest> batch;
  for (int round = 0; round < 16; ++round) {
    for (Sensor& s : sensors) {
      std::string key = s.name + "/reading/" + std::to_string(round);
      std::string value = std::to_string(20.0 + round * 0.1) + "C";
      batch.push_back(AppendRequest::Make(s.key, s.next_seq++, ToBytes(key),
                                          ToBytes(value)));
    }
  }
  auto responses = d.node().Append(batch);
  if (!responses.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 responses.status().ToString().c_str());
    return 1;
  }
  std::printf("published %zu readings from %zu sensors across %llu log "
              "positions\n",
              responses->size(), sensors.size(),
              static_cast<unsigned long long>(d.node().LogPositions()));

  // --- Stage 2 lands lazily.
  d.AdvanceBlocks(4);

  // --- A data consumer buys access and verifies provenance: the reading
  // is blockchain-committed AND carries the sensor's own signature.
  UserClient consumer = d.MakeUser(9001);
  auto read = consumer.ReadVerified(EntryIndex{1, 5}, true);
  if (!read.ok()) return 1;
  auto reading = AppendRequest::Deserialize(read->entry);
  bool sensor_sig_ok = reading->VerifySignature();
  std::printf("consumer verified %s = %s (chain-committed: yes, sensor "
              "signature: %s)\n",
              ToString(reading->key).c_str(), ToString(reading->value).c_str(),
              sensor_sig_ok ? "valid" : "INVALID");

  // --- An auditor spot-checks the whole marketplace log.
  AuditorClient auditor = d.MakeAuditor(9002);
  auto report = auditor.Audit(0, d.node().LogPositions() - 1);
  if (!report.ok()) return 1;
  std::printf("audit: %llu entries checked, clean=%s\n",
              static_cast<unsigned long long>(report->entries_checked),
              report->Clean() ? "yes" : "NO");

  // --- A month later the node collects its accumulated micro-payments.
  d.clock().AdvanceSeconds(3600);
  d.chain().PumpUntilNow();
  PaymentChannelClient operator_side(&d.chain(), payment.value(),
                                     d.node().address());
  auto withdrawal = operator_side.WithdrawOffchain();
  if (!withdrawal.ok()) return 1;
  std::printf("offchain node withdrew its service fees; channel remaining "
              "periods: %llu\n",
              static_cast<unsigned long long>(
                  subscriber.RemainingPeriods().value_or(0)));
  std::printf("\niot_marketplace OK\n");
  return 0;
}
