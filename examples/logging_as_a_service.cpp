// DApp-logging-as-a-service (paper §4.5): full lifecycle of the Payment
// contract's streaming subscription — deposit, start, periodic provider
// withdrawals, an under-funded stretch (DepositInsufficient), a top-up,
// and a clean termination with both sides settled.
//
// Build & run:  ./build/examples/logging_as_a_service

#include <cstdio>

#include "core/wedgeblock.h"

using namespace wedge;

namespace {

void PrintEvents(const Receipt& receipt) {
  for (const LogEvent& ev : receipt.events) {
    std::printf("    event: %s\n", ev.name.c_str());
  }
}

}  // namespace

int main() {
  DeploymentConfig config;
  config.node.batch_size = 4;
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) return 1;
  Deployment& d = **deployment;

  // Channel terms: 100 gwei per 10-minute period, up to 12 overdue
  // periods (2 hours) of grace.
  auto payment = d.CreatePaymentChannel(600, GweiToWei(100), 12);
  if (!payment.ok()) return 1;
  PaymentChannelClient dapp(&d.chain(), payment.value(),
                            d.publisher().address());
  PaymentChannelClient provider(&d.chain(), payment.value(),
                                d.node().address());

  auto elapse = [&](int64_t seconds) {
    d.clock().AdvanceSeconds(seconds);
    d.chain().PumpUntilNow();
  };

  // --- Subscribe: prepay ~8 hours (48 periods).
  if (!dapp.Deposit(GweiToWei(4800)).ok()) return 1;
  if (!dapp.StartPayment().ok()) return 1;
  std::printf("subscription live: %llu prepaid periods\n",
              static_cast<unsigned long long>(
                  dapp.RemainingPeriods().value_or(0)));

  // --- The DApp actually uses the service while time passes.
  PublisherClient& publisher = d.publisher();
  auto r = publisher.Publish(publisher.MakeRequests({
      {ToBytes("log/1"), ToBytes("service in use")},
      {ToBytes("log/2"), ToBytes("more data")},
      {ToBytes("log/3"), ToBytes("even more")},
      {ToBytes("log/4"), ToBytes("batch full")},
  }));
  if (!r.ok()) return 1;

  // --- 2 hours later the provider collects accrued fees.
  elapse(2 * 3600);
  auto w1 = provider.WithdrawOffchain();
  if (!w1.ok()) return 1;
  std::printf("provider withdrawal #1 after 2h:\n");
  PrintEvents(w1.value());

  // --- 7 more hours: the channel runs dry (but within the grace limit).
  elapse(7 * 3600);
  auto update = dapp.UpdateStatus();
  if (!update.ok()) return 1;
  std::printf("after 9h total (deposit exhausted):\n");
  PrintEvents(update.value());

  // --- The DApp tops up before the grace limit is violated.
  if (!dapp.Deposit(GweiToWei(6000)).ok()) return 1;
  auto update2 = dapp.UpdateStatus();
  if (!update2.ok()) return 1;
  std::printf("after top-up:\n");
  PrintEvents(update2.value());
  std::printf("  remaining periods: %llu\n",
              static_cast<unsigned long long>(
                  dapp.RemainingPeriods().value_or(0)));

  // --- Graceful shutdown: terminate settles both sides.
  Wei provider_before = d.chain().BalanceOf(d.node().address());
  auto term = dapp.Terminate();
  if (!term.ok()) return 1;
  std::printf("terminated: provider received %s ETH total for the "
              "subscription\n",
              WeiToEthString(d.chain().BalanceOf(d.node().address()) -
                             provider_before)
                  .c_str());
  std::printf("channel balance now: %s wei (fully settled)\n",
              d.chain().BalanceOf(payment.value()).ToDecimal().c_str());
  std::printf("\nlogging_as_a_service OK\n");
  return 0;
}
