// DApp gaming (paper §2.3, use case 2): an off-chain game server logs
// player actions through WedgeBlock. The key property this example
// demonstrates is ORDER: conflicting game actions are totally ordered by
// their log index at stage-1 time, and that order is exactly what stage 2
// makes immutable — two players can never later disagree about who
// grabbed the sword first.
//
// Build & run:  ./build/examples/nft_game

#include <cstdio>
#include <string>

#include "core/wedgeblock.h"

using namespace wedge;

int main() {
  DeploymentConfig config;
  config.node.batch_size = 8;
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) return 1;
  Deployment& d = **deployment;

  KeyPair alice = KeyPair::FromSeed(111);
  KeyPair bob = KeyPair::FromSeed(222);

  // Both players race to pick up the same legendary item. The game server
  // forwards their signed actions to the Offchain Node in arrival order.
  std::vector<AppendRequest> actions;
  actions.push_back(AppendRequest::Make(
      bob, 0, ToBytes("action/pickup"), ToBytes("bob grabs Excalibur")));
  actions.push_back(AppendRequest::Make(
      alice, 0, ToBytes("action/pickup"), ToBytes("alice grabs Excalibur")));
  actions.push_back(AppendRequest::Make(
      alice, 1, ToBytes("action/trade"),
      ToBytes("alice offers 3 gems for Excalibur")));
  actions.push_back(AppendRequest::Make(
      bob, 1, ToBytes("action/trade"), ToBytes("bob accepts the trade")));
  // Pad to the batch boundary with heartbeat events.
  for (uint64_t i = 2; i < 6; ++i) {
    actions.push_back(AppendRequest::Make(bob, i, ToBytes("heartbeat"),
                                          ToBytes("tick")));
  }

  auto responses = d.node().Append(actions);
  if (!responses.ok()) return 1;

  // Stage-1 proofs fix the order instantly: index (0,0) beats (0,1).
  std::printf("event order at stage-1 (off-chain commit):\n");
  for (size_t i = 0; i < 4; ++i) {
    auto a = AppendRequest::Deserialize((*responses)[i].entry);
    std::printf("  (%llu,%u): %s\n",
                static_cast<unsigned long long>((*responses)[i].index.log_id),
                (*responses)[i].index.offset, ToString(a->value).c_str());
  }
  std::printf("=> conflict resolution: '%s' wins (lower index)\n",
              ToString(AppendRequest::Deserialize((*responses)[0].entry)
                           ->value)
                  .c_str());

  // Stage 2: the same order becomes immutable on-chain.
  d.AdvanceBlocks(4);
  PublisherClient& server = d.publisher();
  for (size_t i = 0; i < responses->size(); ++i) {
    auto check = server.CheckBlockchainCommit((*responses)[i]);
    if (!check.ok() || check.value() != CommitCheck::kBlockchainCommitted) {
      std::fprintf(stderr, "stage-2 verification failed for event %zu\n", i);
      return 1;
    }
  }
  std::printf("all %zu events blockchain-committed in the same order\n",
              responses->size());

  // Later, bob disputes the trade. An auditor replays the log: the order
  // is verifiable by anyone against the on-chain root, so the dispute is
  // settled without trusting the game server.
  AuditorClient auditor = d.MakeAuditor(333);
  auto report = auditor.Audit(0, 0);
  if (!report.ok()) return 1;
  std::printf("dispute audit: %llu events verified against the Root Record "
              "contract, clean=%s\n",
              static_cast<unsigned long long>(report->entries_checked),
              report->Clean() ? "yes" : "NO");

  // Each action also carries the PLAYER's signature, so the game server
  // cannot forge moves either.
  auto trade = AppendRequest::Deserialize((*responses)[3].entry);
  std::printf("bob's trade acceptance carries his signature: %s\n",
              trade->VerifySignature() ? "valid" : "INVALID");
  std::printf("\nnft_game OK\n");
  return 0;
}
