// Punishment walk-through: a byzantine Offchain Node equivocates — it
// hands out signed stage-1 promises for one Merkle root but commits a
// different root on-chain. The client detects the mismatch (Definition
// 3.1) and drains the node's escrow through the Punishment contract
// (Algorithm 2). This is the lazy-minimum-trust deterrent end to end.
//
// Build & run:  ./build/examples/punishment_demo

#include <cstdio>

#include "core/wedgeblock.h"

using namespace wedge;

int main() {
  DeploymentConfig config;
  config.node.batch_size = 8;
  config.node.byzantine_mode = ByzantineMode::kEquivocateRoot;
  config.escrow = EthToWei(32);
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) return 1;
  Deployment& d = **deployment;
  PublisherClient& client = d.publisher();

  std::printf("escrow locked in Punishment contract: %s ETH\n",
              WeiToEthString(d.chain().BalanceOf(d.punishment_address()))
                  .c_str());

  // The client publishes; stage-1 responses look perfectly honest (they
  // verify!), because the node lies only at stage-2 time.
  auto responses = client.Publish(client.MakeRequests({
      {ToBytes("balance/alice"), ToBytes("100")},
      {ToBytes("balance/bob"), ToBytes("250")},
      {ToBytes("transfer"), ToBytes("alice->bob:25")},
      {ToBytes("balance/alice"), ToBytes("75")},
      {ToBytes("balance/bob"), ToBytes("275")},
      {ToBytes("checkpoint"), ToBytes("epoch-7")},
      {ToBytes("transfer"), ToBytes("bob->alice:5")},
      {ToBytes("checkpoint"), ToBytes("epoch-8")},
  }));
  if (!responses.ok()) return 1;
  std::printf("stage-1: %zu responses received and verified — the client "
              "can already act on them\n",
              responses->size());

  // Lazy stage-2 lands... with a fraudulent root.
  d.AdvanceBlocks(4);
  auto check = client.CheckBlockchainCommit(responses->front());
  if (!check.ok()) return 1;
  std::printf("stage-2 verification: %s\n",
              check.value() == CommitCheck::kMismatch
                  ? "MISMATCH — the node blockchain-committed a different "
                    "root than it promised"
                  : "unexpected result");

  // The signed stage-1 response IS the evidence. One transaction seizes
  // the whole escrow (all-or-nothing punishment, §3.3).
  Wei client_before = d.chain().BalanceOf(client.address());
  auto outcome = client.FinalizeOrPunish(responses->front());
  if (!outcome.ok()) return 1;
  std::printf("punishment triggered: %s (gas %llu)\n",
              outcome->punishment_receipt.success ? "escrow seized"
                                                  : "rejected?!",
              static_cast<unsigned long long>(
                  outcome->punishment_receipt.gas_used));
  Wei client_after = d.chain().BalanceOf(client.address());
  std::printf("client balance delta: +%s ETH (32 escrow - gas)\n",
              WeiToEthString(client_after - client_before).c_str());
  std::printf("punishment contract drained: %s ETH left\n",
              WeiToEthString(d.chain().BalanceOf(d.punishment_address()))
                  .c_str());

  // The contract is now settled: no further claims, and the byzantine
  // node cannot recover its deposit either.
  auto again = client.TriggerPunishment(responses->back());
  std::printf("second punishment attempt: %s (all-or-nothing: contract "
              "already settled)\n",
              again.ok() && !again->success ? "correctly rejected"
                                            : "unexpected");
  std::printf("\npunishment_demo OK\n");
  return 0;
}
