// Quickstart: the smallest end-to-end WedgeBlock program.
//
//   1. Deploy the system (simulated chain + Root Record + Punishment
//      contracts + Offchain Node).
//   2. Append log entries and receive signed stage-1 proofs immediately.
//   3. Let the lazy stage-2 digest commit land on-chain.
//   4. Read an entry back and verify it against the on-chain root.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/wedgeblock.h"

using namespace wedge;  // Example code; library code never does this.

int main() {
  // 1. One-call deployment with the paper's defaults (batch size 2000 is
  // overkill for 4 entries, so use a small batch).
  DeploymentConfig config;
  config.node.batch_size = 4;
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment& d = **deployment;
  std::printf("Root Record contract:  %s\n",
              d.root_record_address().ToHex().c_str());
  std::printf("Punishment contract:   %s (escrow %s ETH)\n",
              d.punishment_address().ToHex().c_str(),
              WeiToEthString(d.chain().BalanceOf(d.punishment_address()))
                  .c_str());

  // 2. Append four entries. Publish() signs each request, sends them to
  // the Offchain Node, and verifies every stage-1 response.
  PublisherClient& publisher = d.publisher();
  auto responses = publisher.Publish(publisher.MakeRequests({
      {ToBytes("temp/kitchen"), ToBytes("21.5C")},
      {ToBytes("temp/garage"), ToBytes("14.0C")},
      {ToBytes("door/front"), ToBytes("locked")},
      {ToBytes("motion/yard"), ToBytes("none")},
  }));
  if (!responses.ok()) {
    std::fprintf(stderr, "append failed: %s\n",
                 responses.status().ToString().c_str());
    return 1;
  }
  std::printf("\nstage-1 (off-chain) committed %zu entries -- usable "
              "immediately under LMT\n",
              responses->size());
  for (const Stage1Response& r : *responses) {
    std::printf("  index (%llu,%u)  root %.16s...\n",
                static_cast<unsigned long long>(r.index.log_id),
                r.index.offset, HashToHex(r.proof.mroot).c_str());
  }

  // 3. The digest write is already in the mempool (lazy commit). Advance
  // simulated chain time so it mines and confirms.
  d.AdvanceBlocks(4);
  auto check = publisher.CheckBlockchainCommit(responses->front());
  std::printf("\nstage-2 check: %s\n",
              check.value() == CommitCheck::kBlockchainCommitted
                  ? "blockchain committed (root matches on-chain record)"
                  : "NOT committed?!");

  // 4. A consumer reads entry (0,2) and verifies it end-to-end.
  UserClient user = d.MakeUser(/*seed=*/2024);
  auto read = user.ReadVerified(EntryIndex{0, 2},
                                /*require_blockchain_commit=*/true);
  if (!read.ok()) {
    std::fprintf(stderr, "read failed: %s\n", read.status().ToString().c_str());
    return 1;
  }
  auto entry = AppendRequest::Deserialize(read->entry);
  std::printf("verified read of (0,2): %s = %s (publisher %s, seq %llu)\n",
              ToString(entry->key).c_str(), ToString(entry->value).c_str(),
              entry->publisher.ToHex().c_str(),
              static_cast<unsigned long long>(entry->sequence));
  std::printf("\nquickstart OK\n");
  return 0;
}
