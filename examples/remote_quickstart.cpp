// remote_quickstart — the quickstart flow over real TCP.
//
// Boots a deployment, serves it with rpc/RpcServer on an ephemeral
// loopback port, then talks to it with a pooled rpc/TcpNodeClient the way
// a publisher on another machine would (paper §5): signed append over the
// socket, stage-1 proof verification, a verified read back, and a clean
// drain/shutdown. Prints "remote quickstart OK" when every check passed.
//
// Honors WEDGE_SKIP_SOCKET_TESTS=1 (prints SKIPPED and exits 0) for
// sandboxes without loopback networking.

#include <cstdio>
#include <cstdlib>

#include "core/wedgeblock.h"
#include "rpc/rpc_server.h"
#include "rpc/tcp_client.h"

using namespace wedge;

int main() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  if (skip != nullptr && skip[0] == '1') {
    std::printf("remote quickstart SKIPPED (WEDGE_SKIP_SOCKET_TESTS)\n");
    return 0;
  }

  DeploymentConfig config;
  config.node.batch_size = 4;
  auto deployment = Deployment::Create(config);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment& d = **deployment;

  RpcServerConfig server_config;  // Ephemeral port on 127.0.0.1.
  KeyPair transport_key = KeyPair::FromSeed(config.offchain_key_seed);
  RpcServer server(&d.node(), transport_key, server_config, &d.telemetry());
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  TcpClientConfig client_config;
  client_config.port = server.port();
  client_config.pool_size = 2;
  KeyPair publisher = KeyPair::FromSeed(0xC11E);
  TcpNodeClient client(publisher, transport_key.address(), client_config);
  if (Status s = client.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }

  // Stage 1 over the wire: signed appends, signed proofs back.
  std::vector<AppendRequest> batch;
  for (uint64_t i = 0; i < 4; ++i) {
    batch.push_back(AppendRequest::Make(publisher, i,
                                        ToBytes("sensor-" + std::to_string(i)),
                                        ToBytes("reading")));
  }
  auto responses = client.Append(batch);
  if (!responses.ok() || responses->size() != 4) {
    std::fprintf(stderr, "append: %s\n",
                 responses.status().ToString().c_str());
    return 1;
  }
  for (const auto& r : *responses) {
    if (!r.Verify(d.node().address())) {
      std::fprintf(stderr, "stage-1 proof failed to verify\n");
      return 1;
    }
  }
  std::printf("4 appends acknowledged with verified stage-1 proofs\n");

  // Verified read back over the same pool.
  auto read = client.ReadOne(responses->front().index);
  if (!read.ok() || !read->Verify(d.node().address())) {
    std::fprintf(stderr, "read-back failed\n");
    return 1;
  }

  // Stage 2 still works underneath: mine and check the root landed.
  d.AdvanceBlocks(4);
  if (d.node().UncommittedDigests() != 0) {
    std::fprintf(stderr, "stage-2 commit missing\n");
    return 1;
  }

  client.Close();
  server.Shutdown();
  std::printf("remote quickstart OK\n");
  return 0;
}
