#include "baselines/baselines.h"

#include <algorithm>
#include <deque>

#include "contracts/root_record.h"
#include "merkle/merkle_tree.h"

namespace wedge {

Bytes EncodeKvBatch(const std::vector<std::pair<Bytes, Bytes>>& kvs,
                    size_t first, size_t count) {
  Bytes out;
  PutU32(out, static_cast<uint32_t>(count));
  for (size_t i = first; i < first + count; ++i) {
    PutBytes(out, kvs[i].first);
    PutBytes(out, kvs[i].second);
  }
  return out;
}

Result<std::unique_ptr<OclClient>> OclClient::Create(Blockchain* chain,
                                                     const KeyPair& client_key,
                                                     int max_pending) {
  WEDGE_ASSIGN_OR_RETURN(
      Address contract,
      chain->Deploy(client_key.address(), std::make_unique<OclLogContract>()));
  return std::unique_ptr<OclClient>(
      new OclClient(chain, client_key, contract, std::max(1, max_pending)));
}

Result<BaselineRunStats> OclClient::CommitAll(
    const std::vector<std::pair<Bytes, Bytes>>& kvs) {
  BaselineRunStats stats;
  SimClock* clock = chain_->clock();
  Wei fees_before = chain_->TotalFeesPaid(key_.address());
  uint64_t gas_before = chain_->TotalGasUsed(key_.address());
  Micros start = clock->NowMicros();

  std::deque<TxId> pending;
  for (const auto& [k, v] : kvs) {
    Transaction tx;
    tx.from = key_.address();
    tx.to = contract_address_;
    tx.method = "appendLog";
    PutBytes(tx.calldata, k);
    PutBytes(tx.calldata, v);
    WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
    pending.push_back(id);
    stats.bytes_committed += k.size() + v.size();
    ++stats.operations;
    // Keep the pipeline at most max_pending deep: wait for the oldest
    // transaction to confirm before sending more.
    while (pending.size() >= static_cast<size_t>(max_pending_)) {
      WEDGE_ASSIGN_OR_RETURN(Receipt r, chain_->WaitForReceipt(pending.front()));
      if (!r.success) {
        return Status::Reverted("OCL append reverted: " + r.revert_reason);
      }
      pending.pop_front();
    }
  }
  while (!pending.empty()) {
    WEDGE_ASSIGN_OR_RETURN(Receipt r, chain_->WaitForReceipt(pending.front()));
    if (!r.success) {
      return Status::Reverted("OCL append reverted: " + r.revert_reason);
    }
    pending.pop_front();
  }

  stats.commit_latency_micros = clock->NowMicros() - start;
  stats.fees_paid = chain_->TotalFeesPaid(key_.address()) - fees_before;
  stats.gas_used = chain_->TotalGasUsed(key_.address()) - gas_before;
  return stats;
}

Result<std::unique_ptr<SoclClient>> SoclClient::Create(
    Blockchain* chain, const KeyPair& offchain_key, uint32_t batch_size) {
  WEDGE_ASSIGN_OR_RETURN(
      Address root_record,
      chain->Deploy(offchain_key.address(),
                    std::make_unique<RootRecordContract>(
                        offchain_key.address())));
  if (batch_size == 0) {
    return Status::InvalidArgument("batch size must be positive");
  }
  return std::unique_ptr<SoclClient>(
      new SoclClient(chain, offchain_key, root_record, batch_size));
}

Result<BaselineRunStats> SoclClient::CommitAll(
    const std::vector<std::pair<Bytes, Bytes>>& kvs) {
  BaselineRunStats stats;
  SimClock* clock = chain_->clock();
  Wei fees_before = chain_->TotalFeesPaid(key_.address());
  uint64_t gas_before = chain_->TotalGasUsed(key_.address());
  Micros start = clock->NowMicros();

  // Pipeline: submit every batch digest as soon as the previous one is in
  // the mempool (one digest per Root Record position, sequential ids), and
  // only block on confirmations at the end. One block interval elapses
  // between digest submissions — the synchronous client cannot produce
  // infinitely fast because each batch must be observed committed before
  // its entries are served to consumers.
  std::vector<TxId> txs;
  uint64_t next_idx = 0;
  for (size_t cursor = 0; cursor < kvs.size(); cursor += batch_size_) {
    size_t count = std::min<size_t>(batch_size_, kvs.size() - cursor);
    // Digest = Merkle root of the off-chain batch.
    std::vector<Bytes> leaves;
    leaves.reserve(count);
    for (size_t i = cursor; i < cursor + count; ++i) {
      Bytes leaf;
      PutBytes(leaf, kvs[i].first);
      PutBytes(leaf, kvs[i].second);
      leaves.push_back(std::move(leaf));
      stats.bytes_committed += kvs[i].first.size() + kvs[i].second.size();
    }
    WEDGE_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(leaves));

    Transaction tx;
    tx.from = key_.address();
    tx.to = root_record_address_;
    tx.method = "updateRecords";
    PutU64(tx.calldata, next_idx);
    PutU32(tx.calldata, 1);
    Append(tx.calldata, HashToBytes(tree.Root()));
    WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
    txs.push_back(id);
    ++next_idx;
    stats.operations += count;
    // The next digest can only go out after this one is mined (root
    // record indices are strictly sequential): advance one block.
    clock->AdvanceSeconds(chain_->config().block_interval_seconds);
    chain_->PumpUntilNow();
  }
  for (TxId id : txs) {
    WEDGE_ASSIGN_OR_RETURN(Receipt r, chain_->WaitForReceipt(id));
    if (!r.success) {
      return Status::Reverted("SOCL digest write reverted: " + r.revert_reason);
    }
  }

  stats.commit_latency_micros = clock->NowMicros() - start;
  stats.fees_paid = chain_->TotalFeesPaid(key_.address()) - fees_before;
  stats.gas_used = chain_->TotalGasUsed(key_.address()) - gas_before;
  return stats;
}

Result<std::unique_ptr<RhlClient>> RhlClient::Create(
    Blockchain* chain, const KeyPair& sequencer_key, uint32_t batch_size,
    int64_t challenge_window_seconds, const Wei& escrow) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch size must be positive");
  }
  WEDGE_ASSIGN_OR_RETURN(
      Address contract,
      chain->Deploy(sequencer_key.address(),
                    std::make_unique<RhlContract>(sequencer_key.address(),
                                                  challenge_window_seconds),
                    escrow));
  return std::unique_ptr<RhlClient>(new RhlClient(
      chain, sequencer_key, contract, batch_size, challenge_window_seconds));
}

Result<BaselineRunStats> RhlClient::CommitAll(
    const std::vector<std::pair<Bytes, Bytes>>& kvs) {
  BaselineRunStats stats;
  SimClock* clock = chain_->clock();
  Wei fees_before = chain_->TotalFeesPaid(key_.address());
  uint64_t gas_before = chain_->TotalGasUsed(key_.address());
  Micros start = clock->NowMicros();

  // Stage-1 commitment in RHL is the sequencer's response, which is
  // immediate once the batch is formed; the expensive part — posting the
  // operations on-chain — happens in the background like WedgeBlock's
  // stage 2, but carries the FULL data as calldata. A posted batch must
  // fit under the block gas limit (real rollups split for the same
  // reason), so the logical batch size is capped by calldata gas.
  const uint64_t max_calldata_gas =
      chain_->config().block_gas_limit - 500'000;
  for (size_t cursor = 0; cursor < kvs.size();) {
    size_t count = 0;
    uint64_t calldata_gas = 0;
    while (cursor + count < kvs.size() && count < batch_size_) {
      const auto& kv = kvs[cursor + count];
      uint64_t op_gas =
          (kv.first.size() + kv.second.size() + 16) * gas::kCalldataNonZeroByte;
      if (count > 0 && calldata_gas + op_gas > max_calldata_gas) break;
      calldata_gas += op_gas;
      ++count;
    }
    Bytes batch = EncodeKvBatch(kvs, cursor, count);
    Hash256 digest = RhlBatchDigest(batch);

    Transaction tx;
    tx.from = key_.address();
    tx.to = contract_address_;
    tx.method = "submitBatch";
    PutBytes(tx.calldata, batch);
    Append(tx.calldata, HashToBytes(digest));
    // Rollup batches are large; make sure the gas limit accommodates the
    // calldata (16 gas/byte) plus fixed costs.
    tx.gas_limit = std::min<uint64_t>(
        gas::kTxBase + gas::CalldataGas(tx.calldata) + 200'000,
        chain_->config().block_gas_limit);
    WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
    (void)id;
    posted_batches_.push_back(std::move(batch));
    stats.operations += count;
    for (size_t i = cursor; i < cursor + count; ++i) {
      stats.bytes_committed += kvs[i].first.size() + kvs[i].second.size();
    }
    cursor += count;
  }
  // Stage-1 latency: forming batches + sequencer ack (sub-second in sim
  // time; measured as elapsed sim time which stays ~0 because posting is
  // asynchronous).
  stats.commit_latency_micros = std::max<Micros>(
      clock->NowMicros() - start,
      static_cast<Micros>(stats.operations));  // ~1us/op sequencer work.

  // Drain the mempool so fees/gas are accounted.
  Micros horizon = clock->NowMicros();
  (void)horizon;
  for (int i = 0; i < 1024 && chain_ != nullptr; ++i) {
    clock->AdvanceSeconds(chain_->config().block_interval_seconds);
    chain_->PumpUntilNow();
    bool all_mined = true;
    // Probe: batchCount equals number posted once all are mined.
    auto raw = chain_->Call(contract_address_, "batchCount", {});
    if (raw.ok()) {
      ByteReader reader(raw.value());
      auto count = reader.ReadU64();
      all_mined = count.ok() && count.value() == posted_batches_.size();
    }
    if (all_mined) break;
  }
  stats.fees_paid = chain_->TotalFeesPaid(key_.address()) - fees_before;
  stats.gas_used = chain_->TotalGasUsed(key_.address()) - gas_before;
  return stats;
}

Micros RhlClient::FinalityLagMicros() const {
  return static_cast<Micros>(challenge_window_seconds_) * kMicrosPerSecond;
}

Result<Receipt> RhlClient::Challenge(const KeyPair& challenger,
                                     uint64_t batch_index,
                                     const Bytes& batch_data) {
  Transaction tx;
  tx.from = challenger.address();
  tx.to = contract_address_;
  tx.method = "challengeBatch";
  PutU64(tx.calldata, batch_index);
  PutBytes(tx.calldata, batch_data);
  tx.gas_limit = gas::kTxBase + gas::CalldataGas(tx.calldata) + 500'000;
  WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
  return chain_->WaitForReceipt(id);
}

}  // namespace wedge
