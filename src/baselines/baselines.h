#ifndef WEDGEBLOCK_BASELINES_BASELINES_H_
#define WEDGEBLOCK_BASELINES_BASELINES_H_

#include <memory>

#include "chain/blockchain.h"
#include "contracts/baseline_contracts.h"
#include "core/data_model.h"

namespace wedge {

/// Result of committing a workload through a baseline: everything the
/// Table 1 harness needs to compute throughput (MB/s of committed data
/// over simulated/real time) and cost per operation.
struct BaselineRunStats {
  uint64_t operations = 0;
  uint64_t bytes_committed = 0;
  /// Simulated time from first submission to last commitment receipt.
  Micros commit_latency_micros = 0;
  uint64_t gas_used = 0;
  Wei fees_paid;

  double ThroughputMBps() const {
    if (commit_latency_micros <= 0) return 0;
    return (static_cast<double>(bytes_committed) / (1024.0 * 1024.0)) /
           (static_cast<double>(commit_latency_micros) / kMicrosPerSecond);
  }
  double EthPerOp() const {
    if (operations == 0) return 0;
    return WeiToEthDouble(fees_paid) / static_cast<double>(operations);
  }
};

/// On-Chain Logging baseline (paper §6.3, "OCL"): every log record is a
/// smart-contract transaction storing the raw data on-chain. The client
/// pipelines up to `max_pending` transactions and a commitment receipt is
/// the transaction's confirmation.
class OclClient {
 public:
  /// Deploys the OCL contract and funds the client.
  static Result<std::unique_ptr<OclClient>> Create(Blockchain* chain,
                                                   const KeyPair& client_key,
                                                   int max_pending = 4);

  /// Writes each (key, value) on-chain and waits for all confirmations.
  Result<BaselineRunStats> CommitAll(
      const std::vector<std::pair<Bytes, Bytes>>& kvs);

  const Address& contract_address() const { return contract_address_; }

 private:
  OclClient(Blockchain* chain, KeyPair key, Address contract, int max_pending)
      : chain_(chain),
        key_(std::move(key)),
        contract_address_(contract),
        max_pending_(max_pending) {}

  Blockchain* chain_;
  KeyPair key_;
  Address contract_address_;
  int max_pending_;
};

/// Synchronous Off-Chain Logging baseline ("SOCL"): like WedgeBlock, raw
/// data lives off-chain and only a batch digest goes on-chain — but the
/// client must wait for the digest's confirmation before an operation
/// counts as committed. Batches pipeline: the next batch's digest is
/// submitted while earlier ones await confirmation, so sustained
/// throughput is bounded by the chain's block cadence rather than by one
/// round-trip per batch.
class SoclClient {
 public:
  static Result<std::unique_ptr<SoclClient>> Create(
      Blockchain* chain, const KeyPair& offchain_key, uint32_t batch_size);

  Result<BaselineRunStats> CommitAll(
      const std::vector<std::pair<Bytes, Bytes>>& kvs);

  const Address& root_record_address() const { return root_record_address_; }

 private:
  SoclClient(Blockchain* chain, KeyPair key, Address root_record,
             uint32_t batch_size)
      : chain_(chain),
        key_(std::move(key)),
        root_record_address_(root_record),
        batch_size_(batch_size) {}

  Blockchain* chain_;
  KeyPair key_;  ///< Acts as the off-chain digest writer.
  Address root_record_address_;
  uint32_t batch_size_;
};

/// Rollup-inspired Hybrid Logging baseline ("RHL"): batches are posted
/// on-chain as calldata with a claimed digest (Optimistic-Rollup style).
/// Stage-1 commitment is the sequencer's prompt response — fast like
/// WedgeBlock — but the on-chain calldata makes it as expensive as OCL,
/// and finality waits out a multi-hour challenge window.
class RhlClient {
 public:
  static Result<std::unique_ptr<RhlClient>> Create(
      Blockchain* chain, const KeyPair& sequencer_key, uint32_t batch_size,
      int64_t challenge_window_seconds = 24 * 3600, const Wei& escrow = Wei());

  /// Posts all batches. Stage-1 latency (the reported commitment point,
  /// as in the paper) is the sequencer response time; stats also carry
  /// the finality lag.
  Result<BaselineRunStats> CommitAll(
      const std::vector<std::pair<Bytes, Bytes>>& kvs);

  /// Simulated time until the last batch becomes final (challenge window).
  Micros FinalityLagMicros() const;

  /// Challenges batch `index` by replaying `batch_data`; succeeds only on
  /// real fraud.
  Result<Receipt> Challenge(const KeyPair& challenger, uint64_t batch_index,
                            const Bytes& batch_data);

  const Address& contract_address() const { return contract_address_; }
  /// Serialized batches as posted (for building challenges).
  const std::vector<Bytes>& posted_batches() const { return posted_batches_; }

 private:
  RhlClient(Blockchain* chain, KeyPair key, Address contract,
            uint32_t batch_size, int64_t window)
      : chain_(chain),
        key_(std::move(key)),
        contract_address_(contract),
        batch_size_(batch_size),
        challenge_window_seconds_(window) {}

  Blockchain* chain_;
  KeyPair key_;
  Address contract_address_;
  uint32_t batch_size_;
  int64_t challenge_window_seconds_;
  std::vector<Bytes> posted_batches_;
};

/// Encodes a batch of raw key-value operations as posted by RHL/SOCL.
Bytes EncodeKvBatch(const std::vector<std::pair<Bytes, Bytes>>& kvs,
                    size_t first, size_t count);

}  // namespace wedge

#endif  // WEDGEBLOCK_BASELINES_BASELINES_H_
