#include "chain/blockchain.h"

#include <algorithm>

#include "crypto/keccak256.h"

namespace wedge {

namespace {

constexpr uint64_t kWeiPerEthLow = 0xDE0B6B3A7640000ULL;  // 1e18.

}  // namespace

Wei EthToWei(uint64_t eth) { return U256(eth) * U256(kWeiPerEthLow); }

Wei GweiToWei(uint64_t gwei) { return U256(gwei) * U256(1'000'000'000ULL); }

std::string WeiToEthString(const Wei& wei) {
  U256 q, r;
  wei.DivMod(U256(kWeiPerEthLow), &q, &r).ok();
  std::string frac = r.ToDecimal();
  frac.insert(frac.begin(), 18 - frac.size(), '0');
  // Trim trailing zeros but keep at least one digit.
  size_t end = frac.find_last_not_of('0');
  frac.resize(end == std::string::npos ? 1 : end + 1);
  return q.ToDecimal() + "." + frac;
}

double WeiToEthDouble(const Wei& wei) {
  double acc = 0;
  for (int i = 3; i >= 0; --i) {
    acc = acc * 18446744073709551616.0 + static_cast<double>(wei.limb[i]);
  }
  return acc / 1e18;
}

Blockchain::Blockchain(const ChainConfig& config, SimClock* clock,
                       Telemetry* telemetry)
    : config_(config),
      clock_(clock),
      telemetry_(telemetry),
      current_gas_price_(config.gas_price),
      price_rng_(config.price_seed),
      fault_injector_(config.faults, telemetry) {
  if (telemetry_ != nullptr) {
    blocks_mined_counter_ =
        telemetry_->metrics.GetCounter("wedge.chain.blocks_mined");
    txs_mined_counter_ = telemetry_->metrics.GetCounter("wedge.chain.txs_mined");
    txs_reverted_counter_ =
        telemetry_->metrics.GetCounter("wedge.chain.txs_reverted");
    mempool_depth_gauge_ =
        telemetry_->metrics.GetGauge("wedge.chain.mempool_depth");
    gas_per_block_hist_ =
        telemetry_->metrics.GetHistogram("wedge.chain.gas_per_block");
  }
  genesis_time_ = clock_->NowSeconds();
  Block genesis;
  genesis.number = 0;
  genesis.timestamp = genesis_time_;
  genesis.hash = Sha256::Digest("wedgeblock-genesis");
  blocks_.push_back(genesis);
}

void Blockchain::Fund(const Address& account, const Wei& amount) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  SetBalanceLocked(account, GetBalanceLocked(account) + amount);
}

Wei Blockchain::BalanceOf(const Address& account) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return GetBalanceLocked(account);
}

Wei Blockchain::TotalFeesPaid(const Address& account) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = fees_paid_.find(account);
  return it == fees_paid_.end() ? Wei() : it->second;
}

uint64_t Blockchain::TotalGasUsed(const Address& account) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = gas_used_.find(account);
  return it == gas_used_.end() ? 0 : it->second;
}

Result<Address> Blockchain::Deploy(const Address& owner,
                                   std::unique_ptr<Contract> contract,
                                   const Wei& endowment) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // CREATE-style address: keccak(owner || counter)[12..].
  Bytes material = owner.ToBytes();
  PutU64(material, deploy_counter_++);
  Hash256 h = Keccak256::Digest(material);
  Address addr;
  std::copy(h.begin() + 12, h.end(), addr.bytes.begin());

  // Charge deployment gas and move the endowment.
  Wei deploy_fee = U256(gas::kContractCreation + gas::kTxBase) * config_.gas_price;
  Wei total = deploy_fee + endowment;
  Wei balance = GetBalanceLocked(owner);
  if (balance < total) {
    return Status::InsufficientFunds("deployment cost exceeds owner balance");
  }
  SetBalanceLocked(owner, balance - total);
  SetBalanceLocked(addr, GetBalanceLocked(addr) + endowment);
  fees_paid_[owner] = fees_paid_[owner] + deploy_fee;
  gas_used_[owner] += gas::kContractCreation + gas::kTxBase;
  contracts_[addr] = std::move(contract);
  return addr;
}

bool Blockchain::HasContract(const Address& address) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return contracts_.count(address) > 0;
}

Result<Bytes> Blockchain::Call(const Address& contract, std::string_view method,
                               const Bytes& args) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  GasMeter free_meter(~0ULL);  // eth_call is free.
  return CallLocked(contract, method, args, &free_meter);
}

Result<Bytes> Blockchain::StaticCallInternal(const Address& contract,
                                             std::string_view method,
                                             const Bytes& args,
                                             GasMeter* gas) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return CallLocked(contract, method, args, gas);
}

Status Blockchain::TransferFromContract(const Address& contract,
                                        const Address& to, const Wei& amount) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Wei balance = GetBalanceLocked(contract);
  if (balance < amount) {
    return Status::InsufficientFunds("contract balance too low");
  }
  SetBalanceLocked(contract, balance - amount);
  SetBalanceLocked(to, GetBalanceLocked(to) + amount);
  return Status::Ok();
}

Result<Bytes> Blockchain::CallLocked(const Address& contract,
                                     std::string_view method, const Bytes& args,
                                     GasMeter* gas) const {
  auto it = contracts_.find(contract);
  if (it == contracts_.end()) {
    return Status::NotFound("no contract at address");
  }
  // Read-only context: block values from the current head.
  const Block& head = blocks_.back();
  CallContext ctx(const_cast<Blockchain*>(this), contract, Address::Zero(),
                  Wei(), head.number, head.timestamp, gas, /*read_only=*/true);
  return it->second->Call(ctx, method, args);
}

Result<TxId> Blockchain::Submit(Transaction tx) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t gas_limit =
      tx.gas_limit == 0 ? config_.default_tx_gas_limit : tx.gas_limit;
  if (gas_limit > config_.block_gas_limit) {
    return Status::InvalidArgument("gas limit exceeds block gas limit");
  }
  tx.gas_limit = gas_limit;
  Wei bid_price =
      tx.gas_price_bid.IsZero() ? config_.gas_price : tx.gas_price_bid;
  Wei max_cost = tx.value + U256(gas_limit) * bid_price;
  if (GetBalanceLocked(tx.from) < max_cost) {
    return Status::InsufficientFunds(
        "sender cannot cover value + max gas fee");
  }
  if (!tx.method.empty() && contracts_.find(tx.to) == contracts_.end()) {
    return Status::NotFound("no contract at target address");
  }
  tx.id = next_tx_id_++;
  tx.nonce = nonces_[tx.from]++;
  tx.submit_time = clock_->NowMicros();
  // A dropped transaction is acknowledged (the RPC node returns a hash)
  // but never reaches the mempool: the sender only learns via a missing
  // receipt, exactly like a silently-failing Ethereum gateway.
  if (fault_injector_.ShouldInject(FaultType::kDropTx)) {
    return tx.id;
  }
  PendingTx pending{std::move(tx)};
  if (fault_injector_.ShouldInject(FaultType::kEvictTx)) {
    pending.evict_at_block =
        blocks_.back().number +
        static_cast<uint64_t>(
            std::max(1, fault_injector_.config().evict_after_blocks));
  }
  mempool_.push_back(std::move(pending));
  if (mempool_depth_gauge_ != nullptr) {
    mempool_depth_gauge_->Set(static_cast<int64_t>(mempool_.size()));
  }
  return mempool_.back().tx.id;
}

size_t Blockchain::MempoolSize() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return mempool_.size();
}

void Blockchain::PumpUntilNow() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t now = clock_->NowSeconds();
  for (;;) {
    int64_t next_block_time =
        blocks_.back().timestamp + config_.block_interval_seconds;
    if (next_block_time > now) break;
    MineBlockLocked(next_block_time);
  }
}

Wei Blockchain::CurrentGasPrice() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return current_gas_price_;
}

void Blockchain::MineBlockLocked(int64_t block_time) {
  // Per-block gas price: base (optionally a volatility walk), then a
  // transient fault-injected spike multiplier for this block only.
  Wei block_price = config_.gas_price;
  if (config_.gas_price_volatility > 0.0) {
    // Random walk around the base price: price = base * (1 +/- U[0, v]).
    double swing =
        config_.gas_price_volatility * (2.0 * price_rng_.NextDouble() - 1.0);
    int64_t permille = static_cast<int64_t>(1000.0 * (1.0 + swing));
    if (permille < 1) permille = 1;
    U256 scaled = config_.gas_price * U256(static_cast<uint64_t>(permille));
    U256 q, r;
    scaled.DivMod(U256(1000), &q, &r).ok();
    block_price = q;
  }
  if (fault_injector_.ShouldInject(FaultType::kGasSpike)) {
    double mult = fault_injector_.config().gas_spike_multiplier;
    uint64_t permille = mult > 1.0 ? static_cast<uint64_t>(mult * 1000.0) : 1000;
    U256 scaled = block_price * U256(permille);
    U256 q, r;
    scaled.DivMod(U256(1000), &q, &r).ok();
    block_price = q;
  }
  current_gas_price_ = block_price;

  Block block;
  block.number = blocks_.back().number + 1;
  block.timestamp = block_time;
  block.parent_hash = blocks_.back().hash;

  // Mempool eviction: drop tagged transactions whose deadline has passed.
  for (auto it = mempool_.begin(); it != mempool_.end();) {
    if (it->evict_at_block != 0 && block.number >= it->evict_at_block) {
      fault_injector_.RecordEviction();
      it = mempool_.erase(it);
    } else {
      ++it;
    }
  }

  bool delayed = fault_injector_.ShouldInject(FaultType::kDelayBlock);

  Micros cutoff = static_cast<Micros>(block_time) * kMicrosPerSecond;
  std::vector<LogEvent> mined_events;
  std::vector<PendingTx> underpriced;
  while (!delayed && !mempool_.empty() &&
         block.gas_used < config_.block_gas_limit) {
    // Include transactions submitted before this block's timestamp.
    if (mempool_.front().tx.submit_time > cutoff) break;
    // Stop if the next transaction cannot fit under the block gas limit.
    if (block.gas_used + mempool_.front().tx.gas_limit >
        config_.block_gas_limit) {
      break;
    }
    // Transactions bidding below the block price wait for a cheaper block.
    if (!mempool_.front().tx.gas_price_bid.IsZero() &&
        mempool_.front().tx.gas_price_bid < current_gas_price_) {
      underpriced.push_back(std::move(mempool_.front()));
      mempool_.pop_front();
      continue;
    }
    Transaction tx = std::move(mempool_.front().tx);
    mempool_.pop_front();
    Receipt receipt = ExecuteLocked(tx, block.number, block_time);
    block.gas_used += receipt.gas_used;
    block.tx_ids.push_back(tx.id);
    for (const LogEvent& ev : receipt.events) mined_events.push_back(ev);
    receipts_[tx.id] = std::move(receipt);
  }
  // Return skipped underpriced transactions to the mempool front in their
  // original order.
  for (auto it = underpriced.rbegin(); it != underpriced.rend(); ++it) {
    mempool_.push_front(std::move(*it));
  }

  Bytes header;
  PutU64(header, block.number);
  PutU64(header, static_cast<uint64_t>(block.timestamp));
  Append(header, HashToBytes(block.parent_hash));
  block.hash = Sha256::Digest(header);
  if (blocks_mined_counter_ != nullptr) {
    blocks_mined_counter_->Add(1);
    txs_mined_counter_->Add(block.tx_ids.size());
    gas_per_block_hist_->Record(static_cast<int64_t>(block.gas_used));
    mempool_depth_gauge_->Set(static_cast<int64_t>(mempool_.size()));
  }
  blocks_.push_back(std::move(block));

  for (const LogEvent& ev : mined_events) {
    auto it = subscribers_.find(ev.contract);
    if (it == subscribers_.end()) continue;
    for (const auto& cb : it->second) cb(ev);
  }
}

Receipt Blockchain::ExecuteLocked(const Transaction& tx, uint64_t block_number,
                                  int64_t block_time) {
  Receipt receipt;
  receipt.tx_id = tx.id;
  receipt.block_number = block_number;
  receipt.block_timestamp = block_time;

  GasMeter meter(tx.gas_limit);
  meter.Charge(gas::kTxBase + gas::CalldataGas(tx.calldata));

  // Move the value up front (refunded on revert).
  Wei sender_balance = GetBalanceLocked(tx.from);
  bool value_ok = sender_balance >= tx.value;
  if (value_ok) {
    SetBalanceLocked(tx.from, sender_balance - tx.value);
    SetBalanceLocked(tx.to, GetBalanceLocked(tx.to) + tx.value);
  }

  bool reverted = false;
  std::string reason;
  std::vector<LogEvent> events;
  if (!value_ok) {
    reverted = true;
    reason = "insufficient balance for value transfer";
  } else if (fault_injector_.ShouldInject(FaultType::kRevertTx)) {
    // Forced revert: the transaction mines and pays gas but its state
    // changes are rolled back, like a transient contract-state race.
    reverted = true;
    reason = "fault-injected revert";
  } else if (!tx.method.empty()) {
    auto it = contracts_.find(tx.to);
    if (it == contracts_.end()) {
      reverted = true;
      reason = "no contract at target";
    } else {
      CallContext ctx(this, tx.to, tx.from, tx.value, block_number, block_time,
                      &meter, /*read_only=*/false);
      Result<Bytes> result = it->second->Call(ctx, tx.method, tx.calldata);
      if (!result.ok()) {
        reverted = true;
        reason = result.status().ToString();
      } else {
        events = std::move(ctx.staged_events());
        for (LogEvent& ev : events) ev.tx_id = tx.id;
      }
    }
  }

  if (meter.ExceededLimit()) {
    reverted = true;
    reason = "out of gas";
    events.clear();
  }

  if (reverted && value_ok) {
    // Refund the value transfer; gas is still consumed.
    SetBalanceLocked(tx.to, GetBalanceLocked(tx.to) - tx.value);
    SetBalanceLocked(tx.from, GetBalanceLocked(tx.from) + tx.value);
  }

  if (reverted && txs_reverted_counter_ != nullptr) {
    txs_reverted_counter_->Add(1);
  }
  receipt.success = !reverted;
  receipt.revert_reason = reason;
  receipt.gas_used = std::min(meter.used(), tx.gas_limit);
  // Bidding transactions pay their bid; market orders pay the block price.
  Wei paid_price =
      tx.gas_price_bid.IsZero() ? current_gas_price_ : tx.gas_price_bid;
  receipt.fee = U256(receipt.gas_used) * paid_price;
  receipt.events = std::move(events);

  // Charge the fee (sender was checked to afford gas_limit at submission,
  // but balance may have changed; clamp to available funds).
  Wei balance = GetBalanceLocked(tx.from);
  Wei fee = receipt.fee < balance ? receipt.fee : balance;
  SetBalanceLocked(tx.from, balance - fee);
  fees_paid_[tx.from] = fees_paid_[tx.from] + fee;
  gas_used_[tx.from] += receipt.gas_used;
  return receipt;
}

Result<Receipt> Blockchain::GetReceipt(TxId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = receipts_.find(id);
  if (it == receipts_.end()) {
    return Status::NotFound("transaction not yet mined");
  }
  return it->second;
}

bool Blockchain::IsConfirmed(TxId id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = receipts_.find(id);
  if (it == receipts_.end()) return false;
  return blocks_.back().number >=
         it->second.block_number + static_cast<uint64_t>(config_.confirmations);
}

Result<Receipt> Blockchain::WaitForReceipt(TxId id) {
  // Bound the wait: a submitted transaction is mined in the next block,
  // so confirmations + 2 intervals always suffice.
  for (int i = 0; i < config_.confirmations + 3; ++i) {
    if (IsConfirmed(id)) break;
    clock_->AdvanceSeconds(config_.block_interval_seconds);
    PumpUntilNow();
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = receipts_.find(id);
  if (it == receipts_.end()) {
    return Status::NotFound("transaction was never mined");
  }
  return it->second;
}

uint64_t Blockchain::HeadNumber() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return blocks_.back().number;
}

void Blockchain::SubscribeEvents(const Address& contract,
                                 std::function<void(const LogEvent&)> callback) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  subscribers_[contract].push_back(std::move(callback));
}

Wei Blockchain::GetBalanceLocked(const Address& a) const {
  auto it = balances_.find(a);
  return it == balances_.end() ? Wei() : it->second;
}

void Blockchain::SetBalanceLocked(const Address& a, const Wei& v) {
  balances_[a] = v;
}

}  // namespace wedge
