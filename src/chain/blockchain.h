#ifndef WEDGEBLOCK_CHAIN_BLOCKCHAIN_H_
#define WEDGEBLOCK_CHAIN_BLOCKCHAIN_H_

#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "chain/contract.h"
#include "chain/fault_injector.h"
#include "chain/types.h"
#include "common/clock.h"
#include "common/random.h"

namespace wedge {

/// Simulated-chain configuration. Defaults approximate the Ethereum
/// networks the paper deployed on (Ropsten): 13-second blocks and a
/// 30M block gas limit.
struct ChainConfig {
  int64_t block_interval_seconds = 13;
  uint64_t block_gas_limit = 30'000'000;
  /// Price charged per unit of gas.
  Wei gas_price = GweiToWei(100);
  /// Per-block gas-price fluctuation as a fraction of gas_price (the
  /// paper's footnote 7 notes Ropsten fee fluctuation): each block's
  /// effective price is gas_price * (1 +/- U[0, volatility]). 0 = fixed.
  double gas_price_volatility = 0.0;
  /// Seed for the price walk (deterministic runs).
  uint64_t price_seed = 0xFEE;
  /// Blocks that must be mined on top before a transaction counts as
  /// confirmed. 3 extra blocks over a 13s interval yields the ~43s
  /// average stage-2 commitment latency reported in the paper (§6.3).
  int confirmations = 3;
  /// Default per-transaction gas cap when Transaction.gas_limit == 0.
  uint64_t default_tx_gas_limit = 10'000'000;
  /// Chain-fault injection (all probabilities default to 0 = no faults);
  /// tests script deterministic faults via Blockchain::fault_injector().
  FaultConfig faults;
};

/// A discrete-event simulated Ethereum-like blockchain.
///
/// The chain runs on a SimClock: callers advance the clock (directly or
/// via WaitForReceipt) and call PumpUntilNow() to mine the blocks whose
/// boundaries have passed. Transactions execute with Ethereum-schedule
/// gas metering against natively-hosted Contract objects.
///
/// Thread-compatible: all public methods take an internal lock, so the
/// Offchain Node's background stage-2 submitter may share the chain with
/// client threads.
class Blockchain {
 public:
  /// With `telemetry`, the chain keeps a `wedge.chain.mempool_depth`
  /// gauge, a `wedge.chain.gas_per_block` histogram, and
  /// blocks_mined / txs_mined / txs_reverted counters up to date, and
  /// wires the same sink into its fault injector.
  Blockchain(const ChainConfig& config, SimClock* clock,
             Telemetry* telemetry = nullptr);

  Blockchain(const Blockchain&) = delete;
  Blockchain& operator=(const Blockchain&) = delete;

  /// --- Accounts ---

  /// Creates (or tops up) an externally-owned account.
  void Fund(const Address& account, const Wei& amount);
  Wei BalanceOf(const Address& account) const;
  /// Cumulative transaction fees paid by an account (for cost reporting).
  Wei TotalFeesPaid(const Address& account) const;

  /// --- Contracts ---

  /// Deploys a contract owned by `owner` with an optional endowment moved
  /// from the owner's balance. Deployment is processed synchronously
  /// (setup phase is not part of the paper's measured path) but charges
  /// the owner creation gas. Returns the new contract's address.
  Result<Address> Deploy(const Address& owner,
                         std::unique_ptr<Contract> contract,
                         const Wei& endowment = Wei());

  /// True if a contract is deployed at `address`.
  bool HasContract(const Address& address) const;

  /// Read-only call (eth_call): free, does not mine, no state changes.
  Result<Bytes> Call(const Address& contract, std::string_view method,
                     const Bytes& args) const;

  /// --- Transactions ---

  /// Validates and enqueues a transaction. The sender must hold
  /// value + gas_limit * gas_price. Returns the assigned TxId.
  Result<TxId> Submit(Transaction tx);

  /// Mines all blocks whose boundary time has passed on the SimClock.
  void PumpUntilNow();

  /// Receipt of a mined transaction; NotFound while pending.
  Result<Receipt> GetReceipt(TxId id) const;

  /// True once the transaction's block has `confirmations` blocks on top.
  bool IsConfirmed(TxId id) const;

  /// Advances the SimClock and mines until `id` is confirmed, then
  /// returns its receipt. This models a client synchronously waiting for
  /// on-chain commitment.
  Result<Receipt> WaitForReceipt(TxId id);

  /// --- Introspection ---

  uint64_t HeadNumber() const;
  const ChainConfig& config() const { return config_; }
  SimClock* clock() { return clock_; }
  /// The chain's fault injector: script schedules / read stats here.
  FaultInjector* fault_injector() { return &fault_injector_; }
  /// Number of transactions waiting in the mempool.
  size_t MempoolSize() const;
  /// Gas price charged in the current head block (fluctuates when
  /// gas_price_volatility > 0).
  Wei CurrentGasPrice() const;

  /// Registers a callback for every event emitted by `contract` (invoked
  /// at mining time).
  void SubscribeEvents(const Address& contract,
                       std::function<void(const LogEvent&)> callback);

  /// Total gas consumed by all mined transactions from `account`.
  uint64_t TotalGasUsed(const Address& account) const;

  /// Internal: read-only nested call used by CallContext::StaticCall.
  Result<Bytes> StaticCallInternal(const Address& contract,
                                   std::string_view method, const Bytes& args,
                                   GasMeter* gas) const;

  /// Internal: moves ether out of a contract's balance (CallContext).
  Status TransferFromContract(const Address& contract, const Address& to,
                              const Wei& amount);

 private:
  struct PendingTx {
    Transaction tx;
    /// Mempool eviction deadline (block number); 0 = never evicted.
    uint64_t evict_at_block = 0;
  };

  // All private methods assume mu_ is held.
  void MineBlockLocked(int64_t block_time);
  Receipt ExecuteLocked(const Transaction& tx, uint64_t block_number,
                        int64_t block_time);
  Wei GetBalanceLocked(const Address& a) const;
  void SetBalanceLocked(const Address& a, const Wei& v);
  Result<Bytes> CallLocked(const Address& contract, std::string_view method,
                           const Bytes& args, GasMeter* gas) const;

  const ChainConfig config_;
  SimClock* const clock_;
  Telemetry* const telemetry_;
  // Resolved once at construction; null when telemetry_ is null.
  Counter* blocks_mined_counter_ = nullptr;
  Counter* txs_mined_counter_ = nullptr;
  Counter* txs_reverted_counter_ = nullptr;
  Gauge* mempool_depth_gauge_ = nullptr;
  Histogram* gas_per_block_hist_ = nullptr;

  // Recursive: contract execution re-enters the chain for static calls
  // and balance transfers while a transaction is being executed.
  mutable std::recursive_mutex mu_;
  std::unordered_map<Address, Wei, AddressHasher> balances_;
  std::unordered_map<Address, uint64_t, AddressHasher> nonces_;
  std::unordered_map<Address, Wei, AddressHasher> fees_paid_;
  std::unordered_map<Address, uint64_t, AddressHasher> gas_used_;
  std::unordered_map<Address, std::unique_ptr<Contract>, AddressHasher>
      contracts_;
  std::deque<PendingTx> mempool_;
  std::unordered_map<TxId, Receipt> receipts_;
  std::vector<Block> blocks_;
  std::unordered_map<Address, std::vector<std::function<void(const LogEvent&)>>,
                     AddressHasher>
      subscribers_;
  TxId next_tx_id_ = 1;
  int64_t genesis_time_ = 0;
  uint64_t deploy_counter_ = 0;
  Wei current_gas_price_;
  Rng price_rng_;
  FaultInjector fault_injector_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CHAIN_BLOCKCHAIN_H_
