#include "chain/contract.h"

#include "chain/blockchain.h"

namespace wedge {

CallContext::CallContext(Blockchain* chain, Address self, Address sender,
                         Wei value, uint64_t block_number,
                         int64_t block_timestamp, GasMeter* gas,
                         bool read_only)
    : chain_(chain),
      self_(self),
      sender_(sender),
      value_(value),
      block_number_(block_number),
      block_timestamp_(block_timestamp),
      gas_(gas),
      read_only_(read_only) {}

void CallContext::Emit(std::string name, Bytes payload) {
  if (read_only_) return;
  gas_->ChargeLog(/*topics=*/1, payload.size());
  LogEvent ev;
  ev.contract = self_;
  ev.name = std::move(name);
  ev.payload = std::move(payload);
  ev.block_number = block_number_;
  staged_events_.push_back(std::move(ev));
}

Status CallContext::TransferOut(const Address& to, const Wei& amount) {
  if (read_only_) {
    return Status::FailedPrecondition("transfer in read-only call");
  }
  gas_->Charge(gas::kCallStipend + gas::kColdAccountAccess);
  return chain_->TransferFromContract(self_, to, amount);
}

Wei CallContext::SelfBalance() const { return chain_->BalanceOf(self_); }

Result<Bytes> CallContext::StaticCall(const Address& contract,
                                      std::string_view method,
                                      const Bytes& args) {
  gas_->Charge(gas::kColdAccountAccess);
  return chain_->StaticCallInternal(contract, method, args, gas_);
}

}  // namespace wedge
