#ifndef WEDGEBLOCK_CHAIN_CONTRACT_H_
#define WEDGEBLOCK_CHAIN_CONTRACT_H_

#include <functional>
#include <string>
#include <string_view>

#include "chain/gas.h"
#include "chain/types.h"

namespace wedge {

class Blockchain;

/// Per-call execution context handed to a contract method — the analogue
/// of Solidity's msg/block globals plus the host interfaces a method needs
/// (event emission, ether transfer, static calls into other contracts).
class CallContext {
 public:
  CallContext(Blockchain* chain, Address self, Address sender, Wei value,
              uint64_t block_number, int64_t block_timestamp, GasMeter* gas,
              bool read_only);

  const Address& sender() const { return sender_; }       ///< msg.sender
  const Wei& value() const { return value_; }             ///< msg.value
  uint64_t block_number() const { return block_number_; }
  int64_t block_timestamp() const { return block_timestamp_; }
  const Address& self() const { return self_; }
  GasMeter& gas() { return *gas_; }
  bool read_only() const { return read_only_; }

  /// Emits an event; collected into the transaction receipt and delivered
  /// to subscribers when the block is mined. No-op in read-only calls.
  void Emit(std::string name, Bytes payload);

  /// Transfers `amount` out of the contract's balance. Fails without
  /// mutating anything when the balance is insufficient or the call is
  /// read-only.
  Status TransferOut(const Address& to, const Wei& amount);

  /// Current balance of the executing contract.
  Wei SelfBalance() const;

  /// Read-only call into another deployed contract (e.g. the Punishment
  /// contract consulting the Root Record contract).
  Result<Bytes> StaticCall(const Address& contract, std::string_view method,
                           const Bytes& args);

  /// Events staged by this call (drained by the chain into the receipt).
  std::vector<LogEvent>& staged_events() { return staged_events_; }

 private:
  Blockchain* chain_;
  Address self_;
  Address sender_;
  Wei value_;
  uint64_t block_number_;
  int64_t block_timestamp_;
  GasMeter* gas_;
  bool read_only_;
  std::vector<LogEvent> staged_events_;
};

/// Base class for native "smart contracts" hosted by the simulated chain.
///
/// Instead of EVM bytecode, contracts are C++ objects dispatching on a
/// method name; gas is metered through CallContext/GasMeter using the
/// Ethereum schedule so monetary-cost results track a real deployment.
///
/// Contract methods MUST validate all failure conditions before mutating
/// their state: the host does not snapshot C++ object state, so a revert
/// after mutation would leak the mutation (see DESIGN.md).
class Contract {
 public:
  virtual ~Contract() = default;

  /// Human-readable contract name (diagnostics only).
  virtual std::string_view Name() const = 0;

  /// Dispatches a method call. Returns the ABI-style encoded return value,
  /// Status::Reverted for a require()-style failure, or other error codes
  /// for malformed calldata.
  virtual Result<Bytes> Call(CallContext& ctx, std::string_view method,
                             const Bytes& args) = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CHAIN_CONTRACT_H_
