#include "chain/fault_injector.h"

namespace wedge {

namespace {

const char* FaultName(FaultType type) {
  switch (type) {
    case FaultType::kDropTx:
      return "drop_tx";
    case FaultType::kEvictTx:
      return "evict_tx";
    case FaultType::kRevertTx:
      return "revert_tx";
    case FaultType::kDelayBlock:
      return "delay_block";
    case FaultType::kGasSpike:
      return "gas_spike";
  }
  return "?";
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, Telemetry* telemetry)
    : config_(config), telemetry_(telemetry), rng_(config.seed) {}

void FaultInjector::Schedule(FaultType type, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count > 0) scheduled_[static_cast<int>(type)] += count;
}

int FaultInjector::ScheduledCount(FaultType type) const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduled_[static_cast<int>(type)];
}

bool FaultInjector::ShouldInject(FaultType type) {
  std::lock_guard<std::mutex> lock(mu_);
  int& armed = scheduled_[static_cast<int>(type)];
  if (armed > 0) {
    --armed;
    CountInjection(type);
    return true;
  }
  double p = ProbabilityFor(type);
  if (p > 0.0 && rng_.Bernoulli(p)) {
    CountInjection(type);
    return true;
  }
  return false;
}

void FaultInjector::RecordEviction() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.txs_evicted;
  if (telemetry_ != nullptr) {
    telemetry_->metrics.GetCounter("wedge.faults.txs_evicted")->Add(1);
    telemetry_->tracer.Event(0, trace_stage::kFault, 1, "type=evict_tx");
  }
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double FaultInjector::ProbabilityFor(FaultType type) const {
  switch (type) {
    case FaultType::kDropTx:
      return config_.drop_probability;
    case FaultType::kEvictTx:
      return config_.evict_probability;
    case FaultType::kRevertTx:
      return config_.revert_probability;
    case FaultType::kDelayBlock:
      return config_.delay_probability;
    case FaultType::kGasSpike:
      return config_.gas_spike_probability;
  }
  return 0.0;
}

void FaultInjector::CountInjection(FaultType type) {
  const char* counter_name = nullptr;
  switch (type) {
    case FaultType::kDropTx:
      ++stats_.txs_dropped;
      counter_name = "wedge.faults.txs_dropped";
      break;
    case FaultType::kEvictTx:
      // The decision is counted when the eviction actually happens
      // (RecordEviction): a tagged transaction that mines before its
      // deadline was never evicted.
      break;
    case FaultType::kRevertTx:
      ++stats_.txs_reverted;
      counter_name = "wedge.faults.txs_reverted";
      break;
    case FaultType::kDelayBlock:
      ++stats_.blocks_delayed;
      counter_name = "wedge.faults.blocks_delayed";
      break;
    case FaultType::kGasSpike:
      ++stats_.gas_spikes;
      counter_name = "wedge.faults.gas_spikes";
      break;
  }
  if (telemetry_ != nullptr && counter_name != nullptr) {
    telemetry_->metrics.GetCounter(counter_name)->Add(1);
    telemetry_->tracer.Event(0, trace_stage::kFault, 1,
                             std::string("type=") + FaultName(type));
  }
}

}  // namespace wedge
