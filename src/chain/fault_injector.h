#ifndef WEDGEBLOCK_CHAIN_FAULT_INJECTOR_H_
#define WEDGEBLOCK_CHAIN_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <mutex>

#include "common/random.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Chain-side fault classes the injector can produce. Each models a
/// failure mode a real Ethereum deployment exposes stage-2 traffic to —
/// the hazards WedgeBlock's Punishment/liveness machinery (paper §4.5–4.7)
/// must survive without losing digests.
enum class FaultType {
  /// A submitted transaction is acknowledged (gets a TxId) but silently
  /// never enters the mempool — e.g. a dishonest or crashing RPC node.
  kDropTx = 0,
  /// The transaction enters the mempool but is evicted after
  /// `evict_after_blocks` blocks without being mined (mempool churn).
  kEvictTx,
  /// The transaction mines but its execution is forced to revert
  /// (e.g. transient contract state races); gas is still consumed.
  kRevertTx,
  /// One block boundary mines an empty block: every pending transaction's
  /// inclusion is delayed by at least one interval (miner hiccup).
  kDelayBlock,
  /// One block's gas price is multiplied by `gas_spike_multiplier`;
  /// transactions bidding below the spiked price stay pending.
  kGasSpike,
};

inline constexpr int kFaultTypeCount = 5;

/// Per-fault-type probabilities plus shared knobs. All probabilities
/// default to 0, so a default-constructed config injects nothing.
struct FaultConfig {
  uint64_t seed = 0xFA17;
  double drop_probability = 0.0;
  double evict_probability = 0.0;
  double revert_probability = 0.0;
  double delay_probability = 0.0;
  double gas_spike_probability = 0.0;
  /// Blocks an evicted transaction survives in the mempool before removal.
  int evict_after_blocks = 2;
  /// Factor applied to the block gas price during a spike.
  double gas_spike_multiplier = 10.0;
};

/// Running counters of injected faults, for tests and experiment reports.
struct FaultStats {
  uint64_t txs_dropped = 0;
  uint64_t txs_evicted = 0;
  uint64_t txs_reverted = 0;
  uint64_t blocks_delayed = 0;
  uint64_t gas_spikes = 0;
};

/// A seeded, deterministic fault injector consulted by the Blockchain at
/// well-defined hook points (submission, mining, execution).
///
/// Two injection mechanisms compose:
///  - probabilities from FaultConfig (steady-state background noise), and
///  - a scriptable schedule: `Schedule(FaultType::kDropTx, 2)` arms the
///    next two drop decisions regardless of probability, so tests can say
///    "drop the next 2 stage-2 transactions" deterministically.
///
/// Thread-safe: the chain calls in under its own lock, tests may script
/// schedules concurrently.
class FaultInjector {
 public:
  /// With `telemetry`, every injected fault bumps a
  /// `wedge.faults.<kind>` registry counter and emits a `fault` trace
  /// event, so experiment reports can compare injected vs observed
  /// fault counts without reaching into FaultStats.
  explicit FaultInjector(const FaultConfig& config,
                         Telemetry* telemetry = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms the next `count` decisions of `type` to inject unconditionally.
  /// Scheduled faults take precedence over (and do not consume) the
  /// configured probability roll.
  void Schedule(FaultType type, int count);

  /// Scheduled-but-not-yet-consumed injections for `type`.
  int ScheduledCount(FaultType type) const;

  /// Decides one injection opportunity: consumes a scheduled slot if one
  /// is armed, otherwise rolls the configured probability. Updates stats.
  bool ShouldInject(FaultType type);

  /// Counts a fault whose effect materializes later than its decision
  /// (mempool eviction is decided at submission but happens at mining).
  void RecordEviction();

  FaultStats stats() const;
  const FaultConfig& config() const { return config_; }

 private:
  double ProbabilityFor(FaultType type) const;
  void CountInjection(FaultType type);

  const FaultConfig config_;
  Telemetry* const telemetry_;
  mutable std::mutex mu_;
  Rng rng_;
  std::array<int, kFaultTypeCount> scheduled_{};
  FaultStats stats_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CHAIN_FAULT_INJECTOR_H_
