#include "chain/gas.h"

namespace wedge {
namespace gas {

uint64_t CalldataGas(const Bytes& data) {
  uint64_t total = 0;
  for (uint8_t b : data) {
    total += (b == 0) ? kCalldataZeroByte : kCalldataNonZeroByte;
  }
  return total;
}

uint64_t Sha256Gas(size_t len) {
  return kSha256Base + kSha256PerWord * ((len + 31) / 32);
}

uint64_t StorageWords(size_t len) { return (len + 31) / 32; }

}  // namespace gas
}  // namespace wedge
