#ifndef WEDGEBLOCK_CHAIN_GAS_H_
#define WEDGEBLOCK_CHAIN_GAS_H_

#include <cstdint>

#include "common/bytes.h"

namespace wedge {

/// Ethereum gas schedule (the subset the simulated contracts exercise).
/// Values follow the mainline schedule the paper's Ropsten deployment paid:
/// storing data on-chain is dominated by SSTORE (20k gas per fresh 32-byte
/// word) and calldata (16 gas per non-zero byte).
namespace gas {

constexpr uint64_t kTxBase = 21'000;
constexpr uint64_t kCalldataZeroByte = 4;
constexpr uint64_t kCalldataNonZeroByte = 16;
constexpr uint64_t kSstoreSet = 20'000;    ///< Fresh storage slot write.
constexpr uint64_t kSstoreReset = 5'000;   ///< Overwrite existing slot.
constexpr uint64_t kSload = 2'100;
constexpr uint64_t kLogBase = 375;
constexpr uint64_t kLogTopic = 375;
constexpr uint64_t kLogDataByte = 8;
constexpr uint64_t kEcrecover = 3'000;     ///< Precompile cost.
constexpr uint64_t kSha256Base = 60;
constexpr uint64_t kSha256PerWord = 12;
constexpr uint64_t kKeccakBase = 30;
constexpr uint64_t kKeccakPerWord = 6;
constexpr uint64_t kContractCreation = 32'000;
constexpr uint64_t kCallStipend = 2'300;
constexpr uint64_t kColdAccountAccess = 2'600;

/// Intrinsic calldata cost of a payload (4 gas per zero byte, 16 otherwise).
uint64_t CalldataGas(const Bytes& data);

/// SHA-256 precompile cost for `len` input bytes.
uint64_t Sha256Gas(size_t len);

/// Number of 32-byte storage words needed for `len` bytes.
uint64_t StorageWords(size_t len);

}  // namespace gas

/// Accumulates gas during contract execution. The chain seeds it with the
/// intrinsic cost and enforces the transaction gas limit after execution
/// (contracts are expected to validate before mutating state, so an
/// out-of-gas result reverts the whole call).
class GasMeter {
 public:
  explicit GasMeter(uint64_t limit) : limit_(limit) {}

  void Charge(uint64_t amount) { used_ += amount; }
  void ChargeSstore(bool fresh_slot) {
    Charge(fresh_slot ? gas::kSstoreSet : gas::kSstoreReset);
  }
  void ChargeSload() { Charge(gas::kSload); }
  /// Cost of emitting an event with `topics` topics and `data_len` bytes.
  void ChargeLog(int topics, size_t data_len) {
    Charge(gas::kLogBase + gas::kLogTopic * static_cast<uint64_t>(topics) +
           gas::kLogDataByte * static_cast<uint64_t>(data_len));
  }

  uint64_t used() const { return used_; }
  uint64_t limit() const { return limit_; }
  bool ExceededLimit() const { return used_ > limit_; }

 private:
  uint64_t limit_;
  uint64_t used_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CHAIN_GAS_H_
