#ifndef WEDGEBLOCK_CHAIN_TYPES_H_
#define WEDGEBLOCK_CHAIN_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "crypto/ecdsa.h"
#include "crypto/u256.h"

namespace wedge {

/// Currency amounts are in wei (1 ETH = 1e18 wei), as 256-bit integers.
using Wei = U256;

/// Wei constants for the common denominations.
Wei EthToWei(uint64_t eth);
Wei GweiToWei(uint64_t gwei);
/// Formats a wei amount as a decimal ETH string (e.g. "1.25e-3" scale kept
/// as fixed point with 18 decimals, trailing zeros trimmed).
std::string WeiToEthString(const Wei& wei);
/// Wei -> double ETH (lossy; for reporting only).
double WeiToEthDouble(const Wei& wei);

/// Monotonically increasing transaction identifier assigned at submission.
using TxId = uint64_t;

/// A transaction on the simulated chain. Plain value transfers leave
/// `method` empty; contract calls name the method and carry canonical
/// calldata that the target contract decodes.
struct Transaction {
  Address from;
  Address to;
  Wei value;
  std::string method;  ///< Empty for plain transfers.
  Bytes calldata;
  uint64_t gas_limit = 0;  ///< 0 = use the chain's default cap.
  /// Gas-price bid in wei. 0 = market order: always included, pays the
  /// block's current price. Non-zero = legacy-Ethereum style bid: the
  /// transaction waits in the mempool while the block price exceeds the
  /// bid, and pays the bid when mined (stage-2 retry fee bumping).
  Wei gas_price_bid;
  // Filled in by the chain at submission:
  TxId id = 0;
  uint64_t nonce = 0;
  Micros submit_time = 0;
};

/// An event emitted by a contract (Solidity-style log).
struct LogEvent {
  Address contract;
  std::string name;
  Bytes payload;
  uint64_t block_number = 0;
  TxId tx_id = 0;
};

/// Execution result of a mined transaction.
struct Receipt {
  TxId tx_id = 0;
  bool success = false;
  std::string revert_reason;
  uint64_t gas_used = 0;
  Wei fee;                     ///< gas_used * gas_price.
  uint64_t block_number = 0;
  int64_t block_timestamp = 0; ///< Seconds (Solidity block.timestamp).
  std::vector<LogEvent> events;
};

/// A mined block.
struct Block {
  uint64_t number = 0;
  int64_t timestamp = 0;  ///< Seconds.
  Hash256 parent_hash{};
  Hash256 hash{};
  std::vector<TxId> tx_ids;
  uint64_t gas_used = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CHAIN_TYPES_H_
