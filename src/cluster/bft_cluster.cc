#include "cluster/bft_cluster.h"

#include <algorithm>
#include <unordered_set>

namespace wedge {

namespace {

/// Endpoint name of replica i on the bus.
std::string ReplicaEndpoint(uint32_t i) {
  return "replica-" + std::to_string(i);
}

constexpr char kPrimaryEndpoint[] = "primary-collector";

}  // namespace

Hash256 RootAckDigest(uint64_t log_id, const Hash256& mroot) {
  Bytes material;
  PutString(material, "wedgeblock-cluster-ack-v1");
  PutU64(material, log_id);
  Append(material, HashToBytes(mroot));
  return Sha256::Digest(material);
}

Bytes QuorumCertificate::Serialize() const {
  Bytes out;
  PutU64(out, log_id);
  Append(out, HashToBytes(mroot));
  PutU32(out, static_cast<uint32_t>(acks.size()));
  for (const RootAck& ack : acks) {
    PutU32(out, ack.replica_index);
    Append(out, ack.signature.Serialize());
  }
  return out;
}

Result<QuorumCertificate> QuorumCertificate::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  QuorumCertificate cert;
  WEDGE_ASSIGN_OR_RETURN(cert.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(cert.mroot, HashFromBytes(root_raw));
  WEDGE_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  if (n > 1024) return Status::InvalidArgument("certificate too large");
  for (uint32_t i = 0; i < n; ++i) {
    RootAck ack;
    WEDGE_ASSIGN_OR_RETURN(ack.replica_index, reader.ReadU32());
    WEDGE_ASSIGN_OR_RETURN(Bytes sig, reader.ReadRaw(65));
    WEDGE_ASSIGN_OR_RETURN(ack.signature, EcdsaSignature::Deserialize(sig));
    cert.acks.push_back(ack);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after certificate");
  }
  return cert;
}

bool VerifyQuorumCertificate(const QuorumCertificate& cert,
                             const std::vector<Address>& members,
                             size_t quorum) {
  Hash256 digest = RootAckDigest(cert.log_id, cert.mroot);
  std::unordered_set<uint32_t> seen;
  size_t valid = 0;
  for (const RootAck& ack : cert.acks) {
    if (ack.replica_index >= members.size()) return false;
    if (!seen.insert(ack.replica_index).second) return false;  // Duplicate.
    if (RecoverSigner(digest, ack.signature) !=
        members[ack.replica_index]) {
      return false;  // Forged co-signature.
    }
    ++valid;
  }
  return valid >= quorum;
}

ClusterReplica::ClusterReplica(uint32_t index, KeyPair key,
                               std::unique_ptr<LogStore> store)
    : index_(index), key_(std::move(key)), store_(std::move(store)) {}

std::optional<RootAck> ClusterReplica::OnPrepare(
    uint64_t log_id, const std::vector<Bytes>& leaves) {
  if (fault_ == ReplicaFault::kCrash) return std::nullopt;

  // Only the next sequential position is acceptable; a replica that
  // already holds this position re-acks its stored root (idempotent
  // re-drive after a view change).
  Hash256 root;
  if (log_id < store_->Size()) {
    auto existing = store_->Get(log_id);
    if (!existing.ok()) return std::nullopt;
    root = existing->mroot;
  } else if (log_id == store_->Size()) {
    auto tree = MerkleTree::Build(leaves);
    if (!tree.ok()) return std::nullopt;
    LogPosition position;
    position.log_id = log_id;
    position.data_list.assign(leaves.begin(), leaves.end());
    position.mroot = tree->Root();
    if (!store_->Append(position).ok()) return std::nullopt;
    root = tree->Root();
  } else {
    return std::nullopt;  // Gap: this replica missed earlier positions.
  }

  if (fault_ == ReplicaFault::kOmitAcks) return std::nullopt;
  if (fault_ == ReplicaFault::kWrongRoot) {
    root[0] ^= 0xFF;  // Equivocating ack; signature check will pass but
                      // the root will not match the honest quorum's.
  }
  RootAck ack;
  ack.replica_index = index_;
  ack.signature = EcdsaSign(key_.private_key(), RootAckDigest(log_id, root));
  return ack;
}

OffchainCluster::OffchainCluster(const ClusterConfig& config, SimClock* clock,
                                 Blockchain* chain,
                                 const Address& root_record_address,
                                 uint64_t seed_base)
    : config_(config),
      clock_(clock),
      chain_(chain),
      root_record_address_(root_record_address),
      bus_(clock, config.network, seed_base) {
  size_t n = 3 * static_cast<size_t>(config.f) + 1;
  replicas_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    replicas_.push_back(std::make_unique<ClusterReplica>(
        static_cast<uint32_t>(i), KeyPair::FromSeed(seed_base + i),
        std::make_unique<MemoryLogStore>()));
  }
}

std::vector<Address> OffchainCluster::MemberAddresses() const {
  std::vector<Address> out;
  out.reserve(replicas_.size());
  for (const auto& r : replicas_) out.push_back(r->address());
  return out;
}

Result<ClusterCommit> OffchainCluster::Append(
    const std::vector<AppendRequest>& requests) {
  if (requests.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  std::vector<Bytes> leaves;
  leaves.reserve(requests.size());
  for (const AppendRequest& r : requests) leaves.push_back(r.Serialize());

  // The position id is fixed across view changes: a failed view may have
  // persisted the position on honest replicas, which simply re-ack their
  // stored root when the next primary re-drives the same id.
  uint64_t log_id = next_log_id_;
  for (int attempt = 0; attempt < config_.max_views; ++attempt) {
    Result<ClusterCommit> commit = TryViewOnce(log_id, leaves, requests);
    if (commit.ok()) {
      ++next_log_id_;
      return commit;
    }
    if (commit.status().code() != Code::kTimeout) return commit;
    // View change: rotate the primary and re-drive.
    ++view_;
  }
  return Status::Unavailable(
      "cluster could not reach quorum within max_views rotations");
}

Result<ClusterCommit> OffchainCluster::TryViewOnce(
    uint64_t log_id, const std::vector<Bytes>& leaves,
    const std::vector<AppendRequest>& batch) {
  ClusterReplica& primary = *replicas_[PrimaryIndex()];

  // Collected acks, keyed by the root they endorsed.
  std::vector<RootAck> acks;
  std::optional<Hash256> primary_root;

  // Register handlers: each replica processes PREPARE and sends its ack
  // back to the primary's collector endpoint.
  for (auto& replica_ptr : replicas_) {
    ClusterReplica* replica = replica_ptr.get();
    bus_.RegisterEndpoint(
        ReplicaEndpoint(replica->index()),
        [this, replica, log_id, &leaves](const std::string& from,
                                         const Bytes& payload) {
          (void)from;
          (void)payload;  // The PREPARE payload is (log_id, leaf count);
                          // leaves ride by reference in-process.
          std::optional<RootAck> ack = replica->OnPrepare(log_id, leaves);
          if (!ack.has_value()) return;
          Bytes wire;
          PutU32(wire, ack->replica_index);
          wedge::Append(wire, ack->signature.Serialize());
          bus_.Send(ReplicaEndpoint(replica->index()), kPrimaryEndpoint,
                    std::move(wire));
        });
  }
  bus_.RegisterEndpoint(
      kPrimaryEndpoint,
      [&acks](const std::string& from, const Bytes& payload) {
        (void)from;
        ByteReader reader(payload);
        auto index = reader.ReadU32();
        auto sig_raw = reader.ReadRaw(65);
        if (!index.ok() || !sig_raw.ok()) return;
        auto sig = EcdsaSignature::Deserialize(sig_raw.value());
        if (!sig.ok()) return;
        acks.push_back(RootAck{index.value(), sig.value()});
      });

  // Broadcast PREPARE. The wire message carries the metadata; the leaf
  // payload bytes are shared in-process (size is still modeled for the
  // link delay via the serialized size).
  Bytes prepare;
  PutU64(prepare, log_id);
  size_t total_bytes = 0;
  for (const Bytes& leaf : leaves) total_bytes += leaf.size();
  PutU64(prepare, total_bytes);
  prepare.resize(prepare.size() + std::min<size_t>(total_bytes, 1 << 20));
  for (auto& replica_ptr : replicas_) {
    bus_.Send(kPrimaryEndpoint, ReplicaEndpoint(replica_ptr->index()),
              prepare);
  }

  // Drive the bus until quorum of matching acks or timeout.
  Micros deadline = clock_->NowMicros() + config_.prepare_timeout;
  auto count_matching = [&]() -> size_t {
    if (log_id >= primary.store().Size()) return 0;
    Hash256 root = primary.store().Get(log_id)->mroot;
    Hash256 digest = RootAckDigest(log_id, root);
    std::unordered_set<uint32_t> seen;
    size_t matching = 0;
    for (const RootAck& ack : acks) {
      if (ack.replica_index >= replicas_.size()) continue;
      // Only a VALID ack claims the replica's slot: a stale ack from an
      // earlier round (still in flight when that round hit quorum) must
      // not shadow the fresh one.
      if (RecoverSigner(digest, ack.signature) !=
          replicas_[ack.replica_index]->address()) {
        continue;
      }
      if (seen.insert(ack.replica_index).second) ++matching;
    }
    return matching;
  };
  while (count_matching() < quorum()) {
    if (clock_->NowMicros() >= deadline) break;
    if (!bus_.Step()) {
      // Nothing in flight and still no quorum: burn the rest of the
      // timeout so the caller rotates the view.
      clock_->SetMicros(deadline);
      break;
    }
    if (clock_->NowMicros() > deadline) clock_->SetMicros(deadline);
  }
  if (count_matching() < quorum()) {
    return Status::Timeout("no quorum in this view");
  }

  // Assemble the certificate from the matching acks.
  Hash256 root = primary.store().Get(log_id)->mroot;
  Hash256 digest = RootAckDigest(log_id, root);
  QuorumCertificate cert;
  cert.log_id = log_id;
  cert.mroot = root;
  std::unordered_set<uint32_t> seen;
  for (const RootAck& ack : acks) {
    if (ack.replica_index >= replicas_.size()) continue;
    if (RecoverSigner(digest, ack.signature) !=
        replicas_[ack.replica_index]->address()) {
      continue;
    }
    if (seen.insert(ack.replica_index).second) cert.acks.push_back(ack);
  }

  // Per-entry stage-1 responses signed by the primary.
  auto tree = MerkleTree::Build(leaves);
  if (!tree.ok()) return tree.status();
  ClusterCommit commit;
  commit.certificate = cert;
  commit.responses.reserve(batch.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    Stage1Response resp;
    resp.entry = leaves[i];
    resp.index = EntryIndex{log_id, static_cast<uint32_t>(i)};
    resp.proof.log_id = log_id;
    resp.proof.mroot = root;
    resp.proof.merkle_proof = tree->Prove(i).value();
    resp.offchain_signature =
        EcdsaSign(primary.key().private_key(), resp.SignedHash());
    commit.responses.push_back(std::move(resp));
  }
  return commit;
}

Result<TxId> OffchainCluster::SubmitStage2(const ClusterCommit& commit) {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Transaction tx;
  tx.from = replicas_[PrimaryIndex()]->address();
  tx.to = root_record_address_;
  tx.method = "updateRecords";
  PutU64(tx.calldata, commit.certificate.log_id);
  PutU32(tx.calldata, 1);
  wedge::Append(tx.calldata, HashToBytes(commit.certificate.mroot));
  return chain_->Submit(tx);
}

Result<Stage1Response> OffchainCluster::ReadOne(const EntryIndex& index) {
  ClusterReplica& primary = *replicas_[PrimaryIndex()];
  WEDGE_ASSIGN_OR_RETURN(LogPosition pos, primary.store().Get(index.log_id));
  if (index.offset >= pos.data_list.size()) {
    return Status::NotFound("entry offset out of range");
  }
  WEDGE_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(pos.data_list));
  Stage1Response resp;
  resp.entry = pos.data_list[index.offset];
  resp.index = index;
  resp.proof.log_id = index.log_id;
  resp.proof.mroot = tree.Root();
  resp.proof.merkle_proof = tree.Prove(index.offset).value();
  resp.offchain_signature =
      EcdsaSign(primary.key().private_key(), resp.SignedHash());
  return resp;
}

}  // namespace wedge
