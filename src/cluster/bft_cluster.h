#ifndef WEDGEBLOCK_CLUSTER_BFT_CLUSTER_H_
#define WEDGEBLOCK_CLUSTER_BFT_CLUSTER_H_

#include <memory>
#include <optional>

#include "chain/blockchain.h"
#include "core/data_model.h"
#include "net/sim_network.h"
#include "storage/log_store.h"

namespace wedge {

/// Liveness hardening for the Offchain Node (paper §4.7): instead of one
/// machine, a cluster of n = 3f+1 replicas acts collectively as the
/// Offchain Node, tolerating up to f byzantine members (omission,
/// crash, or equivocation). A batch is *cluster-committed* when 2f+1
/// replicas have persisted the log position and co-signed its (log_id,
/// MRoot) pair — the resulting QuorumCertificate replaces the single
/// node's signature as the client's stage-1 evidence, and any member may
/// submit the digest on-chain (the Root Record contract authorizes the
/// whole membership).
///
/// The protocol is a single-shot ordered broadcast (the chain itself is
/// the source of final ordering; replicas only need agreement per log
/// position):
///   1. client hands the batch to the current primary (view % n);
///   2. primary assigns the next log_id, builds the Merkle tree and
///      broadcasts PREPARE(log_id, leaves);
///   3. each replica recomputes the root, appends to its local store and
///      replies ACK(log_id, root, signature);
///   4. with 2f+1 matching ACKs the primary assembles the certificate
///      and the per-entry stage-1 responses;
///   5. on timeout the client advances the view (next primary re-drives
///      the same log position — ids, not views, key the log).
///
/// All messaging runs over the deterministic MessageBus/SimClock, so
/// omission attacks are injected as message drops or muted replicas.

/// Per-replica fault injection.
enum class ReplicaFault {
  kNone,
  kCrash,       ///< Never responds (extreme omission, §4.7).
  kOmitAcks,    ///< Receives and stores, but never acknowledges.
  kWrongRoot,   ///< Acks a corrupted root (its signature is excluded).
};

/// One co-signature over (log_id, mroot).
struct RootAck {
  uint32_t replica_index = 0;
  EcdsaSignature signature;
};

/// 2f+1 co-signatures: the cluster's stage-1 commitment proof for one
/// log position.
struct QuorumCertificate {
  uint64_t log_id = 0;
  Hash256 mroot{};
  std::vector<RootAck> acks;

  Bytes Serialize() const;
  static Result<QuorumCertificate> Deserialize(const Bytes& b);
};

/// The byte string each replica signs for an ack.
Hash256 RootAckDigest(uint64_t log_id, const Hash256& mroot);

/// Verifies a certificate against the cluster membership: at least
/// `quorum` valid signatures from distinct replicas.
bool VerifyQuorumCertificate(const QuorumCertificate& cert,
                             const std::vector<Address>& members,
                             size_t quorum);

/// A batch cluster-committed at stage 1: the certificate plus per-entry
/// Merkle proofs (each verifiable against cert.mroot).
struct ClusterCommit {
  QuorumCertificate certificate;
  std::vector<Stage1Response> responses;  ///< Signed by the primary.
};

/// One replica's state and message handlers.
class ClusterReplica {
 public:
  ClusterReplica(uint32_t index, KeyPair key,
                 std::unique_ptr<LogStore> store);

  uint32_t index() const { return index_; }
  const Address& address() const { return key_.address(); }
  const KeyPair& key() const { return key_; }
  LogStore& store() { return *store_; }

  void set_fault(ReplicaFault fault) { fault_ = fault; }
  ReplicaFault fault() const { return fault_; }

  /// Handles PREPARE: validates, persists, returns the ack to send (or
  /// nullopt under a fault).
  std::optional<RootAck> OnPrepare(uint64_t log_id,
                                   const std::vector<Bytes>& leaves);

 private:
  const uint32_t index_;
  const KeyPair key_;
  std::unique_ptr<LogStore> store_;
  ReplicaFault fault_ = ReplicaFault::kNone;
};

struct ClusterConfig {
  int f = 1;                      ///< Tolerated byzantine replicas; n=3f+1.
  Micros prepare_timeout = 500'000;  ///< Per-view timeout (sim time).
  int max_views = 8;              ///< Give up after this many rotations.
  NetworkConfig network;          ///< Replica interconnect.
};

/// The client-facing cluster: owns the replicas, drives the quorum
/// protocol over a MessageBus on the SimClock, and optionally submits
/// stage-2 digests to a chain.
class OffchainCluster {
 public:
  /// `chain` may be null (no stage-2). Replica keys derive from
  /// `seed_base`.
  OffchainCluster(const ClusterConfig& config, SimClock* clock,
                  Blockchain* chain, const Address& root_record_address,
                  uint64_t seed_base = 0xBF7);

  size_t size() const { return replicas_.size(); }
  size_t quorum() const { return 2 * config_.f + 1; }
  uint32_t view() const { return view_; }
  /// Current primary's replica index.
  uint32_t PrimaryIndex() const { return view_ % replicas_.size(); }

  /// Addresses of all members (the Root Record authorization set).
  std::vector<Address> MemberAddresses() const;

  ClusterReplica& replica(size_t i) { return *replicas_[i]; }

  /// Cluster-commits one batch: drives PREPARE/ACK rounds, rotating the
  /// view on timeout, until a quorum certificate forms or max_views is
  /// exhausted (Unavailable).
  Result<ClusterCommit> Append(const std::vector<AppendRequest>& requests);

  /// Submits the digest of `commit` on-chain from the current primary.
  Result<TxId> SubmitStage2(const ClusterCommit& commit);

  /// Reads one entry with a fresh primary-signed response (the QC for
  /// its position remains the authoritative root evidence).
  Result<Stage1Response> ReadOne(const EntryIndex& index);

 private:
  Result<ClusterCommit> TryViewOnce(uint64_t log_id,
                                    const std::vector<Bytes>& leaves,
                                    const std::vector<AppendRequest>& batch);

  const ClusterConfig config_;
  SimClock* const clock_;
  Blockchain* const chain_;
  const Address root_record_address_;
  MessageBus bus_;
  std::vector<std::unique_ptr<ClusterReplica>> replicas_;
  uint32_t view_ = 0;
  uint64_t next_log_id_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CLUSTER_BFT_CLUSTER_H_
