#include "common/bytes.h"

namespace wedge {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const Bytes& SharedBytes::EmptyBytes() {
  static const Bytes* empty = new Bytes();
  return *empty;
}

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

std::string Hex0x(const Bytes& b) { return "0x" + HexEncode(b); }

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void Append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes Concat(std::initializer_list<const Bytes*> parts) {
  size_t total = 0;
  for (const Bytes* p : parts) total += p->size();
  Bytes out;
  out.reserve(total);
  for (const Bytes* p : parts) Append(out, *p);
  return out;
}

void PutU32(Bytes& dst, uint32_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 24));
  dst.push_back(static_cast<uint8_t>(v >> 16));
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

void PutU64(Bytes& dst, uint64_t v) {
  PutU32(dst, static_cast<uint32_t>(v >> 32));
  PutU32(dst, static_cast<uint32_t>(v));
}

void PutBytes(Bytes& dst, const Bytes& b) {
  PutU32(dst, static_cast<uint32_t>(b.size()));
  Append(dst, b);
}

void PutString(Bytes& dst, std::string_view s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  Append(dst, s);
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Status::OutOfRange("truncated u32");
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  WEDGE_ASSIGN_OR_RETURN(uint32_t hi, ReadU32());
  WEDGE_ASSIGN_OR_RETURN(uint32_t lo, ReadU32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<Bytes> ByteReader::ReadBytes() {
  WEDGE_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  return ReadRaw(len);
}

Result<std::string> ByteReader::ReadString() {
  WEDGE_ASSIGN_OR_RETURN(Bytes b, ReadBytes());
  return ToString(b);
}

Result<Bytes> ByteReader::ReadRaw(size_t n) {
  if (remaining() < n) return Status::OutOfRange("truncated bytes");
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace wedge
