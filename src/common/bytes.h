#ifndef WEDGEBLOCK_COMMON_BYTES_H_
#define WEDGEBLOCK_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace wedge {

/// Raw byte buffer used throughout the codebase for payloads, hashes,
/// signatures and serialized messages.
using Bytes = std::vector<uint8_t>;

/// Immutable, cheaply copyable byte buffer with shared ownership.
///
/// The stage-1 hot path seals each ~1 KB payload exactly once but needs it
/// in three places at the same time (the log position, the Merkle leaves
/// and the signed response). SharedBytes lets all of them reference one
/// allocation: copying a SharedBytes bumps a refcount instead of
/// duplicating the payload. Implicitly converts to `const Bytes&` so it
/// drops into existing APIs that read payloads.
class SharedBytes {
 public:
  SharedBytes() = default;
  /// Takes ownership of `b` (implicit on purpose: assignment from a Bytes
  /// rvalue is the common way payloads enter shared ownership).
  SharedBytes(Bytes b) : ptr_(std::make_shared<const Bytes>(std::move(b))) {}

  /// The underlying buffer (an empty singleton when default-constructed).
  const Bytes& get() const { return ptr_ ? *ptr_ : EmptyBytes(); }
  operator const Bytes&() const { return get(); }

  const uint8_t* data() const { return get().data(); }
  size_t size() const { return get().size(); }
  bool empty() const { return get().empty(); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.ptr_ == b.ptr_ || a.get() == b.get();
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.get() == b;
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) {
    return a == b.get();
  }

 private:
  static const Bytes& EmptyBytes();

  std::shared_ptr<const Bytes> ptr_;
};

/// Converts a string to bytes (no encoding applied).
Bytes ToBytes(std::string_view s);

/// Converts bytes to a std::string (no encoding applied).
std::string ToString(const Bytes& b);

/// Lowercase hex encoding without a "0x" prefix.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const Bytes& b);

/// Hex encoding with a "0x" prefix (Ethereum convention).
std::string Hex0x(const Bytes& b);

/// Decodes a hex string (with or without "0x" prefix). Fails on odd length
/// or non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);
void Append(Bytes& dst, std::string_view src);

/// Concatenates any number of byte buffers.
Bytes Concat(std::initializer_list<const Bytes*> parts);

/// Serialization helpers: fixed-width big-endian integers, and
/// length-prefixed byte strings. Used for canonical message encoding so
/// that signatures are computed over unambiguous byte strings.
void PutU32(Bytes& dst, uint32_t v);
void PutU64(Bytes& dst, uint64_t v);
void PutBytes(Bytes& dst, const Bytes& b);      ///< u32 length prefix + data
void PutString(Bytes& dst, std::string_view s); ///< u32 length prefix + data

/// Cursor-based reader over a byte buffer for decoding the formats above.
/// All Read* methods fail with Code::kOutOfRange on truncated input.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<Bytes> ReadBytes();      ///< u32 length prefix + data
  Result<std::string> ReadString();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> ReadRaw(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_COMMON_BYTES_H_
