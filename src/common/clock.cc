#include "common/clock.h"

namespace wedge {

RealClock* RealClock::Global() {
  static RealClock* instance = new RealClock();
  return instance;
}

}  // namespace wedge
