#ifndef WEDGEBLOCK_COMMON_CLOCK_H_
#define WEDGEBLOCK_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace wedge {

/// Microseconds since an arbitrary epoch.
using Micros = int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;
constexpr Micros kMicrosPerMilli = 1'000;

/// Time source abstraction. The simulated blockchain and liveness logic run
/// on a SimClock (deterministic, advanced explicitly); throughput
/// measurements use the RealClock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual Micros NowMicros() const = 0;
  /// Current time in whole seconds (block timestamps use this).
  int64_t NowSeconds() const { return NowMicros() / kMicrosPerSecond; }
};

/// Wall-clock time via std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance.
  static RealClock* Global();
};

/// Deterministic logical clock. Never advances on its own.
class SimClock : public Clock {
 public:
  explicit SimClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Advances the clock by `delta` microseconds.
  void Advance(Micros delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void AdvanceSeconds(int64_t secs) { Advance(secs * kMicrosPerSecond); }

  /// Jumps to an absolute time; `t` must not be in the past.
  void SetMicros(Micros t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

/// A simple elapsed-time stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock) : clock_(clock), start_(clock->NowMicros()) {}

  Micros ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / kMicrosPerSecond;
  }
  void Reset() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  Micros start_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_COMMON_CLOCK_H_
