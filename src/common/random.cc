#include "common/random.h"

namespace wedge {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::Range(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i + 8 <= n) {
    uint64_t v = Next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(v >> (8 * b));
  }
  if (i < n) {
    uint64_t v = Next();
    while (i < n) {
      out[i++] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

std::string Rng::NextString(size_t n) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

}  // namespace wedge
