#ifndef WEDGEBLOCK_COMMON_RANDOM_H_
#define WEDGEBLOCK_COMMON_RANDOM_H_

#include <cstdint>

#include "common/bytes.h"

namespace wedge {

/// Deterministic pseudo-random generator (xoshiro256**). Seeded explicitly
/// so that workloads, keys and simulated network jitter are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fills a buffer of `n` random bytes.
  Bytes NextBytes(size_t n);

  /// Random printable ASCII string of length `n` (workload payloads).
  std::string NextString(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace wedge

#endif  // WEDGEBLOCK_COMMON_RANDOM_H_
