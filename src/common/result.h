#ifndef WEDGEBLOCK_COMMON_RESULT_H_
#define WEDGEBLOCK_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wedge {

/// A value-or-error holder (like absl::StatusOr / arrow::Result).
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace wedge

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define WEDGE_ASSIGN_OR_RETURN(lhs, expr)          \
  auto WEDGE_CONCAT_(_wedge_res_, __LINE__) = (expr);        \
  if (!WEDGE_CONCAT_(_wedge_res_, __LINE__).ok())            \
    return WEDGE_CONCAT_(_wedge_res_, __LINE__).status();    \
  lhs = std::move(WEDGE_CONCAT_(_wedge_res_, __LINE__)).value()

#define WEDGE_CONCAT_INNER_(a, b) a##b
#define WEDGE_CONCAT_(a, b) WEDGE_CONCAT_INNER_(a, b)

#endif  // WEDGEBLOCK_COMMON_RESULT_H_
