#include "common/status.h"

namespace wedge {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kPermissionDenied:
      return "PermissionDenied";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kInternal:
      return "Internal";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kCorruption:
      return "Corruption";
    case Code::kInsufficientFunds:
      return "InsufficientFunds";
    case Code::kReverted:
      return "Reverted";
    case Code::kVerification:
      return "Verification";
    case Code::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace wedge
