#include "common/status.h"

namespace wedge {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kPermissionDenied:
      return "PermissionDenied";
    case Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kInternal:
      return "Internal";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kCorruption:
      return "Corruption";
    case Code::kInsufficientFunds:
      return "InsufficientFunds";
    case Code::kReverted:
      return "Reverted";
    case Code::kVerification:
      return "Verification";
    case Code::kTimeout:
      return "Timeout";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Code::kIoError:
      return "IoError";
  }
  return "Unknown";
}

bool CodeFromName(std::string_view name, Code* out) {
  static constexpr Code kAll[] = {
      Code::kOk,           Code::kInvalidArgument,
      Code::kNotFound,     Code::kAlreadyExists,
      Code::kPermissionDenied, Code::kFailedPrecondition,
      Code::kOutOfRange,   Code::kInternal,
      Code::kUnavailable,  Code::kCorruption,
      Code::kInsufficientFunds, Code::kReverted,
      Code::kVerification, Code::kTimeout,
      Code::kResourceExhausted, Code::kDeadlineExceeded,
      Code::kIoError,
  };
  for (Code c : kAll) {
    if (CodeName(c) == name) {
      *out = c;
      return true;
    }
  }
  return false;
}

Status Status::FromWireString(std::string_view wire) {
  if (wire == "OK") return Status::Ok();
  std::string_view name = wire;
  std::string_view message;
  size_t sep = wire.find(": ");
  if (sep != std::string_view::npos) {
    name = wire.substr(0, sep);
    message = wire.substr(sep + 2);
  }
  Code code;
  if (!CodeFromName(name, &code) || code == Code::kOk) {
    return Status::Unavailable("remote error: " + std::string(wire));
  }
  return Status(code, std::string(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace wedge
