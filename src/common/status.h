#ifndef WEDGEBLOCK_COMMON_STATUS_H_
#define WEDGEBLOCK_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace wedge {

/// Error codes used across the WedgeBlock libraries. Modeled after the
/// RocksDB/Abseil status idiom: library code never throws; every fallible
/// operation returns a Status (or Result<T>, see result.h).
enum class Code {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnavailable,
  kCorruption,
  kInsufficientFunds,
  kReverted,       ///< A smart-contract call reverted.
  kVerification,   ///< A cryptographic proof or signature failed to verify.
  kTimeout,
  kResourceExhausted,  ///< A quota (rate, in-flight, tenancy) was exceeded.
  /// An RPC deadline elapsed with no reply. Distinct from kTimeout (the
  /// sim-bus omission surface) and from kUnavailable (refused/reset before
  /// any work): a kDeadlineExceeded call MAY have executed server-side, so
  /// blind retries of non-idempotent ops are the caller's decision.
  kDeadlineExceeded,
  /// A filesystem write/flush/sync failed (ENOSPC, short write, I/O
  /// error). Distinct from kCorruption (bad bytes read back) and from
  /// kInternal: the store rolled the failed record back, nothing was
  /// acked, and the caller may retry once space/media recovers.
  kIoError,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
std::string_view CodeName(Code code);

/// Inverse of CodeName: "InvalidArgument" -> Code::kInvalidArgument.
/// Returns false when `name` is not a known code name.
bool CodeFromName(std::string_view name, Code* out);

/// Result of a fallible operation: a code plus an optional message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs a status with the given code and message.
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(Code::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InsufficientFunds(std::string msg) {
    return Status(Code::kInsufficientFunds, std::move(msg));
  }
  static Status Reverted(std::string msg) {
    return Status(Code::kReverted, std::move(msg));
  }
  static Status Verification(std::string msg) {
    return Status(Code::kVerification, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(Code::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }

  /// Inverse of ToString(): reconstructs a typed Status from a
  /// "<CodeName>: <message>" string (the encoding RPC error responses carry
  /// on the wire). Unrecognized strings come back as kUnavailable with the
  /// raw text preserved, so remote errors are never silently swallowed.
  static Status FromWireString(std::string_view wire);

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Code code_;
  std::string message_;
};

}  // namespace wedge

/// Propagates a non-OK status to the caller.
#define WEDGE_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::wedge::Status _wedge_status = (expr);          \
    if (!_wedge_status.ok()) return _wedge_status;   \
  } while (0)

#endif  // WEDGEBLOCK_COMMON_STATUS_H_
