#include "common/thread_pool.h"

#include <atomic>

namespace wedge {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so each worker picks up contiguous ranges.
  const size_t num_chunks = std::min(n, num_threads() * 4);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  size_t done = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t c = 0; c < num_chunks; ++c) {
    Submit([&, c] {
      const size_t lo = c * chunk_size;
      const size_t hi = std::min(n, lo + chunk_size);
      for (size_t i = lo; i < hi; ++i) fn(i);
      // Count and notify while holding the lock: this frame's counter,
      // mutex and cv die as soon as the waiter below observes
      // done == num_chunks, so the last worker must not touch them
      // after its unlock.
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == num_chunks) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == num_chunks; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wedge
