#ifndef WEDGEBLOCK_COMMON_THREAD_POOL_H_
#define WEDGEBLOCK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wedge {

/// Fixed-size worker pool. The paper's prototype parallelizes ECDSA
/// signing/verification across cores; the Offchain Node and clients use
/// this pool for the same purpose.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending work and joins all workers.
  ~ThreadPool();

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_COMMON_THREAD_POOL_H_
