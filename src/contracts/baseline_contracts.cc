#include "contracts/baseline_contracts.h"

namespace wedge {

Result<Bytes> OclLogContract::Call(CallContext& ctx, std::string_view method,
                                   const Bytes& args) {
  if (method == "appendLog") {
    ByteReader reader(args);
    WEDGE_ASSIGN_OR_RETURN(Bytes key, reader.ReadBytes());
    WEDGE_ASSIGN_OR_RETURN(Bytes value, reader.ReadBytes());
    if (!reader.AtEnd()) {
      return Status::Reverted("appendLog: trailing calldata");
    }
    // Storing raw data on-chain: one fresh SSTORE per 32-byte word plus a
    // slot for the entry's length bookkeeping.
    uint64_t words =
        gas::StorageWords(key.size()) + gas::StorageWords(value.size());
    for (uint64_t w = 0; w < words + 1; ++w) {
      ctx.gas().ChargeSstore(/*fresh_slot=*/true);
    }
    entries_.push_back(Entry{std::move(key), std::move(value)});
    Bytes out;
    PutU64(out, entries_.size() - 1);
    return out;
  }
  if (method == "getEntry") {
    ByteReader reader(args);
    WEDGE_ASSIGN_OR_RETURN(uint64_t index, reader.ReadU64());
    if (index >= entries_.size()) {
      return Status::Reverted("getEntry: index out of range");
    }
    const Entry& e = entries_[index];
    ctx.gas().Charge(gas::kSload *
                     (gas::StorageWords(e.key.size() + e.value.size()) + 1));
    Bytes out;
    PutBytes(out, e.key);
    PutBytes(out, e.value);
    return out;
  }
  if (method == "size") {
    ctx.gas().ChargeSload();
    Bytes out;
    PutU64(out, entries_.size());
    return out;
  }
  return Status::NotFound("OclLog: unknown method");
}

Hash256 RhlBatchDigest(const Bytes& batch_data) {
  Sha256 h;
  h.Update("rhl-batch-v1");
  h.Update(batch_data);
  return h.Finish();
}

Result<Bytes> RhlContract::Call(CallContext& ctx, std::string_view method,
                                const Bytes& args) {
  if (method == "deposit") {
    if (ctx.sender() != sequencer_) {
      return Status::Reverted("deposit: only the sequencer escrows");
    }
    Bytes payload;
    Append(payload, ctx.value().ToBytesBE());
    ctx.Emit("SequencerEscrow", payload);
    return Bytes();
  }
  if (method == "submitBatch") return SubmitBatch(ctx, args);
  if (method == "challengeBatch") return ChallengeBatch(ctx, args);
  if (method == "isFinal") {
    ByteReader reader(args);
    WEDGE_ASSIGN_OR_RETURN(uint64_t index, reader.ReadU64());
    if (index >= batches_.size()) {
      return Status::Reverted("isFinal: unknown batch");
    }
    ctx.gas().ChargeSload();
    const BatchRecord& b = batches_[index];
    bool final = !b.slashed && ctx.block_timestamp() >=
                                   b.posted_at + challenge_window_seconds_;
    return Bytes{static_cast<uint8_t>(final ? 1 : 0)};
  }
  if (method == "batchCount") {
    ctx.gas().ChargeSload();
    Bytes out;
    PutU64(out, batches_.size());
    return out;
  }
  return Status::NotFound("RhlRollup: unknown method");
}

Result<Bytes> RhlContract::SubmitBatch(CallContext& ctx, const Bytes& args) {
  if (ctx.sender() != sequencer_) {
    return Status::Reverted("submitBatch: only the sequencer");
  }
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(Bytes batch_data, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes digest_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(Hash256 digest, HashFromBytes(digest_raw));
  if (!reader.AtEnd()) {
    return Status::Reverted("submitBatch: trailing calldata");
  }
  // The batch itself rides in calldata (already charged by the chain at
  // 16 gas/byte); the contract persists only the commitment words.
  ctx.gas().Charge(gas::Sha256Gas(batch_data.size()));
  ctx.gas().ChargeSstore(true);  // data_hash
  ctx.gas().ChargeSstore(true);  // digest
  ctx.gas().ChargeSstore(true);  // posted_at + flags
  BatchRecord record;
  record.data_hash = Sha256::Digest(batch_data);
  record.digest = digest;
  record.posted_at = ctx.block_timestamp();
  batches_.push_back(record);

  Bytes out;
  PutU64(out, batches_.size() - 1);
  ctx.Emit("BatchSubmitted", out);
  return out;
}

Result<Bytes> RhlContract::ChallengeBatch(CallContext& ctx, const Bytes& args) {
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t index, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes batch_data, reader.ReadBytes());
  if (index >= batches_.size()) {
    return Status::Reverted("challengeBatch: unknown batch");
  }
  BatchRecord& b = batches_[index];
  ctx.gas().ChargeSload();
  if (b.slashed) {
    return Status::Reverted("challengeBatch: already slashed");
  }
  if (ctx.block_timestamp() >= b.posted_at + challenge_window_seconds_) {
    return Status::Reverted("challengeBatch: challenge window closed");
  }
  // The challenger replays the posted operations; they must match what the
  // sequencer posted on-chain.
  ctx.gas().Charge(gas::Sha256Gas(batch_data.size()) * 2);
  if (Sha256::Digest(batch_data) != b.data_hash) {
    return Status::Reverted("challengeBatch: replayed data mismatch");
  }
  if (RhlBatchDigest(batch_data) == b.digest) {
    return Status::Reverted("challengeBatch: digest is correct, no fraud");
  }
  // Fraud proven: slash the escrow to the challenger.
  b.slashed = true;
  ctx.gas().ChargeSstore(false);
  Wei escrow = ctx.SelfBalance();
  WEDGE_RETURN_IF_ERROR(ctx.TransferOut(ctx.sender(), escrow));
  Bytes payload;
  PutU64(payload, index);
  ctx.Emit("SequencerSlashed", payload);
  return Bytes{1};
}

}  // namespace wedge
