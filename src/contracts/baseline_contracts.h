#ifndef WEDGEBLOCK_CONTRACTS_BASELINE_CONTRACTS_H_
#define WEDGEBLOCK_CONTRACTS_BASELINE_CONTRACTS_H_

#include <unordered_map>
#include <vector>

#include "chain/contract.h"
#include "crypto/sha256.h"

namespace wedge {

/// On-Chain Logging (OCL) baseline contract (paper §6.3): raw log records
/// are written straight into contract storage, paying SSTORE for every
/// 32-byte word. This is the expensive/slow comparator WedgeBlock beats by
/// up to 1470x/310x.
///
/// Methods:
///   "appendLog": [bytes key][bytes value] -> [u64 index]
///   "getEntry":  [u64 index] -> [bytes key][bytes value]
///   "size":      [] -> [u64]
class OclLogContract : public Contract {
 public:
  std::string_view Name() const override { return "OclLog"; }

  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override;

 private:
  struct Entry {
    Bytes key;
    Bytes value;
  };
  std::vector<Entry> entries_;
};

/// Rollup-inspired Hybrid Logging (RHL) baseline contract (paper §6.3):
/// batches of operations are posted on-chain as calldata together with a
/// claimed digest, Optimistic-Rollup style. The digest only becomes final
/// after a challenge window; during the window anyone can submit a fraud
/// proof showing the digest does not match the posted operations.
///
/// Methods:
///   "submitBatch": [bytes batch_data][32B digest] -> [u64 batch_index]
///       Only the registered sequencer. Stores the digest and the hash of
///       the posted data (the data itself rides in calldata, like a
///       rollup), plus the submission timestamp.
///   "challengeBatch": [u64 batch_index][bytes batch_data] -> [u8 fraud]
///       Within the challenge window: recomputes the digest from the
///       replayed data; a mismatch slashes the sequencer's escrow to the
///       challenger.
///   "isFinal": [u64 batch_index] -> [u8] — window elapsed, not slashed.
///   "deposit": [] (payable) — sequencer escrow.
class RhlContract : public Contract {
 public:
  RhlContract(const Address& sequencer, int64_t challenge_window_seconds)
      : sequencer_(sequencer),
        challenge_window_seconds_(challenge_window_seconds) {}

  std::string_view Name() const override { return "RhlRollup"; }

  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override;

  int64_t challenge_window_seconds() const {
    return challenge_window_seconds_;
  }

 private:
  struct BatchRecord {
    Hash256 data_hash;   ///< Hash of the calldata-posted operations.
    Hash256 digest;      ///< Sequencer-claimed digest.
    int64_t posted_at = 0;
    bool slashed = false;
  };

  Result<Bytes> SubmitBatch(CallContext& ctx, const Bytes& args);
  Result<Bytes> ChallengeBatch(CallContext& ctx, const Bytes& args);

  const Address sequencer_;
  const int64_t challenge_window_seconds_;
  std::vector<BatchRecord> batches_;
};

/// Digest an RHL batch the way the sequencer commits it (SHA-256 over the
/// raw batch bytes). Shared by the contract and the RHL baseline client.
Hash256 RhlBatchDigest(const Bytes& batch_data);

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_BASELINE_CONTRACTS_H_
