#include "contracts/forest_record.h"

namespace wedge {

Bytes ForestLeafBytes(uint32_t shard_id, uint64_t log_id,
                      const Hash256& mroot) {
  Bytes leaf;
  leaf.reserve(4 + 8 + 32);
  PutU32(leaf, shard_id);
  PutU64(leaf, log_id);
  Append(leaf, HashToBytes(mroot));
  return leaf;
}

Hash256 AggregationProof::SignedHash() const {
  Bytes msg;
  // Domain separation keeps aggregation signatures from ever colliding
  // with stage-1 response signatures made by the same key.
  const char kDomain[] = "wedge.aggregation.v1";
  msg.insert(msg.end(), kDomain, kDomain + sizeof(kDomain) - 1);
  PutU64(msg, epoch);
  PutU32(msg, shard_id);
  PutU64(msg, log_id);
  Append(msg, HashToBytes(mroot));
  Append(msg, HashToBytes(forest_root));
  PutBytes(msg, forest_path.Serialize());
  return Sha256::Digest(msg);
}

bool AggregationProof::PathValid() const {
  return VerifyMerkleProof(ForestLeafBytes(shard_id, log_id, mroot),
                           forest_path, forest_root);
}

bool AggregationProof::Verify(const Address& engine) const {
  return RecoverSigner(SignedHash(), engine_signature) == engine &&
         PathValid();
}

Bytes AggregationProof::Serialize() const {
  Bytes out;
  PutU64(out, epoch);
  PutU32(out, shard_id);
  PutU64(out, log_id);
  Append(out, HashToBytes(mroot));
  Append(out, HashToBytes(forest_root));
  PutBytes(out, forest_path.Serialize());
  PutBytes(out, engine_signature.Serialize());
  return out;
}

Result<AggregationProof> AggregationProof::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  AggregationProof proof;
  WEDGE_ASSIGN_OR_RETURN(proof.epoch, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(proof.shard_id, reader.ReadU32());
  WEDGE_ASSIGN_OR_RETURN(proof.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes mroot_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(proof.mroot, HashFromBytes(mroot_raw));
  WEDGE_ASSIGN_OR_RETURN(Bytes forest_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(proof.forest_root, HashFromBytes(forest_raw));
  WEDGE_ASSIGN_OR_RETURN(Bytes path_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(proof.forest_path,
                         MerkleProof::Deserialize(path_raw));
  WEDGE_ASSIGN_OR_RETURN(Bytes sig_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(proof.engine_signature,
                         EcdsaSignature::Deserialize(sig_raw));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("AggregationProof: trailing bytes");
  }
  return proof;
}

}  // namespace wedge
