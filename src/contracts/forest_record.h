#ifndef WEDGEBLOCK_CONTRACTS_FOREST_RECORD_H_
#define WEDGEBLOCK_CONTRACTS_FOREST_RECORD_H_

#include <cstdint>

#include "crypto/ecdsa.h"
#include "merkle/merkle_tree.h"

namespace wedge {

/// Second-level ("forest") commitment encodings for the sharded engine.
///
/// A sharded deployment runs N Offchain Node shards but submits a single
/// stage-2 transaction per epoch: the EpochRootAggregator collects each
/// shard's newly sealed batch roots, builds a Merkle tree over
/// (shard_id, log_id, MRoot) leaves, and records only that tree's root
/// on-chain. Clients then verify with a two-level proof: entry -> batch
/// root via the existing stage-1 proof, and batch root -> forest root via
/// an AggregationProof below.
///
/// The leaf encoding and the signed-aggregation message live here — next
/// to the on-chain verifier (Punishment::invokePunishmentForest) — for the
/// same reason stage1_message.h does: node, clients, and contract must
/// hash the exact same bytes.

/// Canonical forest leaf: [u32 shard_id][u64 log_id][32B mroot].
Bytes ForestLeafBytes(uint32_t shard_id, uint64_t log_id,
                      const Hash256& mroot);

/// An engine-signed statement binding one shard batch root into one
/// epoch's forest root. The signature covers the whole statement
/// (including the path), so a proof that verifies against the engine's
/// address but is internally inconsistent is attributable evidence for
/// the punishment path — while a proof tampered in transit simply fails
/// signature verification and is rejected client-side.
struct AggregationProof {
  uint64_t epoch = 0;     ///< Forest-record index the root was filed under.
  uint32_t shard_id = 0;  ///< Shard that sealed the batch.
  uint64_t log_id = 0;    ///< Shard-local batch log id.
  Hash256 mroot{};        ///< The batch (stage-1) Merkle root.
  Hash256 forest_root{};  ///< The epoch's second-level root.
  MerkleProof forest_path;  ///< Path from ForestLeafBytes(...) to the root.
  EcdsaSignature engine_signature;

  /// SHA-256 over the canonical aggregation statement (everything above
  /// except the signature). This is what the engine signs and what the
  /// Punishment contract recovers the signer from.
  Hash256 SignedHash() const;

  /// True when forest_path carries ForestLeafBytes(shard_id, log_id,
  /// mroot) to forest_root.
  bool PathValid() const;

  /// Full client-side check: the statement is signed by `engine` AND the
  /// path is internally consistent.
  bool Verify(const Address& engine) const;

  Bytes Serialize() const;
  static Result<AggregationProof> Deserialize(const Bytes& b);

  bool operator==(const AggregationProof& o) const {
    return epoch == o.epoch && shard_id == o.shard_id &&
           log_id == o.log_id && mroot == o.mroot &&
           forest_root == o.forest_root && forest_path == o.forest_path &&
           engine_signature == o.engine_signature;
  }
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_FOREST_RECORD_H_
