#include "contracts/payment.h"

namespace wedge {

Result<Bytes> PaymentContract::Call(CallContext& ctx, std::string_view method,
                                    const Bytes& args) {
  (void)args;  // All Payment methods take empty calldata.
  if (method == "deposit") {
    if (ctx.sender() != client_address_) {
      return Status::Reverted("deposit: only the client funds the channel");
    }
    if (terminated_) return Status::Reverted("deposit: channel closed");
    Bytes payload;
    Append(payload, ctx.value().ToBytesBE());
    ctx.Emit("DepositReceived", payload);
    return Bytes();
  }
  if (method == "startPayment") return StartPayment(ctx);
  if (method == "updatePaymentStatus") {
    WEDGE_RETURN_IF_ERROR(UpdatePaymentStatus(ctx));
    return Bytes();
  }
  if (method == "withdrawOffchain") return WithdrawOffchain(ctx);
  if (method == "withdrawClient") return WithdrawClient(ctx);
  if (method == "terminate") return Terminate(ctx);
  if (method == "reservedForEdge") {
    ctx.gas().ChargeSload();
    return amount_reserved_for_edge_.ToBytesBE();
  }
  if (method == "isStarted") {
    ctx.gas().ChargeSload();
    return Bytes{static_cast<uint8_t>(started_ ? 1 : 0)};
  }
  if (method == "isTerminated") {
    ctx.gas().ChargeSload();
    return Bytes{static_cast<uint8_t>(terminated_ ? 1 : 0)};
  }
  if (method == "remainingPeriods") {
    ctx.gas().ChargeSload();
    Bytes out;
    PutU64(out, RemainingPeriods(ctx));
    return out;
  }
  return Status::NotFound("Payment: unknown method");
}

Result<Bytes> PaymentContract::StartPayment(CallContext& ctx) {
  if (ctx.sender() != client_address_) {
    return Status::Reverted("startPayment: only the client");
  }
  if (started_) return Status::Reverted("startPayment: already started");
  if (terminated_) return Status::Reverted("startPayment: channel closed");
  started_ = true;
  amount_reserved_for_edge_ = Wei();
  payment_start_time_ = ctx.block_timestamp();
  ctx.gas().ChargeSstore(true);
  ctx.gas().ChargeSstore(true);
  ctx.Emit("PaymentStarted", Bytes());
  return Bytes();
}

Status PaymentContract::UpdatePaymentStatus(CallContext& ctx) {
  if (!started_ || terminated_) {
    return Status::Reverted("updatePaymentStatus: channel not active");
  }
  if (period_seconds_ <= 0 || payment_per_period_.IsZero()) {
    return Status::Reverted("updatePaymentStatus: misconfigured channel");
  }
  ctx.gas().ChargeSload();
  int64_t elapsed = ctx.block_timestamp() - payment_start_time_;
  if (elapsed < 0) elapsed = 0;
  uint64_t periods = static_cast<uint64_t>(elapsed / period_seconds_);
  if (periods == 0) return Status::Ok();

  Wei owed = U256(periods) * payment_per_period_;
  Wei balance = ctx.SelfBalance();
  Wei available = balance - amount_reserved_for_edge_;

  if (owed <= available) {
    amount_reserved_for_edge_ = amount_reserved_for_edge_ + owed;
    payment_start_time_ +=
        static_cast<int64_t>(periods) * period_seconds_;
    ctx.gas().ChargeSstore(false);
    ctx.gas().ChargeSstore(false);
    // Line 17: notify how many more periods the deposit can sustain.
    Bytes payload;
    PutU64(payload, RemainingPeriods(ctx));
    ctx.Emit("PaymentStateUpdated", payload);
    return Status::Ok();
  }

  // The deposit cannot cover everything that is owed: reserve whatever is
  // covered and count overdue periods.
  U256 paid_periods, rem;
  available.DivMod(payment_per_period_, &paid_periods, &rem).ok();
  Wei reserved_now = paid_periods * payment_per_period_;
  amount_reserved_for_edge_ = amount_reserved_for_edge_ + reserved_now;
  payment_start_time_ +=
      static_cast<int64_t>(paid_periods.ToU64()) * period_seconds_;
  ctx.gas().ChargeSstore(false);
  ctx.gas().ChargeSstore(false);
  uint64_t overdue = periods - paid_periods.ToU64();

  if (static_cast<int64_t>(overdue) > max_overdue_periods_) {
    // Line 14: contract violation by the client; the Offchain Node takes
    // the remaining balance and the channel terminates.
    Wei remaining = ctx.SelfBalance();
    WEDGE_RETURN_IF_ERROR(ctx.TransferOut(offchain_address_, remaining));
    amount_reserved_for_edge_ = Wei();
    terminated_ = true;
    ctx.gas().ChargeSstore(false);
    Bytes payload;
    PutU64(payload, overdue);
    ctx.Emit("ContractViolated", payload);
    return Status::Ok();
  }

  // Line 10: remind the client about the overdue payments.
  Bytes payload;
  PutU64(payload, overdue);
  ctx.Emit("DepositInsufficient", payload);
  return Status::Ok();
}

Result<Bytes> PaymentContract::WithdrawOffchain(CallContext& ctx) {
  if (ctx.sender() != offchain_address_) {
    return Status::Reverted("withdrawOffchain: only the Offchain Node");
  }
  WEDGE_RETURN_IF_ERROR(UpdatePaymentStatus(ctx));
  Wei amount = amount_reserved_for_edge_;
  if (amount.IsZero()) return Bytes();
  WEDGE_RETURN_IF_ERROR(ctx.TransferOut(offchain_address_, amount));
  amount_reserved_for_edge_ = Wei();
  // Paper: withdrawing resets the payment calculation to "now".
  payment_start_time_ = ctx.block_timestamp();
  ctx.gas().ChargeSstore(false);
  ctx.gas().ChargeSstore(false);
  Bytes payload;
  Append(payload, amount.ToBytesBE());
  ctx.Emit("OffchainWithdrawal", payload);
  return amount.ToBytesBE();
}

Result<Bytes> PaymentContract::WithdrawClient(CallContext& ctx) {
  if (ctx.sender() != client_address_) {
    return Status::Reverted("withdrawClient: only the client");
  }
  WEDGE_RETURN_IF_ERROR(UpdatePaymentStatus(ctx));
  if (terminated_) {
    return Status::Reverted("withdrawClient: channel closed by violation");
  }
  Wei amount = ctx.SelfBalance() - amount_reserved_for_edge_;
  if (amount.IsZero()) return Bytes();
  WEDGE_RETURN_IF_ERROR(ctx.TransferOut(client_address_, amount));
  Bytes payload;
  Append(payload, amount.ToBytesBE());
  ctx.Emit("ClientWithdrawal", payload);
  return amount.ToBytesBE();
}

Result<Bytes> PaymentContract::Terminate(CallContext& ctx) {
  if (ctx.sender() != client_address_) {
    return Status::Reverted("terminate: only the client");
  }
  if (!started_ || terminated_) {
    return Status::Reverted("terminate: channel not active");
  }
  WEDGE_RETURN_IF_ERROR(UpdatePaymentStatus(ctx));
  if (terminated_) return Bytes();  // Violation path already settled.
  // Settle: the reserved share goes to the Offchain Node, the rest back
  // to the client.
  Wei to_edge = amount_reserved_for_edge_;
  if (!to_edge.IsZero()) {
    WEDGE_RETURN_IF_ERROR(ctx.TransferOut(offchain_address_, to_edge));
  }
  Wei to_client = ctx.SelfBalance();
  if (!to_client.IsZero()) {
    WEDGE_RETURN_IF_ERROR(ctx.TransferOut(client_address_, to_client));
  }
  amount_reserved_for_edge_ = Wei();
  terminated_ = true;
  ctx.gas().ChargeSstore(false);
  ctx.Emit("ChannelTerminated", Bytes());
  return Bytes();
}

uint64_t PaymentContract::RemainingPeriods(CallContext& ctx) const {
  if (payment_per_period_.IsZero()) return ~0ULL;
  Wei available = ctx.SelfBalance() - amount_reserved_for_edge_;
  U256 q, r;
  available.DivMod(payment_per_period_, &q, &r).ok();
  return q.FitsU64() ? q.ToU64() : ~0ULL;
}

}  // namespace wedge
