#ifndef WEDGEBLOCK_CONTRACTS_PAYMENT_H_
#define WEDGEBLOCK_CONTRACTS_PAYMENT_H_

#include "chain/contract.h"

namespace wedge {

/// The Payment smart contract (paper §4.5, Algorithm 3): a streaming
/// subscription micro-payment channel for the DApp-logging-as-a-service
/// model. The client deposits ether; value flows to the Offchain Node at
/// `payment_per_period` wei every `period` seconds, computed retroactively
/// from block timestamps whenever updatePaymentStatus runs.
///
/// Methods:
///   "deposit": [] (payable, client only)
///   "startPayment": [] (client only) — begins the stream.
///   "updatePaymentStatus": [] — recomputes amount_reserved_for_edge;
///       emits PaymentStateUpdated / DepositInsufficient / ContractViolated.
///   "withdrawOffchain": [] (offchain only) — withdraws the reserved
///       amount and resets payment_start_time to the block timestamp.
///   "withdrawClient": [] (client only) — withdraws the unreserved rest.
///   "terminate": [] (client only) — settles both sides and closes.
///   Views: "reservedForEdge" -> [32B wei], "isStarted"/"isTerminated"
///       -> [u8], "remainingPeriods" -> [u64].
class PaymentContract : public Contract {
 public:
  PaymentContract(const Address& offchain_address,
                  const Address& client_address, int64_t period_seconds,
                  const Wei& payment_per_period, int64_t max_overdue_periods)
      : offchain_address_(offchain_address),
        client_address_(client_address),
        period_seconds_(period_seconds),
        payment_per_period_(payment_per_period),
        max_overdue_periods_(max_overdue_periods) {}

  std::string_view Name() const override { return "Payment"; }

  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override;

  bool started() const { return started_; }
  bool terminated() const { return terminated_; }
  const Wei& reserved_for_edge() const { return amount_reserved_for_edge_; }

 private:
  Result<Bytes> StartPayment(CallContext& ctx);
  /// Algorithm 3. Returns Ok even when it terminates the contract.
  Status UpdatePaymentStatus(CallContext& ctx);
  Result<Bytes> WithdrawOffchain(CallContext& ctx);
  Result<Bytes> WithdrawClient(CallContext& ctx);
  Result<Bytes> Terminate(CallContext& ctx);
  uint64_t RemainingPeriods(CallContext& ctx) const;

  const Address offchain_address_;
  const Address client_address_;
  const int64_t period_seconds_;
  const Wei payment_per_period_;
  const int64_t max_overdue_periods_;

  bool started_ = false;
  bool terminated_ = false;
  Wei amount_reserved_for_edge_;
  int64_t payment_start_time_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_PAYMENT_H_
