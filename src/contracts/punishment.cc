#include "contracts/punishment.h"

#include "contracts/forest_record.h"
#include "contracts/stage1_message.h"
#include "crypto/ecdsa.h"

namespace wedge {

Result<Bytes> PunishmentContract::Call(CallContext& ctx,
                                       std::string_view method,
                                       const Bytes& args) {
  if (method == "deposit") {
    Bytes payload;
    Append(payload, ctx.value().ToBytesBE());
    ctx.Emit("EscrowDeposited", payload);
    return Bytes();
  }
  if (method == "invokePunishment") return InvokePunishment(ctx, args);
  if (method == "invokePunishmentForest") {
    return InvokePunishmentForest(ctx, args);
  }
  if (method == "fileOmissionClaim") return FileOmissionClaim(ctx, args);
  if (method == "refundEscrow") return RefundEscrow(ctx);
  if (method == "isPunished") {
    ctx.gas().ChargeSload();
    return Bytes{static_cast<uint8_t>(punished_ ? 1 : 0)};
  }
  return Status::NotFound("Punishment: unknown method");
}

Result<Bytes> PunishmentContract::InvokePunishment(CallContext& ctx,
                                                   const Bytes& args) {
  ctx.gas().ChargeSload();
  if (punished_) {
    return Status::Reverted("InvokePunishment: contract already settled");
  }

  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t index, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(Bytes proof_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes raw_data, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes sig_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Hash256 claimed_root, HashFromBytes(root_raw));
  WEDGE_ASSIGN_OR_RETURN(MerkleProof proof,
                         MerkleProof::Deserialize(proof_raw));
  WEDGE_ASSIGN_OR_RETURN(EcdsaSignature signature,
                         EcdsaSignature::Deserialize(sig_raw));

  // Algorithm 2, lines 1-4: the response must carry the Offchain Node's
  // signature, otherwise anyone could fabricate "evidence". The classic
  // path serves the single-node (shard 0) per-index record stream, so the
  // recomputed statement pins shard 0: a sharded engine's shard-k (k > 0)
  // signatures never recover here and must go through the forest path.
  Hash256 msg_hash =
      Stage1MessageHash(/*shard_id=*/0, index, claimed_root, proof, raw_data);
  ctx.gas().Charge(gas::kEcrecover + gas::Sha256Gas(raw_data.size()));
  if (RecoverSigner(msg_hash, signature) != offchain_address_) {
    return Status::Reverted(
        "InvokePunishment: signature is not from the Offchain Node");
  }

  // Lines 5-8: compare the signed root against the blockchain-committed
  // root for this log position.
  Bytes query;
  PutU64(query, index);
  WEDGE_ASSIGN_OR_RETURN(
      Bytes recorded, ctx.StaticCall(root_record_address_, "getRootAtIndex",
                                     query));
  ByteReader rec_reader(recorded);
  WEDGE_ASSIGN_OR_RETURN(Bytes found, rec_reader.ReadRaw(1));
  WEDGE_ASSIGN_OR_RETURN(Bytes recorded_root_raw, rec_reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(Hash256 recorded_root,
                         HashFromBytes(recorded_root_raw));

  bool lied = false;
  if (found[0] == 0) {
    // No root recorded: stage 2 is LAZY, so absence alone is not yet a
    // lie — an impatient client must first file an omission claim and
    // wait out the grace period, giving the node a public deadline.
    ctx.gas().ChargeSload();
    auto claim = omission_claims_.find(index);
    if (claim == omission_claims_.end()) {
      return Status::Reverted(
          "InvokePunishment: no root recorded; file an omission claim "
          "first");
    }
    if (ctx.block_timestamp() < claim->second + omission_grace_seconds_) {
      return Status::Reverted(
          "InvokePunishment: omission grace period still running");
    }
    lied = true;  // The deadline passed and the promise is still broken.
  } else if (recorded_root != claimed_root) {
    // The node blockchain-committed a different root than it signed:
    // immediate, unambiguous evidence.
    lied = true;
  } else {
    // Lines 9-12: the signed proof must reconstruct the signed root.
    ctx.gas().Charge(gas::Sha256Gas(raw_data.size()) +
                     proof.path.size() * gas::Sha256Gas(65));
    if (ComputeRootFromProof(raw_data, proof) != claimed_root) {
      lied = true;
    }
  }

  if (!lied) {
    return Status::Reverted("InvokePunishment: no inconsistency proven");
  }
  return Punish(ctx, index);
}

Result<Bytes> PunishmentContract::InvokePunishmentForest(CallContext& ctx,
                                                         const Bytes& args) {
  ctx.gas().ChargeSload();
  if (punished_) {
    return Status::Reverted(
        "InvokePunishmentForest: contract already settled");
  }

  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t index, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(Bytes proof_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes raw_data, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes sig_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes agg_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Hash256 claimed_root, HashFromBytes(root_raw));
  WEDGE_ASSIGN_OR_RETURN(MerkleProof proof,
                         MerkleProof::Deserialize(proof_raw));
  WEDGE_ASSIGN_OR_RETURN(EcdsaSignature signature,
                         EcdsaSignature::Deserialize(sig_raw));
  WEDGE_ASSIGN_OR_RETURN(AggregationProof agg,
                         AggregationProof::Deserialize(agg_raw));

  // Both statements must be attributable to the Offchain Node's key —
  // otherwise anyone could fabricate a "corrupt" aggregation proof and
  // drain an honest node's escrow. The stage-1 statement is recomputed
  // under the AGGREGATION PROOF'S shard id: stage-1 signatures commit to
  // the shard that sealed the batch (contracts/stage1_message.h), so a
  // signature produced by any other shard — e.g. shard A's honest
  // response for its own log `index`, replayed against shard B's
  // aggregation of a same-numbered log — fails recovery here instead of
  // masquerading as equivocation. Both statements are therefore bound to
  // the same (shard, log) position before any root comparison.
  Hash256 msg_hash = Stage1MessageHash(agg.shard_id, index, claimed_root,
                                       proof, raw_data);
  ctx.gas().Charge(2 * gas::kEcrecover + gas::Sha256Gas(raw_data.size()));
  if (RecoverSigner(msg_hash, signature) != offchain_address_) {
    return Status::Reverted(
        "InvokePunishmentForest: stage-1 signature is not from the "
        "Offchain Node (or not from the aggregation proof's shard)");
  }
  if (RecoverSigner(agg.SignedHash(), agg.engine_signature) !=
      offchain_address_) {
    return Status::Reverted(
        "InvokePunishmentForest: aggregation proof is not from the "
        "Offchain Node");
  }
  // The two statements must speak about the same log position.
  if (agg.log_id != index) {
    return Status::Reverted(
        "InvokePunishmentForest: aggregation proof binds another position");
  }

  // Signed-statement inconsistencies are punishable without touching the
  // chain: (a) the aggregation commits a different batch root than the
  // node signed in stage 1 (equivocation between the two levels), or
  // (b/c) either signed proof fails to reconstruct its own signed root.
  ctx.gas().Charge(gas::Sha256Gas(raw_data.size()) +
                   (proof.path.size() + agg.forest_path.path.size() + 1) *
                       gas::Sha256Gas(65));
  if (agg.mroot != claimed_root) return Punish(ctx, index);
  if (ComputeRootFromProof(raw_data, proof) != claimed_root) {
    return Punish(ctx, index);
  }
  if (!agg.PathValid()) return Punish(ctx, index);

  // Statements are internally consistent; compare against the forest
  // root the chain actually recorded for that epoch.
  Bytes query;
  PutU64(query, agg.epoch);
  WEDGE_ASSIGN_OR_RETURN(
      Bytes recorded,
      ctx.StaticCall(root_record_address_, "getForestRoot", query));
  ByteReader rec_reader(recorded);
  WEDGE_ASSIGN_OR_RETURN(Bytes found, rec_reader.ReadRaw(1));
  WEDGE_ASSIGN_OR_RETURN(Bytes recorded_root_raw, rec_reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(Hash256 recorded_root,
                         HashFromBytes(recorded_root_raw));

  if (found[0] == 0) {
    // No forest root filed at that epoch: same lazy-stage-2 rule as the
    // classic path — the client must file a claim and wait out the grace
    // period before absence becomes punishable.
    ctx.gas().ChargeSload();
    auto claim = omission_claims_.find(index);
    if (claim == omission_claims_.end()) {
      return Status::Reverted(
          "InvokePunishmentForest: no forest root recorded; file an "
          "omission claim first");
    }
    if (ctx.block_timestamp() < claim->second + omission_grace_seconds_) {
      return Status::Reverted(
          "InvokePunishmentForest: omission grace period still running");
    }
    return Punish(ctx, index);
  }
  if (recorded_root != agg.forest_root) return Punish(ctx, index);

  return Status::Reverted(
      "InvokePunishmentForest: no inconsistency proven");
}

Result<Bytes> PunishmentContract::Punish(CallContext& ctx, uint64_t index) {
  Wei escrow = ctx.SelfBalance();
  WEDGE_RETURN_IF_ERROR(ctx.TransferOut(client_address_, escrow));
  punished_ = true;
  ctx.gas().ChargeSstore(/*fresh_slot=*/false);
  Bytes payload;
  PutU64(payload, index);
  Append(payload, escrow.ToBytesBE());
  ctx.Emit("PunishmentInvoked", payload);
  return Bytes{1};
}

Result<Bytes> PunishmentContract::FileOmissionClaim(CallContext& ctx,
                                                    const Bytes& args) {
  if (ctx.sender() != client_address_) {
    return Status::Reverted("fileOmissionClaim: only the bound client");
  }
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t index, reader.ReadU64());
  // Pointless (and confusing) once a root exists at the index.
  Bytes query;
  PutU64(query, index);
  WEDGE_ASSIGN_OR_RETURN(
      Bytes recorded,
      ctx.StaticCall(root_record_address_, "getRootAtIndex", query));
  if (!recorded.empty() && recorded[0] == 1) {
    return Status::Reverted("fileOmissionClaim: a root is already recorded");
  }
  ctx.gas().ChargeSload();
  if (omission_claims_.count(index) > 0) {
    return Status::Reverted("fileOmissionClaim: claim already filed");
  }
  omission_claims_[index] = ctx.block_timestamp();
  ctx.gas().ChargeSstore(/*fresh_slot=*/true);
  Bytes payload;
  PutU64(payload, index);
  ctx.Emit("OmissionClaimFiled", payload);
  return Bytes();
}

Result<Bytes> PunishmentContract::RefundEscrow(CallContext& ctx) {
  if (ctx.sender() != offchain_address_) {
    return Status::Reverted("RefundEscrow: only the Offchain Node");
  }
  ctx.gas().ChargeSload();
  if (punished_) {
    return Status::Reverted("RefundEscrow: escrow was forfeited");
  }
  if (ctx.block_timestamp() < release_time_) {
    return Status::Reverted("RefundEscrow: escrow still locked");
  }
  Wei escrow = ctx.SelfBalance();
  WEDGE_RETURN_IF_ERROR(ctx.TransferOut(offchain_address_, escrow));
  Bytes payload;
  Append(payload, escrow.ToBytesBE());
  ctx.Emit("EscrowRefunded", payload);
  return Bytes();
}

}  // namespace wedge
