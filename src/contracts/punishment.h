#ifndef WEDGEBLOCK_CONTRACTS_PUNISHMENT_H_
#define WEDGEBLOCK_CONTRACTS_PUNISHMENT_H_

#include <unordered_map>

#include "chain/contract.h"

namespace wedge {

/// The Punishment smart contract (paper §4.4, Algorithm 2).
///
/// The Offchain Node escrows ether in this contract. A client holding a
/// signed stage-1 response R that conflicts with the Root Record contract
/// submits it here; if the proof of misbehaviour checks out, the full
/// escrow is transferred to the client (all-or-nothing punishment, §3.3).
///
/// Methods:
///   "deposit": [] (payable) — adds to the escrow.
///   "invokePunishment":
///       [u64 index][32B merkleRoot][bytes merkleProof][bytes rawData]
///       [bytes signature(65)] -> [u8 punished]
///     Verifies (1) the signature recovers to offchain_address,
///     (2a) the signed root differs from the recorded root at `index`, OR
///     (2b) the signed merkle proof does not reconstruct the signed root.
///     Either inconsistency transfers the escrow to client_address.
///   "fileOmissionClaim": [u64 index] — starts the omission clock for a
///       position with NO recorded root. Punishing a missing root is only
///       allowed `omission_grace_seconds` after a claim: stage 2 is lazy
///       by design, so an impatient (or malicious) client must first give
///       the node a public, on-chain deadline to commit. A recorded
///       MISMATCH needs no claim — that lie is punishable immediately.
///   "refundEscrow": [] — returns the escrow to the Offchain Node after
///       release_time if no punishment occurred.
///   "isPunished": [] -> [u8]
///   "invokePunishmentForest":
///       [u64 index][32B merkleRoot][bytes merkleProof][bytes rawData]
///       [bytes signature(65)][bytes aggregationProof] -> [u8 punished]
///     Two-level variant for sharded deployments: the stage-1 evidence is
///     as above, plus an engine-signed AggregationProof (see
///     contracts/forest_record.h) binding the batch root into an epoch's
///     forest root. Both signatures must recover to offchain_address —
///     unattributable evidence always reverts — and the stage-1 hash is
///     recomputed under the aggregation proof's shard id, so both
///     statements provably refer to the same (shard, log) position: log
///     ids are shard-local, and without the binding two shards' honest
///     artifacts for a same-numbered log would fake equivocation.
///     Punishes when the signed statements are inconsistent with each
///     other (aggregation mroot vs stage-1 root — equivocation),
///     internally (either proof fails to reconstruct its signed root), or
///     with the chain (recorded forest root at the epoch differs). A
///     missing forest record falls back to the same omission-claim /
///     grace-period flow, keyed by log index. The classic
///     "invokePunishment" path pins shard 0 (the single-node stream).
class PunishmentContract : public Contract {
 public:
  PunishmentContract(const Address& client_address,
                     const Address& offchain_address,
                     const Address& root_record_address,
                     int64_t release_time,
                     int64_t omission_grace_seconds = 600)
      : client_address_(client_address),
        offchain_address_(offchain_address),
        root_record_address_(root_record_address),
        release_time_(release_time),
        omission_grace_seconds_(omission_grace_seconds) {}

  std::string_view Name() const override { return "Punishment"; }

  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override;

  bool punished() const { return punished_; }

 private:
  Result<Bytes> InvokePunishment(CallContext& ctx, const Bytes& args);
  Result<Bytes> InvokePunishmentForest(CallContext& ctx, const Bytes& args);
  Result<Bytes> FileOmissionClaim(CallContext& ctx, const Bytes& args);
  Result<Bytes> RefundEscrow(CallContext& ctx);
  Result<Bytes> Punish(CallContext& ctx, uint64_t index);

  const Address client_address_;
  const Address offchain_address_;
  const Address root_record_address_;
  const int64_t release_time_;
  const int64_t omission_grace_seconds_;
  bool punished_ = false;
  std::unordered_map<uint64_t, int64_t> omission_claims_;  // index -> time.
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_PUNISHMENT_H_
