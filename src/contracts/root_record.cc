#include "contracts/root_record.h"

namespace wedge {

Result<Bytes> RootRecordContract::Call(CallContext& ctx,
                                       std::string_view method,
                                       const Bytes& args) {
  if (method == "updateRecords") return UpdateRecords(ctx, args);
  if (method == "getRootAtIndex") return GetRootAtIndex(ctx, args);
  if (method == "getRootsInRange") {
    ByteReader reader(args);
    WEDGE_ASSIGN_OR_RETURN(uint64_t start, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
    if (count == 0 || count > kMaxRootsPerCall) {
      return Status::Reverted("getRootsInRange: bad count");
    }
    Bytes out;
    for (uint32_t i = 0; i < count; ++i) {
      ctx.gas().ChargeSload();
      auto it = record_map_.find(start + i);
      if (it == record_map_.end()) {
        out.push_back(0);
        Append(out, Bytes(32, 0));
      } else {
        out.push_back(1);
        Append(out, HashToBytes(it->second));
      }
    }
    return out;
  }
  if (method == "tailIdx") {
    ctx.gas().ChargeSload();
    Bytes out;
    PutU64(out, tail_idx_);
    return out;
  }
  if (method == "updateForestRoot") return UpdateForestRoot(ctx, args);
  if (method == "getForestRoot") return GetForestRoot(ctx, args);
  if (method == "forestTail") {
    ctx.gas().ChargeSload();
    Bytes out;
    PutU64(out, forest_tail_);
    return out;
  }
  return Status::NotFound("RootRecord: unknown method");
}

Result<Bytes> RootRecordContract::UpdateForestRoot(CallContext& ctx,
                                                   const Bytes& args) {
  if (authorized_.find(ctx.sender()) == authorized_.end()) {
    return Status::Reverted(
        "UpdateForestRoot: caller is not offchain_address");
  }
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t epoch, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t leaf_count, reader.ReadU32());
  if (leaf_count == 0 || leaf_count > kMaxRootsPerCall) {
    return Status::Reverted("UpdateForestRoot: bad leaf count");
  }
  WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(Hash256 root, HashFromBytes(raw));
  if (!reader.AtEnd()) {
    return Status::Reverted("UpdateForestRoot: trailing calldata");
  }
  // Epochs extend sequentially, and each is written at most once — the
  // same immutability rule the per-batch records obey.
  ctx.gas().ChargeSload();  // Read forest_tail.
  if (epoch != forest_tail_) {
    return Status::Reverted("UpdateForestRoot: epoch != forestTail");
  }
  forest_map_[epoch] = ForestRecord{root, leaf_count};
  ctx.gas().ChargeSstore(/*fresh_slot=*/true);
  forest_tail_ = epoch + 1;
  ctx.gas().ChargeSstore(/*fresh_slot=*/false);

  Bytes payload;
  PutU64(payload, epoch);
  PutU32(payload, leaf_count);
  Append(payload, HashToBytes(root));
  ctx.Emit("ForestRootRecorded", payload);
  return Bytes();
}

Result<Bytes> RootRecordContract::GetForestRoot(CallContext& ctx,
                                                const Bytes& args) const {
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t epoch, reader.ReadU64());
  ctx.gas().ChargeSload();
  Bytes out;
  auto it = forest_map_.find(epoch);
  if (it == forest_map_.end()) {
    out.push_back(0);
    Append(out, Bytes(32, 0));
    PutU32(out, 0);
  } else {
    out.push_back(1);
    Append(out, HashToBytes(it->second.root));
    PutU32(out, it->second.leaf_count);
  }
  return out;
}

Result<Bytes> RootRecordContract::UpdateRecords(CallContext& ctx,
                                                const Bytes& args) {
  // Line 1 of Algorithm 1: only a pre-registered Offchain Node address
  // may append digests (a single node, or any member of a BFT cluster).
  if (authorized_.find(ctx.sender()) == authorized_.end()) {
    return Status::Reverted("UpdateRecords: caller is not offchain_address");
  }
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t start_idx, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  if (n == 0 || n > kMaxRootsPerCall) {
    return Status::Reverted("UpdateRecords: bad root count");
  }
  // Line 4: digests must extend the log sequentially.
  ctx.gas().ChargeSload();  // Read tail_idx.
  if (start_idx != tail_idx_) {
    return Status::Reverted("UpdateRecords: start_idx != tail_idx");
  }
  std::vector<Hash256> roots;
  roots.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(32));
    WEDGE_ASSIGN_OR_RETURN(Hash256 root, HashFromBytes(raw));
    roots.push_back(root);
  }
  if (!reader.AtEnd()) {
    return Status::Reverted("UpdateRecords: trailing calldata");
  }
  // All checks passed; mutate state (lines 7-10).
  for (uint32_t i = 0; i < n; ++i) {
    record_map_[start_idx + i] = roots[i];
    ctx.gas().ChargeSstore(/*fresh_slot=*/true);
  }
  tail_idx_ = start_idx + n;
  ctx.gas().ChargeSstore(/*fresh_slot=*/false);

  Bytes payload;
  PutU64(payload, start_idx);
  PutU64(payload, tail_idx_);
  ctx.Emit("RecordsUpdated", payload);
  return Bytes();
}

Result<Bytes> RootRecordContract::GetRootAtIndex(CallContext& ctx,
                                                 const Bytes& args) const {
  ByteReader reader(args);
  WEDGE_ASSIGN_OR_RETURN(uint64_t idx, reader.ReadU64());
  ctx.gas().ChargeSload();
  Bytes out;
  auto it = record_map_.find(idx);
  if (it == record_map_.end()) {
    out.push_back(0);
    Append(out, Bytes(32, 0));
  } else {
    out.push_back(1);
    Append(out, HashToBytes(it->second));
  }
  return out;
}

Result<Hash256> RootRecordContract::RootAt(uint64_t index) const {
  auto it = record_map_.find(index);
  if (it == record_map_.end()) {
    return Status::NotFound("no root recorded at index");
  }
  return it->second;
}

Result<Hash256> RootRecordContract::ForestRootAt(uint64_t epoch) const {
  auto it = forest_map_.find(epoch);
  if (it == forest_map_.end()) {
    return Status::NotFound("no forest root recorded at epoch");
  }
  return it->second.root;
}

}  // namespace wedge
