#ifndef WEDGEBLOCK_CONTRACTS_ROOT_RECORD_H_
#define WEDGEBLOCK_CONTRACTS_ROOT_RECORD_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/contract.h"

namespace wedge {

/// The Root Record smart contract (paper §4.4, Algorithm 1): the on-chain
/// store of stage-2 commitment records V = (i, MRoot).
///
/// Methods (calldata encoded with the canonical byte format in
/// common/bytes.h):
///   "updateRecords": [u64 start_idx][u32 n][32B root]*n
///       Appends digests sequentially. Only callable by offchain_address;
///       start_idx must equal tail_idx. Each log position is written at
///       most once — this is what makes blockchain-committed entries
///       immutable (Definition 3.2).
///   "getRootAtIndex": [u64 idx] -> [u8 found][32B root]
///   "getRootsInRange": [u64 start][u32 count] -> ([u8 found][32B root])*
///       Range getter for auditors: one eth_call covers a whole audit
///       window instead of one call per position.
///   "tailIdx": [] -> [u64 tail]
///
/// Forest records (sharded deployments, see contracts/forest_record.h):
///   "updateForestRoot": [u64 epoch][u32 leaf_count][32B root]
///       Appends one second-level (forest) root per epoch. Same
///       authorization and sequentiality rules as updateRecords, on an
///       independent index space — classic per-batch records and epoch
///       forest records can coexist in one deployment.
///   "getForestRoot": [u64 epoch] -> [u8 found][32B root][u32 leaf_count]
///   "forestTail": [] -> [u64 next epoch]
class RootRecordContract : public Contract {
 public:
  explicit RootRecordContract(const Address& offchain_address)
      : offchain_address_(offchain_address),
        authorized_{offchain_address} {}

  /// Cluster deployment (§4.7 liveness): any member of a 3f+1 BFT cluster
  /// may submit stage-2 digests. `members` must be non-empty; the first
  /// member doubles as the nominal offchain_address.
  explicit RootRecordContract(const std::vector<Address>& members)
      : offchain_address_(members.front()),
        authorized_(members.begin(), members.end()) {}

  std::string_view Name() const override { return "RootRecord"; }

  Result<Bytes> Call(CallContext& ctx, std::string_view method,
                     const Bytes& args) override;

  /// Direct read access for tests/tools (mirrors getRootAtIndex).
  Result<Hash256> RootAt(uint64_t index) const;
  /// Direct read access to forest records (mirrors getForestRoot).
  Result<Hash256> ForestRootAt(uint64_t epoch) const;
  uint64_t tail_idx() const { return tail_idx_; }
  uint64_t forest_tail() const { return forest_tail_; }
  const Address& offchain_address() const { return offchain_address_; }

  /// Maximum digests accepted per updateRecords call.
  static constexpr uint32_t kMaxRootsPerCall = 4096;

 private:
  struct ForestRecord {
    Hash256 root;
    uint32_t leaf_count = 0;
  };

  Result<Bytes> UpdateRecords(CallContext& ctx, const Bytes& args);
  Result<Bytes> GetRootAtIndex(CallContext& ctx, const Bytes& args) const;
  Result<Bytes> UpdateForestRoot(CallContext& ctx, const Bytes& args);
  Result<Bytes> GetForestRoot(CallContext& ctx, const Bytes& args) const;

  const Address offchain_address_;
  const std::unordered_set<Address, AddressHasher> authorized_;
  std::unordered_map<uint64_t, Hash256> record_map_;
  uint64_t tail_idx_ = 0;
  std::unordered_map<uint64_t, ForestRecord> forest_map_;
  uint64_t forest_tail_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_ROOT_RECORD_H_
