#include "contracts/stage1_message.h"

namespace wedge {

Bytes EncodeStage1Message(uint32_t shard_id, uint64_t log_index,
                          const Hash256& merkle_root,
                          const MerkleProof& proof, const Bytes& raw_data) {
  Bytes out;
  PutString(out, "wedgeblock-stage1-v2");  // Domain separation (v2: shard).
  PutU32(out, shard_id);
  PutU64(out, log_index);
  Append(out, HashToBytes(merkle_root));
  PutBytes(out, proof.Serialize());
  PutBytes(out, raw_data);
  return out;
}

Hash256 Stage1MessageHash(uint32_t shard_id, uint64_t log_index,
                          const Hash256& merkle_root,
                          const MerkleProof& proof, const Bytes& raw_data) {
  return Sha256::Digest(
      EncodeStage1Message(shard_id, log_index, merkle_root, proof, raw_data));
}

}  // namespace wedge
