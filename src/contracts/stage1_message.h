#ifndef WEDGEBLOCK_CONTRACTS_STAGE1_MESSAGE_H_
#define WEDGEBLOCK_CONTRACTS_STAGE1_MESSAGE_H_

#include "merkle/merkle_tree.h"

namespace wedge {

/// Canonical encoding of the tuple the Offchain Node signs in a stage-1
/// response: (log index i, merkle root R_f, merkle proof P, raw data X).
///
/// The same byte string is hashed by the Punishment contract's
/// recoverSigner step (Algorithm 2, line 1), so the encoding lives here —
/// next to the on-chain verifier — and is shared by the Offchain Node and
/// all clients.
Bytes EncodeStage1Message(uint64_t log_index, const Hash256& merkle_root,
                          const MerkleProof& proof, const Bytes& raw_data);

/// SHA-256 digest of the canonical stage-1 message.
Hash256 Stage1MessageHash(uint64_t log_index, const Hash256& merkle_root,
                          const MerkleProof& proof, const Bytes& raw_data);

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_STAGE1_MESSAGE_H_
