#ifndef WEDGEBLOCK_CONTRACTS_STAGE1_MESSAGE_H_
#define WEDGEBLOCK_CONTRACTS_STAGE1_MESSAGE_H_

#include "merkle/merkle_tree.h"

namespace wedge {

/// Canonical encoding of the tuple the Offchain Node signs in a stage-1
/// response: (shard s, log index i, merkle root R_f, merkle proof P, raw
/// data X).
///
/// The shard id is part of the signed statement because sharded engines
/// sign with ONE key and number log ids densely per shard: without the
/// binding, shard A's honest signature over (log 5, root X) and shard B's
/// honest aggregation proof for its own log 5 (root Y) would look like
/// equivocation to the Punishment contract and drain an honest escrow. A
/// bare (single-node) deployment is shard 0.
///
/// The same byte string is hashed by the Punishment contract's
/// recoverSigner step (Algorithm 2, line 1), so the encoding lives here —
/// next to the on-chain verifier — and is shared by the Offchain Node and
/// all clients.
Bytes EncodeStage1Message(uint32_t shard_id, uint64_t log_index,
                          const Hash256& merkle_root,
                          const MerkleProof& proof, const Bytes& raw_data);

/// SHA-256 digest of the canonical stage-1 message.
Hash256 Stage1MessageHash(uint32_t shard_id, uint64_t log_index,
                          const Hash256& merkle_root,
                          const MerkleProof& proof, const Bytes& raw_data);

}  // namespace wedge

#endif  // WEDGEBLOCK_CONTRACTS_STAGE1_MESSAGE_H_
