#include "core/batch_read.h"

namespace wedge {

Hash256 BatchReadResponse::SignedHash() const {
  Bytes material;
  PutString(material, "wedgeblock-batchread-v1");
  PutU64(material, log_id);
  Append(material, HashToBytes(mroot));
  PutU32(material, static_cast<uint32_t>(entries.size()));
  for (const auto& [offset, data] : entries) {
    PutU64(material, offset);
    PutBytes(material, data);
  }
  PutBytes(material, proof.Serialize());
  return Sha256::Digest(material);
}

bool BatchReadResponse::Verify(const Address& offchain_address) const {
  if (entries.empty()) return false;
  if (RecoverSigner(SignedHash(), offchain_signature) != offchain_address) {
    return false;
  }
  return VerifyMultiProof(entries, proof, mroot);
}

Bytes BatchReadResponse::Serialize() const {
  Bytes out;
  PutU64(out, log_id);
  Append(out, HashToBytes(mroot));
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const auto& [offset, data] : entries) {
    PutU64(out, offset);
    PutBytes(out, data);
  }
  PutBytes(out, proof.Serialize());
  Append(out, offchain_signature.Serialize());
  return out;
}

Result<BatchReadResponse> BatchReadResponse::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  BatchReadResponse resp;
  WEDGE_ASSIGN_OR_RETURN(resp.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(resp.mroot, HashFromBytes(root_raw));
  WEDGE_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  if (n > 1u << 22) {
    return Status::InvalidArgument("batch read response too large");
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t offset;
    WEDGE_ASSIGN_OR_RETURN(offset, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(Bytes data, reader.ReadBytes());
    resp.entries.emplace_back(offset, std::move(data));
  }
  WEDGE_ASSIGN_OR_RETURN(Bytes proof_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(resp.proof,
                         MerkleMultiProof::Deserialize(proof_raw));
  WEDGE_ASSIGN_OR_RETURN(Bytes sig, reader.ReadRaw(65));
  WEDGE_ASSIGN_OR_RETURN(resp.offchain_signature,
                         EcdsaSignature::Deserialize(sig));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after batch response");
  }
  return resp;
}

}  // namespace wedge
