#ifndef WEDGEBLOCK_CORE_BATCH_READ_H_
#define WEDGEBLOCK_CORE_BATCH_READ_H_

#include "core/data_model.h"
#include "merkle/multi_proof.h"

namespace wedge {

/// A batched read response: many entries of ONE log position,
/// authenticated together by a single Merkle multi-proof and a single
/// Offchain Node signature. Compared to per-entry Stage1Responses this
/// cuts both bandwidth (shared sibling hashes) and verification cost
/// (one ECDSA verify per position instead of per entry) — the auditor's
/// fast path (see bench/ablation_audit_modes).
struct BatchReadResponse {
  uint64_t log_id = 0;
  Hash256 mroot{};
  /// (offset within the position, raw leaf bytes) pairs.
  std::vector<std::pair<uint64_t, Bytes>> entries;
  MerkleMultiProof proof;
  EcdsaSignature offchain_signature;

  /// Digest the node signs (covers position, root, offsets and data).
  Hash256 SignedHash() const;

  /// Full verification: authentic signature AND the multi-proof
  /// reconstructs the signed root from the returned entries.
  bool Verify(const Address& offchain_address) const;

  Bytes Serialize() const;
  static Result<BatchReadResponse> Deserialize(const Bytes& b);
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_BATCH_READ_H_
