#include "core/client.h"

#include <algorithm>
#include <atomic>
#include <set>

#include "common/random.h"

namespace wedge {

ClientBase::ClientBase(KeyPair key, OffchainNode* node, Blockchain* chain,
                       const Address& root_record_address)
    : key_(std::move(key)),
      node_(node),
      chain_(chain),
      root_record_address_(root_record_address) {}

bool ClientBase::VerifyStage1(const Stage1Response& response) const {
  return response.Verify(node_->address());
}

Result<CommitCheck> ClientBase::CheckBlockchainCommit(
    const Stage1Response& response) const {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Bytes query;
  PutU64(query, response.proof.log_id);
  WEDGE_ASSIGN_OR_RETURN(
      Bytes raw, chain_->Call(root_record_address_, "getRootAtIndex", query));
  ByteReader reader(raw);
  WEDGE_ASSIGN_OR_RETURN(Bytes found, reader.ReadRaw(1));
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  if (found[0] == 0) return CommitCheck::kNotYetCommitted;
  WEDGE_ASSIGN_OR_RETURN(Hash256 recorded, HashFromBytes(root_raw));
  return recorded == response.proof.mroot ? CommitCheck::kBlockchainCommitted
                                          : CommitCheck::kMismatch;
}

bool ClientBase::VerifyAggregation(const Stage1Response& response,
                                   const AggregationProof& agg) const {
  // Log ids are shard-local: the proof must bind the response's shard as
  // well as its log id, mirroring the Punishment contract's same-shard
  // rule.
  if (agg.shard_id != response.proof.shard_id ||
      agg.log_id != response.proof.log_id ||
      agg.mroot != response.proof.mroot) {
    return false;
  }
  return agg.Verify(node_->address());
}

Result<CommitCheck> ClientBase::CheckForestCommit(
    const AggregationProof& agg) const {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Bytes query;
  PutU64(query, agg.epoch);
  WEDGE_ASSIGN_OR_RETURN(
      Bytes raw, chain_->Call(root_record_address_, "getForestRoot", query));
  ByteReader reader(raw);
  WEDGE_ASSIGN_OR_RETURN(Bytes found, reader.ReadRaw(1));
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  if (found[0] == 0) return CommitCheck::kNotYetCommitted;
  WEDGE_ASSIGN_OR_RETURN(Hash256 recorded, HashFromBytes(root_raw));
  return recorded == agg.forest_root ? CommitCheck::kBlockchainCommitted
                                     : CommitCheck::kMismatch;
}

Result<std::vector<std::pair<bool, Hash256>>> ClientBase::FetchRootRange(
    uint64_t first, uint64_t last) const {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  if (first > last) return Status::InvalidArgument("empty range");
  constexpr uint32_t kChunk = 4096;
  std::vector<std::pair<bool, Hash256>> out;
  out.reserve(last - first + 1);
  for (uint64_t cursor = first; cursor <= last;) {
    uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(kChunk, last - cursor + 1));
    Bytes query;
    PutU64(query, cursor);
    PutU32(query, count);
    WEDGE_ASSIGN_OR_RETURN(
        Bytes raw, chain_->Call(root_record_address_, "getRootsInRange",
                                query));
    ByteReader reader(raw);
    for (uint32_t i = 0; i < count; ++i) {
      WEDGE_ASSIGN_OR_RETURN(Bytes found, reader.ReadRaw(1));
      WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
      WEDGE_ASSIGN_OR_RETURN(Hash256 root, HashFromBytes(root_raw));
      out.emplace_back(found[0] != 0, root);
    }
    cursor += count;
  }
  return out;
}

PublisherClient::PublisherClient(KeyPair key, OffchainNode* node,
                                 Blockchain* chain,
                                 const Address& root_record_address,
                                 const Address& punishment_address)
    : ClientBase(std::move(key), node, chain, root_record_address),
      punishment_address_(punishment_address) {}

std::vector<AppendRequest> PublisherClient::MakeRequests(
    const std::vector<std::pair<Bytes, Bytes>>& kvs) {
  std::vector<AppendRequest> out;
  out.reserve(kvs.size());
  for (const auto& [k, v] : kvs) {
    out.push_back(AppendRequest::Make(key_, next_sequence_++, k, v));
  }
  return out;
}

Result<std::vector<Stage1Response>> PublisherClient::Publish(
    const std::vector<AppendRequest>& requests) {
  WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> responses,
                         node_->Append(requests));
  // Verify every response (paper §4.2: the publisher checks each R's
  // proof and signature before considering stage-1 complete).
  std::atomic<bool> all_ok{true};
  // Verification is CPU-bound ECDSA; run it inline per response — callers
  // measuring latency want this cost included.
  for (const Stage1Response& r : responses) {
    if (!VerifyStage1(r)) {
      all_ok.store(false);
      break;
    }
  }
  if (!all_ok.load()) {
    return Status::Verification(
        "stage-1 response failed verification (punishable if signed)");
  }
  return responses;
}

Result<Stage2Outcome> PublisherClient::FinalizeOrPunish(
    const Stage1Response& response, int max_blocks) {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Stage2Outcome outcome;
  for (int i = 0; i < max_blocks; ++i) {
    WEDGE_ASSIGN_OR_RETURN(outcome.check, CheckBlockchainCommit(response));
    if (outcome.check != CommitCheck::kNotYetCommitted) break;
    chain_->clock()->AdvanceSeconds(chain_->config().block_interval_seconds);
    chain_->PumpUntilNow();
  }
  if (outcome.check == CommitCheck::kBlockchainCommitted) {
    return outcome;
  }
  if (outcome.check == CommitCheck::kNotYetCommitted) {
    // Omission path: a missing digest is only punishable after a public
    // on-chain deadline (the Punishment contract's grace period). File
    // the claim, wait it out, and re-check before punishing — an honest
    // but slow node gets its last chance to commit.
    WEDGE_ASSIGN_OR_RETURN(Receipt claim, FileOmissionClaim(response.proof.log_id));
    if (!claim.success) {
      return Status::Reverted("omission claim rejected: " +
                              claim.revert_reason);
    }
    chain_->clock()->AdvanceSeconds(grace_hint_seconds_ + 1);
    chain_->PumpUntilNow();
    WEDGE_ASSIGN_OR_RETURN(outcome.check, CheckBlockchainCommit(response));
    if (outcome.check == CommitCheck::kBlockchainCommitted) {
      return outcome;
    }
  }
  // Mismatch, or the omission deadline passed: punishable with the
  // signed stage-1 response.
  WEDGE_ASSIGN_OR_RETURN(outcome.punishment_receipt,
                         TriggerPunishment(response));
  outcome.punishment_triggered = true;
  return outcome;
}

Result<Receipt> PublisherClient::FileOmissionClaim(uint64_t log_id) {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Transaction tx;
  tx.from = key_.address();
  tx.to = punishment_address_;
  tx.method = "fileOmissionClaim";
  PutU64(tx.calldata, log_id);
  WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
  return chain_->WaitForReceipt(id);
}

Result<Receipt> PublisherClient::TriggerPunishment(
    const Stage1Response& response) {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Transaction tx;
  tx.from = key_.address();
  tx.to = punishment_address_;
  tx.method = "invokePunishment";
  PutU64(tx.calldata, response.proof.log_id);
  Append(tx.calldata, HashToBytes(response.proof.mroot));
  PutBytes(tx.calldata, response.proof.merkle_proof.Serialize());
  PutBytes(tx.calldata, response.entry);
  PutBytes(tx.calldata, response.offchain_signature.Serialize());
  WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
  return chain_->WaitForReceipt(id);
}

Result<Receipt> PublisherClient::TriggerForestPunishment(
    const Stage1Response& response, const AggregationProof& agg) {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  Transaction tx;
  tx.from = key_.address();
  tx.to = punishment_address_;
  tx.method = "invokePunishmentForest";
  PutU64(tx.calldata, response.proof.log_id);
  Append(tx.calldata, HashToBytes(response.proof.mroot));
  PutBytes(tx.calldata, response.proof.merkle_proof.Serialize());
  PutBytes(tx.calldata, response.entry);
  PutBytes(tx.calldata, response.offchain_signature.Serialize());
  PutBytes(tx.calldata, agg.Serialize());
  WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
  return chain_->WaitForReceipt(id);
}

Result<Stage1Response> UserClient::ReadVerified(
    const EntryIndex& index, bool require_blockchain_commit) {
  WEDGE_ASSIGN_OR_RETURN(Stage1Response response, node_->ReadOne(index));
  if (!VerifyStage1(response)) {
    return Status::Verification("read response failed stage-1 verification");
  }
  if (require_blockchain_commit) {
    WEDGE_ASSIGN_OR_RETURN(CommitCheck check, CheckBlockchainCommit(response));
    if (check != CommitCheck::kBlockchainCommitted) {
      return Status::Verification(
          check == CommitCheck::kMismatch
              ? "on-chain root mismatch: offchain node lied"
              : "entry not blockchain-committed yet");
    }
  }
  return response;
}

Result<std::vector<Stage1Response>> UserClient::ReadManyVerified(
    const std::vector<EntryIndex>& indices, bool require_blockchain_commit) {
  WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> responses,
                         node_->Read(indices));
  for (const Stage1Response& r : responses) {
    if (!VerifyStage1(r)) {
      return Status::Verification("read response failed stage-1 verification");
    }
  }
  if (require_blockchain_commit) {
    for (const Stage1Response& r : responses) {
      WEDGE_ASSIGN_OR_RETURN(CommitCheck check, CheckBlockchainCommit(r));
      if (check != CommitCheck::kBlockchainCommitted) {
        return Status::Verification("entry not blockchain-committed");
      }
    }
  }
  return responses;
}

Result<AuditReport> AuditorClient::Audit(uint64_t first_id, uint64_t last_id) {
  AuditReport report;
  const Clock* wall = RealClock::Global();

  Micros read_start = wall->NowMicros();
  WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> responses,
                         node_->Scan(first_id, last_id));
  report.read_micros = wall->NowMicros() - read_start;

  // Cache the on-chain root per position: an audit touches every entry of
  // a position, but the Root Record lookup is per position.
  std::unordered_map<uint64_t, Result<CommitCheck>> position_check;

  Micros verify_start = wall->NowMicros();
  for (const Stage1Response& r : responses) {
    ++report.entries_checked;
    if (!VerifyStage1(r)) {
      ++report.stage1_failures;
      continue;
    }
    if (chain_ == nullptr) continue;
    auto it = position_check.find(r.proof.log_id);
    if (it == position_check.end()) {
      it = position_check.emplace(r.proof.log_id, CheckBlockchainCommit(r))
               .first;
    }
    if (!it->second.ok()) return it->second.status();
    switch (it->second.value()) {
      case CommitCheck::kBlockchainCommitted:
        break;
      case CommitCheck::kNotYetCommitted:
        ++report.not_yet_committed;
        break;
      case CommitCheck::kMismatch:
        ++report.onchain_mismatches;
        break;
    }
  }
  report.verify_micros = wall->NowMicros() - verify_start;
  return report;
}

Result<AuditReport> AuditorClient::AuditFast(uint64_t first_id,
                                             uint64_t last_id) {
  if (first_id > last_id) {
    return Status::InvalidArgument("empty audit range");
  }
  AuditReport report;
  const Clock* wall = RealClock::Global();

  std::vector<BatchReadResponse> batches;
  Micros read_start = wall->NowMicros();
  for (uint64_t id = first_id; id <= last_id; ++id) {
    WEDGE_ASSIGN_OR_RETURN(BatchReadResponse batch, node_->ReadBatch(id));
    batches.push_back(std::move(batch));
  }
  report.read_micros = wall->NowMicros() - read_start;

  Micros verify_start = wall->NowMicros();
  // One chunked range query covers every audited position's on-chain root.
  std::vector<std::pair<bool, Hash256>> roots;
  if (chain_ != nullptr) {
    WEDGE_ASSIGN_OR_RETURN(roots, FetchRootRange(first_id, last_id));
  }
  for (const BatchReadResponse& batch : batches) {
    report.entries_checked += batch.entries.size();
    // One signature + one multi-proof check covers the whole position.
    if (!batch.Verify(node_->address())) {
      report.stage1_failures += batch.entries.size();
      continue;
    }
    if (chain_ == nullptr) continue;
    const auto& [found, recorded] = roots[batch.log_id - first_id];
    if (!found) {
      report.not_yet_committed += batch.entries.size();
    } else if (recorded != batch.mroot) {
      report.onchain_mismatches += batch.entries.size();
    }
  }
  report.verify_micros = wall->NowMicros() - verify_start;
  return report;
}

Result<AuditReport> AuditorClient::AuditSample(uint64_t first_id,
                                               uint64_t last_id,
                                               uint32_t samples_per_position,
                                               uint64_t seed) {
  if (first_id > last_id) {
    return Status::InvalidArgument("empty audit range");
  }
  if (samples_per_position == 0) {
    return Status::InvalidArgument("sample size must be positive");
  }
  AuditReport report;
  const Clock* wall = RealClock::Global();
  Rng rng(seed);

  std::vector<BatchReadResponse> batches;
  Micros read_start = wall->NowMicros();
  for (uint64_t id = first_id; id <= last_id; ++id) {
    WEDGE_ASSIGN_OR_RETURN(uint32_t count, node_->PositionEntryCount(id));
    std::vector<uint32_t> offsets;
    if (samples_per_position >= count) {
      // Degenerate to a full read.
    } else {
      std::set<uint32_t> chosen;
      while (chosen.size() < samples_per_position) {
        chosen.insert(static_cast<uint32_t>(rng.Uniform(count)));
      }
      offsets.assign(chosen.begin(), chosen.end());
    }
    WEDGE_ASSIGN_OR_RETURN(BatchReadResponse batch,
                           node_->ReadBatch(id, std::move(offsets)));
    batches.push_back(std::move(batch));
  }
  report.read_micros = wall->NowMicros() - read_start;

  Micros verify_start = wall->NowMicros();
  // One chunked range query covers every audited position's on-chain root.
  std::vector<std::pair<bool, Hash256>> roots;
  if (chain_ != nullptr) {
    WEDGE_ASSIGN_OR_RETURN(roots, FetchRootRange(first_id, last_id));
  }
  for (const BatchReadResponse& batch : batches) {
    report.entries_checked += batch.entries.size();
    if (!batch.Verify(node_->address())) {
      report.stage1_failures += batch.entries.size();
      continue;
    }
    if (chain_ == nullptr) continue;
    const auto& [found, recorded] = roots[batch.log_id - first_id];
    if (!found) {
      report.not_yet_committed += batch.entries.size();
    } else if (recorded != batch.mroot) {
      report.onchain_mismatches += batch.entries.size();
    }
  }
  report.verify_micros = wall->NowMicros() - verify_start;
  return report;
}

}  // namespace wedge
