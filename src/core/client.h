#ifndef WEDGEBLOCK_CORE_CLIENT_H_
#define WEDGEBLOCK_CORE_CLIENT_H_

#include "contracts/forest_record.h"
#include "core/offchain_node.h"

namespace wedge {

/// Result of a publisher driving one response through stage 2
/// (§4.2 "Publisher Append Requests", links #4/#5 in Figure 2).
struct Stage2Outcome {
  CommitCheck check = CommitCheck::kNotYetCommitted;
  bool punishment_triggered = false;
  Receipt punishment_receipt;  ///< Valid when punishment_triggered.
};

/// Shared verification helpers for all client roles.
class ClientBase {
 public:
  ClientBase(KeyPair key, OffchainNode* node, Blockchain* chain,
             const Address& root_record_address);

  const Address& address() const { return key_.address(); }
  const KeyPair& key() const { return key_; }

  /// Stage-1 verification of a response (signature + Merkle proof).
  bool VerifyStage1(const Stage1Response& response) const;

  /// Compares a response's signed root against the Root Record contract
  /// (link #4 in Figure 2).
  Result<CommitCheck> CheckBlockchainCommit(
      const Stage1Response& response) const;

  /// Second level of a two-level verification (sharded deployments): the
  /// aggregation proof must bind exactly this response's
  /// (shard_id, log_id, MRoot) into its forest root, be signed by the
  /// Offchain Node's key, and carry a valid batch-root -> forest-root
  /// path. Log ids are shard-local, so the shard binding is what keeps
  /// same-numbered logs on different shards apart.
  bool VerifyAggregation(const Stage1Response& response,
                         const AggregationProof& agg) const;

  /// Compares an aggregation proof's forest root against the Root Record
  /// contract's forest records — the sharded counterpart of
  /// CheckBlockchainCommit. A verification result of kMismatch (or a
  /// VerifyAggregation failure on a signed proof) feeds the forest
  /// punishment path; see PublisherClient::TriggerForestPunishment.
  Result<CommitCheck> CheckForestCommit(const AggregationProof& agg) const;

  /// Fetches the recorded roots for positions [first, last] with chunked
  /// getRootsInRange calls (one eth_call per 4096 positions). Entries are
  /// (found, root) in position order.
  Result<std::vector<std::pair<bool, Hash256>>> FetchRootRange(
      uint64_t first, uint64_t last) const;

 protected:
  KeyPair key_;
  OffchainNode* node_;
  Blockchain* chain_;
  Address root_record_address_;
};

/// The Publisher role: signs and appends entries, verifies stage-1
/// responses, later confirms stage-2 commitment and, on conflict, invokes
/// the Punishment contract.
class PublisherClient : public ClientBase {
 public:
  PublisherClient(KeyPair key, OffchainNode* node, Blockchain* chain,
                  const Address& root_record_address,
                  const Address& punishment_address);

  /// Builds signed append requests from key-value pairs, assigning
  /// consecutive client-side sequence numbers.
  std::vector<AppendRequest> MakeRequests(
      const std::vector<std::pair<Bytes, Bytes>>& kvs);

  /// Sends requests to the Offchain Node and verifies every stage-1
  /// response. Fails with Code::kVerification if any response is invalid
  /// (an invalid-but-signed response is punishable evidence; see
  /// TriggerPunishment).
  Result<std::vector<Stage1Response>> Publish(
      const std::vector<AppendRequest>& requests);

  /// Waits (advancing the sim clock) for the response's log position to
  /// appear in the Root Record contract, then verifies it. On a mismatch
  /// — or if the node never commits within `max_blocks` — the publisher
  /// invokes the Punishment contract with the signed response.
  Result<Stage2Outcome> FinalizeOrPunish(const Stage1Response& response,
                                         int max_blocks = 16);

  /// Invokes the Punishment contract with `response` as evidence and
  /// waits for the transaction. The receipt's success flag says whether
  /// the escrow was seized.
  Result<Receipt> TriggerPunishment(const Stage1Response& response);

  /// Two-level variant: submits the signed stage-1 response together
  /// with the engine-signed aggregation proof as evidence
  /// (invokePunishmentForest). Punishes on any signed inconsistency —
  /// equivocation between the two levels, a corrupt signed proof, or a
  /// forest root differing from the recorded one.
  Result<Receipt> TriggerForestPunishment(const Stage1Response& response,
                                          const AggregationProof& agg);

  /// Files an on-chain omission claim for a log position whose digest
  /// never appeared (starts the Punishment contract's grace clock).
  Result<Receipt> FileOmissionClaim(uint64_t log_id);

  const Address& punishment_address() const { return punishment_address_; }

  /// Next unused sequence number.
  uint64_t next_sequence() const { return next_sequence_; }

  /// The omission grace period FinalizeOrPunish waits out after filing a
  /// claim; must match the Punishment contract's configuration.
  void set_omission_grace_seconds(int64_t seconds) {
    grace_hint_seconds_ = seconds;
  }

 private:
  Address punishment_address_;
  uint64_t next_sequence_ = 0;
  int64_t grace_hint_seconds_ = 600;
};

/// The User role: random reads with stage-1 + on-chain verification.
class UserClient : public ClientBase {
 public:
  using ClientBase::ClientBase;

  /// Reads one entry and verifies the stage-1 response; when
  /// `require_blockchain_commit` is set, also checks the Root Record.
  Result<Stage1Response> ReadVerified(const EntryIndex& index,
                                      bool require_blockchain_commit = false);

  /// Batched variant of ReadVerified.
  Result<std::vector<Stage1Response>> ReadManyVerified(
      const std::vector<EntryIndex>& indices,
      bool require_blockchain_commit = false);
};

/// Aggregate result of an audit pass over a log range.
struct AuditReport {
  uint64_t entries_checked = 0;
  uint64_t stage1_failures = 0;     ///< Bad signature or Merkle proof.
  uint64_t onchain_mismatches = 0;  ///< Signed root != recorded root.
  uint64_t not_yet_committed = 0;
  Micros read_micros = 0;
  Micros verify_micros = 0;

  bool Clean() const {
    return stage1_failures == 0 && onchain_mismatches == 0;
  }
};

/// The Auditor role: scans a range of log positions and verifies every
/// entry against the on-chain roots (§4.2 "Read Requests", audit form).
class AuditorClient : public ClientBase {
 public:
  using ClientBase::ClientBase;

  /// Audits log positions [first_id, last_id] entry by entry (one signed
  /// response + one ECDSA verification per entry, as in the paper's
  /// Figure 9 experiment).
  Result<AuditReport> Audit(uint64_t first_id, uint64_t last_id);

  /// Fast audit using batched reads: one multi-proof + one signature per
  /// position. Same guarantees, far less verification work (see
  /// bench/ablation_audit_modes in ablation_lmt).
  Result<AuditReport> AuditFast(uint64_t first_id, uint64_t last_id);

  /// Sampled audit: verifies only `samples_per_position` randomly chosen
  /// entries of each position (batched reads). Detection of a tampered
  /// position is probabilistic — see SampleDetectionProbability in
  /// core/economics.h for sizing the sample against the escrow model.
  /// Root mismatches (equivocation/omission) are still detected with
  /// certainty since every position's root is checked.
  Result<AuditReport> AuditSample(uint64_t first_id, uint64_t last_id,
                                  uint32_t samples_per_position,
                                  uint64_t seed);
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_CLIENT_H_
