#include "core/data_model.h"

#include <algorithm>

namespace wedge {

AppendRequest AppendRequest::Make(const KeyPair& publisher_key,
                                  uint64_t sequence, Bytes key, Bytes value) {
  AppendRequest req;
  req.publisher = publisher_key.address();
  req.sequence = sequence;
  req.key = std::move(key);
  req.value = std::move(value);
  req.signature =
      EcdsaSign(publisher_key.private_key(), Sha256::Digest(req.SignedPayload()));
  return req;
}

Bytes AppendRequest::SignedPayload() const {
  Bytes out;
  PutString(out, "wedgeblock-append-v1");
  Append(out, publisher.ToBytes());
  PutU64(out, sequence);
  PutBytes(out, key);
  PutBytes(out, value);
  return out;
}

bool AppendRequest::VerifySignature() const {
  // RecoverSigner returns the zero address on failure, so a request that
  // *claims* the zero address must never pass.
  if (publisher.IsZero()) return false;
  return RecoverSigner(Sha256::Digest(SignedPayload()), signature) == publisher;
}

Bytes AppendRequest::Serialize() const {
  Bytes out;
  Append(out, publisher.ToBytes());
  PutU64(out, sequence);
  PutBytes(out, key);
  PutBytes(out, value);
  Append(out, signature.Serialize());
  return out;
}

Result<AppendRequest> AppendRequest::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  AppendRequest req;
  WEDGE_ASSIGN_OR_RETURN(Bytes addr, reader.ReadRaw(20));
  std::copy(addr.begin(), addr.end(), req.publisher.bytes.begin());
  WEDGE_ASSIGN_OR_RETURN(req.sequence, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(req.key, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(req.value, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes sig, reader.ReadRaw(65));
  WEDGE_ASSIGN_OR_RETURN(req.signature, EcdsaSignature::Deserialize(sig));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after append request");
  }
  return req;
}

Hash256 Stage1Response::SignedHash() const {
  return Stage1MessageHash(proof.shard_id, proof.log_id, proof.mroot,
                           proof.merkle_proof, entry);
}

bool Stage1Response::Verify(const Address& offchain_address) const {
  if (index.log_id != proof.log_id) return false;
  if (index.offset != proof.merkle_proof.leaf_index) return false;
  if (RecoverSigner(SignedHash(), offchain_signature) != offchain_address) {
    return false;
  }
  return VerifyMerkleProof(entry, proof.merkle_proof, proof.mroot);
}

Bytes Stage1Response::Serialize() const {
  Bytes out;
  PutBytes(out, entry);
  PutU32(out, proof.shard_id);
  PutU64(out, proof.log_id);
  Append(out, HashToBytes(proof.mroot));
  PutBytes(out, proof.merkle_proof.Serialize());
  PutU64(out, index.log_id);
  PutU32(out, index.offset);
  Append(out, offchain_signature.Serialize());
  return out;
}

Result<Stage1Response> Stage1Response::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  Stage1Response resp;
  WEDGE_ASSIGN_OR_RETURN(resp.entry, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(resp.proof.shard_id, reader.ReadU32());
  WEDGE_ASSIGN_OR_RETURN(resp.proof.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(resp.proof.mroot, HashFromBytes(root_raw));
  WEDGE_ASSIGN_OR_RETURN(Bytes proof_raw, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(resp.proof.merkle_proof,
                         MerkleProof::Deserialize(proof_raw));
  WEDGE_ASSIGN_OR_RETURN(resp.index.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(resp.index.offset, reader.ReadU32());
  WEDGE_ASSIGN_OR_RETURN(Bytes sig, reader.ReadRaw(65));
  WEDGE_ASSIGN_OR_RETURN(resp.offchain_signature,
                         EcdsaSignature::Deserialize(sig));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after stage-1 response");
  }
  return resp;
}

}  // namespace wedge
