#ifndef WEDGEBLOCK_CORE_DATA_MODEL_H_
#define WEDGEBLOCK_CORE_DATA_MODEL_H_

#include "contracts/stage1_message.h"
#include "crypto/ecdsa.h"
#include "merkle/merkle_tree.h"
#include "storage/log_store.h"

namespace wedge {

/// A publisher's append request (paper §4.1): A = (S_p, [n, X]) where X is
/// a key-value data object, n a client-side sequence number and S_p the
/// publisher's signature over [n, X].
struct AppendRequest {
  Address publisher;
  uint64_t sequence = 0;  ///< Client-side monotonically increasing n.
  Bytes key;
  Bytes value;
  EcdsaSignature signature;

  /// Builds and signs a request.
  static AppendRequest Make(const KeyPair& publisher_key, uint64_t sequence,
                            Bytes key, Bytes value);

  /// The signed portion [n, X] plus the publisher address.
  Bytes SignedPayload() const;

  /// True iff the signature verifies against the publisher address.
  bool VerifySignature() const;

  /// Canonical encoding of the full request. This is the byte string the
  /// Offchain Node stores as the Merkle leaf, so reads return the
  /// publisher's signature along with the data (making garbage entries
  /// forged by the Offchain Node detectable — §4.3).
  Bytes Serialize() const;
  static Result<AppendRequest> Deserialize(const Bytes& b);
};

/// The stage-1 proof P for a data object: the log position's Merkle root
/// plus the authentication path of this entry. `shard_id` names the
/// engine shard that sealed the position (0 for a bare single node); it
/// is part of the signed statement because log ids are shard-local while
/// all shards sign with the same engine key (see
/// contracts/stage1_message.h).
struct Stage1Proof {
  uint32_t shard_id = 0;
  uint64_t log_id = 0;
  Hash256 mroot{};
  MerkleProof merkle_proof;
};

/// The Offchain Node's response R = (S_e, [X, P, i]) (paper §4.1). The
/// node's signature is the client's evidence for the Punishment contract:
/// it commits the node to blockchain-committing `proof.mroot` at position
/// `proof.log_id`.
struct Stage1Response {
  /// Raw leaf bytes (serialized AppendRequest). Shared with the log
  /// position that stores the same payload — copying a response never
  /// duplicates the entry.
  SharedBytes entry;
  Stage1Proof proof;
  EntryIndex index;       ///< Log position + offset inside the batch.
  EcdsaSignature offchain_signature;

  /// The hash the Offchain Node signs — identical to what the Punishment
  /// contract recomputes in Algorithm 2.
  Hash256 SignedHash() const;

  /// Client-side stage-1 verification: the node's signature is authentic
  /// and the Merkle proof reconstructs the signed root for `entry`.
  bool Verify(const Address& offchain_address) const;

  Bytes Serialize() const;
  static Result<Stage1Response> Deserialize(const Bytes& b);
};

/// Outcome of comparing a stage-1 response against the Root Record
/// contract (the client's stage-2 verification, §4.2 link #4).
enum class CommitCheck {
  kBlockchainCommitted,  ///< On-chain root matches the signed root.
  kNotYetCommitted,      ///< No root recorded at this position yet.
  kMismatch,             ///< On-chain root differs: the node lied.
  /// Still uncommitted past a liveness deadline: grounds for the
  /// omission-claim path (§4.7), pending the contract's grace period.
  kOmissionSuspected,
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_DATA_MODEL_H_
