#include "core/economics.h"

#include <cmath>

namespace wedge {

namespace {

/// Multiplies a wei amount by a non-negative double (rounded up), via
/// fixed-point milli-units to stay in integer arithmetic.
Wei MulByDouble(const Wei& amount, double factor) {
  if (factor <= 0) return Wei();
  // Saturate enormous factors rather than overflow the fixed point.
  if (factor > 1e15) factor = 1e15;
  uint64_t milli = static_cast<uint64_t>(std::ceil(factor * 1000.0));
  U256 scaled = amount * U256(milli);
  U256 q, r;
  scaled.DivMod(U256(1000), &q, &r).ok();
  if (!r.IsZero()) q = q + U256(1);  // Round up: escrow must COVER.
  return q;
}

}  // namespace

Wei RequiredEscrow(const EscrowModel& model) {
  double exposure = model.ops_per_second * model.detection_window_seconds *
                    (model.safety_margin < 1.0 ? 1.0 : model.safety_margin);
  return MulByDouble(model.gain_per_op, exposure);
}

bool EscrowIsDeterrent(const Wei& escrow, const EscrowModel& model) {
  return escrow >= RequiredEscrow(model);
}

double MaxSafeDetectionWindow(const Wei& escrow, const EscrowModel& model) {
  if (model.ops_per_second <= 0 || model.gain_per_op.IsZero()) return 0;
  double margin = model.safety_margin < 1.0 ? 1.0 : model.safety_margin;
  double gain_rate_eth =
      WeiToEthDouble(model.gain_per_op) * model.ops_per_second * margin;
  if (gain_rate_eth <= 0) return 0;
  return WeiToEthDouble(escrow) / gain_rate_eth;
}

double SampleDetectionProbability(uint32_t per_position, uint32_t tampered,
                                  uint32_t sampled) {
  if (per_position == 0 || tampered == 0) return 0.0;
  if (tampered >= per_position || sampled >= per_position) return 1.0;
  if (sampled == 0) return 0.0;
  // P(miss) = C(N-t, s) / C(N, s) = prod_{i=0..s-1} (N-t-i)/(N-i).
  double miss = 1.0;
  for (uint32_t i = 0; i < sampled; ++i) {
    double numer = static_cast<double>(per_position - tampered) - i;
    double denom = static_cast<double>(per_position) - i;
    if (numer <= 0) return 1.0;
    miss *= numer / denom;
  }
  return 1.0 - miss;
}

}  // namespace wedge
