#ifndef WEDGEBLOCK_CORE_ECONOMICS_H_
#define WEDGEBLOCK_CORE_ECONOMICS_H_

#include <cstdint>

#include "chain/types.h"

namespace wedge {

/// Punishment-economics helpers (paper §3.3 / §5 "Penalty amount
/// configuration"): under the all-or-nothing (AoN) punishment strategy,
/// the escrow must outweigh everything a byzantine Offchain Node could
/// gain before its first lie is detected. The paper defers the concrete
/// sizing to future work; this module provides the first-order model the
/// discussion implies:
///
///   required escrow >= gain_per_lie * ops_per_second * detection_window
///                      * safety_margin
///
/// where the detection window is bounded by how often clients/auditors
/// check stage-2 (FinalizeOrPunish cadence, payment periods, or audit
/// frequency — §3.3 notes the periodic payment mechanism bounds it).
struct EscrowModel {
  /// Maximum wei the node can gain per lied-about operation (application
  /// specific: value of a forged IoT reading, game item, etc.).
  Wei gain_per_op;
  /// Sustained operation rate the node serves.
  double ops_per_second = 0;
  /// Worst-case seconds from the first lie to the first stage-2 check
  /// by any honest client or auditor.
  double detection_window_seconds = 0;
  /// Multiplier for modelling error (>= 1).
  double safety_margin = 2.0;
};

/// Minimum escrow making lying unprofitable under the model.
Wei RequiredEscrow(const EscrowModel& model);

/// True when `escrow` deters the modelled adversary.
bool EscrowIsDeterrent(const Wei& escrow, const EscrowModel& model);

/// The longest detection window a given escrow safely covers (seconds);
/// useful for choosing the audit/payment cadence. Returns 0 when the
/// model's rates are degenerate.
double MaxSafeDetectionWindow(const Wei& escrow, const EscrowModel& model);

/// Probability that sampling `sampled` of `per_position` entries per log
/// position catches at least one of `tampered` tampered entries in that
/// position (hypergeometric miss-probability complement). The sampled
/// audit (AuditorClient::AuditSample) trades this detection probability
/// for verification cost.
double SampleDetectionProbability(uint32_t per_position, uint32_t tampered,
                                  uint32_t sampled);

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_ECONOMICS_H_
