#include "core/offchain_node.h"

#include <algorithm>
#include <atomic>

namespace wedge {

OffchainNode::OffchainNode(const OffchainNodeConfig& config, KeyPair key,
                           std::unique_ptr<LogStore> store, Blockchain* chain,
                           const Address& root_record_address,
                           Telemetry* telemetry)
    : config_(config),
      key_(std::move(key)),
      store_(std::move(store)),
      chain_(chain),
      root_record_address_(root_record_address),
      pool_(config.worker_threads),
      owned_telemetry_(
          telemetry != nullptr
              ? nullptr
              : std::make_unique<Telemetry>(
                    chain != nullptr
                        ? static_cast<const Clock*>(chain->clock())
                        : nullptr)),
      telemetry_(telemetry != nullptr ? telemetry : owned_telemetry_.get()),
      submitter_(config.stage2, chain, key_.address(), root_record_address,
                 telemetry_),
      byzantine_mode_(config.byzantine_mode) {
  MetricsRegistry& m = telemetry_->metrics;
  entries_ingested_counter_ = m.GetCounter("wedge.node.entries_ingested");
  batches_counter_ = m.GetCounter("wedge.node.batches_created");
  invalid_sig_counter_ =
      m.GetCounter("wedge.node.invalid_signatures_rejected");
  reads_counter_ = m.GetCounter("wedge.node.reads_served");
  tree_cache_hits_counter_ = m.GetCounter("wedge.node.tree_cache_hits");
  tree_cache_misses_counter_ = m.GetCounter("wedge.node.tree_cache_misses");
  append_hist_ = m.GetHistogram("wedge.node.append_us");
  seal_hist_ = m.GetHistogram("wedge.node.seal_us");
  read_hist_ = m.GetHistogram("wedge.node.read_us");
  sign_hist_ = m.GetHistogram("wedge.node.sign_us");
  // A store reopened from disk resumes its id sequence.
  next_log_id_ = store_->Size();
  next_commit_id_ = next_log_id_;
  next_enqueue_id_ = next_log_id_;
}

Result<std::vector<Stage1Response>> OffchainNode::Append(
    const std::vector<AppendRequest>& requests) {
  return Append(std::vector<AppendRequest>(requests));
}

Result<std::vector<Stage1Response>> OffchainNode::Append(
    std::vector<AppendRequest>&& requests) {
  if (requests.empty()) {
    return Status::InvalidArgument("empty append request list");
  }
  Stopwatch watch(RealClock::Global());

  // Verify client signatures in parallel (paper §5: signature checks are
  // embarrassingly parallel and run on all cores).
  std::vector<uint8_t> valid(requests.size(), 1);
  if (config_.verify_client_signatures) {
    pool_.ParallelFor(requests.size(), [&](size_t i) {
      valid[i] = requests[i].VerifySignature() ? 1 : 0;
    });
  }

  std::vector<AppendRequest> accepted;
  accepted.reserve(requests.size());
  uint64_t rejected = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (valid[i]) {
      accepted.push_back(std::move(requests[i]));
    } else {
      ++rejected;
    }
  }
  if (rejected > 0) invalid_sig_counter_->Add(rejected);
  if (accepted.empty()) {
    return Status::InvalidArgument("all requests had invalid signatures");
  }

  std::vector<Stage1Response> responses;
  responses.reserve(accepted.size());
  size_t cursor = 0;
  while (cursor < accepted.size()) {
    size_t take = std::min<size_t>(config_.batch_size,
                                   accepted.size() - cursor);
    std::vector<AppendRequest> batch(
        std::make_move_iterator(accepted.begin() + cursor),
        std::make_move_iterator(accepted.begin() + cursor + take));
    cursor += take;
    WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> part,
                           SealBatch(std::move(batch)));
    for (auto& r : part) responses.push_back(std::move(r));
  }
  append_hist_->Record(watch.ElapsedMicros());
  return responses;
}

Status OffchainNode::SubmitAppend(AppendRequest request) {
  if (config_.verify_client_signatures && !request.VerifySignature()) {
    invalid_sig_counter_->Add(1);
    return Status::Verification("invalid client signature");
  }
  std::vector<AppendRequest> to_seal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    staging_.push_back(std::move(request));
    if (staging_.size() < config_.batch_size) return Status::Ok();
    to_seal.swap(staging_);
  }
  Result<std::vector<Stage1Response>> sealed = SealBatch(std::move(to_seal));
  if (!sealed.ok()) return sealed.status();
  ResponseCallback cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = response_callback_;
  }
  if (cb) cb(std::move(sealed).value());
  return Status::Ok();
}

void OffchainNode::SetResponseCallback(ResponseCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  response_callback_ = std::move(callback);
}

size_t OffchainNode::StagedRequests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staging_.size();
}

Result<std::vector<Stage1Response>> OffchainNode::FlushStagedBatch() {
  std::vector<AppendRequest> to_seal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (staging_.empty()) {
      return Status::NotFound("staging batch is empty");
    }
    to_seal.swap(staging_);
  }
  Result<std::vector<Stage1Response>> sealed = SealBatch(std::move(to_seal));
  if (sealed.ok()) {
    ResponseCallback cb;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cb = response_callback_;
    }
    if (cb) {
      // Single owner: the callback takes the responses (as on the
      // batch-full path) and the caller gets an empty vector.
      cb(std::move(sealed).value());
      return std::vector<Stage1Response>();
    }
  }
  return sealed;
}

Result<std::vector<Stage1Response>> OffchainNode::SealBatch(
    std::vector<AppendRequest> batch) {
  Stopwatch watch(RealClock::Global());
  // Leaves are the canonical encodings of the accepted requests; the
  // batch order fixes the event order that stage-2 will commit (§2.3).
  // Each payload is serialized exactly once into shared ownership: the
  // log position, the Merkle tree and every response reference the same
  // allocation (copying a SharedBytes bumps a refcount).
  std::vector<SharedBytes> leaves(batch.size());
  pool_.ParallelFor(batch.size(),
                    [&](size_t i) { leaves[i] = batch[i].Serialize(); });

  WEDGE_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(leaves, &pool_));
  auto shared_tree = std::make_shared<MerkleTree>(std::move(tree));

  LogPosition position;
  position.data_list = leaves;
  position.mroot = shared_tree->Root();

  // Claim the next dense log id — the only work that needs the global
  // node lock. Hashing above and signing below run concurrently across
  // sealers; ids stay dense and monotone.
  uint64_t log_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_id = next_log_id_++;
  }
  position.log_id = log_id;
  telemetry_->tracer.Event(log_id, trace_stage::kIngest, batch.size());

  // The store requires consecutive ids, so sealers stage their append in
  // ticket order: wait until every earlier id has prepared. Only the
  // PREPARE — a buffered WAL write, no sync — runs under the ticket; the
  // ticket always advances (even on failure) so a failed append never
  // deadlocks later sealers.
  Status commit_status = Status::Ok();
  uint64_t durable_token = 0;
  {
    std::unique_lock<std::mutex> lock(seal_mu_);
    seal_cv_.wait(lock, [&] { return next_commit_id_ == log_id; });
    Result<uint64_t> prepared = store_->AppendPrepare(position);
    if (prepared.ok()) {
      durable_token = prepared.value();
    } else {
      commit_status = prepared.status();
    }
    ++next_commit_id_;
    seal_cv_.notify_all();
  }
  // Durability wait OUTSIDE the ticket: every concurrent sealer parks
  // here and a group-commit store amortizes one sync across all of them.
  // Nothing downstream — the stage-2 enqueue below, the client ack, the
  // epoch aggregator (which only sees durable positions via Size()) —
  // happens before this returns: a root the chain commits must never be
  // one a crash can still revoke, or a restart would reuse the log id
  // for a different batch and hand out punishable "equivocation".
  if (commit_status.ok()) {
    commit_status = store_->WaitDurable(durable_token);
  }
  {
    // The submitter must see roots in log order; the seal ticket is long
    // gone, so enqueueing holds a ticket of its own. Advances on failure
    // for the same no-deadlock reason.
    std::unique_lock<std::mutex> lock(enqueue_mu_);
    enqueue_cv_.wait(lock, [&] { return next_enqueue_id_ == log_id; });
    if (commit_status.ok()) {
      Hash256 stage2_root = shared_tree->Root();
      if (byzantine_mode_.load(std::memory_order_relaxed) ==
          ByzantineMode::kEquivocateRoot) {
        // The node promises one root in stage-1 but schedules a
        // different one for blockchain commitment.
        stage2_root[0] ^= 0xFF;
      }
      commit_status = submitter_.Enqueue(log_id, stage2_root);
    }
    ++next_enqueue_id_;
    enqueue_cv_.notify_all();
  }
  WEDGE_RETURN_IF_ERROR(commit_status);
  telemetry_->tracer.Event(log_id, trace_stage::kSeal, batch.size());
  entries_ingested_counter_->Add(batch.size());
  batches_counter_->Add(1);
  {
    // Cache the freshly built tree for the read path.
    std::lock_guard<std::mutex> lock(mu_);
    CacheTreeLocked(log_id, shared_tree);
  }

  // Produce responses in parallel (proof generation per entry), then
  // batch-sign them: chunked EcdsaSignMany fanned across the pool beats
  // one EcdsaSign per entry both by core scaling and by the batched
  // inversions inside each chunk.
  const ByzantineMode mode = byzantine_mode_.load(std::memory_order_relaxed);
  std::vector<Stage1Response> responses(batch.size());
  std::atomic<bool> failed{false};
  pool_.ParallelFor(batch.size(), [&](size_t i) {
    Stage1Response resp;
    resp.entry = leaves[i];
    resp.index = EntryIndex{log_id, static_cast<uint32_t>(i)};
    resp.proof.shard_id = config_.shard_id;
    resp.proof.log_id = log_id;
    resp.proof.mroot = shared_tree->Root();
    if (!shared_tree->ProveInto(i, &resp.proof.merkle_proof).ok()) {
      failed.store(true);
      return;
    }
    if (mode == ByzantineMode::kCorruptProof &&
        !resp.proof.merkle_proof.path.empty()) {
      // Corrupt the path BEFORE signing: the signature stays authentic,
      // which is exactly the case-2 evidence Algorithm 2 punishes.
      resp.proof.merkle_proof.path[0].sibling[0] ^= 0xFF;
    }
    responses[i] = std::move(resp);
  });
  if (failed.load()) {
    return Status::Internal("merkle proof generation failed");
  }
  if (config_.sign_stage1_responses) {
    SignResponsesPooled(responses.data(), responses.size());
  }
  telemetry_->tracer.Event(log_id, trace_stage::kStage1Signed, batch.size());
  seal_hist_->Record(watch.ElapsedMicros());

  if (config_.auto_stage2 &&
      PendingDigests() >= std::max<uint32_t>(1, config_.stage2_group_batches)) {
    Result<TxId> tx = CommitPendingDigests();
    // kOmitStage2 and chain-less configurations legitimately skip.
    if (!tx.ok() && tx.status().code() != Code::kNotFound &&
        tx.status().code() != Code::kFailedPrecondition) {
      return tx.status();
    }
  }
  return responses;
}

Result<TxId> OffchainNode::CommitPendingDigests() {
  if (byzantine_mode_.load(std::memory_order_relaxed) ==
      ByzantineMode::kOmitStage2) {
    // Omission attack: silently discard the promised digests.
    submitter_.DiscardUnsubmitted();
    return Status::NotFound("stage-2 omitted (byzantine)");
  }
  if (submitter_.UnsubmittedDigests() == 0) {
    return Status::NotFound("no pending digests");
  }
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  return submitter_.SubmitPending();
}

size_t OffchainNode::PendingDigests() const {
  return submitter_.UnsubmittedDigests();
}

size_t OffchainNode::UncommittedDigests() const {
  return submitter_.UncommittedDigests();
}

std::vector<TxId> OffchainNode::Stage2TxIds() const {
  return submitter_.TxIds();
}

void OffchainNode::Stage2Tick() { submitter_.Tick(); }

Result<uint64_t> OffchainNode::Recover() {
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  if (submitter_.UncommittedDigests() != 0) {
    return Status::FailedPrecondition(
        "recovery requires a fresh (empty) stage-2 journal");
  }
  WEDGE_ASSIGN_OR_RETURN(Bytes out,
                         chain_->Call(root_record_address_, "tailIdx", {}));
  ByteReader reader(out);
  WEDGE_ASSIGN_OR_RETURN(uint64_t tail, reader.ReadU64());
  uint64_t local_tail = store_->Size();
  if (tail > local_tail) {
    return Status::Internal(
        "on-chain tail ahead of the local log: store lost data");
  }
  // Re-journal every position sealed before the crash that the chain has
  // not committed; the normal pipeline resubmits and confirms them.
  for (uint64_t id = tail; id < local_tail; ++id) {
    WEDGE_ASSIGN_OR_RETURN(Hash256 root, store_->GetRoot(id));
    WEDGE_RETURN_IF_ERROR(submitter_.Enqueue(id, root));
  }
  return local_tail - tail;
}

void OffchainNode::CacheTreeLocked(uint64_t log_id,
                                   std::shared_ptr<MerkleTree> tree) {
  auto it = tree_cache_.find(log_id);
  if (it != tree_cache_.end()) {
    // Already cached (a racing read rebuilt it): touch and refresh.
    tree_lru_.splice(tree_lru_.end(), tree_lru_, it->second.second);
    it->second.first = std::move(tree);
    return;
  }
  tree_lru_.push_back(log_id);
  tree_cache_.emplace(
      log_id, std::make_pair(std::move(tree), std::prev(tree_lru_.end())));
  while (tree_cache_.size() > config_.tree_cache_capacity &&
         !tree_lru_.empty()) {
    tree_cache_.erase(tree_lru_.front());
    tree_lru_.pop_front();
  }
}

Result<std::shared_ptr<MerkleTree>> OffchainNode::TreeFor(uint64_t log_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tree_cache_.find(log_id);
    if (it != tree_cache_.end()) {
      // LRU touch: move to the most-recently-used end.
      tree_lru_.splice(tree_lru_.end(), tree_lru_, it->second.second);
      tree_cache_hits_counter_->Add(1);
      return it->second.first;
    }
  }
  tree_cache_misses_counter_->Add(1);
  WEDGE_ASSIGN_OR_RETURN(LogPosition pos, store_->Get(log_id));
  WEDGE_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(pos.data_list));
  auto shared = std::make_shared<MerkleTree>(std::move(tree));
  std::lock_guard<std::mutex> lock(mu_);
  CacheTreeLocked(log_id, shared);
  return shared;
}

Stage1Response OffchainNode::MakeResponse(const SharedBytes& leaf,
                                          uint64_t log_id, uint32_t offset,
                                          const MerkleTree& tree,
                                          bool sign) const {
  Stage1Response resp;
  resp.entry = leaf;
  resp.index = EntryIndex{log_id, offset};
  resp.proof.shard_id = config_.shard_id;
  resp.proof.log_id = log_id;
  resp.proof.mroot = tree.Root();
  (void)tree.ProveInto(offset, &resp.proof.merkle_proof);
  if (sign) {
    Stopwatch watch(RealClock::Global());
    resp.offchain_signature = EcdsaSign(key_.private_key(), resp.SignedHash());
    sign_hist_->Record(watch.ElapsedMicros());
  }
  return resp;
}

void OffchainNode::SignResponsesPooled(Stage1Response* responses,
                                       size_t n) const {
  if (n == 0) return;
  Stopwatch watch(RealClock::Global());
  std::vector<Hash256> hashes(n);
  pool_.ParallelFor(n, [&](size_t i) { hashes[i] = responses[i].SignedHash(); });
  // Chunks small enough that every worker gets some, large enough that
  // the batched-inversion amortization inside EcdsaSignMany is intact.
  constexpr size_t kSignChunk = 128;
  std::vector<EcdsaSignature> sigs(n);
  const size_t chunks = (n + kSignChunk - 1) / kSignChunk;
  pool_.ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * kSignChunk;
    const size_t count = std::min(kSignChunk, n - begin);
    EcdsaSignMany(key_.private_key(), hashes.data() + begin, count,
                  sigs.data() + begin);
  });
  for (size_t i = 0; i < n; ++i) {
    responses[i].offchain_signature = sigs[i];
  }
  sign_hist_->Record(watch.ElapsedMicros());
}

Result<Stage1Response> OffchainNode::ReadOne(const EntryIndex& index) {
  if (byzantine_mode_.load(std::memory_order_relaxed) ==
      ByzantineMode::kTamperReadData) {
    return ForgeTamperedRead(index);
  }
  Stopwatch watch(RealClock::Global());
  WEDGE_ASSIGN_OR_RETURN(SharedBytes entry, store_->GetEntry(index));
  WEDGE_ASSIGN_OR_RETURN(std::shared_ptr<MerkleTree> tree,
                         TreeFor(index.log_id));
  reads_counter_->Add(1);
  Stage1Response resp =
      MakeResponse(entry, index.log_id, index.offset, *tree);
  read_hist_->Record(watch.ElapsedMicros());
  return resp;
}

Result<std::vector<Stage1Response>> OffchainNode::Read(
    const std::vector<EntryIndex>& indices) {
  std::vector<Stage1Response> out(indices.size());
  std::atomic<bool> failed{false};
  pool_.ParallelFor(indices.size(), [&](size_t i) {
    auto r = ReadOne(indices[i]);
    if (!r.ok()) {
      failed.store(true);
      return;
    }
    out[i] = std::move(r).value();
  });
  if (failed.load()) {
    return Status::NotFound("one or more read indices do not exist");
  }
  return out;
}

Result<std::vector<Stage1Response>> OffchainNode::Scan(uint64_t first_id,
                                                       uint64_t last_id) {
  std::vector<Stage1Response> out;
  for (uint64_t id = first_id; id <= last_id; ++id) {
    WEDGE_ASSIGN_OR_RETURN(LogPosition pos, store_->Get(id));
    WEDGE_ASSIGN_OR_RETURN(std::shared_ptr<MerkleTree> tree, TreeFor(id));
    size_t base = out.size();
    out.resize(base + pos.data_list.size());
    std::atomic<bool> failed{false};
    const bool tampering = byzantine_mode_.load(std::memory_order_relaxed) ==
                           ByzantineMode::kTamperReadData;
    pool_.ParallelFor(pos.data_list.size(), [&](size_t i) {
      if (tampering) {
        auto forged = ForgeTamperedRead(
            EntryIndex{id, static_cast<uint32_t>(i)});
        if (forged.ok()) {
          out[base + i] = std::move(forged).value();
        } else {
          failed.store(true);
        }
        return;
      }
      // Proofs in parallel; signatures batched below.
      out[base + i] = MakeResponse(pos.data_list[i], id,
                                   static_cast<uint32_t>(i), *tree,
                                   /*sign=*/false);
    });
    if (failed.load()) return Status::Internal("scan forgery failed");
    if (!tampering) {
      SignResponsesPooled(out.data() + base, pos.data_list.size());
    }
    reads_counter_->Add(pos.data_list.size());
  }
  return out;
}

Result<BatchReadResponse> OffchainNode::ReadBatch(
    uint64_t log_id, std::vector<uint32_t> offsets) {
  WEDGE_ASSIGN_OR_RETURN(LogPosition pos, store_->Get(log_id));
  WEDGE_ASSIGN_OR_RETURN(std::shared_ptr<MerkleTree> tree, TreeFor(log_id));

  if (offsets.empty()) {
    offsets.resize(pos.data_list.size());
    for (size_t i = 0; i < offsets.size(); ++i) {
      offsets[i] = static_cast<uint32_t>(i);
    }
  }
  BatchReadResponse resp;
  resp.log_id = log_id;
  resp.mroot = tree->Root();
  std::vector<uint64_t> indices;
  indices.reserve(offsets.size());
  for (uint32_t offset : offsets) {
    if (offset >= pos.data_list.size()) {
      return Status::NotFound("entry offset out of range");
    }
    resp.entries.emplace_back(offset, pos.data_list[offset]);
    indices.push_back(offset);
  }
  WEDGE_ASSIGN_OR_RETURN(resp.proof, BuildMultiProof(*tree, indices));
  {
    Stopwatch sign_watch(RealClock::Global());
    resp.offchain_signature =
        EcdsaSign(key_.private_key(), resp.SignedHash());
    sign_hist_->Record(sign_watch.ElapsedMicros());
  }
  reads_counter_->Add(resp.entries.size());
  return resp;
}

Result<Stage1Response> OffchainNode::ForgeTamperedRead(
    const EntryIndex& index) {
  // A lying node cannot fake the on-chain root, but it can sign an
  // internally consistent response over tampered data: rebuild the batch
  // with the entry modified, recompute the tree, sign. Stage-1
  // verification passes; the root mismatch against the Root Record
  // contract is the client's punishable evidence.
  WEDGE_ASSIGN_OR_RETURN(LogPosition pos, store_->Get(index.log_id));
  if (index.offset >= pos.data_list.size()) {
    return Status::NotFound("entry offset out of range");
  }
  std::vector<SharedBytes> tampered = pos.data_list;
  if (tampered[index.offset].empty()) {
    tampered[index.offset] = ToBytes("forged");
  } else {
    // SharedBytes is immutable: tamper on a private copy, then share it.
    Bytes mutated = tampered[index.offset].get();
    mutated.back() ^= 0xFF;
    tampered[index.offset] = std::move(mutated);
  }
  WEDGE_ASSIGN_OR_RETURN(MerkleTree fake_tree, MerkleTree::Build(tampered));
  reads_counter_->Add(1);
  return MakeResponse(tampered[index.offset], index.log_id, index.offset,
                      fake_tree);
}

Result<uint32_t> OffchainNode::PositionEntryCount(uint64_t log_id) const {
  // Index-backed (LogStore::GetEntryCount), so a garbage-collected
  // position still answers and aggregation never stalls on GC.
  return store_->GetEntryCount(log_id);
}

Result<Hash256> OffchainNode::PositionRoot(uint64_t log_id) const {
  // Index-backed for the same reason — and the epoch aggregator polls
  // this for every new position, so skipping the payload read matters.
  return store_->GetRoot(log_id);
}

OffchainNodeStats OffchainNode::stats() const {
  OffchainNodeStats s;
  s.entries_ingested = entries_ingested_counter_->Value();
  s.batches_created = batches_counter_->Value();
  s.invalid_signatures_rejected = invalid_sig_counter_->Value();
  s.reads_served = reads_counter_->Value();
  s.stage2_txs_submitted = submitter_.stats().txs_submitted;
  s.tree_cache_hits = tree_cache_hits_counter_->Value();
  s.tree_cache_misses = tree_cache_misses_counter_->Value();
  return s;
}

void OffchainNode::set_byzantine_mode(ByzantineMode mode) {
  byzantine_mode_.store(mode, std::memory_order_relaxed);
}

}  // namespace wedge
