#ifndef WEDGEBLOCK_CORE_OFFCHAIN_NODE_H_
#define WEDGEBLOCK_CORE_OFFCHAIN_NODE_H_

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <unordered_map>

#include "chain/blockchain.h"
#include "common/thread_pool.h"
#include "core/batch_read.h"
#include "core/data_model.h"
#include "core/stage2_submitter.h"

namespace wedge {

/// Fault-injection modes for the Offchain Node. The byzantine modes drive
/// the safety tests and the punishment-path experiments: every mode other
/// than kHonest is detectable (and punishable) under Definitions 3.1/3.2.
enum class ByzantineMode {
  kHonest,
  /// Stage-1 responses are honest but stage-2 commits a different root
  /// (classic equivocation; caught by CommitCheck::kMismatch).
  kEquivocateRoot,
  /// Read responses carry tampered data with a freshly forged (signed,
  /// internally consistent) proof; caught against the on-chain root.
  kTamperReadData,
  /// Stage-2 commits are silently dropped (omission attack, §4.7).
  kOmitStage2,
  /// Responses are signed over a corrupted Merkle proof; caught by
  /// stage-1 verification and punishable via Algorithm 2 case 2.
  kCorruptProof,
};

struct OffchainNodeConfig {
  /// Append requests per log position (the paper's default is 2000).
  uint32_t batch_size = 2000;
  /// Worker threads for parallel ECDSA signing/verification (the paper's
  /// prototype parallelizes these across all cores, §5).
  size_t worker_threads = 4;
  /// Submit a stage-2 transaction automatically after every batch.
  bool auto_stage2 = true;
  /// With auto_stage2, accumulate this many batch digests before issuing
  /// one updateRecords transaction (the grouping lever measured in
  /// bench/ablation_lmt; 1 = the paper's per-batch behaviour).
  uint32_t stage2_group_batches = 1;
  /// Skip client signature verification on ingest (benchmarking knob; the
  /// default matches the paper's protocol).
  bool verify_client_signatures = true;
  /// Sign stage-1 append responses (the core of LMT; default on). Read
  /// benches turn this off only to preload large logs quickly — read
  /// responses are always signed.
  bool sign_stage1_responses = true;
  /// Positions whose Merkle trees stay cached for read serving.
  size_t tree_cache_capacity = 4096;
  /// Shard identity baked into every stage-1 signature (see
  /// contracts/stage1_message.h). A bare node is shard 0; the sharded
  /// engine assigns each shard its index so signatures from different
  /// shards can never be confused for each other.
  uint32_t shard_id = 0;
  ByzantineMode byzantine_mode = ByzantineMode::kHonest;
  /// Resilient stage-2 pipeline knobs (timeout, backoff, gas bumping).
  Stage2SubmitterConfig stage2;
};

/// Convenience snapshot of the node's `wedge.node.*` counters. This
/// struct is DERIVED from the telemetry registry (the registry is the
/// source of truth; see OffchainNode::stats()): any counter the node
/// registers must also be snapshotted here, or callers relying on the
/// struct silently lose it.
struct OffchainNodeStats {
  uint64_t entries_ingested = 0;
  uint64_t batches_created = 0;
  uint64_t invalid_signatures_rejected = 0;
  uint64_t stage2_txs_submitted = 0;
  uint64_t reads_served = 0;
  uint64_t tree_cache_hits = 0;
  uint64_t tree_cache_misses = 0;
};

/// The Offchain Node (paper §4.3): ingests append requests in batches,
/// builds a Merkle tree per batch, persists the log position, returns
/// signed stage-1 responses, and lazily commits batch digests to the Root
/// Record contract (stage-2) — the LMT protocol.
///
/// Thread-compatible: Append/Read may be called from multiple client
/// threads; internal state is mutex-protected and crypto work fans out to
/// the worker pool.
class OffchainNode {
 public:
  /// `chain` may be null for pure off-chain benchmarking (stage-2 calls
  /// then fail with FailedPrecondition). `telemetry` is the metrics/trace
  /// sink shared with the chain and submitter; when null the node owns a
  /// private one (readable via telemetry()), so instrumentation is
  /// always on.
  OffchainNode(const OffchainNodeConfig& config, KeyPair key,
               std::unique_ptr<LogStore> store, Blockchain* chain,
               const Address& root_record_address,
               Telemetry* telemetry = nullptr);

  OffchainNode(const OffchainNode&) = delete;
  OffchainNode& operator=(const OffchainNode&) = delete;

  /// --- Append path (stage 1) ---

  /// Ingests a list of append requests: verifies client signatures,
  /// groups them into batches of config.batch_size, builds one log
  /// position per batch and returns a signed stage-1 response per valid
  /// request (in input order; invalid-signature requests are dropped and
  /// counted in stats).
  Result<std::vector<Stage1Response>> Append(
      const std::vector<AppendRequest>& requests);
  /// Move overload for the hot path: valid requests are moved into the
  /// batch instead of copied (the lvalue overload copies first).
  Result<std::vector<Stage1Response>> Append(
      std::vector<AppendRequest>&& requests);

  /// Delivery hook for responses produced by the streaming path
  /// (SubmitAppend/FlushStagedBatch): the paper's node pushes stage-1
  /// responses back to publishers one batch at a time.
  using ResponseCallback = std::function<void(std::vector<Stage1Response>&&)>;
  void SetResponseCallback(ResponseCallback callback);

  /// Buffers a single request into the current (staging) batch. When the
  /// batch fills up it is sealed and responses flow to the callback.
  Status SubmitAppend(AppendRequest request);
  /// Number of requests waiting in the staging batch.
  size_t StagedRequests() const;
  /// Seals the staging batch regardless of fill level. When a response
  /// callback is set the sealed responses are moved to it (matching the
  /// batch-full path) and the returned vector is empty; otherwise the
  /// responses are returned. Either way there is exactly one owner.
  Result<std::vector<Stage1Response>> FlushStagedBatch();

  /// --- Read path ---

  /// Serves one entry with a fresh stage-1 response (§4.3 read requests).
  Result<Stage1Response> ReadOne(const EntryIndex& index);
  Result<std::vector<Stage1Response>> Read(
      const std::vector<EntryIndex>& indices);
  /// Auditor scan: every entry in log positions [first_id, last_id].
  Result<std::vector<Stage1Response>> Scan(uint64_t first_id,
                                           uint64_t last_id);

  /// Batched read of one position: `offsets` selects entries (empty =
  /// the whole position). One multi-proof + one signature authenticate
  /// the whole batch — the fast audit path.
  Result<BatchReadResponse> ReadBatch(uint64_t log_id,
                                      std::vector<uint32_t> offsets = {});

  /// --- Stage 2 (lazy blockchain commitment) ---

  /// Submits one updateRecords transaction covering all pending digests.
  /// Returns the TxId, or NotFound when nothing is pending. The digests
  /// stay journaled in the submitter until a confirmed receipt covers
  /// them, so a failed or lost transaction never loses a root.
  Result<TxId> CommitPendingDigests();
  /// Digests sealed locally but not yet covered by a stage-2 submission.
  size_t PendingDigests() const;
  /// Digests not yet *confirmed* on-chain (submitted or not).
  size_t UncommittedDigests() const;
  /// TxIds of all stage-2 transactions submitted so far.
  std::vector<TxId> Stage2TxIds() const;
  /// Drives the stage-2 pipeline: reaps confirmations, detects lost or
  /// reverted transactions, retries with backoff + gas bumping. Call once
  /// per mined block (Deployment::AdvanceBlocks does).
  void Stage2Tick();
  /// Direct access for tests and experiment harnesses.
  Stage2Submitter* stage2_submitter() { return &submitter_; }

  /// Crash recovery: reconciles the local log tail against the on-chain
  /// Root Record tail and re-journals every locally-sealed position the
  /// chain does not know about yet. Returns the number of re-enqueued
  /// digests. Call on a freshly constructed node (empty journal) whose
  /// store was reopened from disk.
  Result<uint64_t> Recover();

  /// --- Introspection ---

  const Address& address() const { return key_.address(); }
  uint64_t LogPositions() const { return store_->Size(); }
  /// The backing store (e.g. for engine-level recovery/GC plumbing).
  LogStore& store() { return *store_; }
  /// Number of entries stored at a log position.
  Result<uint32_t> PositionEntryCount(uint64_t log_id) const;
  /// Sealed Merkle root at a log position (the MRoot the store persisted).
  /// Used by the epoch aggregator to collect shard roots without going
  /// through the stage-2 journal.
  Result<Hash256> PositionRoot(uint64_t log_id) const;
  OffchainNodeStats stats() const;
  const OffchainNodeConfig& config() const { return config_; }
  /// The node's metrics/trace sink (injected or privately owned).
  Telemetry& telemetry() { return *telemetry_; }

  /// Escape hatch for experiments that need to flip behaviour mid-run
  /// (e.g. an initially honest node that starts equivocating).
  void set_byzantine_mode(ByzantineMode mode);

 private:
  /// Seals `batch` into a log position and produces signed responses.
  Result<std::vector<Stage1Response>> SealBatch(
      std::vector<AppendRequest> batch);

  /// Returns the Merkle tree for a stored position (cache or rebuild).
  Result<std::shared_ptr<MerkleTree>> TreeFor(uint64_t log_id);

  /// Inserts (or touches) `tree` in the LRU cache. Caller holds mu_.
  void CacheTreeLocked(uint64_t log_id, std::shared_ptr<MerkleTree> tree);

  /// Builds a stage-1 response; signs it inline (timed into
  /// wedge.node.sign_us) unless `sign` is false, in which case the
  /// caller batch-signs via SignResponsesPooled.
  Stage1Response MakeResponse(const SharedBytes& leaf, uint64_t log_id,
                              uint32_t offset, const MerkleTree& tree,
                              bool sign = true) const;

  /// Signs `responses[0..n)` with the node key: hashes in parallel, then
  /// fans fixed-size EcdsaSignMany chunks across the worker pool so the
  /// batched-inversion savings and core scaling compose. Records
  /// wedge.node.sign_us once for the whole batch.
  void SignResponsesPooled(Stage1Response* responses, size_t n) const;

  /// Byzantine read path: forge an internally consistent response over
  /// tampered data.
  Result<Stage1Response> ForgeTamperedRead(const EntryIndex& index);

  const OffchainNodeConfig config_;
  const KeyPair key_;
  std::unique_ptr<LogStore> store_;
  Blockchain* const chain_;
  const Address root_record_address_;
  mutable ThreadPool pool_;
  /// Fallback sink when no Telemetry is injected. Declared before
  /// submitter_ so telemetry_ is valid when the submitter is built.
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* const telemetry_;
  Counter* entries_ingested_counter_ = nullptr;
  Counter* batches_counter_ = nullptr;
  Counter* invalid_sig_counter_ = nullptr;
  Counter* reads_counter_ = nullptr;
  Counter* tree_cache_hits_counter_ = nullptr;
  Counter* tree_cache_misses_counter_ = nullptr;
  Histogram* append_hist_ = nullptr;
  Histogram* seal_hist_ = nullptr;
  Histogram* read_hist_ = nullptr;
  Histogram* sign_hist_ = nullptr;
  Stage2Submitter submitter_;

  mutable std::mutex mu_;
  std::vector<AppendRequest> staging_;
  /// LRU tree cache: tree_lru_ is ordered oldest-touched first; each
  /// cache entry carries its position in the list for O(1) touch.
  std::unordered_map<
      uint64_t,
      std::pair<std::shared_ptr<MerkleTree>, std::list<uint64_t>::iterator>>
      tree_cache_;
  std::list<uint64_t> tree_lru_;
  /// Next log id to hand out (dense, monotone). Guarded by mu_; sealing
  /// claims an id in a tiny critical section and does the heavy hashing
  /// and signing outside the lock.
  uint64_t next_log_id_ = 0;
  /// Atomic so read/seal paths can check the mode without taking mu_.
  std::atomic<ByzantineMode> byzantine_mode_;
  ResponseCallback response_callback_;

  /// Seal-ordering ticket: store append PREPARES must happen in log-id
  /// order even when batches finish hashing out of order. A sealer waits
  /// until next_commit_id_ equals its ticket, stages its position
  /// (LogStore::AppendPrepare — a buffered write, no sync), and releases
  /// the ticket BEFORE waiting for durability, so concurrent sealers
  /// coalesce into one group commit instead of serializing a sync each.
  std::mutex seal_mu_;
  std::condition_variable seal_cv_;
  uint64_t next_commit_id_ = 0;

  /// Stage-2 ordering ticket: the submitter must see roots in log order,
  /// and enqueueing happens after the durability wait (a root the chain
  /// commits must never be one a crash can revoke), i.e. outside the
  /// seal ticket — so the enqueue order needs a ticket of its own.
  std::mutex enqueue_mu_;
  std::condition_variable enqueue_cv_;
  uint64_t next_enqueue_id_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_OFFCHAIN_NODE_H_
