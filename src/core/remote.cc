#include "core/remote.h"

namespace wedge {

namespace {

Bytes EncodeRequest(uint64_t rpc_id, std::string_view op, const Bytes& body) {
  Bytes out;
  PutU64(out, rpc_id);
  PutString(out, op);
  PutBytes(out, body);
  return out;
}

Bytes EncodeOkResponse(uint64_t rpc_id, const Bytes& body) {
  Bytes out;
  PutU64(out, rpc_id);
  out.push_back(1);
  PutBytes(out, body);
  return out;
}

Bytes EncodeErrorResponse(uint64_t rpc_id, const Status& status) {
  Bytes out;
  PutU64(out, rpc_id);
  out.push_back(0);
  PutString(out, status.ToString());
  return out;
}

}  // namespace

RemoteNodeServer::RemoteNodeServer(OffchainNode* node, KeyPair transport_key,
                                   MessageBus* bus, std::string endpoint_name)
    : node_(node),
      key_(std::move(transport_key)),
      bus_(bus),
      endpoint_(std::move(endpoint_name)) {
  bus_->RegisterEndpoint(endpoint_,
                         [this](const std::string& from, const Bytes& wire) {
                           HandleMessage(from, wire);
                         });
}

void RemoteNodeServer::HandleMessage(const std::string& from,
                                     const Bytes& wire) {
  auto envelope = SignedEnvelope::Deserialize(wire);
  if (!envelope.ok() || !envelope->Verify()) {
    return;  // Unsigned/forged traffic is dropped silently (§3.1).
  }
  ByteReader reader(envelope->payload);
  auto rpc_id = reader.ReadU64();
  auto op = reader.ReadString();
  auto body = reader.ReadBytes();
  if (!rpc_id.ok() || !op.ok() || !body.ok()) return;

  ++requests_served_;
  Result<Bytes> result = Dispatch(op.value(), body.value());
  Bytes reply = result.ok() ? EncodeOkResponse(rpc_id.value(), result.value())
                            : EncodeErrorResponse(rpc_id.value(),
                                                  result.status());
  SignedEnvelope out = SignedEnvelope::Create(key_, std::move(reply));
  bus_->Send(endpoint_, from, out.Serialize());
}

Result<Bytes> RemoteNodeServer::Dispatch(std::string_view op,
                                         const Bytes& body) {
  ByteReader reader(body);
  if (op == "append") {
    WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
    if (count == 0 || count > 1u << 20) {
      return Status::InvalidArgument("bad append count");
    }
    std::vector<AppendRequest> requests;
    requests.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadBytes());
      WEDGE_ASSIGN_OR_RETURN(AppendRequest req,
                             AppendRequest::Deserialize(raw));
      requests.push_back(std::move(req));
    }
    WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> responses,
                           node_->Append(requests));
    Bytes out;
    PutU32(out, static_cast<uint32_t>(responses.size()));
    for (const Stage1Response& r : responses) PutBytes(out, r.Serialize());
    return out;
  }
  if (op == "read") {
    EntryIndex index;
    WEDGE_ASSIGN_OR_RETURN(index.log_id, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(index.offset, reader.ReadU32());
    WEDGE_ASSIGN_OR_RETURN(Stage1Response response, node_->ReadOne(index));
    return response.Serialize();
  }
  if (op == "readBatch") {
    uint64_t log_id;
    WEDGE_ASSIGN_OR_RETURN(log_id, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
    std::vector<uint32_t> offsets;
    offsets.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      WEDGE_ASSIGN_OR_RETURN(uint32_t off, reader.ReadU32());
      offsets.push_back(off);
    }
    WEDGE_ASSIGN_OR_RETURN(BatchReadResponse response,
                           node_->ReadBatch(log_id, std::move(offsets)));
    return response.Serialize();
  }
  return Status::NotFound("unknown rpc op");
}

RemoteNodeClient::RemoteNodeClient(KeyPair key, MessageBus* bus,
                                   SimClock* clock,
                                   std::string server_endpoint,
                                   const Address& server_address,
                                   Micros rpc_timeout)
    : key_(std::move(key)),
      bus_(bus),
      clock_(clock),
      server_endpoint_(std::move(server_endpoint)),
      server_address_(server_address),
      rpc_timeout_(rpc_timeout),
      endpoint_("client-" + key_.address().ToHex()) {
  bus_->RegisterEndpoint(
      endpoint_, [this](const std::string& from, const Bytes& wire) {
        (void)from;
        auto envelope = SignedEnvelope::Deserialize(wire);
        if (!envelope.ok() || !envelope->Verify()) return;
        // Replies must come from the node operator's transport key.
        if (envelope->sender != server_address_) return;
        ByteReader reader(envelope->payload);
        auto rpc_id = reader.ReadU64();
        auto ok_flag = reader.ReadRaw(1);
        if (!rpc_id.ok() || !ok_flag.ok()) return;
        pending_.rpc_id = rpc_id.value();
        pending_.ok = ok_flag.value()[0] != 0;
        if (pending_.ok) {
          auto body = reader.ReadBytes();
          if (!body.ok()) return;
          pending_.body = std::move(body).value();
        } else {
          auto error = reader.ReadString();
          pending_.error = error.ok() ? error.value() : "malformed error";
        }
        pending_.arrived = true;
      });
}

Result<Bytes> RemoteNodeClient::Call(std::string_view op, const Bytes& body) {
  uint64_t rpc_id = next_rpc_id_++;
  pending_ = PendingReply{};
  SignedEnvelope envelope =
      SignedEnvelope::Create(key_, EncodeRequest(rpc_id, op, body));
  Result<Micros> sent_at =
      bus_->Send(endpoint_, server_endpoint_, envelope.Serialize());
  if (!sent_at.ok()) {
    return Status::Unavailable("request dropped by the network");
  }
  Micros deadline = clock_->NowMicros() + rpc_timeout_;
  while (!(pending_.arrived && pending_.rpc_id == rpc_id)) {
    if (clock_->NowMicros() >= deadline) {
      return Status::Timeout("rpc timed out (omission or loss)");
    }
    if (!bus_->Step()) {
      return Status::Timeout("rpc reply lost (nothing in flight)");
    }
  }
  if (!pending_.ok) {
    return Status::Unavailable("remote error: " + pending_.error);
  }
  return pending_.body;
}

Result<std::vector<Stage1Response>> RemoteNodeClient::Append(
    const std::vector<AppendRequest>& requests) {
  Bytes body;
  PutU32(body, static_cast<uint32_t>(requests.size()));
  for (const AppendRequest& r : requests) PutBytes(body, r.Serialize());
  WEDGE_ASSIGN_OR_RETURN(Bytes reply, Call("append", body));
  ByteReader reader(reply);
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  std::vector<Stage1Response> responses;
  responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadBytes());
    WEDGE_ASSIGN_OR_RETURN(Stage1Response resp,
                           Stage1Response::Deserialize(raw));
    responses.push_back(std::move(resp));
  }
  return responses;
}

Result<Stage1Response> RemoteNodeClient::ReadOne(const EntryIndex& index) {
  Bytes body;
  PutU64(body, index.log_id);
  PutU32(body, index.offset);
  WEDGE_ASSIGN_OR_RETURN(Bytes reply, Call("read", body));
  return Stage1Response::Deserialize(reply);
}

Result<BatchReadResponse> RemoteNodeClient::ReadBatch(
    uint64_t log_id, const std::vector<uint32_t>& offsets) {
  Bytes body;
  PutU64(body, log_id);
  PutU32(body, static_cast<uint32_t>(offsets.size()));
  for (uint32_t off : offsets) PutU32(body, off);
  WEDGE_ASSIGN_OR_RETURN(Bytes reply, Call("readBatch", body));
  return BatchReadResponse::Deserialize(reply);
}

}  // namespace wedge
