#include "core/remote.h"

namespace wedge {

RemoteNodeServer::RemoteNodeServer(OffchainNode* node, KeyPair transport_key,
                                   MessageBus* bus, std::string endpoint_name,
                                   size_t max_message_bytes)
    : node_(node),
      key_(std::move(transport_key)),
      bus_(bus),
      endpoint_(std::move(endpoint_name)),
      max_message_bytes_(max_message_bytes) {
  bus_->RegisterEndpoint(endpoint_,
                         [this](const std::string& from, const Bytes& wire) {
                           HandleMessage(from, wire);
                         });
}

void RemoteNodeServer::HandleMessage(const std::string& from,
                                     const Bytes& wire) {
  auto envelope = SignedEnvelope::Deserialize(wire);
  if (!envelope.ok() || !envelope->Verify()) {
    return;  // Unsigned/forged traffic is dropped silently (§3.1).
  }
  auto request = RpcRequest::Decode(envelope->payload);
  if (!request.ok()) {
    // Well-signed but undecodable: answer with a typed error when the
    // rpc_id prefix survived, otherwise there is nothing to correlate.
    ++malformed_requests_;
    ByteReader reader(envelope->payload);
    auto rpc_id = reader.ReadU64();
    if (!rpc_id.ok()) return;
    Bytes reply = RpcResponse::Failure(rpc_id.value(),
                                       request.status().ToString())
                      .Encode();
    SignedEnvelope out = SignedEnvelope::Create(key_, std::move(reply));
    bus_->Send(endpoint_, from, out.Serialize());
    return;
  }

  ++requests_served_;
  Result<Bytes> result =
      wire.size() > max_message_bytes_
          ? Result<Bytes>(Status::OutOfRange("request over message limit"))
          : DispatchNodeRpc(*node_, request->op, request->body);
  RpcResponse response =
      result.ok() ? RpcResponse::Success(request->rpc_id,
                                         std::move(result).value())
                  : RpcResponse::Failure(request->rpc_id,
                                         result.status().ToString());
  SignedEnvelope out = SignedEnvelope::Create(key_, response.Encode());
  bus_->Send(endpoint_, from, out.Serialize());
}

RemoteNodeClient::RemoteNodeClient(KeyPair key, MessageBus* bus,
                                   SimClock* clock,
                                   std::string server_endpoint,
                                   const Address& server_address,
                                   Micros rpc_timeout,
                                   size_t max_message_bytes)
    : key_(std::move(key)),
      bus_(bus),
      clock_(clock),
      server_endpoint_(std::move(server_endpoint)),
      server_address_(server_address),
      rpc_timeout_(rpc_timeout),
      max_message_bytes_(max_message_bytes),
      endpoint_("client-" + key_.address().ToHex()) {
  bus_->RegisterEndpoint(
      endpoint_, [this](const std::string& from, const Bytes& wire) {
        (void)from;
        auto envelope = SignedEnvelope::Deserialize(wire);
        if (!envelope.ok() || !envelope->Verify()) return;
        // Replies must come from the node operator's transport key.
        if (envelope->sender != server_address_) return;
        auto response = RpcResponse::Decode(envelope->payload);
        if (!response.ok()) return;
        pending_.rpc_id = response->rpc_id;
        pending_.ok = response->ok;
        pending_.body = std::move(response->body);
        pending_.error = std::move(response->error);
        pending_.arrived = true;
      });
}

Result<Bytes> RemoteNodeClient::Call(std::string_view op, const Bytes& body) {
  uint64_t rpc_id = next_rpc_id_++;
  pending_ = PendingReply{};
  RpcRequest request;
  request.rpc_id = rpc_id;
  request.op = std::string(op);
  request.body = body;
  SignedEnvelope envelope = SignedEnvelope::Create(key_, request.Encode());
  Bytes wire = envelope.Serialize();
  if (wire.size() > max_message_bytes_) {
    return Status::InvalidArgument("request exceeds wire message limit (" +
                                   std::to_string(wire.size()) + " > " +
                                   std::to_string(max_message_bytes_) + ")");
  }
  Result<Micros> sent_at = bus_->Send(endpoint_, server_endpoint_, wire);
  if (!sent_at.ok()) {
    return Status::Unavailable("request dropped by the network");
  }
  Micros deadline = clock_->NowMicros() + rpc_timeout_;
  // A reply whose rpc_id does not match the outstanding call is ignored
  // here (it can only be stale or forged) — keep waiting for our own.
  while (!(pending_.arrived && pending_.rpc_id == rpc_id)) {
    if (clock_->NowMicros() >= deadline) {
      return Status::Timeout("rpc timed out (omission or loss)");
    }
    if (!bus_->Step()) {
      return Status::Timeout("rpc reply lost (nothing in flight)");
    }
  }
  if (!pending_.ok) {
    // Same typed-error transport as the TCP client: the error string is
    // a status encoding, not free text.
    return Status::FromWireString(pending_.error);
  }
  return pending_.body;
}

Result<std::vector<Stage1Response>> RemoteNodeClient::Append(
    const std::vector<AppendRequest>& requests) {
  WEDGE_ASSIGN_OR_RETURN(Bytes reply,
                         Call(kOpAppend, EncodeAppendBody(requests)));
  return DecodeAppendReply(reply);
}

Result<Stage1Response> RemoteNodeClient::ReadOne(const EntryIndex& index) {
  WEDGE_ASSIGN_OR_RETURN(Bytes reply, Call(kOpRead, EncodeReadBody(index)));
  return DecodeReadReply(reply);
}

Result<BatchReadResponse> RemoteNodeClient::ReadBatch(
    uint64_t log_id, const std::vector<uint32_t>& offsets) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply, Call(kOpReadBatch, EncodeReadBatchBody(log_id, offsets)));
  return DecodeReadBatchReply(reply);
}

}  // namespace wedge
