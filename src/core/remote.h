#ifndef WEDGEBLOCK_CORE_REMOTE_H_
#define WEDGEBLOCK_CORE_REMOTE_H_

#include "core/offchain_node.h"
#include "core/rpc_codec.h"
#include "net/sim_network.h"
#include "net/wire.h"

namespace wedge {

/// Network transport for WedgeBlock: the paper's prototype ran clients
/// and the Offchain Node on separate machines behind an RPC framework,
/// with every message cryptographically signed (§3.1, §5). This pair of
/// classes puts the same boundary through the simulated network —
/// requests and responses cross the MessageBus as serialized,
/// SignedEnvelope-wrapped messages, exercising the full wire paths
/// (serialization, signature checks, drops, latency).
///
/// The envelope payloads are the shared RPC codec (net/wire.h:
/// RpcRequest/RpcResponse; op bodies in core/rpc_codec.h), identical to
/// what the TCP transport (rpc/) carries inside its frames — only the
/// framing differs, because the bus is message-oriented.

/// Server side: owns the bus endpoint, forwards to a local OffchainNode
/// and signs every reply envelope with the node operator's key.
class RemoteNodeServer {
 public:
  /// Registers the endpoint `endpoint_name` on `bus`. The server must
  /// outlive the bus's use of that endpoint. Messages larger than
  /// `max_message_bytes` are rejected with an error response.
  RemoteNodeServer(OffchainNode* node, KeyPair transport_key,
                   MessageBus* bus, std::string endpoint_name,
                   size_t max_message_bytes = kDefaultMaxFrameBytes);

  const std::string& endpoint() const { return endpoint_; }
  uint64_t requests_served() const { return requests_served_; }
  /// Well-signed messages whose payload failed to decode (answered with
  /// an error response when the rpc_id was readable).
  uint64_t malformed_requests() const { return malformed_requests_; }

 private:
  void HandleMessage(const std::string& from, const Bytes& wire);

  OffchainNode* node_;
  KeyPair key_;
  MessageBus* bus_;
  std::string endpoint_;
  size_t max_message_bytes_;
  uint64_t requests_served_ = 0;
  uint64_t malformed_requests_ = 0;
};

/// Client side: sends signed requests and drives the bus until the reply
/// arrives (or the deadline passes — the omission-attack surface).
class RemoteNodeClient {
 public:
  RemoteNodeClient(KeyPair key, MessageBus* bus, SimClock* clock,
                   std::string server_endpoint,
                   const Address& server_address,
                   Micros rpc_timeout = 2 * kMicrosPerSecond,
                   size_t max_message_bytes = kDefaultMaxFrameBytes);

  /// Remote Append: ships the requests over the wire, returns verified-
  /// decodable stage-1 responses.
  Result<std::vector<Stage1Response>> Append(
      const std::vector<AppendRequest>& requests);

  /// Remote single read.
  Result<Stage1Response> ReadOne(const EntryIndex& index);

  /// Remote batched read (empty offsets = whole position).
  Result<BatchReadResponse> ReadBatch(uint64_t log_id,
                                      const std::vector<uint32_t>& offsets);

  const std::string& endpoint() const { return endpoint_; }

 private:
  /// Sends one RPC and blocks (driving the bus) until the matching reply
  /// or timeout. Requests that serialize past `max_message_bytes_` are
  /// rejected locally with InvalidArgument, never sent.
  Result<Bytes> Call(std::string_view op, const Bytes& body);

  KeyPair key_;
  MessageBus* bus_;
  SimClock* clock_;
  std::string server_endpoint_;
  Address server_address_;
  Micros rpc_timeout_;
  size_t max_message_bytes_;
  std::string endpoint_;
  uint64_t next_rpc_id_ = 1;
  // Last reply captured by the endpoint handler.
  struct PendingReply {
    bool arrived = false;
    uint64_t rpc_id = 0;
    bool ok = false;
    Bytes body;
    std::string error;
  };
  PendingReply pending_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_REMOTE_H_
