#include "core/rpc_codec.h"

#include "core/offchain_node.h"

namespace wedge {

Bytes EncodeAppendBody(const std::vector<AppendRequest>& requests) {
  Bytes body;
  PutU32(body, static_cast<uint32_t>(requests.size()));
  for (const AppendRequest& r : requests) PutBytes(body, r.Serialize());
  return body;
}

Bytes EncodeReadBody(const EntryIndex& index) {
  Bytes body;
  PutU64(body, index.log_id);
  PutU32(body, index.offset);
  return body;
}

Bytes EncodeReadBatchBody(uint64_t log_id,
                          const std::vector<uint32_t>& offsets) {
  Bytes body;
  PutU64(body, log_id);
  PutU32(body, static_cast<uint32_t>(offsets.size()));
  for (uint32_t off : offsets) PutU32(body, off);
  return body;
}

Bytes EncodeTenantAppendBody(TenantId tenant,
                             const std::vector<AppendRequest>& requests) {
  Bytes body;
  PutU64(body, tenant);
  Append(body, EncodeAppendBody(requests));
  return body;
}

Bytes EncodeTenantReadBody(TenantId tenant, const EntryIndex& index) {
  Bytes body;
  PutU64(body, tenant);
  Append(body, EncodeReadBody(index));
  return body;
}

Bytes EncodeTenantReadBatchBody(TenantId tenant, uint64_t log_id,
                                const std::vector<uint32_t>& offsets) {
  Bytes body;
  PutU64(body, tenant);
  Append(body, EncodeReadBatchBody(log_id, offsets));
  return body;
}

Bytes EncodeAggProofBody(TenantId tenant, uint64_t log_id) {
  Bytes body;
  PutU64(body, tenant);
  PutU64(body, log_id);
  return body;
}

Result<std::vector<Stage1Response>> DecodeAppendReply(const Bytes& reply) {
  ByteReader reader(reply);
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  std::vector<Stage1Response> responses;
  responses.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadBytes());
    WEDGE_ASSIGN_OR_RETURN(Stage1Response resp,
                           Stage1Response::Deserialize(raw));
    responses.push_back(std::move(resp));
  }
  return responses;
}

Result<Stage1Response> DecodeReadReply(const Bytes& reply) {
  return Stage1Response::Deserialize(reply);
}

Result<BatchReadResponse> DecodeReadBatchReply(const Bytes& reply) {
  return BatchReadResponse::Deserialize(reply);
}

Result<AggregationProof> DecodeAggProofReply(const Bytes& reply) {
  return AggregationProof::Deserialize(reply);
}

Result<Bytes> DispatchNodeRpc(OffchainNode& node, std::string_view op,
                              const Bytes& body) {
  ByteReader reader(body);
  if (op == kOpAppend) {
    WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
    if (count == 0 || count > 1u << 20) {
      return Status::InvalidArgument("bad append count");
    }
    std::vector<AppendRequest> requests;
    requests.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadBytes());
      WEDGE_ASSIGN_OR_RETURN(AppendRequest req,
                             AppendRequest::Deserialize(raw));
      requests.push_back(std::move(req));
    }
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after append body");
    }
    WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> responses,
                           node.Append(std::move(requests)));
    Bytes out;
    PutU32(out, static_cast<uint32_t>(responses.size()));
    for (const Stage1Response& r : responses) PutBytes(out, r.Serialize());
    return out;
  }
  if (op == kOpRead) {
    EntryIndex index;
    WEDGE_ASSIGN_OR_RETURN(index.log_id, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(index.offset, reader.ReadU32());
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after read body");
    }
    WEDGE_ASSIGN_OR_RETURN(Stage1Response response, node.ReadOne(index));
    return response.Serialize();
  }
  if (op == kOpReadBatch) {
    uint64_t log_id;
    WEDGE_ASSIGN_OR_RETURN(log_id, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
    if (count > 1u << 20) {
      return Status::InvalidArgument("bad readBatch count");
    }
    std::vector<uint32_t> offsets;
    offsets.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      WEDGE_ASSIGN_OR_RETURN(uint32_t off, reader.ReadU32());
      offsets.push_back(off);
    }
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after readBatch body");
    }
    WEDGE_ASSIGN_OR_RETURN(BatchReadResponse response,
                           node.ReadBatch(log_id, std::move(offsets)));
    return response.Serialize();
  }
  return Status::NotFound("unknown rpc op");
}

}  // namespace wedge
