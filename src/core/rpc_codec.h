#ifndef WEDGEBLOCK_CORE_RPC_CODEC_H_
#define WEDGEBLOCK_CORE_RPC_CODEC_H_

#include <string_view>
#include <vector>

#include "core/batch_read.h"
#include "core/data_model.h"
#include "net/wire.h"

namespace wedge {

class OffchainNode;

/// Op-level codec for the Offchain Node RPC surface, shared by the sim
/// transport (core/remote) and the TCP transport (rpc/). Keeping the body
/// encodings and the server-side dispatch in one place is what guarantees
/// the two transports stay protocol-identical (see net/wire.h for the
/// framing layers around these bodies).
///
/// Ops and body layouts:
///   "append"    body = u32 count + count * bytes(serialized AppendRequest)
///               reply = u32 count + count * bytes(serialized Stage1Response)
///   "read"      body = u64 log_id + u32 offset
///               reply = serialized Stage1Response
///   "readBatch" body = u64 log_id + u32 count + count * u32 offsets
///               reply = serialized BatchReadResponse
inline constexpr std::string_view kOpAppend = "append";
inline constexpr std::string_view kOpRead = "read";
inline constexpr std::string_view kOpReadBatch = "readBatch";

/// Client-side body builders.
Bytes EncodeAppendBody(const std::vector<AppendRequest>& requests);
Bytes EncodeReadBody(const EntryIndex& index);
Bytes EncodeReadBatchBody(uint64_t log_id,
                          const std::vector<uint32_t>& offsets);

/// Client-side reply decoders (typed errors on truncated/garbage input).
Result<std::vector<Stage1Response>> DecodeAppendReply(const Bytes& reply);
Result<Stage1Response> DecodeReadReply(const Bytes& reply);
Result<BatchReadResponse> DecodeReadBatchReply(const Bytes& reply);

/// Server-side dispatch: decodes `body` for `op`, calls into `node`, and
/// encodes the reply body. Unknown ops and malformed bodies come back as
/// typed errors for the transport to turn into an error response.
Result<Bytes> DispatchNodeRpc(OffchainNode& node, std::string_view op,
                              const Bytes& body);

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_RPC_CODEC_H_
