#ifndef WEDGEBLOCK_CORE_RPC_CODEC_H_
#define WEDGEBLOCK_CORE_RPC_CODEC_H_

#include <string_view>
#include <vector>

#include "contracts/forest_record.h"
#include "core/batch_read.h"
#include "core/data_model.h"
#include "net/wire.h"

namespace wedge {

class OffchainNode;

/// Tenant identity carried by the multi-tenant ops below. Tenants are an
/// engine-level routing/quota concept (src/shard/); the codec only moves
/// the id across the wire.
using TenantId = uint64_t;

/// Canonical tenant id derived from a publisher address: the first 8
/// address bytes, big-endian. The wire tenant id is otherwise
/// client-asserted; with ShardedEngineConfig::authenticate_tenants the
/// engine requires every append's tenant to equal the PublisherTenant of
/// its publisher — whose signature the node verifies — so quota budgets
/// bind to keys, not to whatever u64 a client chooses to claim.
inline TenantId PublisherTenant(const Address& publisher) {
  TenantId id = 0;
  for (size_t i = 0; i < 8; ++i) {
    id = (id << 8) | publisher.bytes[i];
  }
  return id;
}

/// Op-level codec for the Offchain Node RPC surface, shared by the sim
/// transport (core/remote) and the TCP transport (rpc/). Keeping the body
/// encodings and the server-side dispatch in one place is what guarantees
/// the two transports stay protocol-identical (see net/wire.h for the
/// framing layers around these bodies).
///
/// Ops and body layouts:
///   "append"    body = u32 count + count * bytes(serialized AppendRequest)
///               reply = u32 count + count * bytes(serialized Stage1Response)
///   "read"      body = u64 log_id + u32 offset
///               reply = serialized Stage1Response
///   "readBatch" body = u64 log_id + u32 count + count * u32 offsets
///               reply = serialized BatchReadResponse
inline constexpr std::string_view kOpAppend = "append";
inline constexpr std::string_view kOpRead = "read";
inline constexpr std::string_view kOpReadBatch = "readBatch";

/// Tenant-scoped ops served by the sharded engine (src/shard/). Each is
/// the matching single-node body prefixed with [u64 tenant_id]; replies
/// are identical. "aggProof" has no single-node counterpart:
///   "aggProof"   body = u64 tenant_id + u64 log_id
///                reply = serialized AggregationProof
/// Quota rejections come back as error responses carrying a typed
/// ResourceExhausted status string (see Status::FromWireString).
inline constexpr std::string_view kOpAppendTenant = "appendT";
inline constexpr std::string_view kOpReadTenant = "readT";
inline constexpr std::string_view kOpReadBatchTenant = "readBatchT";
inline constexpr std::string_view kOpAggProof = "aggProof";

/// Client-side body builders.
Bytes EncodeAppendBody(const std::vector<AppendRequest>& requests);
Bytes EncodeReadBody(const EntryIndex& index);
Bytes EncodeReadBatchBody(uint64_t log_id,
                          const std::vector<uint32_t>& offsets);
Bytes EncodeTenantAppendBody(TenantId tenant,
                             const std::vector<AppendRequest>& requests);
Bytes EncodeTenantReadBody(TenantId tenant, const EntryIndex& index);
Bytes EncodeTenantReadBatchBody(TenantId tenant, uint64_t log_id,
                                const std::vector<uint32_t>& offsets);
Bytes EncodeAggProofBody(TenantId tenant, uint64_t log_id);

/// Client-side reply decoders (typed errors on truncated/garbage input).
Result<std::vector<Stage1Response>> DecodeAppendReply(const Bytes& reply);
Result<Stage1Response> DecodeReadReply(const Bytes& reply);
Result<BatchReadResponse> DecodeReadBatchReply(const Bytes& reply);
Result<AggregationProof> DecodeAggProofReply(const Bytes& reply);

/// Server-side dispatch: decodes `body` for `op`, calls into `node`, and
/// encodes the reply body. Unknown ops and malformed bodies come back as
/// typed errors for the transport to turn into an error response.
Result<Bytes> DispatchNodeRpc(OffchainNode& node, std::string_view op,
                              const Bytes& body);

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_RPC_CODEC_H_
