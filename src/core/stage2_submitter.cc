#include "core/stage2_submitter.h"

#include <algorithm>

#include "common/bytes.h"
#include "contracts/root_record.h"

namespace wedge {

Stage2Submitter::Stage2Submitter(const Stage2SubmitterConfig& config,
                                 Blockchain* chain, const Address& sender,
                                 const Address& root_record_address,
                                 Telemetry* telemetry)
    : config_(config),
      chain_(chain),
      sender_(sender),
      root_record_address_(root_record_address),
      telemetry_(telemetry) {
  if (telemetry_ != nullptr) {
    MetricsRegistry& m = telemetry_->metrics;
    submitted_counter_ = m.GetCounter("wedge.stage2.txs_submitted");
    confirmed_counter_ = m.GetCounter("wedge.stage2.txs_confirmed");
    retried_counter_ = m.GetCounter("wedge.stage2.txs_retried");
    timed_out_counter_ = m.GetCounter("wedge.stage2.txs_timed_out");
    reverted_counter_ = m.GetCounter("wedge.stage2.txs_reverted");
    digests_confirmed_counter_ = m.GetCounter("wedge.stage2.digests_confirmed");
    confirm_lag_us_hist_ = m.GetHistogram("wedge.stage2.confirm_lag_us");
    confirm_lag_blocks_hist_ = m.GetHistogram("wedge.stage2.confirm_lag_blocks");
  }
}

Status Stage2Submitter::Enqueue(uint64_t log_id, const Hash256& root) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!journal_.empty() && log_id != journal_.back().log_id + 1) {
    return Status::InvalidArgument("stage-2 journal gap: non-contiguous id");
  }
  JournalEntry entry;
  entry.log_id = log_id;
  entry.root = root;
  if (chain_ != nullptr) {
    entry.enqueued_at = chain_->clock()->NowMicros();
    entry.enqueued_block = chain_->HeadNumber();
  }
  journal_.push_back(entry);
  if (telemetry_ != nullptr) {
    telemetry_->tracer.Event(log_id, trace_stage::kStage2Enqueued);
  }
  return Status::Ok();
}

Result<TxId> Stage2Submitter::SubmitPending() {
  std::lock_guard<std::mutex> lock(mu_);
  return SubmitPendingLocked(/*gas_bid=*/Wei(), "initial");
}

Result<TxId> Stage2Submitter::SubmitPendingLocked(const Wei& gas_bid,
                                                  const std::string& cause) {
  if (submitted_count_ >= journal_.size()) {
    return Status::NotFound("no pending digests");
  }
  if (chain_ == nullptr) {
    return Status::FailedPrecondition("no blockchain attached");
  }
  TxId first_tx = 0;
  while (submitted_count_ < journal_.size()) {
    size_t take = std::min<size_t>(
        journal_.size() - submitted_count_,
        static_cast<size_t>(RootRecordContract::kMaxRootsPerCall));
    Transaction tx;
    tx.from = sender_;
    tx.to = root_record_address_;
    tx.method = "updateRecords";
    tx.gas_price_bid = gas_bid;
    uint64_t first_id = journal_[submitted_count_].log_id;
    PutU64(tx.calldata, first_id);
    PutU32(tx.calldata, static_cast<uint32_t>(take));
    for (size_t i = 0; i < take; ++i) {
      Append(tx.calldata, HashToBytes(journal_[submitted_count_ + i].root));
    }
    // On Submit failure the journal is untouched: the digests stay
    // pending and the next SubmitPending/Tick covers them again.
    WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
    if (first_tx == 0) first_tx = id;
    InFlightTx rec;
    rec.id = id;
    rec.first_id = first_id;
    rec.count = static_cast<uint32_t>(take);
    rec.submitted_block = chain_->HeadNumber();
    in_flight_.push_back(rec);
    all_tx_ids_.push_back(id);
    submitted_count_ += take;
    ++stats_.txs_submitted;
    Stage2Attempt attempt;
    attempt.tx_id = id;
    attempt.attempt = attempt_;
    attempt.cause = cause;
    attempt.gas_bid = gas_bid.IsZero() ? chain_->CurrentGasPrice() : gas_bid;
    attempt.first_log_id = first_id;
    attempt.count = static_cast<uint32_t>(take);
    attempt.block = rec.submitted_block;
    attempts_.push_back(attempt);
    if (submitted_counter_ != nullptr) submitted_counter_->Add(1);
    if (telemetry_ != nullptr) {
      std::string note =
          "attempt=" + std::to_string(attempt_) + " cause=" + cause;
      for (size_t i = 0; i < take; ++i) {
        telemetry_->tracer.Event(first_id + i, trace_stage::kTxSubmitted,
                                 take, note);
      }
    }
  }
  return first_tx;
}

void Stage2Submitter::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  if (chain_ == nullptr) return;
  uint64_t head = chain_->HeadNumber();

  bool failed_any = false;
  bool confirmed_any = false;
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    Result<Receipt> receipt = chain_->GetReceipt(it->id);
    if (receipt.ok()) {
      if (!receipt.value().success) {
        // Mined but reverted: either a fault-injected revert, or a stale
        // duplicate rejected by the contract's sequential tail check. The
        // digests it carried are re-covered by the retry below if the
        // tail has not advanced past them.
        ++stats_.txs_reverted;
        if (reverted_counter_ != nullptr) reverted_counter_->Add(1);
        retry_cause_ = "revert";
        failed_any = true;
        it = in_flight_.erase(it);
        continue;
      }
      if (chain_->IsConfirmed(it->id)) {
        ++stats_.txs_confirmed;
        if (confirmed_counter_ != nullptr) confirmed_counter_->Add(1);
        confirmed_any = true;
        it = in_flight_.erase(it);
        continue;
      }
      // Mined, awaiting confirmation depth.
      ++it;
      continue;
    }
    if (head >= it->submitted_block + config_.confirmation_deadline_blocks) {
      // No receipt within the deadline: presumed dropped/evicted/stuck.
      ++stats_.txs_timed_out;
      if (timed_out_counter_ != nullptr) timed_out_counter_->Add(1);
      retry_cause_ = "timeout";
      failed_any = true;
      it = in_flight_.erase(it);
      continue;
    }
    ++it;
  }

  if (confirmed_any || failed_any) {
    ReconcileWithChainTailLocked();
    RecomputeSubmittedLocked();
  }
  if (confirmed_any && in_flight_.empty() && !failed_any) {
    attempt_ = 1;  // Healthy again: future submissions start fresh.
    retry_pending_ = false;
  }
  if (failed_any && !retry_pending_) {
    retry_pending_ = true;
    ++attempt_;
    retry_at_block_ = head + BackoffBlocksLocked(attempt_);
    if (telemetry_ != nullptr && !journal_.empty()) {
      telemetry_->tracer.Event(
          journal_.front().log_id, trace_stage::kTxRetry, 0,
          "cause=" + retry_cause_ + " attempt=" + std::to_string(attempt_) +
              " retry_at_block=" + std::to_string(retry_at_block_));
    }
  }

  if (retry_pending_ && head >= retry_at_block_ &&
      submitted_count_ < journal_.size()) {
    Result<TxId> resubmit =
        SubmitPendingLocked(BumpedBidLocked(attempt_), retry_cause_);
    if (resubmit.ok()) {
      ++stats_.txs_retried;
      if (retried_counter_ != nullptr) retried_counter_->Add(1);
      retry_pending_ = false;
    } else {
      // Chain rejected the retry (e.g. transient balance shortfall):
      // back off further and try again.
      ++attempt_;
      retry_at_block_ = head + BackoffBlocksLocked(attempt_);
    }
  } else if (retry_pending_ && submitted_count_ >= journal_.size()) {
    // Everything the failed transactions carried is already on-chain
    // (a presumed-lost transaction mined after its deadline).
    retry_pending_ = false;
  }
}

void Stage2Submitter::ReconcileWithChainTailLocked() {
  Result<Bytes> out = chain_->Call(root_record_address_, "tailIdx", {});
  if (!out.ok()) return;
  Bytes encoded = std::move(out).value();
  ByteReader reader(encoded);
  Result<uint64_t> tail = reader.ReadU64();
  if (!tail.ok()) return;
  Micros now = chain_->clock()->NowMicros();
  uint64_t head = chain_->HeadNumber();
  while (!journal_.empty() && journal_.front().log_id < tail.value()) {
    const JournalEntry& entry = journal_.front();
    if (confirm_lag_us_hist_ != nullptr) {
      confirm_lag_us_hist_->Record(now - entry.enqueued_at);
      confirm_lag_blocks_hist_->Record(
          static_cast<int64_t>(head - entry.enqueued_block));
    }
    if (digests_confirmed_counter_ != nullptr) {
      digests_confirmed_counter_->Add(1);
    }
    if (telemetry_ != nullptr) {
      telemetry_->tracer.Event(entry.log_id, trace_stage::kConfirmed);
    }
    journal_.pop_front();
    ++stats_.digests_confirmed;
  }
}

void Stage2Submitter::RecomputeSubmittedLocked() {
  // Coverage is a contiguous journal prefix: every submission covers the
  // suffix starting at the first unsubmitted entry.
  if (journal_.empty()) {
    submitted_count_ = 0;
    return;
  }
  uint64_t front_id = journal_.front().log_id;
  uint64_t covered_end = front_id;
  for (const InFlightTx& tx : in_flight_) {
    covered_end = std::max(covered_end, tx.first_id + tx.count);
  }
  submitted_count_ =
      std::min<size_t>(journal_.size(), covered_end - front_id);
}

Wei Stage2Submitter::BumpedBidLocked(int attempt) const {
  // bid = market * min(bump^(attempt-1), cap), in permille arithmetic.
  double mult = 1.0;
  for (int i = 1; i < attempt && mult < config_.gas_bump_cap; ++i) {
    mult *= config_.gas_bump_multiplier;
  }
  mult = std::min(mult, std::max(1.0, config_.gas_bump_cap));
  Wei market = chain_->CurrentGasPrice();
  U256 scaled = market * U256(static_cast<uint64_t>(mult * 1000.0));
  U256 q, r;
  scaled.DivMod(U256(1000), &q, &r).ok();
  // Never bid below market: an underpriced bid would wait forever.
  return q < market ? market : q;
}

uint64_t Stage2Submitter::BackoffBlocksLocked(int attempt) const {
  uint64_t blocks = config_.retry_backoff_base_blocks;
  for (int i = 2; i < attempt && blocks < config_.retry_backoff_max_blocks;
       ++i) {
    blocks *= 2;
  }
  return std::max<uint64_t>(
      1, std::min(blocks, config_.retry_backoff_max_blocks));
}

size_t Stage2Submitter::DiscardUnsubmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = journal_.size() - submitted_count_;
  journal_.resize(submitted_count_);
  return dropped;
}

size_t Stage2Submitter::UnsubmittedDigests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_.size() - submitted_count_;
}

size_t Stage2Submitter::UncommittedDigests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_.size();
}

size_t Stage2Submitter::InFlightTxs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_.size();
}

std::vector<TxId> Stage2Submitter::TxIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_tx_ids_;
}

std::vector<Stage2Attempt> Stage2Submitter::attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attempts_;
}

Stage2SubmitterStats Stage2Submitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wedge
