#ifndef WEDGEBLOCK_CORE_STAGE2_SUBMITTER_H_
#define WEDGEBLOCK_CORE_STAGE2_SUBMITTER_H_

#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "chain/blockchain.h"
#include "crypto/sha256.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Tuning for the resilient stage-2 pipeline.
struct Stage2SubmitterConfig {
  /// Blocks after submission without a receipt before an in-flight
  /// transaction is presumed lost (dropped/evicted/stuck) and retried.
  uint64_t confirmation_deadline_blocks = 8;
  /// Retry backoff in blocks: base * 2^(attempt-1), capped below.
  uint64_t retry_backoff_base_blocks = 1;
  uint64_t retry_backoff_max_blocks = 16;
  /// Gas-price bump per retry: the bid for attempt k is the current
  /// market price times bump^(k-1), capped at cap x market.
  double gas_bump_multiplier = 1.25;
  double gas_bump_cap = 10.0;
};

/// One stage-2 submission attempt, recorded for tests and experiment
/// reports. `cause` explains why the transaction was sent: "initial" for
/// the first submission of a journal suffix, "timeout" when the previous
/// transaction missed its confirmation deadline (the submitter cannot
/// distinguish a dropped from an evicted or stuck transaction — all
/// surface as a missing receipt), or "revert" when it mined but reverted.
struct Stage2Attempt {
  TxId tx_id = 0;
  int attempt = 1;       ///< 1 = initial submission, >1 = retry.
  std::string cause;     ///< "initial", "timeout" or "revert".
  Wei gas_bid;           ///< Effective bid (market price when not bumped).
  uint64_t first_log_id = 0;
  uint32_t count = 0;    ///< Digests covered by this transaction.
  uint64_t block = 0;    ///< Head block number at submission.
};

/// Counters for tests and the fault-resilience bench.
struct Stage2SubmitterStats {
  uint64_t txs_submitted = 0;   ///< updateRecords transactions sent.
  uint64_t txs_confirmed = 0;   ///< Reached `confirmations` depth, success.
  uint64_t txs_retried = 0;     ///< Resubmissions after a loss/revert.
  uint64_t txs_timed_out = 0;   ///< Presumed lost (no receipt by deadline).
  uint64_t txs_reverted = 0;    ///< Mined but reverted.
  uint64_t digests_confirmed = 0;  ///< Journal entries covered on-chain.
};

/// Resilient stage-2 submission pipeline (extracted from OffchainNode).
///
/// Digests live in a pending journal from Enqueue until a *confirmed*
/// on-chain receipt covers them — a chain Submit error, a dropped or
/// evicted transaction, a forced revert, or a gas spike never loses a
/// root; the journal suffix is simply resubmitted (with exponential
/// backoff and gas-price bumping) until the Root Record tail advances
/// past it. The contract's sequential start-index check makes duplicate
/// in-flight transactions revert harmlessly, so retries cannot
/// double-commit.
///
/// Thread-safe. Lock order: callers may hold the OffchainNode mutex; the
/// submitter calls into the Blockchain (which never calls back out).
class Stage2Submitter {
 public:
  /// With `telemetry`, the submitter mirrors its stats into
  /// `wedge.stage2.*` counters, records confirmation-lag histograms
  /// (`confirm_lag_us` / `confirm_lag_blocks`, simulated time from
  /// Enqueue to on-chain tail coverage), and emits per-position
  /// stage2_enqueued / tx_submitted / tx_retry / confirmed trace events.
  Stage2Submitter(const Stage2SubmitterConfig& config, Blockchain* chain,
                  const Address& sender, const Address& root_record_address,
                  Telemetry* telemetry = nullptr);

  Stage2Submitter(const Stage2Submitter&) = delete;
  Stage2Submitter& operator=(const Stage2Submitter&) = delete;

  /// Journals a sealed batch digest. Log ids must arrive contiguously
  /// (each call one past the previous); the first call fixes the base.
  Status Enqueue(uint64_t log_id, const Hash256& root);

  /// Submits one updateRecords transaction per kMaxRootsPerCall chunk of
  /// the not-yet-submitted journal suffix. Returns the first TxId, or
  /// NotFound when nothing is unsubmitted. The journal is not modified:
  /// entries leave it only when confirmed on-chain (see Tick).
  Result<TxId> SubmitPending();

  /// Drives the state machine one step: reaps confirmed receipts (and
  /// retires the journal prefix the on-chain tail now covers), detects
  /// reverted and timed-out transactions, and issues backed-off,
  /// gas-bumped retries. Call once per mined block (Deployment's block
  /// pump does this automatically).
  void Tick();

  /// Drops journal entries not yet covered by a submission (the
  /// byzantine omission attack discards exactly the promised digests).
  /// Returns the number discarded.
  size_t DiscardUnsubmitted();

  /// Journal entries not yet covered by an in-flight transaction.
  size_t UnsubmittedDigests() const;
  /// All journal entries (submitted or not) still awaiting confirmation.
  size_t UncommittedDigests() const;
  /// Transactions submitted and not yet resolved.
  size_t InFlightTxs() const;
  /// TxIds of every stage-2 transaction submitted so far (incl. retries).
  std::vector<TxId> TxIds() const;
  /// Every submission attempt so far, in order (initial + retries).
  std::vector<Stage2Attempt> attempts() const;
  Stage2SubmitterStats stats() const;
  const Stage2SubmitterConfig& config() const { return config_; }

 private:
  struct InFlightTx {
    TxId id = 0;
    uint64_t first_id = 0;  ///< First log id covered.
    uint32_t count = 0;     ///< Number of roots in the calldata.
    uint64_t submitted_block = 0;
  };

  /// One journalled digest, stamped with its enqueue time so the
  /// confirmation lag (enqueue -> tail coverage) can be measured.
  struct JournalEntry {
    uint64_t log_id = 0;
    Hash256 root{};
    Micros enqueued_at = 0;
    uint64_t enqueued_block = 0;
  };

  // All *Locked methods assume mu_ is held.
  Result<TxId> SubmitPendingLocked(const Wei& gas_bid,
                                   const std::string& cause);
  void ReconcileWithChainTailLocked();
  void RecomputeSubmittedLocked();
  Wei BumpedBidLocked(int attempt) const;
  uint64_t BackoffBlocksLocked(int attempt) const;

  const Stage2SubmitterConfig config_;
  Blockchain* const chain_;
  const Address sender_;
  const Address root_record_address_;
  Telemetry* const telemetry_;
  // Resolved once at construction; null when telemetry_ is null.
  Counter* submitted_counter_ = nullptr;
  Counter* confirmed_counter_ = nullptr;
  Counter* retried_counter_ = nullptr;
  Counter* timed_out_counter_ = nullptr;
  Counter* reverted_counter_ = nullptr;
  Counter* digests_confirmed_counter_ = nullptr;
  Histogram* confirm_lag_us_hist_ = nullptr;
  Histogram* confirm_lag_blocks_hist_ = nullptr;

  mutable std::mutex mu_;
  /// Pending journal: contiguous digests awaiting confirmed on-chain
  /// commitment.
  std::deque<JournalEntry> journal_;
  /// Journal-prefix entries covered by an in-flight transaction.
  size_t submitted_count_ = 0;
  std::vector<InFlightTx> in_flight_;
  std::vector<TxId> all_tx_ids_;
  std::vector<Stage2Attempt> attempts_;
  /// Retry scheduling after a loss/revert.
  std::string retry_cause_;
  bool retry_pending_ = false;
  uint64_t retry_at_block_ = 0;
  int attempt_ = 1;  ///< Attempt number for the next (re)submission.
  Stage2SubmitterStats stats_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_STAGE2_SUBMITTER_H_
