#include "core/stage2_watcher.h"

#include <algorithm>

namespace wedge {

Stage2Watcher::Stage2Watcher(Blockchain* chain,
                             const Address& root_record_address,
                             PublisherClient* publisher, bool auto_punish)
    : chain_(chain), publisher_(publisher), auto_punish_(auto_punish) {
  chain_->SubscribeEvents(
      root_record_address, [this](const LogEvent& event) {
        if (event.name != "RecordsUpdated") return;
        ByteReader reader(event.payload);
        auto start = reader.ReadU64();
        auto tail = reader.ReadU64();
        if (!start.ok() || !tail.ok()) return;
        std::lock_guard<std::mutex> lock(mu_);
        observed_tail_ = std::max(observed_tail_, tail.value());
      });
}

void Stage2Watcher::Track(Stage1Response response) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(std::move(response));
}

void Stage2Watcher::TrackAll(const std::vector<Stage1Response>& responses) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.insert(pending_.end(), responses.begin(), responses.end());
}

Result<std::vector<Stage2Watcher::Outcome>> Stage2Watcher::Poll() {
  // Pull out the responses whose position the chain now covers.
  std::vector<Stage1Response> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::partition(
        pending_.begin(), pending_.end(), [this](const Stage1Response& r) {
          return r.proof.log_id >= observed_tail_;  // Keep: not covered.
        });
    due.assign(std::make_move_iterator(it),
               std::make_move_iterator(pending_.end()));
    pending_.erase(it, pending_.end());
  }

  std::vector<Outcome> outcomes;
  outcomes.reserve(due.size());
  for (Stage1Response& response : due) {
    Outcome outcome;
    WEDGE_ASSIGN_OR_RETURN(outcome.check,
                           publisher_->CheckBlockchainCommit(response));
    if (outcome.check == CommitCheck::kMismatch && auto_punish_) {
      // The signed response is the evidence; one punishment settles the
      // contract, further attempts revert harmlessly (all-or-nothing).
      auto receipt = publisher_->TriggerPunishment(response);
      if (receipt.ok()) {
        outcome.punishment_triggered = true;
        outcome.punishment_receipt = std::move(receipt).value();
      }
    }
    outcome.response = std::move(response);
    outcomes.push_back(std::move(outcome));
  }
  std::lock_guard<std::mutex> lock(mu_);
  resolved_count_ += outcomes.size();
  return outcomes;
}

size_t Stage2Watcher::PendingCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

size_t Stage2Watcher::ResolvedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolved_count_;
}

uint64_t Stage2Watcher::ObservedTail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_tail_;
}

}  // namespace wedge
