#include "core/stage2_watcher.h"

#include <algorithm>

namespace wedge {

Stage2Watcher::Stage2Watcher(Blockchain* chain,
                             const Address& root_record_address,
                             PublisherClient* publisher, bool auto_punish,
                             uint64_t liveness_deadline_blocks,
                             Telemetry* telemetry)
    : chain_(chain),
      publisher_(publisher),
      auto_punish_(auto_punish),
      liveness_deadline_blocks_(liveness_deadline_blocks) {
  if (telemetry != nullptr) {
    MetricsRegistry& m = telemetry->metrics;
    tracked_counter_ = m.GetCounter("wedge.watcher.tracked");
    resolved_counter_ = m.GetCounter("wedge.watcher.resolved");
    mismatch_counter_ = m.GetCounter("wedge.watcher.mismatches");
    omission_counter_ = m.GetCounter("wedge.watcher.omissions_suspected");
    punishment_counter_ = m.GetCounter("wedge.watcher.punishments_triggered");
    pending_gauge_ = m.GetGauge("wedge.watcher.pending");
  }
  chain_->SubscribeEvents(
      root_record_address, [this](const LogEvent& event) {
        if (event.name != "RecordsUpdated") return;
        ByteReader reader(event.payload);
        auto start = reader.ReadU64();
        auto tail = reader.ReadU64();
        if (!start.ok() || !tail.ok()) return;
        std::lock_guard<std::mutex> lock(mu_);
        observed_tail_ = std::max(observed_tail_, tail.value());
      });
}

void Stage2Watcher::Track(Stage1Response response) {
  uint64_t head = chain_->HeadNumber();
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(Tracked{std::move(response), head});
  if (tracked_counter_ != nullptr) {
    tracked_counter_->Add(1);
    pending_gauge_->Set(static_cast<int64_t>(pending_.size()));
  }
}

void Stage2Watcher::TrackAll(const std::vector<Stage1Response>& responses) {
  uint64_t head = chain_->HeadNumber();
  std::lock_guard<std::mutex> lock(mu_);
  for (const Stage1Response& r : responses) {
    pending_.push_back(Tracked{r, head});
  }
  if (tracked_counter_ != nullptr) {
    tracked_counter_->Add(responses.size());
    pending_gauge_->Set(static_cast<int64_t>(pending_.size()));
  }
}

Result<std::vector<Stage2Watcher::Outcome>> Stage2Watcher::Poll() {
  // Pull out the responses whose position the chain now covers, plus the
  // ones that have overstayed the liveness deadline.
  uint64_t head = chain_->HeadNumber();
  std::vector<Tracked> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::partition(
        pending_.begin(), pending_.end(), [this, head](const Tracked& t) {
          bool covered = t.response.proof.log_id < observed_tail_;
          bool overdue =
              liveness_deadline_blocks_ > 0 &&
              head >= t.tracked_block + liveness_deadline_blocks_;
          return !covered && !overdue;  // Keep: still waiting.
        });
    due.assign(std::make_move_iterator(it),
               std::make_move_iterator(pending_.end()));
    pending_.erase(it, pending_.end());
  }

  std::vector<Outcome> outcomes;
  outcomes.reserve(due.size());
  for (Tracked& tracked : due) {
    Stage1Response& response = tracked.response;
    Outcome outcome;
    WEDGE_ASSIGN_OR_RETURN(outcome.check,
                           publisher_->CheckBlockchainCommit(response));
    if (outcome.check == CommitCheck::kNotYetCommitted) {
      // Only the deadline can have pulled an uncovered response out of
      // pending_: the node has gone silent past the liveness horizon.
      outcome.check = CommitCheck::kOmissionSuspected;
      if (omission_counter_ != nullptr) omission_counter_->Add(1);
    }
    if (outcome.check == CommitCheck::kMismatch &&
        mismatch_counter_ != nullptr) {
      mismatch_counter_->Add(1);
    }
    if (outcome.check == CommitCheck::kMismatch && auto_punish_) {
      // The signed response is the evidence; one punishment settles the
      // contract, further attempts revert harmlessly (all-or-nothing).
      auto receipt = publisher_->TriggerPunishment(response);
      if (receipt.ok()) {
        outcome.punishment_triggered = true;
        outcome.punishment_receipt = std::move(receipt).value();
        if (punishment_counter_ != nullptr) punishment_counter_->Add(1);
      }
    }
    outcome.response = std::move(response);
    outcomes.push_back(std::move(outcome));
  }
  std::lock_guard<std::mutex> lock(mu_);
  resolved_count_ += outcomes.size();
  if (resolved_counter_ != nullptr) {
    resolved_counter_->Add(outcomes.size());
    pending_gauge_->Set(static_cast<int64_t>(pending_.size()));
  }
  return outcomes;
}

size_t Stage2Watcher::PendingCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

size_t Stage2Watcher::ResolvedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resolved_count_;
}

uint64_t Stage2Watcher::ObservedTail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_tail_;
}

}  // namespace wedge
