#ifndef WEDGEBLOCK_CORE_STAGE2_WATCHER_H_
#define WEDGEBLOCK_CORE_STAGE2_WATCHER_H_

#include <mutex>

#include "core/client.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Event-driven stage-2 verification (Figure 2, links #4/#5 automated):
/// instead of polling the Root Record contract per response, the watcher
/// subscribes to its RecordsUpdated events. When the on-chain tail passes
/// a tracked response's log position, Poll() verifies the response and —
/// if the recorded root conflicts with the signed promise — invokes the
/// Punishment contract on the publisher's behalf.
///
/// Event callbacks fire inside block mining, so the callback only records
/// the new tail; all verification/punishment work happens in Poll(),
/// which the application calls from its own loop after pumping the chain.
class Stage2Watcher {
 public:
  /// Final state of a tracked response.
  struct Outcome {
    Stage1Response response;
    CommitCheck check = CommitCheck::kNotYetCommitted;
    bool punishment_triggered = false;
    Receipt punishment_receipt;
  };

  /// `auto_punish`: invoke the Punishment contract automatically on a
  /// root mismatch (otherwise the outcome just reports kMismatch).
  /// `liveness_deadline_blocks`: a tracked response whose position is
  /// still not on-chain this many blocks after Track() resolves as
  /// CommitCheck::kOmissionSuspected — the signal to file an omission
  /// claim (§4.7). 0 disables the deadline (wait forever).
  /// With `telemetry`, the watcher keeps `wedge.watcher.*` counters
  /// (tracked / resolved / mismatches / omissions_suspected /
  /// punishments_triggered) and a pending-responses gauge up to date.
  Stage2Watcher(Blockchain* chain, const Address& root_record_address,
                PublisherClient* publisher, bool auto_punish = true,
                uint64_t liveness_deadline_blocks = 0,
                Telemetry* telemetry = nullptr);

  /// Registers a stage-1 response to watch.
  void Track(Stage1Response response);
  void TrackAll(const std::vector<Stage1Response>& responses);

  /// Processes every tracked response whose position the chain has
  /// covered (per the observed events). Returns the responses resolved
  /// by THIS call.
  Result<std::vector<Outcome>> Poll();

  /// Responses still awaiting their position on-chain.
  size_t PendingCount() const;
  /// Total outcomes resolved so far.
  size_t ResolvedCount() const;
  /// Highest on-chain tail observed from events.
  uint64_t ObservedTail() const;

 private:
  struct Tracked {
    Stage1Response response;
    uint64_t tracked_block = 0;  ///< Chain head when Track() was called.
  };

  Blockchain* chain_;
  PublisherClient* publisher_;
  bool auto_punish_;
  uint64_t liveness_deadline_blocks_;
  Counter* tracked_counter_ = nullptr;
  Counter* resolved_counter_ = nullptr;
  Counter* mismatch_counter_ = nullptr;
  Counter* omission_counter_ = nullptr;
  Counter* punishment_counter_ = nullptr;
  Gauge* pending_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::vector<Tracked> pending_;
  uint64_t observed_tail_ = 0;
  size_t resolved_count_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_STAGE2_WATCHER_H_
