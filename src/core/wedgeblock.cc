#include "core/wedgeblock.h"

namespace wedge {

Result<std::unique_ptr<Deployment>> Deployment::Create(
    const DeploymentConfig& config, uint64_t publisher_seed) {
  std::unique_ptr<Deployment> d(new Deployment());
  d->config_ = config;
  d->telemetry_ = std::make_unique<Telemetry>(&d->clock_);
  d->chain_ = std::make_unique<Blockchain>(config.chain, &d->clock_,
                                           d->telemetry_.get());

  KeyPair offchain_key = KeyPair::FromSeed(config.offchain_key_seed);
  KeyPair publisher_key = KeyPair::FromSeed(publisher_seed);
  d->offchain_address_ = offchain_key.address();
  d->chain_->Fund(offchain_key.address(), config.offchain_funding);
  d->chain_->Fund(publisher_key.address(), config.client_funding);

  // Initialization phase (paper §3.4): the Offchain Node deploys the Root
  // Record contract and a Punishment contract carrying its escrow.
  WEDGE_ASSIGN_OR_RETURN(
      d->root_record_address_,
      d->chain_->Deploy(offchain_key.address(),
                        std::make_unique<RootRecordContract>(
                            offchain_key.address())));
  WEDGE_ASSIGN_OR_RETURN(
      d->punishment_address_,
      d->chain_->Deploy(
          offchain_key.address(),
          std::make_unique<PunishmentContract>(
              publisher_key.address(), offchain_key.address(),
              d->root_record_address_,
              d->clock_.NowSeconds() + config.escrow_lock_seconds,
              config.omission_grace_seconds),
          config.escrow));

  // Log store: memory, file-backed, tiered, optionally replicated.
  std::unique_ptr<LogStore> store;
  if (config.tiered_hot_positions > 0) {
    d->archive_ = std::make_unique<DecentralizedArchive>(
        config.archive_peers, config.archive_replication,
        /*seed=*/config.offchain_key_seed);
    store = std::make_unique<TieredLogStore>(config.tiered_hot_positions,
                                             d->archive_.get(),
                                             &d->telemetry_->metrics);
  } else if (config.log_path.empty()) {
    store = std::make_unique<MemoryLogStore>();
  } else {
    FileLogStore::Options file_options;
    file_options.fsync_on_append = config.log_fsync;
    file_options.metrics = &d->telemetry_->metrics;
    WEDGE_ASSIGN_OR_RETURN(auto file_store,
                           FileLogStore::Open(config.log_path, file_options));
    store = std::move(file_store);
  }
  if (config.replication_followers > 0) {
    std::vector<std::unique_ptr<LogStore>> followers;
    for (int i = 0; i < config.replication_followers; ++i) {
      followers.push_back(std::make_unique<MemoryLogStore>());
    }
    store = std::make_unique<ReplicatedLogStore>(std::move(store),
                                                 std::move(followers));
  }

  d->node_ = std::make_unique<OffchainNode>(config.node, offchain_key,
                                            std::move(store), d->chain_.get(),
                                            d->root_record_address_,
                                            d->telemetry_.get());
  d->publisher_ = std::make_unique<PublisherClient>(
      publisher_key, d->node_.get(), d->chain_.get(), d->root_record_address_,
      d->punishment_address_);
  d->publisher_->set_omission_grace_seconds(config.omission_grace_seconds);
  return d;
}

UserClient Deployment::MakeUser(uint64_t seed) {
  KeyPair key = KeyPair::FromSeed(seed);
  chain_->Fund(key.address(), config_.client_funding);
  return UserClient(std::move(key), node_.get(), chain_.get(),
                    root_record_address_);
}

AuditorClient Deployment::MakeAuditor(uint64_t seed) {
  KeyPair key = KeyPair::FromSeed(seed);
  chain_->Fund(key.address(), config_.client_funding);
  return AuditorClient(std::move(key), node_.get(), chain_.get(),
                       root_record_address_);
}

Result<Address> Deployment::CreatePaymentChannel(
    int64_t period_seconds, const Wei& payment_per_period,
    int64_t max_overdue_periods) {
  return chain_->Deploy(
      offchain_address_,
      std::make_unique<PaymentContract>(offchain_address_,
                                        publisher_->address(), period_seconds,
                                        payment_per_period,
                                        max_overdue_periods));
}

void Deployment::AdvanceBlocks(int count) {
  for (int i = 0; i < count; ++i) {
    clock_.AdvanceSeconds(config_.chain.block_interval_seconds);
    chain_->PumpUntilNow();
    // The node's stage-2 pipeline runs once per block: reap confirmed
    // digests, detect lost/reverted submissions, issue retries.
    node_->Stage2Tick();
  }
}

Result<Receipt> PaymentChannelClient::Invoke(const std::string& method,
                                             const Wei& value) {
  Transaction tx;
  tx.from = actor_;
  tx.to = payment_address_;
  tx.value = value;
  tx.method = method;
  WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
  WEDGE_ASSIGN_OR_RETURN(Receipt receipt, chain_->WaitForReceipt(id));
  if (!receipt.success) {
    return Status::Reverted(method + ": " + receipt.revert_reason);
  }
  return receipt;
}

Result<Receipt> PaymentChannelClient::Deposit(const Wei& amount) {
  return Invoke("deposit", amount);
}

Result<Receipt> PaymentChannelClient::StartPayment() {
  return Invoke("startPayment", Wei());
}

Result<Receipt> PaymentChannelClient::UpdateStatus() {
  return Invoke("updatePaymentStatus", Wei());
}

Result<Receipt> PaymentChannelClient::WithdrawOffchain() {
  return Invoke("withdrawOffchain", Wei());
}

Result<Receipt> PaymentChannelClient::WithdrawClient() {
  return Invoke("withdrawClient", Wei());
}

Result<Receipt> PaymentChannelClient::Terminate() {
  return Invoke("terminate", Wei());
}

Result<Wei> PaymentChannelClient::ReservedForEdge() const {
  WEDGE_ASSIGN_OR_RETURN(Bytes raw,
                         chain_->Call(payment_address_, "reservedForEdge", {}));
  return U256::FromBytesBE(raw);
}

Result<uint64_t> PaymentChannelClient::RemainingPeriods() const {
  WEDGE_ASSIGN_OR_RETURN(Bytes raw,
                         chain_->Call(payment_address_, "remainingPeriods", {}));
  ByteReader reader(raw);
  return reader.ReadU64();
}

Result<bool> PaymentChannelClient::IsTerminated() const {
  WEDGE_ASSIGN_OR_RETURN(Bytes raw,
                         chain_->Call(payment_address_, "isTerminated", {}));
  if (raw.size() != 1) return Status::Internal("bad isTerminated reply");
  return raw[0] != 0;
}

}  // namespace wedge
