#ifndef WEDGEBLOCK_CORE_WEDGEBLOCK_H_
#define WEDGEBLOCK_CORE_WEDGEBLOCK_H_

#include <memory>

#include "contracts/payment.h"
#include "contracts/punishment.h"
#include "contracts/root_record.h"
#include "core/client.h"
#include "storage/tiered_store.h"

namespace wedge {

/// End-to-end deployment parameters for a WedgeBlock instance.
struct DeploymentConfig {
  ChainConfig chain;
  OffchainNodeConfig node;
  /// Escrow the Offchain Node locks in the Punishment contract.
  Wei escrow = EthToWei(32);
  /// Initial balances.
  Wei offchain_funding = EthToWei(1000);
  Wei client_funding = EthToWei(1000);
  /// Seed for the Offchain Node's key pair.
  uint64_t offchain_key_seed = 0xED6E;
  /// Punishment escrow lock duration (seconds of simulated time).
  int64_t escrow_lock_seconds = 30 * 24 * 3600;
  /// Grace the node gets to commit stage 2 after an omission claim is
  /// filed against it (see PunishmentContract).
  int64_t omission_grace_seconds = 600;
  /// Use a file-backed log store at this path ("" = in-memory).
  std::string log_path;
  /// fsync the file-backed log after every append (see
  /// FileLogStore::Options::fsync_on_append). Ignored without log_path.
  bool log_fsync = false;
  /// Number of replication followers (0 = none; Figures 3/5 red curves
  /// use 2).
  int replication_followers = 0;
  /// Tiered storage: keep only this many positions hot and spill older
  /// ones to a decentralized archive (0 = keep everything local).
  size_t tiered_hot_positions = 0;
  /// Archive shape when tiering is on.
  int archive_peers = 12;
  int archive_replication = 3;
};

/// One-call setup of the whole system (paper §3.4 initialization): creates
/// the simulated chain, funds accounts, deploys the Root Record and
/// Punishment contracts, escrows the deposit, and starts the Offchain
/// Node. This is the facade examples and benchmarks build on.
class Deployment {
 public:
  /// `publisher_seed` keys the client that the Punishment contract is
  /// bound to (Algorithm 2's immutable clientAddress).
  static Result<std::unique_ptr<Deployment>> Create(
      const DeploymentConfig& config, uint64_t publisher_seed = 0xC11E);

  SimClock& clock() { return clock_; }
  Blockchain& chain() { return *chain_; }
  OffchainNode& node() { return *node_; }
  /// The deployment-wide metrics/trace sink, shared by the chain, fault
  /// injector, log store, node and stage-2 submitter. Timestamped off the
  /// deployment SimClock, so snapshots and traces are deterministic for a
  /// given seed.
  Telemetry& telemetry() { return *telemetry_; }

  const Address& root_record_address() const { return root_record_address_; }
  const Address& punishment_address() const { return punishment_address_; }

  /// The publisher bound to the deployed Punishment contract.
  PublisherClient& publisher() { return *publisher_; }

  /// Additional client roles sharing the same node/chain.
  UserClient MakeUser(uint64_t seed);
  AuditorClient MakeAuditor(uint64_t seed);

  /// Deploys a Payment contract between the bound publisher and the
  /// Offchain Node (DApp-logging-as-a-service, §4.5). Returns its address.
  Result<Address> CreatePaymentChannel(int64_t period_seconds,
                                       const Wei& payment_per_period,
                                       int64_t max_overdue_periods);

  /// Advances simulated time and mines pending blocks — the "lazy"
  /// background progress of stage 2.
  void AdvanceBlocks(int count);

  /// The decentralized archive backing tiered storage (null unless
  /// config.tiered_hot_positions > 0).
  DecentralizedArchive* archive() { return archive_.get(); }

 private:
  Deployment() : clock_(0) {}

  DeploymentConfig config_;
  SimClock clock_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<DecentralizedArchive> archive_;
  std::unique_ptr<Blockchain> chain_;
  std::unique_ptr<OffchainNode> node_;
  std::unique_ptr<PublisherClient> publisher_;
  Address root_record_address_;
  Address punishment_address_;
  Address offchain_address_;
};

/// Convenience wrapper driving a Payment contract from both sides; used
/// by the logging-as-a-service example and tests.
class PaymentChannelClient {
 public:
  PaymentChannelClient(Blockchain* chain, Address payment_address,
                       Address actor)
      : chain_(chain), payment_address_(payment_address), actor_(actor) {}

  /// Client-side: deposit ether into the channel.
  Result<Receipt> Deposit(const Wei& amount);
  /// Client-side: start the subscription stream.
  Result<Receipt> StartPayment();
  /// Either side: recompute the split (emits the Algorithm 3 events).
  Result<Receipt> UpdateStatus();
  /// Offchain side: withdraw everything currently reserved.
  Result<Receipt> WithdrawOffchain();
  /// Client side: withdraw the unreserved remainder.
  Result<Receipt> WithdrawClient();
  /// Client side: settle and close.
  Result<Receipt> Terminate();

  Result<Wei> ReservedForEdge() const;
  Result<uint64_t> RemainingPeriods() const;
  Result<bool> IsTerminated() const;

 private:
  Result<Receipt> Invoke(const std::string& method, const Wei& value);

  Blockchain* chain_;
  Address payment_address_;
  Address actor_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CORE_WEDGEBLOCK_H_
