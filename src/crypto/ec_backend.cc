#include "crypto/ec_backend.h"

#include <cstdlib>
#include <cstring>

namespace wedge {
namespace secp256k1 {

namespace {

bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

EcBackend DetectBackend() {
#if defined(WEDGE_DISABLE_ECPRECOMP)
  return EcBackend::kReference;
#else
  if (EnvTruthy("WEDGE_DISABLE_ECPRECOMP")) return EcBackend::kReference;
  if (const char* pick = std::getenv("WEDGE_EC_BACKEND")) {
    if (std::strcmp(pick, "reference") == 0) return EcBackend::kReference;
    if (std::strcmp(pick, "fast") == 0) return EcBackend::kFast;
    // Unknown request: fall through to the default.
  }
  return EcBackend::kFast;
#endif
}

EcBackend& ActiveBackendSlot() {
  static EcBackend backend = DetectBackend();
  return backend;
}

}  // namespace

EcBackend ActiveEcBackend() { return ActiveBackendSlot(); }

std::string_view EcBackendName(EcBackend backend) {
  switch (backend) {
    case EcBackend::kReference:
      return "reference";
    case EcBackend::kFast:
      return "fast";
  }
  return "unknown";
}

bool EcBackendSupported(EcBackend backend) {
#if defined(WEDGE_DISABLE_ECPRECOMP)
  return backend == EcBackend::kReference;
#else
  (void)backend;
  return true;
#endif
}

bool SetEcBackendForTest(EcBackend backend) {
  if (!EcBackendSupported(backend)) return false;
  ActiveBackendSlot() = backend;
  return true;
}

}  // namespace secp256k1
}  // namespace wedge
