#ifndef WEDGEBLOCK_CRYPTO_EC_BACKEND_H_
#define WEDGEBLOCK_CRYPTO_EC_BACKEND_H_

#include <string_view>

// Runtime-dispatched secp256k1 scalar-multiplication backends. Every
// point multiplication — stage-1 signing, client verification, ecrecover
// — routes through one of two implementations selected once at startup:
//
//   kFast       precomputed 8-bit comb tables for G, wNAF variable-base
//               multiplication, and GLV-endomorphism Shamir verification
//   kReference  naive double-and-add with no precomputation (the
//               equivalence oracle and the forced-slow CI configuration)
//
// Selection: kFast unless `WEDGE_DISABLE_ECPRECOMP` (CMake option at
// build time, or a non-"0" environment variable at run time) forces the
// reference path; the environment variable
// `WEDGE_EC_BACKEND=reference|fast` pins a specific backend (matching
// the `WEDGE_SHA256_BACKEND` pattern). Both backends are point- and
// byte-identical (enforced by tests/ec_equiv_test.cc across a seeded
// 10k-scalar corpus).

namespace wedge {
namespace secp256k1 {

enum class EcBackend { kReference, kFast };

/// The backend every scalar multiplication currently routes to.
EcBackend ActiveEcBackend();

/// Human-readable backend name ("reference", "fast").
std::string_view EcBackendName(EcBackend backend);

/// True when the backend is compiled in (kFast is absent only under
/// -DWEDGE_DISABLE_ECPRECOMP=ON).
bool EcBackendSupported(EcBackend backend);

/// Test hook: re-points the dispatcher at `backend`. Returns false (and
/// changes nothing) when unsupported. Not thread-safe — call only from
/// single-threaded test setup, and restore the original backend after.
bool SetEcBackendForTest(EcBackend backend);

}  // namespace secp256k1
}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_EC_BACKEND_H_
