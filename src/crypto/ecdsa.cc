#include "crypto/ecdsa.h"

#include <algorithm>
#include <cstring>

#include "crypto/hmac_sha256.h"
#include "crypto/keccak256.h"

namespace wedge {

using secp256k1::AffinePoint;

Result<Address> Address::FromHex(std::string_view hex) {
  WEDGE_ASSIGN_OR_RETURN(Bytes raw, HexDecode(hex));
  if (raw.size() != 20) {
    return Status::InvalidArgument("address must be 20 bytes");
  }
  Address a;
  std::memcpy(a.bytes.data(), raw.data(), 20);
  return a;
}

bool Address::IsZero() const {
  for (uint8_t b : bytes) {
    if (b != 0) return false;
  }
  return true;
}

std::string Address::ToHex() const {
  return "0x" + HexEncode(bytes.data(), bytes.size());
}

size_t AddressHasher::operator()(const Address& a) const {
  // The address is itself a hash suffix; fold 8 bytes.
  uint64_t v;
  std::memcpy(&v, a.bytes.data(), sizeof(v));
  return static_cast<size_t>(v);
}

Bytes EcdsaSignature::Serialize() const {
  Bytes out;
  out.reserve(65);
  Append(out, r.ToBytesBE());
  Append(out, s.ToBytesBE());
  out.push_back(recovery_id);
  return out;
}

Result<EcdsaSignature> EcdsaSignature::Deserialize(const Bytes& b) {
  if (b.size() != 65) {
    return Status::InvalidArgument("signature must be 65 bytes");
  }
  Bytes rb(b.begin(), b.begin() + 32);
  Bytes sb(b.begin() + 32, b.begin() + 64);
  EcdsaSignature sig;
  WEDGE_ASSIGN_OR_RETURN(sig.r, U256::FromBytesBE(rb));
  WEDGE_ASSIGN_OR_RETURN(sig.s, U256::FromBytesBE(sb));
  sig.recovery_id = b[64];
  if (sig.recovery_id > 3) {
    return Status::InvalidArgument("recovery id out of range");
  }
  return sig;
}

Result<KeyPair> KeyPair::FromPrivateKey(const U256& secret) {
  if (secret.IsZero() || secret >= secp256k1::GroupOrder()) {
    return Status::InvalidArgument("private key out of range");
  }
  KeyPair kp;
  kp.private_key_ = secret;
  kp.public_key_ = secp256k1::ScalarMulBase(secret);
  kp.address_ = AddressFromPublicKey(kp.public_key_);
  return kp;
}

KeyPair KeyPair::FromSeed(uint64_t seed) {
  // Hash the seed until a valid scalar appears (overwhelmingly the first try).
  Bytes material;
  PutU64(material, seed);
  PutString(material, "wedgeblock-key-seed");
  for (;;) {
    Hash256 h = Sha256::Digest(material);
    U256 candidate = U256::FromHash(h);
    auto kp = FromPrivateKey(candidate);
    if (kp.ok()) return std::move(kp).value();
    material = HashToBytes(h);
  }
}

Address AddressFromPublicKey(const AffinePoint& pub) {
  // Ethereum: keccak256(X || Y)[12..32].
  Bytes encoded;
  Append(encoded, pub.x.ToBytesBE());
  Append(encoded, pub.y.ToBytesBE());
  Hash256 h = Keccak256::Digest(encoded);
  Address a;
  std::memcpy(a.bytes.data(), h.data() + 12, 20);
  return a;
}

namespace {

/// RFC 6979 deterministic nonce derivation (HMAC-SHA256 variant).
U256 DeriveNonce(const U256& private_key, const Hash256& msg_hash) {
  const U256& n = secp256k1::GroupOrder();
  Bytes x = private_key.ToBytesBE();
  Bytes h1(msg_hash.begin(), msg_hash.end());

  Bytes v(32, 0x01);
  Bytes k(32, 0x00);
  Bytes zero{0x00};
  Bytes one{0x01};

  Hash256 t = HmacSha256(k, {&v, &zero, &x, &h1});
  k = HashToBytes(t);
  v = HashToBytes(HmacSha256(k, v));
  t = HmacSha256(k, {&v, &one, &x, &h1});
  k = HashToBytes(t);
  v = HashToBytes(HmacSha256(k, v));

  for (;;) {
    v = HashToBytes(HmacSha256(k, v));
    Hash256 vh;
    std::memcpy(vh.data(), v.data(), 32);
    U256 candidate = U256::FromHash(vh);
    if (!candidate.IsZero() && candidate < n) return candidate;
    t = HmacSha256(k, {&v, &zero});
    k = HashToBytes(t);
    v = HashToBytes(HmacSha256(k, v));
  }
}

}  // namespace

EcdsaSignature EcdsaSign(const U256& private_key, const Hash256& msg_hash) {
  using namespace secp256k1;  // NOLINT(build/namespaces)
  const U256& n = GroupOrder();
  U256 z = FnReduce(U256::FromHash(msg_hash));

  U256 k = DeriveNonce(private_key, msg_hash);
  for (;;) {
    AffinePoint rp = ScalarMulBase(k);
    U256 r = FnReduce(rp.x);
    if (r.IsZero()) {
      k = FnAdd(k, U256::One());
      continue;
    }
    U256 kinv = FnInv(k);
    U256 s = FnMul(kinv, FnAdd(z, FnMul(r, private_key)));
    if (s.IsZero()) {
      k = FnAdd(k, U256::One());
      continue;
    }
    uint8_t recid = (rp.y.Bit(0) ? 1 : 0) | (rp.x >= n ? 2 : 0);
    // Enforce low-s (Ethereum malleability rule); flipping s mirrors R's y.
    U256 half_n = n.Shr(1);
    if (s > half_n) {
      s = n - s;
      recid ^= 1;
    }
    EcdsaSignature sig;
    sig.r = r;
    sig.s = s;
    sig.recovery_id = recid;
    return sig;
  }
}

void EcdsaSignMany(const U256& private_key, const Hash256* hashes, size_t n,
                   EcdsaSignature* out) {
  using namespace secp256k1;  // NOLINT(build/namespaces)
  if (n == 0) return;
  const U256& order = GroupOrder();
  const U256 half_n = order.Shr(1);

  std::vector<U256> ks(n);
  for (size_t i = 0; i < n; ++i) ks[i] = DeriveNonce(private_key, hashes[i]);

  // One batch-normalized pass for every k*G, one simultaneous inversion
  // for every nonce — the two per-signature field inversions the scalar
  // path pays become ~6 multiplications each.
  std::vector<AffinePoint> rps(n);
  ScalarMulBaseMany(ks.data(), n, rps.data());
  std::vector<U256> kinvs(n);
  FnInvMany(ks.data(), n, kinvs.data());

  for (size_t i = 0; i < n; ++i) {
    U256 r = FnReduce(rps[i].x);
    U256 z = FnReduce(U256::FromHash(hashes[i]));
    U256 s = FnMul(kinvs[i], FnAdd(z, FnMul(r, private_key)));
    if (r.IsZero() || s.IsZero()) {
      // Nonce retry needed (probability ~2^-256): the scalar path owns
      // the k+1 loop and stays byte-identical by construction.
      out[i] = EcdsaSign(private_key, hashes[i]);
      continue;
    }
    uint8_t recid = (rps[i].y.Bit(0) ? 1 : 0) | (rps[i].x >= order ? 2 : 0);
    if (s > half_n) {
      s = order - s;
      recid ^= 1;
    }
    out[i].r = r;
    out[i].s = s;
    out[i].recovery_id = recid;
  }
}

std::vector<EcdsaSignature> EcdsaSignMany(const U256& private_key,
                                          const std::vector<Hash256>& hashes) {
  std::vector<EcdsaSignature> out(hashes.size());
  EcdsaSignMany(private_key, hashes.data(), hashes.size(), out.data());
  return out;
}

void EcdsaVerifyMany(const AffinePoint* public_keys, const Hash256* hashes,
                     const EcdsaSignature* sigs, size_t n, uint8_t* ok) {
  using namespace secp256k1;  // NOLINT(build/namespaces)
  if (n == 0) return;
  const U256& order = GroupOrder();

  // Range-check everything first so the batch inversion only ever sees
  // nonzero scalars, then invert all s values at once.
  std::vector<U256> svals;
  std::vector<size_t> idx;
  svals.reserve(n);
  idx.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const EcdsaSignature& sig = sigs[i];
    if (sig.r.IsZero() || sig.s.IsZero() || sig.r >= order ||
        sig.s >= order || public_keys[i].infinity ||
        !IsOnCurve(public_keys[i])) {
      ok[i] = 0;
      continue;
    }
    svals.push_back(sig.s);
    idx.push_back(i);
  }
  if (svals.empty()) return;
  FnInvMany(svals.data(), svals.size(), svals.data());

  for (size_t j = 0; j < idx.size(); ++j) {
    size_t i = idx[j];
    U256 z = FnReduce(U256::FromHash(hashes[i]));
    U256 u1 = FnMul(z, svals[j]);
    U256 u2 = FnMul(sigs[i].r, svals[j]);
    AffinePoint p = DoubleScalarMulBase(u1, public_keys[i], u2);
    ok[i] = (!p.infinity && FnReduce(p.x) == sigs[i].r) ? 1 : 0;
  }
}

std::vector<uint8_t> EcdsaVerifyMany(const AffinePoint& public_key,
                                     const std::vector<Hash256>& hashes,
                                     const std::vector<EcdsaSignature>& sigs) {
  size_t n = std::min(hashes.size(), sigs.size());
  std::vector<AffinePoint> keys(n, public_key);
  std::vector<uint8_t> ok(n, 0);
  if (n > 0) {
    EcdsaVerifyMany(keys.data(), hashes.data(), sigs.data(), n, ok.data());
  }
  return ok;
}

bool EcdsaVerify(const AffinePoint& public_key, const Hash256& msg_hash,
                 const EcdsaSignature& sig) {
  using namespace secp256k1;  // NOLINT(build/namespaces)
  const U256& n = GroupOrder();
  if (sig.r.IsZero() || sig.s.IsZero()) return false;
  if (sig.r >= n || sig.s >= n) return false;
  if (public_key.infinity || !IsOnCurve(public_key)) return false;

  U256 z = FnReduce(U256::FromHash(msg_hash));
  U256 sinv = FnInv(sig.s);
  U256 u1 = FnMul(z, sinv);
  U256 u2 = FnMul(sig.r, sinv);
  AffinePoint p = DoubleScalarMulBase(u1, public_key, u2);
  if (p.infinity) return false;
  return FnReduce(p.x) == sig.r;
}

Result<AffinePoint> EcdsaRecover(const Hash256& msg_hash,
                                 const EcdsaSignature& sig) {
  using namespace secp256k1;  // NOLINT(build/namespaces)
  const U256& n = GroupOrder();
  if (sig.r.IsZero() || sig.s.IsZero() || sig.r >= n || sig.s >= n) {
    return Status::Verification("signature scalars out of range");
  }
  // Reconstruct R from r and the recovery id.
  U256 x = sig.r;
  if (sig.recovery_id & 2) {
    bool overflow = U256::AddWithCarry(sig.r, n, &x);
    if (overflow || x >= FieldPrime()) {
      return Status::Verification("invalid recovery id for r");
    }
  }
  WEDGE_ASSIGN_OR_RETURN(AffinePoint rp, LiftX(x, (sig.recovery_id & 1) != 0));

  // Q = r^{-1} (s*R - z*G).
  U256 z = FnReduce(U256::FromHash(msg_hash));
  U256 rinv = FnInv(sig.r);
  U256 u1 = FnMul(FnSub(U256::Zero(), z), rinv);  // -z/r
  U256 u2 = FnMul(sig.s, rinv);                   // s/r
  AffinePoint q = DoubleScalarMulBase(u1, rp, u2);
  if (q.infinity) {
    return Status::Verification("recovered point at infinity");
  }
  return q;
}

Address RecoverSigner(const Hash256& msg_hash, const EcdsaSignature& sig) {
  auto pub = EcdsaRecover(msg_hash, sig);
  if (!pub.ok()) return Address::Zero();
  return AddressFromPublicKey(pub.value());
}

}  // namespace wedge
