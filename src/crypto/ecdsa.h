#ifndef WEDGEBLOCK_CRYPTO_ECDSA_H_
#define WEDGEBLOCK_CRYPTO_ECDSA_H_

#include <array>
#include <string>
#include <vector>

#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace wedge {

/// 20-byte Ethereum-style account address (last 20 bytes of the Keccak-256
/// hash of the uncompressed public key).
struct Address {
  std::array<uint8_t, 20> bytes{};

  static Address Zero() { return Address{}; }
  static Result<Address> FromHex(std::string_view hex);

  bool IsZero() const;
  std::string ToHex() const;  ///< "0x"-prefixed lowercase hex.
  Bytes ToBytes() const { return Bytes(bytes.begin(), bytes.end()); }

  bool operator==(const Address& o) const { return bytes == o.bytes; }
  bool operator!=(const Address& o) const { return bytes != o.bytes; }
  bool operator<(const Address& o) const { return bytes < o.bytes; }
};

/// Hash functor so Address can key unordered_map.
struct AddressHasher {
  size_t operator()(const Address& a) const;
};

/// An ECDSA signature over secp256k1 with an Ethereum-style recovery id,
/// allowing the signer's address to be recovered from (hash, signature) —
/// the on-chain `recoverSigner` primitive used by the Punishment contract.
struct EcdsaSignature {
  U256 r;
  U256 s;
  uint8_t recovery_id = 0;  ///< 0..3 (y parity | x overflow).

  /// 65-byte wire encoding: R(32) || S(32) || recovery_id(1).
  Bytes Serialize() const;
  static Result<EcdsaSignature> Deserialize(const Bytes& b);

  bool operator==(const EcdsaSignature& o) const {
    return r == o.r && s == o.s && recovery_id == o.recovery_id;
  }
};

/// A secp256k1 key pair plus the derived address.
class KeyPair {
 public:
  /// Derives a key pair from a 32-byte secret. Fails when the secret is 0
  /// or >= the group order.
  static Result<KeyPair> FromPrivateKey(const U256& secret);

  /// Deterministic test/workload key derivation from a seed.
  static KeyPair FromSeed(uint64_t seed);

  const U256& private_key() const { return private_key_; }
  const secp256k1::AffinePoint& public_key() const { return public_key_; }
  const Address& address() const { return address_; }

 private:
  KeyPair() = default;
  U256 private_key_;
  secp256k1::AffinePoint public_key_;
  Address address_;
};

/// Derives the Ethereum-style address of a public key.
Address AddressFromPublicKey(const secp256k1::AffinePoint& pub);

/// Signs a 32-byte message hash with an RFC 6979 deterministic nonce.
/// Produces a low-s signature (Ethereum malleability rule).
EcdsaSignature EcdsaSign(const U256& private_key, const Hash256& msg_hash);

/// Verifies a signature against a public key.
bool EcdsaVerify(const secp256k1::AffinePoint& public_key,
                 const Hash256& msg_hash, const EcdsaSignature& sig);

/// Batch signing, mirroring the Sha256Many shape: out[i] is
/// byte-identical to EcdsaSign(private_key, hashes[i]) (RFC 6979 pins
/// every nonce, so this is exactly testable). Amortizes the expensive
/// per-signature inversions across the batch: one Montgomery
/// simultaneous inversion for all nonces and one for all k*G
/// normalizations, instead of two field inversions per signature. The
/// astronomically rare r == 0 / s == 0 retry falls back to the per-call
/// path for that entry.
void EcdsaSignMany(const U256& private_key, const Hash256* hashes, size_t n,
                   EcdsaSignature* out);
std::vector<EcdsaSignature> EcdsaSignMany(const U256& private_key,
                                          const std::vector<Hash256>& hashes);

/// Batch verification: ok[i] = EcdsaVerify(public_keys[i], hashes[i],
/// sigs[i]) ? 1 : 0, with the per-signature s-inversions batched into
/// one simultaneous inversion. This is plain per-item verification with
/// shared inversions — NOT probabilistic batch validation; each result
/// is exactly what the scalar call returns.
void EcdsaVerifyMany(const secp256k1::AffinePoint* public_keys,
                     const Hash256* hashes, const EcdsaSignature* sigs,
                     size_t n, uint8_t* ok);
/// Convenience for the common one-signer case (e.g. a client checking a
/// batch of stage-1 responses from one node).
std::vector<uint8_t> EcdsaVerifyMany(const secp256k1::AffinePoint& public_key,
                                     const std::vector<Hash256>& hashes,
                                     const std::vector<EcdsaSignature>& sigs);

/// Recovers the signing public key from (hash, signature). This mirrors
/// Ethereum's ecrecover precompile.
Result<secp256k1::AffinePoint> EcdsaRecover(const Hash256& msg_hash,
                                            const EcdsaSignature& sig);

/// Convenience: recovers the signer's address, or Address::Zero on failure.
Address RecoverSigner(const Hash256& msg_hash, const EcdsaSignature& sig);

}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_ECDSA_H_
