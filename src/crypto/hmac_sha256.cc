#include "crypto/hmac_sha256.h"

#include <cstring>

namespace wedge {

namespace {

constexpr size_t kBlockSize = 64;

void PrepareKey(const Bytes& key, uint8_t* out) {
  std::memset(out, 0, kBlockSize);
  if (key.size() > kBlockSize) {
    Hash256 h = Sha256::Digest(key);
    std::memcpy(out, h.data(), h.size());
  } else {
    std::memcpy(out, key.data(), key.size());
  }
}

}  // namespace

Hash256 HmacSha256(const Bytes& key,
                   std::initializer_list<const Bytes*> message_parts) {
  uint8_t k[kBlockSize];
  PrepareKey(key, k);

  uint8_t ipad[kBlockSize], opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlockSize);
  for (const Bytes* part : message_parts) inner.Update(*part);
  Hash256 inner_hash = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlockSize);
  outer.Update(inner_hash.data(), inner_hash.size());
  return outer.Finish();
}

Hash256 HmacSha256(const Bytes& key, const Bytes& message) {
  return HmacSha256(key, {&message});
}

}  // namespace wedge
