#ifndef WEDGEBLOCK_CRYPTO_HMAC_SHA256_H_
#define WEDGEBLOCK_CRYPTO_HMAC_SHA256_H_

#include "crypto/sha256.h"

namespace wedge {

/// HMAC-SHA256 (RFC 2104). Used by the RFC 6979 deterministic-nonce
/// derivation in the ECDSA signer.
Hash256 HmacSha256(const Bytes& key, const Bytes& message);

/// Variant taking multiple message parts (concatenated logically, without
/// allocating the concatenation).
Hash256 HmacSha256(const Bytes& key,
                   std::initializer_list<const Bytes*> message_parts);

}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_HMAC_SHA256_H_
