#include "crypto/keccak256.h"

#include <cstring>

namespace wedge {

namespace {

constexpr uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotations[24] = {1,  3,  6,  10, 15, 21, 28, 36,
                                45, 55, 2,  14, 27, 41, 56, 8,
                                25, 43, 62, 18, 39, 61, 20, 44};

constexpr int kPiLanes[24] = {10, 7,  11, 17, 18, 3,  5,  16,
                              8,  21, 24, 4,  15, 23, 19, 13,
                              12, 2,  20, 14, 22, 9,  6,  1};

inline uint64_t Rotl64(uint64_t x, int n) {
  return (x << n) | (x >> (64 - n));
}

void KeccakF1600(uint64_t* s) {
  for (int round = 0; round < 24; ++round) {
    // Theta.
    uint64_t c[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = s[x] ^ s[x + 5] ^ s[x + 10] ^ s[x + 15] ^ s[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      uint64_t d = c[(x + 4) % 5] ^ Rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) s[x + y] ^= d;
    }
    // Rho and Pi.
    uint64_t t = s[1];
    for (int i = 0; i < 24; ++i) {
      int j = kPiLanes[i];
      uint64_t tmp = s[j];
      s[j] = Rotl64(t, kRotations[i]);
      t = tmp;
    }
    // Chi.
    for (int y = 0; y < 25; y += 5) {
      uint64_t row[5];
      for (int x = 0; x < 5; ++x) row[x] = s[y + x];
      for (int x = 0; x < 5; ++x) {
        s[y + x] = row[x] ^ (~row[(x + 1) % 5] & row[(x + 2) % 5]);
      }
    }
    // Iota.
    s[0] ^= kRoundConstants[round];
  }
}

}  // namespace

Keccak256::Keccak256() { Reset(); }

void Keccak256::Reset() {
  std::memset(state_, 0, sizeof(state_));
  buffer_len_ = 0;
}

void Keccak256::Update(const uint8_t* data, size_t len) {
  while (len > 0) {
    size_t fill = std::min(len, kRate - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, fill);
    buffer_len_ += fill;
    data += fill;
    len -= fill;
    if (buffer_len_ == kRate) {
      Absorb();
      buffer_len_ = 0;
    }
  }
}

void Keccak256::Absorb() {
  for (size_t i = 0; i < kRate / 8; ++i) {
    uint64_t lane = 0;
    for (int b = 7; b >= 0; --b) {
      lane = (lane << 8) | buffer_[i * 8 + b];
    }
    state_[i] ^= lane;
  }
  KeccakF1600(state_);
}

Hash256 Keccak256::Finish() {
  // Keccak (pre-SHA3) padding: 0x01 ... 0x80.
  std::memset(buffer_ + buffer_len_, 0, kRate - buffer_len_);
  buffer_[buffer_len_] ^= 0x01;
  buffer_[kRate - 1] ^= 0x80;
  Absorb();
  buffer_len_ = 0;

  Hash256 out;
  for (int i = 0; i < 4; ++i) {
    uint64_t lane = state_[i];
    for (int b = 0; b < 8; ++b) {
      out[i * 8 + b] = static_cast<uint8_t>(lane >> (8 * b));
    }
  }
  return out;
}

Hash256 Keccak256::Digest(const uint8_t* data, size_t len) {
  Keccak256 h;
  h.Update(data, len);
  return h.Finish();
}

Hash256 Keccak256::Digest(const Bytes& data) {
  return Digest(data.data(), data.size());
}

Hash256 Keccak256::Digest(std::string_view data) {
  return Digest(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

}  // namespace wedge
