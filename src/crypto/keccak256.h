#ifndef WEDGEBLOCK_CRYPTO_KECCAK256_H_
#define WEDGEBLOCK_CRYPTO_KECCAK256_H_

#include "crypto/sha256.h"

namespace wedge {

/// Keccak-256 as used by Ethereum (NOT the padded SHA3-256 variant).
/// Ethereum derives account addresses from the Keccak-256 hash of the
/// uncompressed public key, and transaction/message hashes use it too.
class Keccak256 {
 public:
  Keccak256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  Hash256 Finish();
  void Reset();

  static Hash256 Digest(const uint8_t* data, size_t len);
  static Hash256 Digest(const Bytes& data);
  static Hash256 Digest(std::string_view data);

 private:
  void Absorb();

  static constexpr size_t kRate = 136;  // 1088-bit rate for 256-bit output.
  uint64_t state_[25];
  uint8_t buffer_[kRate];
  size_t buffer_len_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_KECCAK256_H_
