#include "crypto/secp256k1.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "crypto/ec_backend.h"

namespace wedge {
namespace secp256k1 {

namespace {

using uint128 = unsigned __int128;

// p = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE FFFFFC2F
constexpr U256 kP(0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                  0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL);
// 2^256 - p = 2^32 + 977 = 0x1000003D1.
constexpr U256 kCp(0x00000001000003D1ULL, 0, 0, 0);
// n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
constexpr U256 kN(0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                  0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL);
// 2^256 - n = 0x14551231950B75FC4402DA1732FC9BEBF.
constexpr U256 kCn(0x402DA1732FC9BEBFULL, 0x4551231950B75FC4ULL, 0x1ULL, 0);

constexpr U256 kGx(0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                   0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL);
constexpr U256 kGy(0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                   0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL);

constexpr U256 kCurveB(7);

// --- GLV endomorphism constants ---
// lambda^3 = 1 (mod n); phi(x, y) = (beta*x, y) satisfies phi(P) =
// lambda*P for every curve point. The lattice constants below implement
// the decomposition k = k1 + k2*lambda with |k1|, |k2| < ~2^128
// (Guide to ECC alg. 3.74; same values as libsecp256k1).
constexpr U256 kLambda(0xDF02967C1B23BD72ULL, 0x122E22EA20816678ULL,
                       0xA5261C028812645AULL, 0x5363AD4CC05C30E0ULL);
constexpr U256 kBeta(0xC1396C28719501EEULL, 0x9CF0497512F58995ULL,
                     0x6E64479EAC3434E9ULL, 0x7AE96A2B657C0710ULL);
// -b1 and -b2 (mod n) of the reduced lattice basis.
constexpr U256 kMinusB1(0x6F547FA90ABFE4C3ULL, 0xE4437ED6010E8828ULL, 0, 0);
constexpr U256 kMinusB2(0xD765CDA83DB1562CULL, 0x8A280AC50774346DULL,
                        0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL);
// g1 = round(2^384 * b2 / n), g2 = round(2^384 * (-b1) / n): the
// precomputed rounding divisors for the basis projection.
constexpr U256 kG1(0xE893209A45DBB031ULL, 0x3DAA8A1471E8CA7FULL,
                   0xE86C90E49284EB15ULL, 0x3086D221A7D46BCDULL);
constexpr U256 kG2(0x1571B4AE8AC47F71ULL, 0x221208AC9DF506C6ULL,
                   0x6F547FA90ABFE4C4ULL, 0xE4437ED6010E8828ULL);

[[noreturn]] void DieZeroInverse(const char* fn) {
  std::fprintf(stderr,
               "wedge/secp256k1: %s called on zero input (no inverse "
               "exists); this is a caller bug, aborting\n",
               fn);
  std::abort();
}

// --- Local inline limb arithmetic ---
// U256's general-purpose operators live in u256.cc and cost a function
// call each; the group law below executes hundreds of field ops per
// point multiplication, so the hot helpers are reimplemented here where
// -O3 can inline and fuse them.

inline int CmpInl(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] != b.limb[i]) return a.limb[i] < b.limb[i] ? -1 : 1;
  }
  return 0;
}

/// *a -= b, returning the borrow.
inline bool SubInl(U256* a, const U256& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint128 d = static_cast<uint128>(a->limb[i]) - b.limb[i] - borrow;
    a->limb[i] = static_cast<uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  return borrow != 0;
}

/// *a += b, returning the carry.
inline bool AddInl(U256* a, const U256& b) {
  uint128 acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += static_cast<uint128>(a->limb[i]) + b.limb[i];
    a->limb[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  return acc != 0;
}

inline void Shr1Inl(U256* x) {
  x->limb[0] = (x->limb[0] >> 1) | (x->limb[1] << 63);
  x->limb[1] = (x->limb[1] >> 1) | (x->limb[2] << 63);
  x->limb[2] = (x->limb[2] >> 1) | (x->limb[3] << 63);
  x->limb[3] >>= 1;
}

inline U256 FpAddInl(const U256& a, const U256& b) {
  U256 r = a;
  bool over = AddInl(&r, b);
  if (over || CmpInl(r, kP) >= 0) {
    // Subtract p == add c (mod 2^256); a final carry out is exactly the
    // 2^256 wrap and is discarded.
    uint128 acc = static_cast<uint128>(r.limb[0]) + 0x1000003D1ULL;
    r.limb[0] = static_cast<uint64_t>(acc);
    uint64_t carry = static_cast<uint64_t>(acc >> 64);
    for (int i = 1; i < 4 && carry; ++i) {
      acc = static_cast<uint128>(r.limb[i]) + carry;
      r.limb[i] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
  }
  return r;
}

inline U256 FpSubInl(const U256& a, const U256& b) {
  U256 r = a;
  if (SubInl(&r, b)) {
    // Underflowed: add p back == subtract c from the wrapped value.
    uint128 d = static_cast<uint128>(r.limb[0]) - 0x1000003D1ULL;
    r.limb[0] = static_cast<uint64_t>(d);
    uint64_t borrow = (d >> 64) ? 1 : 0;
    for (int i = 1; i < 4 && borrow; ++i) {
      d = static_cast<uint128>(r.limb[i]) - borrow;
      r.limb[i] = static_cast<uint64_t>(d);
      borrow = (d >> 64) ? 1 : 0;
    }
  }
  return r;
}

/// Schoolbook 4x4 -> 8 limb product.
inline void Mul4x4(const U256& a, const U256& b, uint64_t w[8]) {
  for (int i = 0; i < 8; ++i) w[i] = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      uint128 acc = static_cast<uint128>(a.limb[i]) * b.limb[j] +
                    w[i + j] + carry;
      w[i + j] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    w[i + 4] = carry;
  }
}

/// Dedicated Solinas fold mod p: c = 2^256 - p fits in 34 bits, so one
/// limb-times-scalar pass folds the high 256 bits and a second pass
/// folds the leftover carry limb. Much faster than the generic
/// ReduceWide loop (which re-runs a full 4x4 MulWide per fold).
inline U256 ReducePInl(const uint64_t w[8]) {
  constexpr uint64_t kC = 0x1000003D1ULL;
  uint64_t r[4];
  uint128 acc = 0;
  for (int i = 0; i < 4; ++i) {
    acc += w[i];
    acc += static_cast<uint128>(w[4 + i]) * kC;
    r[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  // acc < 2^35: fold it once more.
  acc = static_cast<uint128>(static_cast<uint64_t>(acc)) * kC + r[0];
  r[0] = static_cast<uint64_t>(acc);
  acc >>= 64;
  for (int i = 1; i < 4 && acc != 0; ++i) {
    acc += r[i];
    r[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  U256 out(r[0], r[1], r[2], r[3]);
  if (acc != 0) {
    // Wrapped past 2^256: 2^256 == c (mod p), and the wrapped value is
    // tiny, so adding c cannot carry again.
    AddInl(&out, kCp);
  }
  if (CmpInl(out, kP) >= 0) SubInl(&out, kP);
  return out;
}

inline U256 FpMulInl(const U256& a, const U256& b) {
  uint64_t w[8];
  Mul4x4(a, b, w);
  return ReducePInl(w);
}

inline U256 FpSqrInl(const U256& a) { return FpMulInl(a, a); }

/// *x = (x + (x odd ? m : 0)) / 2, tracking the carry out of the
/// addition. Core step of the binary extended gcd below; m odd.
inline void HalfModInl(U256* x, const U256& m) {
  bool carry = false;
  if (x->limb[0] & 1) carry = AddInl(x, m);
  Shr1Inl(x);
  if (carry) x->limb[3] |= 1ULL << 63;
}

/// *a = a - b mod m (both already < m).
inline void SubModInl(U256* a, const U256& b, const U256& m) {
  if (SubInl(a, b)) AddInl(a, m);
}

/// a^-1 mod m via the variable-time binary extended Euclidean algorithm
/// (~20x faster than the Fermat ladder). Requires m odd prime and
/// a != 0 mod m (checked by the callers).
U256 BinInvMod(const U256& a_in, const U256& m) {
  const U256 one = U256::One();
  U256 u = a_in >= m ? U256::Mod(a_in, m) : a_in;
  U256 v = m;
  U256 x1 = one;
  U256 x2 = U256::Zero();
  while (u != one && v != one) {
    while ((u.limb[0] & 1) == 0) {
      Shr1Inl(&u);
      HalfModInl(&x1, m);
    }
    while ((v.limb[0] & 1) == 0) {
      Shr1Inl(&v);
      HalfModInl(&x2, m);
    }
    if (CmpInl(u, v) >= 0) {
      SubInl(&u, v);
      SubModInl(&x1, x2, m);
    } else {
      SubInl(&v, u);
      SubModInl(&x2, x1, m);
    }
  }
  return u == one ? x1 : x2;
}

/// Montgomery's simultaneous-inversion trick: one real inversion plus
/// three multiplications per element. MulFn is FpMul or FnMul.
template <typename MulFn>
void InvManyImpl(const U256* xs, size_t n, U256* out, const U256& m,
                 MulFn mul, const char* fn) {
  if (n == 0) return;
  std::vector<U256> prefix(n);
  for (size_t i = 0; i < n; ++i) {
    if (xs[i].IsZero()) DieZeroInverse(fn);
    prefix[i] = i == 0 ? xs[i] : mul(prefix[i - 1], xs[i]);
  }
  U256 inv = BinInvMod(prefix[n - 1], m);
  for (size_t i = n; i-- > 1;) {
    U256 x = xs[i];  // Copy first: `out` may alias `xs`.
    out[i] = mul(inv, prefix[i - 1]);
    inv = mul(inv, x);
  }
  out[0] = inv;
}

/// Jacobian coordinates: (X, Y, Z) represents (X/Z^2, Y/Z^3).
struct Jacobian {
  U256 x;
  U256 y;
  U256 z;  // z == 0 marks the identity.

  bool IsInfinity() const { return z.IsZero(); }
  static Jacobian Infinity() {
    return Jacobian{U256::One(), U256::One(), U256::Zero()};
  }
};

Jacobian ToJacobian(const AffinePoint& p) {
  if (p.infinity) return Jacobian::Infinity();
  return Jacobian{p.x, p.y, U256::One()};
}

AffinePoint FromJacobian(const Jacobian& j) {
  if (j.IsInfinity()) return AffinePoint::Infinity();
  U256 zinv = FpInv(j.z);
  U256 zinv2 = FpSqr(zinv);
  U256 zinv3 = FpMul(zinv2, zinv);
  AffinePoint out;
  out.x = FpMul(j.x, zinv2);
  out.y = FpMul(j.y, zinv3);
  out.infinity = false;
  return out;
}

Jacobian JDouble(const Jacobian& p) {
  if (p.IsInfinity() || p.y.IsZero()) return Jacobian::Infinity();
  // dbl-2007-bl simplified for a = 0: 2M + 5S, small constants as
  // addition chains.
  U256 a = FpSqrInl(p.x);  // X^2
  U256 b = FpSqrInl(p.y);  // Y^2
  U256 c = FpSqrInl(b);    // Y^4
  U256 t = FpSubInl(FpSqrInl(FpAddInl(p.x, b)), FpAddInl(a, c));
  U256 d = FpAddInl(t, t);  // 2((X+B)^2 - A - C)
  U256 e = FpAddInl(FpAddInl(a, a), a);  // 3A
  U256 f = FpSqrInl(e);
  Jacobian out;
  out.x = FpSubInl(f, FpAddInl(d, d));
  U256 c2 = FpAddInl(c, c);
  U256 c8 = FpAddInl(FpAddInl(c2, c2), FpAddInl(c2, c2));
  out.y = FpSubInl(FpMulInl(e, FpSubInl(d, out.x)), c8);
  out.z = FpMulInl(FpAddInl(p.y, p.y), p.z);
  return out;
}

Jacobian JAdd(const Jacobian& p, const Jacobian& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  // add-2007-bl: 11M + 5S.
  U256 z1z1 = FpSqrInl(p.z);
  U256 z2z2 = FpSqrInl(q.z);
  U256 u1 = FpMulInl(p.x, z2z2);
  U256 u2 = FpMulInl(q.x, z1z1);
  U256 s1 = FpMulInl(FpMulInl(p.y, q.z), z2z2);
  U256 s2 = FpMulInl(FpMulInl(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return JDouble(p);
    return Jacobian::Infinity();
  }
  U256 h = FpSubInl(u2, u1);
  U256 h2 = FpAddInl(h, h);
  U256 i = FpSqrInl(h2);
  U256 j = FpMulInl(h, i);
  U256 rr = FpSubInl(s2, s1);
  U256 r = FpAddInl(rr, rr);
  U256 v = FpMulInl(u1, i);
  Jacobian out;
  out.x = FpSubInl(FpSubInl(FpSqrInl(r), j), FpAddInl(v, v));
  U256 s1j = FpMulInl(s1, j);
  out.y = FpSubInl(FpMulInl(r, FpSubInl(v, out.x)), FpAddInl(s1j, s1j));
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H == 2*Z1*Z2*H.
  out.z = FpMulInl(
      FpSubInl(FpSqrInl(FpAddInl(p.z, q.z)), FpAddInl(z1z1, z2z2)), h);
  return out;
}

/// Mixed addition (Z2 = 1, madd-2007-bl): 7M + 4S against JAdd's
/// 11M + 5S. The workhorse of every table-driven path — precomputed
/// tables are batch-normalized to affine exactly so this applies.
Jacobian JAddMixed(const Jacobian& p, const AffinePoint& q) {
  if (q.infinity) return p;
  if (p.IsInfinity()) return Jacobian{q.x, q.y, U256::One()};
  U256 z1z1 = FpSqrInl(p.z);
  U256 u2 = FpMulInl(q.x, z1z1);
  U256 s2 = FpMulInl(FpMulInl(q.y, p.z), z1z1);
  if (p.x == u2) {
    if (p.y == s2) return JDouble(p);
    return Jacobian::Infinity();
  }
  U256 h = FpSubInl(u2, p.x);
  U256 hh = FpSqrInl(h);
  U256 hh2 = FpAddInl(hh, hh);
  U256 i = FpAddInl(hh2, hh2);  // 4*HH
  U256 j = FpMulInl(h, i);
  U256 rr = FpSubInl(s2, p.y);
  U256 r = FpAddInl(rr, rr);
  U256 v = FpMulInl(p.x, i);
  Jacobian out;
  out.x = FpSubInl(FpSubInl(FpSqrInl(r), j), FpAddInl(v, v));
  U256 yj = FpMulInl(p.y, j);
  out.y = FpSubInl(FpMulInl(r, FpSubInl(v, out.x)), FpAddInl(yj, yj));
  out.z = FpSubInl(FpSubInl(FpSqrInl(FpAddInl(p.z, h)), z1z1), hh);
  return out;
}

AffinePoint NegateAffine(const AffinePoint& a) {
  if (a.infinity) return a;
  AffinePoint out = a;
  out.y = FpSub(U256::Zero(), a.y);
  return out;
}

/// Converts a span of Jacobian points to affine with ONE field inversion
/// (Montgomery trick over the z coordinates). Infinity entries map to
/// the affine identity.
void BatchNormalize(const Jacobian* js, size_t n, AffinePoint* out) {
  std::vector<U256> zs;
  std::vector<size_t> idx;
  zs.reserve(n);
  idx.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (js[i].IsInfinity()) {
      out[i] = AffinePoint::Infinity();
    } else {
      zs.push_back(js[i].z);
      idx.push_back(i);
    }
  }
  if (zs.empty()) return;
  FpInvMany(zs.data(), zs.size(), zs.data());
  for (size_t k = 0; k < idx.size(); ++k) {
    const Jacobian& j = js[idx[k]];
    U256 zinv2 = FpSqr(zs[k]);
    AffinePoint& o = out[idx[k]];
    o.x = FpMul(j.x, zinv2);
    o.y = FpMul(j.y, FpMul(zinv2, zs[k]));
    o.infinity = false;
  }
}

// --- Fixed-base comb table ---
// table[w * 255 + d - 1] = d * 256^w * G for w in [0, 32), d in [1, 256).
// ScalarMulBase then needs no doublings at all: one mixed add per
// non-zero byte of the scalar (<= 32). ~512 KiB, built lazily on first
// use with a single batch normalization.
constexpr int kCombWindows = 32;

const std::vector<AffinePoint>& CombTable() {
  static const auto* table = [] {
    std::vector<Jacobian> jac(static_cast<size_t>(kCombWindows) * 255);
    Jacobian base{kGx, kGy, U256::One()};
    for (int w = 0; w < kCombWindows; ++w) {
      Jacobian* row = jac.data() + static_cast<size_t>(w) * 255;
      row[0] = base;
      for (int d = 2; d <= 255; ++d) row[d - 1] = JAdd(row[d - 2], base);
      base = JAdd(row[254], base);  // 256 * previous window base.
    }
    auto* t = new std::vector<AffinePoint>(jac.size());
    BatchNormalize(jac.data(), jac.size(), t->data());
    return t;
  }();
  return *table;
}

// --- wNAF ---
// Width-w non-adjacent form: digits are zero or odd in
// (-2^(w-1), 2^(w-1)), at most one non-zero digit per w consecutive
// positions. Scratch must hold kWnafMaxLen entries.
constexpr int kWnafMaxLen = 257;

int ComputeWnaf(U256 k, int width, int8_t* naf) {
  const uint64_t mask = (1ULL << width) - 1;
  const int64_t half = 1LL << (width - 1);
  int len = 0;
  while (!k.IsZero()) {
    if ((k.limb[0] & 1) == 0) {
      // Skip the whole run of trailing zeros in one shift.
      int run = k.TrailingZeros();
      for (int i = 0; i < run; ++i) naf[len++] = 0;
      k = k.Shr(run);
    }
    int64_t digit = static_cast<int64_t>(k.limb[0] & mask);
    if (digit >= half) digit -= 1LL << width;
    if (digit >= 0) {
      k = k - U256(static_cast<uint64_t>(digit));
    } else {
      // Scalars here are < n < 2^256 - 2^129, so this add never wraps.
      k = k + U256(static_cast<uint64_t>(-digit));
    }
    naf[len++] = static_cast<int8_t>(digit);
    k = k.Shr(1);
  }
  return len;
}

/// Odd multiples {1, 3, ..., 15} * P, batch-normalized to affine — the
/// per-call table for width-5 wNAF over a variable base.
void OddMultiples15(const AffinePoint& p, AffinePoint out[8]) {
  Jacobian jac[8];
  jac[0] = ToJacobian(p);
  Jacobian twice = JDouble(jac[0]);
  for (int i = 1; i < 8; ++i) jac[i] = JAdd(jac[i - 1], twice);
  BatchNormalize(jac, 8, out);
}

/// Adds wNAF digit `d` (sign-flipped when `flip`) from a table of odd
/// multiples {1, 3, 5, ...} of some base point.
Jacobian AddWnafDigit(Jacobian acc, int d, bool flip,
                      const AffinePoint* odd_multiples) {
  if (d == 0) return acc;
  if (flip) d = -d;
  const AffinePoint& e = odd_multiples[(std::abs(d) - 1) / 2];
  return JAddMixed(acc, d > 0 ? e : NegateAffine(e));
}

// --- Fixed wNAF tables for verification ---
// Odd multiples {1..127} * G and {1..127} * 2^128 * G (width-8 wNAF):
// splitting u1 into 128-bit halves against the 2^128*G table means the
// interleaved loop only runs ~130 doublings for full-width u1.
struct VerifyTables {
  std::array<AffinePoint, 64> g;
  std::array<AffinePoint, 64> g128;
};

const VerifyTables& GetVerifyTables() {
  static const auto* tables = [] {
    std::vector<Jacobian> jac(128);
    Jacobian g{kGx, kGy, U256::One()};
    Jacobian twice = JDouble(g);
    jac[0] = g;
    for (int i = 1; i < 64; ++i) jac[i] = JAdd(jac[i - 1], twice);
    Jacobian g128 = g;
    for (int i = 0; i < 128; ++i) g128 = JDouble(g128);
    jac[64] = g128;
    twice = JDouble(g128);
    for (int i = 65; i < 128; ++i) jac[i] = JAdd(jac[i - 1], twice);
    auto* t = new VerifyTables();
    std::vector<AffinePoint> affine(128);
    BatchNormalize(jac.data(), 128, affine.data());
    std::copy(affine.begin(), affine.begin() + 64, t->g.begin());
    std::copy(affine.begin() + 64, affine.end(), t->g128.begin());
    return t;
  }();
  return *tables;
}

/// (k*g1 or k*g2) >> 384, rounded: the projection step of the GLV split.
U256 MulShift384Round(const U256& a, const U256& b) {
  U512 prod = U256::MulWide(a, b);
  U256 shifted(prod.limb[6], prod.limb[7], 0, 0);
  if (prod.limb[5] >> 63) shifted = shifted + U256::One();
  return shifted;
}

void SplitScalarGlvImpl(const U256& k_in, U256* k1, bool* neg1, U256* k2,
                        bool* neg2) {
  U256 k = FnReduce(k_in);
  U256 c1 = MulShift384Round(k, kG1);
  U256 c2 = MulShift384Round(k, kG2);
  U256 r2 = FnAdd(FnMul(c1, kMinusB1), FnMul(c2, kMinusB2));
  U256 r1 = FnSub(k, FnMul(r2, kLambda));
  *neg1 = false;
  *neg2 = false;
  // The true components are signed values of magnitude < ~2^128; a
  // residue near n is a negative component.
  if (r1.BitLength() > 132) {
    r1 = kN - r1;
    *neg1 = true;
  }
  if (r2.BitLength() > 132) {
    r2 = kN - r2;
    *neg2 = true;
  }
  *k1 = r1;
  *k2 = r2;
}

// --- Fast backend entry points ---

void FastScalarMulBaseAccum(const U256& k_reduced, Jacobian* acc) {
  const auto& table = CombTable();
  Jacobian result = Jacobian::Infinity();
  for (int w = 0; w < kCombWindows; ++w) {
    unsigned digit = static_cast<unsigned>(
        (k_reduced.limb[w / 8] >> ((w % 8) * 8)) & 0xFF);
    if (digit != 0) {
      result = JAddMixed(result, table[static_cast<size_t>(w) * 255 +
                                       digit - 1]);
    }
  }
  *acc = result;
}

AffinePoint FastScalarMulBase(const U256& k_in) {
  U256 k = FnReduce(k_in);
  if (k.IsZero()) return AffinePoint::Infinity();
  Jacobian acc;
  FastScalarMulBaseAccum(k, &acc);
  return FromJacobian(acc);
}

AffinePoint FastScalarMul(const AffinePoint& p, const U256& k_in) {
  U256 k = FnReduce(k_in);
  if (k.IsZero() || p.infinity) return AffinePoint::Infinity();
  AffinePoint odd[8];
  OddMultiples15(p, odd);
  int8_t naf[kWnafMaxLen];
  int len = ComputeWnaf(k, 5, naf);
  Jacobian acc = Jacobian::Infinity();
  for (int i = len - 1; i >= 0; --i) {
    acc = JDouble(acc);
    acc = AddWnafDigit(acc, naf[i], false, odd);
  }
  return FromJacobian(acc);
}

AffinePoint FastDoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                    const U256& u2) {
  U256 a = FnReduce(u1);
  U256 b = FnReduce(u2);
  if (p.infinity || b.IsZero()) return FastScalarMulBase(a);

  // u1 split into 128-bit halves (tables for G and 2^128*G); u2 split
  // via the GLV endomorphism into two half-width scalars against P and
  // phi(P) = (beta*x, y).
  U256 a_lo(a.limb[0], a.limb[1], 0, 0);
  U256 a_hi(a.limb[2], a.limb[3], 0, 0);
  U256 k1, k2;
  bool neg1 = false, neg2 = false;
  SplitScalarGlvImpl(b, &k1, &neg1, &k2, &neg2);

  AffinePoint p_odd[8];
  OddMultiples15(p, p_odd);
  AffinePoint phi_odd[8];
  for (int i = 0; i < 8; ++i) {
    phi_odd[i].x = FpMul(p_odd[i].x, kBeta);
    phi_odd[i].y = p_odd[i].y;
    phi_odd[i].infinity = false;
  }

  const VerifyTables& fixed = GetVerifyTables();
  int8_t naf_alo[kWnafMaxLen], naf_ahi[kWnafMaxLen];
  int8_t naf_k1[kWnafMaxLen], naf_k2[kWnafMaxLen];
  int len_alo = ComputeWnaf(a_lo, 8, naf_alo);
  int len_ahi = ComputeWnaf(a_hi, 8, naf_ahi);
  int len_k1 = ComputeWnaf(k1, 5, naf_k1);
  int len_k2 = ComputeWnaf(k2, 5, naf_k2);
  int len = std::max({len_alo, len_ahi, len_k1, len_k2});

  Jacobian acc = Jacobian::Infinity();
  for (int i = len - 1; i >= 0; --i) {
    acc = JDouble(acc);
    if (i < len_k1) acc = AddWnafDigit(acc, naf_k1[i], neg1, p_odd);
    if (i < len_k2) acc = AddWnafDigit(acc, naf_k2[i], neg2, phi_odd);
    if (i < len_ahi) {
      acc = AddWnafDigit(acc, naf_ahi[i], false, fixed.g128.data());
    }
    if (i < len_alo) {
      acc = AddWnafDigit(acc, naf_alo[i], false, fixed.g.data());
    }
  }
  return FromJacobian(acc);
}

}  // namespace

const U256& FieldPrime() {
  static const U256 p = kP;
  return p;
}
const U256& GroupOrder() {
  static const U256 n = kN;
  return n;
}
const U256& FieldC() {
  static const U256 c = kCp;
  return c;
}
const U256& OrderC() {
  static const U256 c = kCn;
  return c;
}

U256 FpAdd(const U256& a, const U256& b) { return FpAddInl(a, b); }
U256 FpSub(const U256& a, const U256& b) { return FpSubInl(a, b); }

U256 FpMul(const U256& a, const U256& b) { return FpMulInl(a, b); }

U256 FpSqr(const U256& a) { return FpMulInl(a, a); }

U256 FpPow(const U256& a, const U256& e) {
  U256 result = U256::One();
  int bits = e.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = FpSqr(result);
    if (e.Bit(i)) result = FpMul(result, a);
  }
  return result;
}

U256 FpInv(const U256& a) {
  U256 r = a >= kP ? U256::Mod(a, kP) : a;
  if (r.IsZero()) DieZeroInverse("FpInv");
  return BinInvMod(r, kP);
}

void FpInvMany(const U256* xs, size_t n, U256* out) {
  InvManyImpl(xs, n, out, kP, &FpMul, "FpInvMany");
}

Result<U256> FpSqrt(const U256& a) {
  // p = 3 (mod 4): sqrt(a) = a^((p+1)/4) when a is a quadratic residue.
  // (p+1) wraps mod 2^256, so compute (p-3)/4 + 1 == (p+1)/4 instead.
  U256 exp = (kP - U256(3)).Shr(2) + U256(1);
  U256 root = FpPow(a, exp);
  if (FpSqr(root) != U256::Mod(a, kP)) {
    return Status::Verification("no square root exists mod p");
  }
  return root;
}

U256 FnAdd(const U256& a, const U256& b) { return AddMod(a, b, kN); }
U256 FnSub(const U256& a, const U256& b) { return SubMod(a, b, kN); }

U256 FnMul(const U256& a, const U256& b) {
  return ReduceWide(U256::MulWide(a, b), kN, kCn);
}

U256 FnInv(const U256& a) {
  U256 r = a >= kN ? U256::Mod(a, kN) : a;
  if (r.IsZero()) DieZeroInverse("FnInv");
  return BinInvMod(r, kN);
}

void FnInvMany(const U256* xs, size_t n, U256* out) {
  InvManyImpl(xs, n, out, kN, &FnMul, "FnInvMany");
}

U256 FnReduce(const U256& a) {
  U256 r = a;
  while (r >= kN) r = r - kN;
  return r;
}

const AffinePoint& Generator() {
  static const AffinePoint g = [] {
    AffinePoint p;
    p.x = kGx;
    p.y = kGy;
    p.infinity = false;
    return p;
  }();
  return g;
}

bool IsOnCurve(const AffinePoint& p) {
  if (p.infinity) return true;
  if (p.x >= kP || p.y >= kP) return false;
  U256 lhs = FpSqr(p.y);
  U256 rhs = FpAdd(FpMul(FpSqr(p.x), p.x), kCurveB);
  return lhs == rhs;
}

AffinePoint Add(const AffinePoint& a, const AffinePoint& b) {
  return FromJacobian(JAdd(ToJacobian(a), ToJacobian(b)));
}

AffinePoint Double(const AffinePoint& a) {
  return FromJacobian(JDouble(ToJacobian(a)));
}

AffinePoint Negate(const AffinePoint& a) { return NegateAffine(a); }

namespace reference {

AffinePoint ScalarMul(const AffinePoint& p, const U256& k_in) {
  U256 k = FnReduce(k_in);
  if (k.IsZero() || p.infinity) return AffinePoint::Infinity();
  Jacobian base = ToJacobian(p);
  Jacobian result = Jacobian::Infinity();
  int bits = k.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = JDouble(result);
    if (k.Bit(i)) result = JAdd(result, base);
  }
  return FromJacobian(result);
}

AffinePoint ScalarMulBase(const U256& k) {
  return reference::ScalarMul(Generator(), k);
}

AffinePoint DoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                const U256& u2) {
  // Plain bit-interleaved Shamir: one shared doubling chain, adds from
  // {G, P, G+P} per bit pair.
  Jacobian g = ToJacobian(Generator());
  Jacobian q = ToJacobian(p);
  Jacobian sum = JAdd(g, q);
  Jacobian result = Jacobian::Infinity();
  U256 a = FnReduce(u1);
  U256 b = FnReduce(u2);
  int bits = std::max(a.BitLength(), b.BitLength());
  for (int i = bits - 1; i >= 0; --i) {
    result = JDouble(result);
    bool ba = a.Bit(i);
    bool bb = b.Bit(i);
    if (ba && bb) {
      result = JAdd(result, sum);
    } else if (ba) {
      result = JAdd(result, g);
    } else if (bb) {
      result = JAdd(result, q);
    }
  }
  return FromJacobian(result);
}

}  // namespace reference

namespace internal {

void SplitScalarGlv(const U256& k, U256* k1, bool* neg1, U256* k2,
                    bool* neg2) {
  SplitScalarGlvImpl(k, k1, neg1, k2, neg2);
}

const U256& GlvLambda() {
  static const U256 l = kLambda;
  return l;
}

const U256& GlvBeta() {
  static const U256 b = kBeta;
  return b;
}

}  // namespace internal

AffinePoint ScalarMul(const AffinePoint& p, const U256& k) {
  if (ActiveEcBackend() == EcBackend::kReference) {
    return reference::ScalarMul(p, k);
  }
  return FastScalarMul(p, k);
}

AffinePoint ScalarMulBase(const U256& k) {
  if (ActiveEcBackend() == EcBackend::kReference) {
    return reference::ScalarMulBase(k);
  }
  return FastScalarMulBase(k);
}

void ScalarMulBaseMany(const U256* ks, size_t n, AffinePoint* out) {
  if (n == 0) return;
  if (ActiveEcBackend() == EcBackend::kReference) {
    for (size_t i = 0; i < n; ++i) out[i] = reference::ScalarMulBase(ks[i]);
    return;
  }
  // Accumulate every product in Jacobian form, then normalize the whole
  // batch with one inversion.
  std::vector<Jacobian> accs(n, Jacobian::Infinity());
  for (size_t i = 0; i < n; ++i) {
    U256 k = FnReduce(ks[i]);
    if (!k.IsZero()) FastScalarMulBaseAccum(k, &accs[i]);
  }
  BatchNormalize(accs.data(), n, out);
}

AffinePoint DoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                const U256& u2) {
  if (ActiveEcBackend() == EcBackend::kReference) {
    return reference::DoubleScalarMulBase(u1, p, u2);
  }
  return FastDoubleScalarMulBase(u1, p, u2);
}

Result<AffinePoint> LiftX(const U256& x, bool odd_y) {
  if (x >= kP) return Status::InvalidArgument("x not in field");
  U256 rhs = FpAdd(FpMul(FpSqr(x), x), kCurveB);
  WEDGE_ASSIGN_OR_RETURN(U256 y, FpSqrt(rhs));
  if (y.Bit(0) != odd_y) y = FpSub(U256::Zero(), y);
  AffinePoint p;
  p.x = x;
  p.y = y;
  p.infinity = false;
  return p;
}

Result<Bytes> EncodeUncompressed(const AffinePoint& p) {
  if (p.infinity) return Status::InvalidArgument("cannot encode identity");
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  Append(out, p.x.ToBytesBE());
  Append(out, p.y.ToBytesBE());
  return out;
}

Result<AffinePoint> DecodeUncompressed(const Bytes& b) {
  if (b.size() != 65 || b[0] != 0x04) {
    return Status::InvalidArgument("bad uncompressed point encoding");
  }
  Bytes xb(b.begin() + 1, b.begin() + 33);
  Bytes yb(b.begin() + 33, b.end());
  WEDGE_ASSIGN_OR_RETURN(U256 x, U256::FromBytesBE(xb));
  WEDGE_ASSIGN_OR_RETURN(U256 y, U256::FromBytesBE(yb));
  AffinePoint p;
  p.x = x;
  p.y = y;
  p.infinity = false;
  if (!IsOnCurve(p)) return Status::Verification("point not on curve");
  return p;
}

Result<Bytes> EncodeCompressed(const AffinePoint& p) {
  if (p.infinity) return Status::InvalidArgument("cannot encode identity");
  Bytes out;
  out.reserve(33);
  out.push_back(p.y.Bit(0) ? 0x03 : 0x02);
  Append(out, p.x.ToBytesBE());
  return out;
}

Result<AffinePoint> DecodeCompressed(const Bytes& b) {
  if (b.size() != 33 || (b[0] != 0x02 && b[0] != 0x03)) {
    return Status::InvalidArgument("bad compressed point encoding");
  }
  Bytes xb(b.begin() + 1, b.end());
  WEDGE_ASSIGN_OR_RETURN(U256 x, U256::FromBytesBE(xb));
  return LiftX(x, b[0] == 0x03);
}

}  // namespace secp256k1
}  // namespace wedge
