#include "crypto/secp256k1.h"

#include <algorithm>
#include <array>

namespace wedge {
namespace secp256k1 {

namespace {

// p = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE FFFFFC2F
constexpr U256 kP(0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL,
                  0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL);
// 2^256 - p = 2^32 + 977 = 0x1000003D1.
constexpr U256 kCp(0x00000001000003D1ULL, 0, 0, 0);
// n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
constexpr U256 kN(0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL,
                  0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL);
// 2^256 - n = 0x14551231950B75FC4402DA1732FC9BEBF.
constexpr U256 kCn(0x402DA1732FC9BEBFULL, 0x4551231950B75FC4ULL, 0x1ULL, 0);

constexpr U256 kGx(0x59F2815B16F81798ULL, 0x029BFCDB2DCE28D9ULL,
                   0x55A06295CE870B07ULL, 0x79BE667EF9DCBBACULL);
constexpr U256 kGy(0x9C47D08FFB10D4B8ULL, 0xFD17B448A6855419ULL,
                   0x5DA4FBFC0E1108A8ULL, 0x483ADA7726A3C465ULL);

constexpr U256 kCurveB(7);

/// Jacobian coordinates: (X, Y, Z) represents (X/Z^2, Y/Z^3).
struct Jacobian {
  U256 x;
  U256 y;
  U256 z;  // z == 0 marks the identity.

  bool IsInfinity() const { return z.IsZero(); }
  static Jacobian Infinity() { return Jacobian{U256::One(), U256::One(), U256::Zero()}; }
};

Jacobian ToJacobian(const AffinePoint& p) {
  if (p.infinity) return Jacobian::Infinity();
  return Jacobian{p.x, p.y, U256::One()};
}

AffinePoint FromJacobian(const Jacobian& j) {
  if (j.IsInfinity()) return AffinePoint::Infinity();
  U256 zinv = FpInv(j.z);
  U256 zinv2 = FpSqr(zinv);
  U256 zinv3 = FpMul(zinv2, zinv);
  AffinePoint out;
  out.x = FpMul(j.x, zinv2);
  out.y = FpMul(j.y, zinv3);
  out.infinity = false;
  return out;
}

Jacobian JDouble(const Jacobian& p) {
  if (p.IsInfinity() || p.y.IsZero()) return Jacobian::Infinity();
  // Standard dbl-2007-bl simplified for a = 0.
  U256 a = FpSqr(p.x);                       // X^2
  U256 b = FpSqr(p.y);                       // Y^2
  U256 c = FpSqr(b);                         // Y^4
  U256 xb = FpSqr(FpAdd(p.x, b));            // (X+B)^2
  U256 d = FpMul(U256(2), FpSub(xb, FpAdd(a, c)));  // 2((X+B)^2 - A - C)
  U256 e = FpMul(U256(3), a);                // 3A
  U256 f = FpSqr(e);
  Jacobian out;
  out.x = FpSub(f, FpMul(U256(2), d));
  out.y = FpSub(FpMul(e, FpSub(d, out.x)), FpMul(U256(8), c));
  out.z = FpMul(FpMul(U256(2), p.y), p.z);
  return out;
}

Jacobian JAdd(const Jacobian& p, const Jacobian& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  // add-2007-bl.
  U256 z1z1 = FpSqr(p.z);
  U256 z2z2 = FpSqr(q.z);
  U256 u1 = FpMul(p.x, z2z2);
  U256 u2 = FpMul(q.x, z1z1);
  U256 s1 = FpMul(FpMul(p.y, q.z), z2z2);
  U256 s2 = FpMul(FpMul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return JDouble(p);
    return Jacobian::Infinity();
  }
  U256 h = FpSub(u2, u1);
  U256 i = FpSqr(FpMul(U256(2), h));
  U256 j = FpMul(h, i);
  U256 r = FpMul(U256(2), FpSub(s2, s1));
  U256 v = FpMul(u1, i);
  Jacobian out;
  out.x = FpSub(FpSub(FpSqr(r), j), FpMul(U256(2), v));
  out.y = FpSub(FpMul(r, FpSub(v, out.x)), FpMul(FpMul(U256(2), s1), j));
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H == 2*Z1*Z2*H.
  out.z = FpMul(FpSub(FpSqr(FpAdd(p.z, q.z)), FpAdd(z1z1, z2z2)), h);
  return out;
}

Jacobian JScalarMul(const Jacobian& p, const U256& k_in) {
  U256 k = FnReduce(k_in);
  Jacobian result = Jacobian::Infinity();
  if (k.IsZero() || p.IsInfinity()) return result;
  // 4-bit fixed window.
  std::array<Jacobian, 16> table;
  table[0] = Jacobian::Infinity();
  table[1] = p;
  for (int i = 2; i < 16; ++i) table[i] = JAdd(table[i - 1], p);
  int bits = k.BitLength();
  int windows = (bits + 3) / 4;
  for (int w = windows - 1; w >= 0; --w) {
    for (int d = 0; d < 4; ++d) result = JDouble(result);
    int shift = w * 4;
    unsigned digit = static_cast<unsigned>((k.limb[shift / 64] >> (shift % 64)) & 0xF);
    if (digit != 0) result = JAdd(result, table[digit]);
  }
  return result;
}

/// Precomputed multiples of G for the fixed-base path: table[w][d] = d * 16^w * G
/// for 64 windows of 4 bits.
const std::array<std::array<Jacobian, 16>, 64>& BaseTable() {
  static const auto* table = [] {
    auto* t = new std::array<std::array<Jacobian, 16>, 64>();
    Jacobian window_base = ToJacobian(Generator());
    for (int w = 0; w < 64; ++w) {
      (*t)[w][0] = Jacobian::Infinity();
      (*t)[w][1] = window_base;
      for (int d = 2; d < 16; ++d) {
        (*t)[w][d] = JAdd((*t)[w][d - 1], window_base);
      }
      // Advance window base by 16x.
      Jacobian next = (*t)[w][15];
      next = JAdd(next, window_base);
      window_base = next;
    }
    return t;
  }();
  return *table;
}

}  // namespace

const U256& FieldPrime() {
  static const U256 p = kP;
  return p;
}
const U256& GroupOrder() {
  static const U256 n = kN;
  return n;
}
const U256& FieldC() {
  static const U256 c = kCp;
  return c;
}
const U256& OrderC() {
  static const U256 c = kCn;
  return c;
}

U256 FpAdd(const U256& a, const U256& b) { return AddMod(a, b, kP); }
U256 FpSub(const U256& a, const U256& b) { return SubMod(a, b, kP); }

U256 FpMul(const U256& a, const U256& b) {
  return ReduceWide(U256::MulWide(a, b), kP, kCp);
}

U256 FpSqr(const U256& a) { return FpMul(a, a); }

U256 FpPow(const U256& a, const U256& e) {
  U256 result = U256::One();
  int bits = e.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = FpSqr(result);
    if (e.Bit(i)) result = FpMul(result, a);
  }
  return result;
}

U256 FpInv(const U256& a) { return FpPow(a, kP - U256(2)); }

Result<U256> FpSqrt(const U256& a) {
  // p = 3 (mod 4): sqrt(a) = a^((p+1)/4) when a is a quadratic residue.
  // (p+1) wraps mod 2^256, so compute (p-3)/4 + 1 == (p+1)/4 instead.
  U256 exp = (kP - U256(3)).Shr(2) + U256(1);
  U256 root = FpPow(a, exp);
  if (FpSqr(root) != U256::Mod(a, kP)) {
    return Status::Verification("no square root exists mod p");
  }
  return root;
}

U256 FnAdd(const U256& a, const U256& b) { return AddMod(a, b, kN); }
U256 FnSub(const U256& a, const U256& b) { return SubMod(a, b, kN); }

U256 FnMul(const U256& a, const U256& b) {
  return ReduceWide(U256::MulWide(a, b), kN, kCn);
}

U256 FnInv(const U256& a) {
  // Fermat over the fast multiplier.
  U256 result = U256::One();
  U256 e = kN - U256(2);
  int bits = e.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = FnMul(result, result);
    if (e.Bit(i)) result = FnMul(result, a);
  }
  return result;
}

U256 FnReduce(const U256& a) {
  U256 r = a;
  while (r >= kN) r = r - kN;
  return r;
}

const AffinePoint& Generator() {
  static const AffinePoint g = [] {
    AffinePoint p;
    p.x = kGx;
    p.y = kGy;
    p.infinity = false;
    return p;
  }();
  return g;
}

bool IsOnCurve(const AffinePoint& p) {
  if (p.infinity) return true;
  if (p.x >= kP || p.y >= kP) return false;
  U256 lhs = FpSqr(p.y);
  U256 rhs = FpAdd(FpMul(FpSqr(p.x), p.x), kCurveB);
  return lhs == rhs;
}

AffinePoint Add(const AffinePoint& a, const AffinePoint& b) {
  return FromJacobian(JAdd(ToJacobian(a), ToJacobian(b)));
}

AffinePoint Double(const AffinePoint& a) {
  return FromJacobian(JDouble(ToJacobian(a)));
}

AffinePoint Negate(const AffinePoint& a) {
  if (a.infinity) return a;
  AffinePoint out = a;
  out.y = FpSub(U256::Zero(), a.y);
  return out;
}

AffinePoint ScalarMul(const AffinePoint& p, const U256& k) {
  return FromJacobian(JScalarMul(ToJacobian(p), k));
}

AffinePoint ScalarMulBase(const U256& k_in) {
  U256 k = FnReduce(k_in);
  if (k.IsZero()) return AffinePoint::Infinity();
  const auto& table = BaseTable();
  Jacobian result = Jacobian::Infinity();
  for (int w = 0; w < 64; ++w) {
    int shift = w * 4;
    unsigned digit = static_cast<unsigned>((k.limb[shift / 64] >> (shift % 64)) & 0xF);
    if (digit != 0) result = JAdd(result, table[w][digit]);
  }
  return FromJacobian(result);
}

AffinePoint DoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                const U256& u2) {
  // Shamir's trick: interleave doublings for u1*G + u2*P.
  Jacobian g = ToJacobian(Generator());
  Jacobian q = ToJacobian(p);
  Jacobian sum = JAdd(g, q);
  Jacobian result = Jacobian::Infinity();
  U256 a = FnReduce(u1);
  U256 b = FnReduce(u2);
  int bits = std::max(a.BitLength(), b.BitLength());
  for (int i = bits - 1; i >= 0; --i) {
    result = JDouble(result);
    bool ba = a.Bit(i);
    bool bb = b.Bit(i);
    if (ba && bb) {
      result = JAdd(result, sum);
    } else if (ba) {
      result = JAdd(result, g);
    } else if (bb) {
      result = JAdd(result, q);
    }
  }
  return FromJacobian(result);
}

Result<AffinePoint> LiftX(const U256& x, bool odd_y) {
  if (x >= kP) return Status::InvalidArgument("x not in field");
  U256 rhs = FpAdd(FpMul(FpSqr(x), x), kCurveB);
  WEDGE_ASSIGN_OR_RETURN(U256 y, FpSqrt(rhs));
  if (y.Bit(0) != odd_y) y = FpSub(U256::Zero(), y);
  AffinePoint p;
  p.x = x;
  p.y = y;
  p.infinity = false;
  return p;
}

Result<Bytes> EncodeUncompressed(const AffinePoint& p) {
  if (p.infinity) return Status::InvalidArgument("cannot encode identity");
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  Append(out, p.x.ToBytesBE());
  Append(out, p.y.ToBytesBE());
  return out;
}

Result<AffinePoint> DecodeUncompressed(const Bytes& b) {
  if (b.size() != 65 || b[0] != 0x04) {
    return Status::InvalidArgument("bad uncompressed point encoding");
  }
  Bytes xb(b.begin() + 1, b.begin() + 33);
  Bytes yb(b.begin() + 33, b.end());
  WEDGE_ASSIGN_OR_RETURN(U256 x, U256::FromBytesBE(xb));
  WEDGE_ASSIGN_OR_RETURN(U256 y, U256::FromBytesBE(yb));
  AffinePoint p;
  p.x = x;
  p.y = y;
  p.infinity = false;
  if (!IsOnCurve(p)) return Status::Verification("point not on curve");
  return p;
}

Result<Bytes> EncodeCompressed(const AffinePoint& p) {
  if (p.infinity) return Status::InvalidArgument("cannot encode identity");
  Bytes out;
  out.reserve(33);
  out.push_back(p.y.Bit(0) ? 0x03 : 0x02);
  Append(out, p.x.ToBytesBE());
  return out;
}

Result<AffinePoint> DecodeCompressed(const Bytes& b) {
  if (b.size() != 33 || (b[0] != 0x02 && b[0] != 0x03)) {
    return Status::InvalidArgument("bad compressed point encoding");
  }
  Bytes xb(b.begin() + 1, b.end());
  WEDGE_ASSIGN_OR_RETURN(U256 x, U256::FromBytesBE(xb));
  return LiftX(x, b[0] == 0x03);
}

}  // namespace secp256k1
}  // namespace wedge
