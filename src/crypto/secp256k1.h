#ifndef WEDGEBLOCK_CRYPTO_SECP256K1_H_
#define WEDGEBLOCK_CRYPTO_SECP256K1_H_

#include "crypto/u256.h"

namespace wedge {

/// secp256k1 curve constants and arithmetic: y^2 = x^3 + 7 over F_p.
/// This is the curve used by Ethereum accounts and signatures; the
/// Punishment smart contract's recoverSigner relies on it (Algorithm 2).
namespace secp256k1 {

/// Field prime p = 2^256 - 2^32 - 977.
const U256& FieldPrime();
/// Group order n.
const U256& GroupOrder();
/// 2^256 - p (used by the fast Solinas reduction).
const U256& FieldC();
/// 2^256 - n.
const U256& OrderC();

/// --- Field arithmetic mod p (fast reduction) ---
U256 FpAdd(const U256& a, const U256& b);
U256 FpSub(const U256& a, const U256& b);
U256 FpMul(const U256& a, const U256& b);
U256 FpSqr(const U256& a);
/// a^e mod p (square-and-multiply over the fast multiplier).
U256 FpPow(const U256& a, const U256& e);
/// Inverse mod p; requires a != 0.
U256 FpInv(const U256& a);
/// Square root mod p (p = 3 mod 4). Returns error if no root exists.
Result<U256> FpSqrt(const U256& a);

/// --- Scalar arithmetic mod n ---
U256 FnAdd(const U256& a, const U256& b);
U256 FnSub(const U256& a, const U256& b);
U256 FnMul(const U256& a, const U256& b);
U256 FnInv(const U256& a);
/// Reduces an arbitrary 256-bit value mod n.
U256 FnReduce(const U256& a);

/// Curve point in affine coordinates. `infinity` marks the identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint Infinity() { return AffinePoint{}; }

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// The generator point G.
const AffinePoint& Generator();

/// True iff the point satisfies the curve equation (or is the identity).
bool IsOnCurve(const AffinePoint& p);

/// Point addition / doubling / negation (affine API; internally Jacobian).
AffinePoint Add(const AffinePoint& a, const AffinePoint& b);
AffinePoint Double(const AffinePoint& a);
AffinePoint Negate(const AffinePoint& a);

/// k * P. `k` is taken mod n. Constant-time is NOT a goal of this
/// simulation-oriented implementation.
AffinePoint ScalarMul(const AffinePoint& p, const U256& k);

/// k * G using a precomputed window table for the generator.
AffinePoint ScalarMulBase(const U256& k);

/// u1*G + u2*P in one pass (Shamir's trick); used by ECDSA verification.
AffinePoint DoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                const U256& u2);

/// Lifts an x-coordinate to a point with the requested y parity.
Result<AffinePoint> LiftX(const U256& x, bool odd_y);

/// 65-byte uncompressed encoding: 0x04 || X || Y. Identity not encodable.
Result<Bytes> EncodeUncompressed(const AffinePoint& p);
Result<AffinePoint> DecodeUncompressed(const Bytes& b);

/// 33-byte compressed encoding: 0x02/0x03 || X.
Result<Bytes> EncodeCompressed(const AffinePoint& p);
Result<AffinePoint> DecodeCompressed(const Bytes& b);

}  // namespace secp256k1
}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_SECP256K1_H_
