#ifndef WEDGEBLOCK_CRYPTO_SECP256K1_H_
#define WEDGEBLOCK_CRYPTO_SECP256K1_H_

#include "crypto/u256.h"

namespace wedge {

/// secp256k1 curve constants and arithmetic: y^2 = x^3 + 7 over F_p.
/// This is the curve used by Ethereum accounts and signatures; the
/// Punishment smart contract's recoverSigner relies on it (Algorithm 2).
namespace secp256k1 {

/// Field prime p = 2^256 - 2^32 - 977.
const U256& FieldPrime();
/// Group order n.
const U256& GroupOrder();
/// 2^256 - p (used by the fast Solinas reduction).
const U256& FieldC();
/// 2^256 - n.
const U256& OrderC();

/// --- Field arithmetic mod p (fast reduction) ---
U256 FpAdd(const U256& a, const U256& b);
U256 FpSub(const U256& a, const U256& b);
U256 FpMul(const U256& a, const U256& b);
U256 FpSqr(const U256& a);
/// a^e mod p (square-and-multiply over the fast multiplier).
U256 FpPow(const U256& a, const U256& e);
/// Inverse mod p (variable-time binary extended gcd). Zero has no
/// inverse: a zero input aborts the process (it is always a caller bug,
/// never data-dependent — see DESIGN.md "EC fast path").
U256 FpInv(const U256& a);
/// Batch inversion mod p: out[i] = xs[i]^-1 via Montgomery's
/// simultaneous-inversion trick (one FpInv + 3 muls per element).
/// `out` may alias `xs`. Aborts on any zero input, like FpInv.
void FpInvMany(const U256* xs, size_t n, U256* out);
/// Square root mod p (p = 3 mod 4). Returns error if no root exists.
Result<U256> FpSqrt(const U256& a);

/// --- Scalar arithmetic mod n ---
U256 FnAdd(const U256& a, const U256& b);
U256 FnSub(const U256& a, const U256& b);
U256 FnMul(const U256& a, const U256& b);
/// Inverse mod n; aborts on zero input (see FpInv).
U256 FnInv(const U256& a);
/// Batch inversion mod n (see FpInvMany). `out` may alias `xs`.
void FnInvMany(const U256* xs, size_t n, U256* out);
/// Reduces an arbitrary 256-bit value mod n.
U256 FnReduce(const U256& a);

/// Curve point in affine coordinates. `infinity` marks the identity.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint Infinity() { return AffinePoint{}; }

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }
};

/// The generator point G.
const AffinePoint& Generator();

/// True iff the point satisfies the curve equation (or is the identity).
bool IsOnCurve(const AffinePoint& p);

/// Point addition / doubling / negation (affine API; internally Jacobian).
AffinePoint Add(const AffinePoint& a, const AffinePoint& b);
AffinePoint Double(const AffinePoint& a);
AffinePoint Negate(const AffinePoint& a);

/// k * P (width-5 wNAF on the fast backend). `k` is ALWAYS reduced mod n
/// first, so ScalarMul(P, n + 5) == ScalarMul(P, 5) — callers comparing
/// scalars for equality must compare them mod n, not as raw 256-bit
/// values (pinned by tests/ec_equiv_test.cc). Constant-time is NOT a
/// goal of this simulation-oriented implementation.
AffinePoint ScalarMul(const AffinePoint& p, const U256& k);

/// k * G via a precomputed 8-bit comb table for the generator (lazily
/// built, batch-normalized to affine). `k` is reduced mod n like
/// ScalarMul.
AffinePoint ScalarMulBase(const U256& k);

/// Batch fixed-base multiplication: out[i] = ks[i] * G, amortizing the
/// Jacobian->affine normalization across the batch (one field inversion
/// total instead of one per point). Mirrors the Sha256Many batch shape.
void ScalarMulBaseMany(const U256* ks, size_t n, AffinePoint* out);

/// u1*G + u2*P in one interleaved pass (Shamir's trick); the fast
/// backend splits u2 via the GLV endomorphism into two half-width
/// scalars and u1 into 128-bit halves against a 2^128*G table, so only
/// ~130 doublings are needed. Used by ECDSA verification and recovery.
AffinePoint DoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                const U256& u2);

/// Naive double-and-add implementations with no precomputation: the
/// equivalence oracles for the fast paths above, and the code the
/// reference backend (WEDGE_EC_BACKEND=reference or
/// -DWEDGE_DISABLE_ECPRECOMP=ON) routes every public entry point to.
namespace reference {
AffinePoint ScalarMul(const AffinePoint& p, const U256& k);
AffinePoint ScalarMulBase(const U256& k);
AffinePoint DoubleScalarMulBase(const U256& u1, const AffinePoint& p,
                                const U256& u2);
}  // namespace reference

/// Test hooks for the GLV decomposition (see DESIGN.md "EC fast path").
namespace internal {
/// Splits FnReduce(k) as k1 + k2*lambda (mod n) where the returned
/// magnitudes are < 2^129 and neg1/neg2 carry the component signs:
/// k == (neg1 ? -k1 : k1) + (neg2 ? -k2 : k2) * lambda (mod n).
void SplitScalarGlv(const U256& k, U256* k1, bool* neg1, U256* k2,
                    bool* neg2);
/// lambda: the cube root of unity mod n with phi(x, y) = (beta*x, y)
/// satisfying phi(P) = lambda*P.
const U256& GlvLambda();
const U256& GlvBeta();
}  // namespace internal

/// Lifts an x-coordinate to a point with the requested y parity.
Result<AffinePoint> LiftX(const U256& x, bool odd_y);

/// 65-byte uncompressed encoding: 0x04 || X || Y. Identity not encodable.
Result<Bytes> EncodeUncompressed(const AffinePoint& p);
Result<AffinePoint> DecodeUncompressed(const Bytes& b);

/// 33-byte compressed encoding: 0x02/0x03 || X.
Result<Bytes> EncodeCompressed(const AffinePoint& p);
Result<AffinePoint> DecodeCompressed(const Bytes& b);

}  // namespace secp256k1
}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_SECP256K1_H_
