#include "crypto/sha256.h"

#include <cstring>

#include "crypto/sha256_dispatch.h"

namespace wedge {

Bytes HashToBytes(const Hash256& h) { return Bytes(h.begin(), h.end()); }

Result<Hash256> HashFromBytes(const Bytes& b) {
  if (b.size() != 32) {
    return Status::InvalidArgument("hash must be 32 bytes");
  }
  Hash256 h;
  std::memcpy(h.data(), b.data(), 32);
  return h;
}

std::string HashToHex(const Hash256& h) { return HexEncode(h.data(), h.size()); }

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buffer_len_ = 0;
  compress_ = ActiveSha256Compress();
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  if (buffer_len_ > 0) {
    size_t fill = std::min(len, 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data, fill);
    buffer_len_ += fill;
    data += fill;
    len -= fill;
    if (buffer_len_ == 64) {
      compress_(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (len >= 64) {
    // Bulk path: hand every whole block to the backend in one call so
    // hardware kernels amortize their setup across the run.
    const size_t blocks = len / 64;
    compress_(state_, data, blocks);
    data += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Hash256 Sha256::Finish() {
  // Build the padding in place: 0x80, zeros to a 56-byte boundary, then
  // the big-endian bit length in the final 8 bytes.
  const uint64_t bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_ + buffer_len_, 0, 64 - buffer_len_);
    compress_(state_, buffer_, 1);
    buffer_len_ = 0;
  }
  std::memset(buffer_ + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  compress_(state_, buffer_, 1);
  buffer_len_ = 0;

  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Hash256 Sha256::Digest(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}

Hash256 Sha256::Digest(const Bytes& data) {
  return Digest(data.data(), data.size());
}

Hash256 Sha256::Digest(std::string_view data) {
  return Digest(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

}  // namespace wedge
