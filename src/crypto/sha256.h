#ifndef WEDGEBLOCK_CRYPTO_SHA256_H_
#define WEDGEBLOCK_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace wedge {

/// A 32-byte hash digest.
using Hash256 = std::array<uint8_t, 32>;

/// Converts a digest to/from the Bytes type used in messages.
Bytes HashToBytes(const Hash256& h);
Result<Hash256> HashFromBytes(const Bytes& b);
std::string HashToHex(const Hash256& h);

/// Incremental SHA-256 (FIPS 180-4). Used for Merkle tree nodes, message
/// digests and RFC 6979 nonce derivation.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view data) {
    Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without Reset().
  Hash256 Finish();

  /// Restores the initial state.
  void Reset();

  /// One-shot convenience.
  static Hash256 Digest(const uint8_t* data, size_t len);
  static Hash256 Digest(const Bytes& data);
  static Hash256 Digest(std::string_view data);

 private:
  /// Backend block-compression entry point, captured from the runtime
  /// dispatcher (see sha256_dispatch.h) at Reset().
  void (*compress_)(uint32_t state[8], const uint8_t* data,
                    size_t blocks) = nullptr;

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_SHA256_H_
