// 8-lane SHA-256 with AVX2: eight independent 64-byte blocks advance in
// lockstep, one message per 32-bit lane of each YMM register. This is a
// straight lane-wise transliteration of the scalar rounds — there is no
// cross-lane traffic except the initial gather of message words — so it
// produces bit-identical digests to the scalar kernel. Used by
// Sha256Many/ManySameLen on CPUs with AVX2 but no SHA-NI.

#include "crypto/sha256_kernels.h"

#if defined(WEDGE_HAVE_SHA256_AVX2)

#include <immintrin.h>

namespace wedge {
namespace internal {

namespace {

inline __m256i Rotr(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}
inline __m256i BigSigma0(__m256i x) {
  return _mm256_xor_si256(Rotr(x, 2), _mm256_xor_si256(Rotr(x, 13), Rotr(x, 22)));
}
inline __m256i BigSigma1(__m256i x) {
  return _mm256_xor_si256(Rotr(x, 6), _mm256_xor_si256(Rotr(x, 11), Rotr(x, 25)));
}
inline __m256i SmallSigma0(__m256i x) {
  return _mm256_xor_si256(Rotr(x, 7),
                          _mm256_xor_si256(Rotr(x, 18), _mm256_srli_epi32(x, 3)));
}
inline __m256i SmallSigma1(__m256i x) {
  return _mm256_xor_si256(Rotr(x, 17),
                          _mm256_xor_si256(Rotr(x, 19), _mm256_srli_epi32(x, 10)));
}
inline __m256i Ch(__m256i e, __m256i f, __m256i g) {
  return _mm256_xor_si256(g, _mm256_and_si256(e, _mm256_xor_si256(f, g)));
}
inline __m256i Maj(__m256i a, __m256i b, __m256i c) {
  return _mm256_or_si256(_mm256_and_si256(a, b),
                         _mm256_and_si256(c, _mm256_or_si256(a, b)));
}

inline uint32_t Load32Be(const uint8_t* p) {
  uint32_t v;
  __builtin_memcpy(&v, p, 4);
  return __builtin_bswap32(v);
}

// Gathers message word `t` from all eight blocks into one vector.
inline __m256i GatherWord(const uint8_t* const blocks[8], int t) {
  return _mm256_set_epi32(
      static_cast<int>(Load32Be(blocks[7] + t * 4)),
      static_cast<int>(Load32Be(blocks[6] + t * 4)),
      static_cast<int>(Load32Be(blocks[5] + t * 4)),
      static_cast<int>(Load32Be(blocks[4] + t * 4)),
      static_cast<int>(Load32Be(blocks[3] + t * 4)),
      static_cast<int>(Load32Be(blocks[2] + t * 4)),
      static_cast<int>(Load32Be(blocks[1] + t * 4)),
      static_cast<int>(Load32Be(blocks[0] + t * 4)));
}

}  // namespace

void Sha256Compress8xAvx2(uint32_t states[8][8],
                          const uint8_t* const blocks[8]) {
  // v[i] holds state word i across the eight lanes (lane l = message l).
  __m256i v[8];
  alignas(32) uint32_t column[8];
  for (int s = 0; s < 8; ++s) {
    for (int l = 0; l < 8; ++l) column[l] = states[l][s];
    v[s] = _mm256_load_si256(reinterpret_cast<const __m256i*>(column));
  }
  const __m256i init[8] = {v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]};

  __m256i w[16];
  for (int t = 0; t < 16; ++t) w[t] = GatherWord(blocks, t);

  for (int i = 0; i < 64; ++i) {
    if (i >= 16) {
      w[i & 15] = _mm256_add_epi32(
          _mm256_add_epi32(w[i & 15], SmallSigma0(w[(i - 15) & 15])),
          _mm256_add_epi32(w[(i - 7) & 15], SmallSigma1(w[(i - 2) & 15])));
    }
    __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(v[7], BigSigma1(v[4])),
        _mm256_add_epi32(_mm256_add_epi32(Ch(v[4], v[5], v[6]),
                                          _mm256_set1_epi32(
                                              static_cast<int>(kSha256K[i]))),
                         w[i & 15]));
    __m256i t2 = _mm256_add_epi32(BigSigma0(v[0]), Maj(v[0], v[1], v[2]));
    v[7] = v[6];
    v[6] = v[5];
    v[5] = v[4];
    v[4] = _mm256_add_epi32(v[3], t1);
    v[3] = v[2];
    v[2] = v[1];
    v[1] = v[0];
    v[0] = _mm256_add_epi32(t1, t2);
  }

  for (int s = 0; s < 8; ++s) {
    __m256i sum = _mm256_add_epi32(v[s], init[s]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(column), sum);
    for (int l = 0; l < 8; ++l) states[l][s] = column[l];
  }
}

}  // namespace internal
}  // namespace wedge

#endif  // WEDGE_HAVE_SHA256_AVX2
