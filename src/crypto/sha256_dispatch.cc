#include "crypto/sha256_dispatch.h"

#include <cstdlib>
#include <cstring>

#include "crypto/sha256_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace wedge {

namespace {

using internal::Sha256CompressScalar;

constexpr uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

#if defined(__x86_64__) || defined(__i386__)
bool CpuHasShaNi() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
  const bool sha = (b & (1u << 29)) != 0;
  if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
  const bool ssse3 = (c & (1u << 9)) != 0;
  const bool sse41 = (c & (1u << 19)) != 0;
  return sha && ssse3 && sse41;
}

bool OsSavesYmm() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid(1, &a, &b, &c, &d)) return false;
  if ((c & (1u << 27)) == 0) return false;  // OSXSAVE
  uint32_t eax, edx;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (eax & 0x6) == 0x6;  // XMM + YMM state enabled
}

bool CpuHasAvx2() {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (!__get_cpuid_count(7, 0, &a, &b, &c, &d)) return false;
  return (b & (1u << 5)) != 0 && OsSavesYmm();
}
#else
bool CpuHasShaNi() { return false; }
bool CpuHasAvx2() { return false; }
#endif

bool BackendCompiledAndSupported(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::kScalar:
      return true;
    case Sha256Backend::kShaNi:
#if defined(WEDGE_HAVE_SHA256_SHANI) && !defined(WEDGE_DISABLE_HWCRYPTO)
      return CpuHasShaNi();
#else
      return false;
#endif
    case Sha256Backend::kAvx2:
#if defined(WEDGE_HAVE_SHA256_AVX2) && !defined(WEDGE_DISABLE_HWCRYPTO)
      return CpuHasAvx2();
#else
      return false;
#endif
  }
  return false;
}

bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

Sha256Backend DetectBackend() {
  if (EnvTruthy("WEDGE_DISABLE_HWCRYPTO")) return Sha256Backend::kScalar;
  if (const char* pick = std::getenv("WEDGE_SHA256_BACKEND")) {
    if (std::strcmp(pick, "scalar") == 0) return Sha256Backend::kScalar;
    if (std::strcmp(pick, "shani") == 0 &&
        BackendCompiledAndSupported(Sha256Backend::kShaNi)) {
      return Sha256Backend::kShaNi;
    }
    if (std::strcmp(pick, "avx2") == 0 &&
        BackendCompiledAndSupported(Sha256Backend::kAvx2)) {
      return Sha256Backend::kAvx2;
    }
    // Unknown or unsupported request: fall through to auto-detection.
  }
  if (BackendCompiledAndSupported(Sha256Backend::kShaNi)) {
    return Sha256Backend::kShaNi;
  }
  if (BackendCompiledAndSupported(Sha256Backend::kAvx2)) {
    return Sha256Backend::kAvx2;
  }
  return Sha256Backend::kScalar;
}

Sha256CompressFn SingleStreamFn(Sha256Backend backend) {
#if defined(WEDGE_HAVE_SHA256_SHANI)
  if (backend == Sha256Backend::kShaNi) return internal::Sha256CompressShaNi;
#endif
  // AVX2 has no single-stream advantage; its win is the 8-lane batch
  // kernel used by Sha256Many below.
  (void)backend;
  return Sha256CompressScalar;
}

struct Dispatch {
  Sha256Backend backend;
  Sha256CompressFn compress;
};

Dispatch& ActiveDispatch() {
  static Dispatch d = [] {
    Sha256Backend b = DetectBackend();
    return Dispatch{b, SingleStreamFn(b)};
  }();
  return d;
}

void StoreDigest(const uint32_t state[8], Hash256* out) {
  for (int i = 0; i < 8; ++i) {
    (*out)[i * 4] = static_cast<uint8_t>(state[i] >> 24);
    (*out)[i * 4 + 1] = static_cast<uint8_t>(state[i] >> 16);
    (*out)[i * 4 + 2] = static_cast<uint8_t>(state[i] >> 8);
    (*out)[i * 4 + 3] = static_cast<uint8_t>(state[i]);
  }
}

// Builds the padding tail for a `len`-byte message whose last partial
// block starts at msg + (len/64)*64. Returns the tail block count (1 or
// 2); `tail` must hold 128 bytes.
size_t BuildTail(const uint8_t* msg, size_t len, uint8_t tail[128]) {
  const size_t rem = len % 64;
  const size_t tail_blocks = (rem >= 56) ? 2 : 1;
  std::memset(tail, 0, 128);
  if (rem > 0) std::memcpy(tail, msg + (len - rem), rem);
  tail[rem] = 0x80;
  const uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  uint8_t* p = tail + tail_blocks * 64 - 8;
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  return tail_blocks;
}

void OneShot(Sha256CompressFn compress, const uint8_t* msg, size_t len,
             Hash256* out) {
  uint32_t state[8];
  std::memcpy(state, kIv, sizeof(state));
  const size_t full = len / 64;
  if (full > 0) compress(state, msg, full);
  uint8_t tail[128];
  const size_t tail_blocks = BuildTail(msg, len, tail);
  compress(state, tail, tail_blocks);
  StoreDigest(state, out);
}

// Lane-parallel same-length hashing. L is 4 (scalar interleaved) or 8
// (AVX2). CompressL advances all L states by one block.
template <size_t L, typename CompressL>
void ManySameLenLanes(const uint8_t* const* msgs, size_t len, size_t n,
                      Hash256* out, CompressL&& compress_lanes) {
  const size_t full = len / 64;
  size_t i = 0;
  for (; i + L <= n; i += L) {
    uint32_t states[L][8];
    uint8_t tails[L][128];
    size_t tail_blocks = 1;
    const uint8_t* ptrs[L];
    for (size_t l = 0; l < L; ++l) {
      std::memcpy(states[l], kIv, sizeof(kIv));
      tail_blocks = BuildTail(msgs[i + l], len, tails[l]);
    }
    for (size_t b = 0; b < full; ++b) {
      for (size_t l = 0; l < L; ++l) ptrs[l] = msgs[i + l] + b * 64;
      compress_lanes(states, ptrs);
    }
    for (size_t tb = 0; tb < tail_blocks; ++tb) {
      for (size_t l = 0; l < L; ++l) ptrs[l] = tails[l] + tb * 64;
      compress_lanes(states, ptrs);
    }
    for (size_t l = 0; l < L; ++l) StoreDigest(states[l], &out[i + l]);
  }
  // Remainder lanes: single stream.
  const Sha256CompressFn compress = ActiveSha256Compress();
  for (; i < n; ++i) OneShot(compress, msgs[i], len, &out[i]);
}

}  // namespace

Sha256Backend ActiveSha256Backend() { return ActiveDispatch().backend; }

std::string_view Sha256BackendName(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::kScalar:
      return "scalar";
    case Sha256Backend::kAvx2:
      return "avx2";
    case Sha256Backend::kShaNi:
      return "sha-ni";
  }
  return "unknown";
}

bool Sha256BackendSupported(Sha256Backend backend) {
  return BackendCompiledAndSupported(backend);
}

bool SetSha256BackendForTest(Sha256Backend backend) {
  if (!BackendCompiledAndSupported(backend)) return false;
  ActiveDispatch() = Dispatch{backend, SingleStreamFn(backend)};
  return true;
}

Sha256CompressFn ActiveSha256Compress() { return ActiveDispatch().compress; }

void Sha256ManySameLen(const uint8_t* const* msgs, size_t len, size_t n,
                       Hash256* out) {
  if (n == 0) return;
  const Dispatch& d = ActiveDispatch();
#if defined(WEDGE_HAVE_SHA256_AVX2)
  if (d.backend == Sha256Backend::kAvx2 && n >= 8) {
    ManySameLenLanes<8>(msgs, len, n, out,
                        [](uint32_t states[8][8], const uint8_t* const* p) {
                          internal::Sha256Compress8xAvx2(states, p);
                        });
    return;
  }
#endif
  if (d.backend == Sha256Backend::kScalar && n >= 4) {
    ManySameLenLanes<4>(msgs, len, n, out,
                        [](uint32_t states[4][8], const uint8_t* const* p) {
                          internal::Sha256Compress4xScalar(states, p);
                        });
    return;
  }
  for (size_t i = 0; i < n; ++i) OneShot(d.compress, msgs[i], len, &out[i]);
}

void Sha256Many(const uint8_t* const* msgs, const size_t* lens, size_t n,
                Hash256* out) {
  // Hash maximal equal-length runs as one same-length batch; the lane
  // kernels need a uniform block count.
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && lens[j] == lens[i]) ++j;
    Sha256ManySameLen(msgs + i, lens[i], j - i, out + i);
    i = j;
  }
}

void Sha256Many(const std::vector<Bytes>& msgs, Hash256* out) {
  std::vector<const uint8_t*> ptrs(msgs.size());
  std::vector<size_t> lens(msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    ptrs[i] = msgs[i].data();
    lens[i] = msgs[i].size();
  }
  Sha256Many(ptrs.data(), lens.data(), msgs.size(), out);
}

}  // namespace wedge
