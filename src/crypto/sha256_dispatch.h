#ifndef WEDGEBLOCK_CRYPTO_SHA256_DISPATCH_H_
#define WEDGEBLOCK_CRYPTO_SHA256_DISPATCH_H_

#include <string_view>
#include <vector>

#include "crypto/sha256.h"

// Runtime-dispatched SHA-256 backends. Every digest in the system — leaf
// and interior Merkle hashes, stage-1 signing hashes, stage-2 digests,
// RFC 6979 nonces — flows through one compression entry point selected
// once at startup:
//
//   kShaNi   x86 SHA extensions, single stream (fastest where available)
//   kAvx2    portable single stream + 8-lane AVX2 batch hashing
//   kScalar  portable single stream + 4-lane interleaved batch hashing
//
// Selection: best supported backend wins (SHA-NI > AVX2 > scalar).
// `WEDGE_DISABLE_HWCRYPTO` (CMake option at build time, or a non-"0"
// environment variable at run time) forces kScalar; the environment
// variable `WEDGE_SHA256_BACKEND=scalar|avx2|shani` pins a specific
// backend when supported. All backends are byte-identical (enforced by
// tests/sha256_test.cc across NIST vectors and a random corpus).

namespace wedge {

enum class Sha256Backend { kScalar, kAvx2, kShaNi };

/// The backend every Sha256 object and batch call currently routes to.
Sha256Backend ActiveSha256Backend();

/// Human-readable backend name ("scalar", "avx2", "sha-ni").
std::string_view Sha256BackendName(Sha256Backend backend);

/// True when the backend is compiled in and the CPU supports it.
bool Sha256BackendSupported(Sha256Backend backend);

/// Test hook: re-points the dispatcher at `backend`. Returns false (and
/// changes nothing) when unsupported. Not thread-safe — call only from
/// single-threaded test setup, and restore the original backend after.
bool SetSha256BackendForTest(Sha256Backend backend);

/// Raw single-stream block compression for the active backend: advances
/// `state` over `blocks` consecutive 64-byte blocks.
using Sha256CompressFn = void (*)(uint32_t state[8], const uint8_t* data,
                                  size_t blocks);
Sha256CompressFn ActiveSha256Compress();

/// Batch one-shot hashing: out[i] = SHA-256(msgs[i], lens[i]). Runs of
/// equal-length messages are hashed 4–8 lanes at a time on backends with
/// a multi-lane kernel; other messages fall back to single-stream.
void Sha256Many(const uint8_t* const* msgs, const size_t* lens, size_t n,
                Hash256* out);
void Sha256Many(const std::vector<Bytes>& msgs, Hash256* out);

/// Same-length batch: every message is exactly `len` bytes. This is the
/// Merkle hot path (uniform leaves; 65-byte interior nodes).
void Sha256ManySameLen(const uint8_t* const* msgs, size_t len, size_t n,
                       Hash256* out);

}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_SHA256_DISPATCH_H_
