#ifndef WEDGEBLOCK_CRYPTO_SHA256_KERNELS_H_
#define WEDGEBLOCK_CRYPTO_SHA256_KERNELS_H_

#include <cstddef>
#include <cstdint>

// Internal header: raw SHA-256 compression kernels behind the runtime
// dispatcher in sha256_dispatch.h. Each kernel advances a standard
// 8-word SHA-256 state over full 64-byte blocks; padding and digest
// extraction live in the callers. Hardware kernels are compiled in
// separate translation units with the matching -m flags and must only be
// called after the dispatcher's cpuid check.

namespace wedge {
namespace internal {

/// FIPS 180-4 round constants, shared by every kernel.
extern const uint32_t kSha256K[64];

/// Portable scalar kernel: processes `blocks` consecutive 64-byte blocks.
void Sha256CompressScalar(uint32_t state[8], const uint8_t* data,
                          size_t blocks);

/// Portable 4-lane kernel: one 64-byte block per lane, four independent
/// states. Uses baseline SSE2 on x86-64 (part of the base ISA — no
/// extra compile flags or runtime detection) and plain-C interleaving
/// elsewhere; either way the lockstep lanes expose parallelism a single
/// message's round dependency chain hides.
void Sha256Compress4xScalar(uint32_t states[4][8],
                            const uint8_t* const blocks[4]);

#if defined(WEDGE_HAVE_SHA256_SHANI)
/// SHA-NI kernel (requires SSE4.1 + SHA extensions at runtime).
void Sha256CompressShaNi(uint32_t state[8], const uint8_t* data,
                         size_t blocks);
#endif

#if defined(WEDGE_HAVE_SHA256_AVX2)
/// AVX2 8-lane kernel: one 64-byte block per lane, eight independent
/// states laid out as states[lane][word].
void Sha256Compress8xAvx2(uint32_t states[8][8],
                          const uint8_t* const blocks[8]);
#endif

}  // namespace internal
}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_SHA256_KERNELS_H_
