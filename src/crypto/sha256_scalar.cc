#include "crypto/sha256_kernels.h"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

// Portable SHA-256 kernels. The single-stream kernel unrolls the 64
// rounds with a 16-word message-schedule ring updated inline in each
// round (no 64-entry W expansion, no register rotation) — the shape
// compilers turn into the best branch-free straight-line code. The
// 4-lane kernel runs four independent blocks in lockstep; on x86-64 it
// uses baseline SSE2 (always available, no extra compile flags and no
// runtime detection needed), elsewhere plain C interleaving.

namespace wedge {
namespace internal {

const uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

namespace {

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap32(v);
#endif
}
inline uint32_t BigSigma0(uint32_t x) {
  return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22);
}
inline uint32_t BigSigma1(uint32_t x) {
  return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25);
}
inline uint32_t SmallSigma0(uint32_t x) {
  return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3);
}
inline uint32_t SmallSigma1(uint32_t x) {
  return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10);
}
inline uint32_t Ch(uint32_t e, uint32_t f, uint32_t g) {
  return g ^ (e & (f ^ g));
}
inline uint32_t Maj(uint32_t a, uint32_t b, uint32_t c) {
  return (a & b) | (c & (a | b));
}

// One round without register rotation: the caller permutes the argument
// order instead. For rounds >= 16 the schedule-ring word is refreshed
// inline, which interleaves the schedule arithmetic with the round
// arithmetic — two mostly independent dependency chains the CPU can
// overlap. `i` must be a compile-time constant so the branch folds away.
#define WEDGE_SHA256_ROUND(a, b, c, d, e, f, g, h, i)                     \
  do {                                                                    \
    uint32_t wv;                                                          \
    if ((i) < 16) {                                                       \
      wv = w[(i)];                                                        \
    } else {                                                              \
      wv = w[(i) & 15] +=                                                 \
          SmallSigma1(w[((i) - 2) & 15]) + w[((i) - 7) & 15] +            \
          SmallSigma0(w[((i) - 15) & 15]);                                \
    }                                                                     \
    uint32_t t1 = (h) + BigSigma1(e) + Ch(e, f, g) + kSha256K[(i)] + wv;  \
    uint32_t t2 = BigSigma0(a) + Maj(a, b, c);                            \
    (d) += t1;                                                            \
    (h) = t1 + t2;                                                        \
  } while (0)

#define WEDGE_SHA256_ROUND8(i)                            \
  WEDGE_SHA256_ROUND(a, b, c, d, e, f, g, h, (i) + 0);    \
  WEDGE_SHA256_ROUND(h, a, b, c, d, e, f, g, (i) + 1);    \
  WEDGE_SHA256_ROUND(g, h, a, b, c, d, e, f, (i) + 2);    \
  WEDGE_SHA256_ROUND(f, g, h, a, b, c, d, e, (i) + 3);    \
  WEDGE_SHA256_ROUND(e, f, g, h, a, b, c, d, (i) + 4);    \
  WEDGE_SHA256_ROUND(d, e, f, g, h, a, b, c, (i) + 5);    \
  WEDGE_SHA256_ROUND(c, d, e, f, g, h, a, b, (i) + 6);    \
  WEDGE_SHA256_ROUND(b, c, d, e, f, g, h, a, (i) + 7)

}  // namespace

void Sha256CompressScalar(uint32_t state[8], const uint8_t* data,
                          size_t blocks) {
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  while (blocks-- > 0) {
    uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = Load32(data + i * 4);
    data += 64;

    const uint32_t sa = a, sb = b, sc = c, sd = d;
    const uint32_t se = e, sf = f, sg = g, sh = h;

    WEDGE_SHA256_ROUND8(0);
    WEDGE_SHA256_ROUND8(8);
    WEDGE_SHA256_ROUND8(16);
    WEDGE_SHA256_ROUND8(24);
    WEDGE_SHA256_ROUND8(32);
    WEDGE_SHA256_ROUND8(40);
    WEDGE_SHA256_ROUND8(48);
    WEDGE_SHA256_ROUND8(56);

    a += sa; b += sb; c += sc; d += sd;
    e += se; f += sf; g += sg; h += sh;
  }
  state[0] = a; state[1] = b; state[2] = c; state[3] = d;
  state[4] = e; state[5] = f; state[6] = g; state[7] = h;
}

#if defined(__SSE2__)

namespace {

// SSE2 4-lane helpers: each __m128i holds one 32-bit word from each of
// the four message lanes.
inline __m128i VAdd(__m128i a, __m128i b) { return _mm_add_epi32(a, b); }
inline __m128i VXor(__m128i a, __m128i b) { return _mm_xor_si128(a, b); }
inline __m128i VAnd(__m128i a, __m128i b) { return _mm_and_si128(a, b); }
inline __m128i VOr(__m128i a, __m128i b) { return _mm_or_si128(a, b); }
inline __m128i VShr(__m128i a, int n) { return _mm_srli_epi32(a, n); }
inline __m128i VShl(__m128i a, int n) { return _mm_slli_epi32(a, n); }
inline __m128i VRotr(__m128i a, int n) {
  return VOr(VShr(a, n), VShl(a, 32 - n));
}
inline __m128i VBigSigma0(__m128i x) {
  return VXor(VXor(VRotr(x, 2), VRotr(x, 13)), VRotr(x, 22));
}
inline __m128i VBigSigma1(__m128i x) {
  return VXor(VXor(VRotr(x, 6), VRotr(x, 11)), VRotr(x, 25));
}
inline __m128i VSmallSigma0(__m128i x) {
  return VXor(VXor(VRotr(x, 7), VRotr(x, 18)), VShr(x, 3));
}
inline __m128i VSmallSigma1(__m128i x) {
  return VXor(VXor(VRotr(x, 17), VRotr(x, 19)), VShr(x, 10));
}
inline __m128i VCh(__m128i e, __m128i f, __m128i g) {
  return VXor(g, VAnd(e, VXor(f, g)));
}
inline __m128i VMaj(__m128i a, __m128i b, __m128i c) {
  return VOr(VAnd(a, b), VAnd(c, VOr(a, b)));
}

#define WEDGE_SHA256_VROUND(a, b, c, d, e, f, g, h, i)                    \
  do {                                                                    \
    __m128i wv;                                                           \
    if ((i) < 16) {                                                       \
      wv = w[(i)];                                                        \
    } else {                                                              \
      wv = w[(i) & 15] = VAdd(                                            \
          VAdd(w[(i) & 15], VSmallSigma0(w[((i) - 15) & 15])),            \
          VAdd(w[((i) - 7) & 15], VSmallSigma1(w[((i) - 2) & 15])));      \
    }                                                                     \
    __m128i t1 = VAdd(                                                    \
        VAdd(h, VBigSigma1(e)),                                           \
        VAdd(VCh(e, f, g),                                                \
             VAdd(_mm_set1_epi32(static_cast<int>(kSha256K[(i)])), wv))); \
    __m128i t2 = VAdd(VBigSigma0(a), VMaj(a, b, c));                      \
    (d) = VAdd(d, t1);                                                    \
    (h) = VAdd(t1, t2);                                                   \
  } while (0)

#define WEDGE_SHA256_VROUND8(i)                            \
  WEDGE_SHA256_VROUND(a, b, c, d, e, f, g, h, (i) + 0);    \
  WEDGE_SHA256_VROUND(h, a, b, c, d, e, f, g, (i) + 1);    \
  WEDGE_SHA256_VROUND(g, h, a, b, c, d, e, f, (i) + 2);    \
  WEDGE_SHA256_VROUND(f, g, h, a, b, c, d, e, (i) + 3);    \
  WEDGE_SHA256_VROUND(e, f, g, h, a, b, c, d, (i) + 4);    \
  WEDGE_SHA256_VROUND(d, e, f, g, h, a, b, c, (i) + 5);    \
  WEDGE_SHA256_VROUND(c, d, e, f, g, h, a, b, (i) + 6);    \
  WEDGE_SHA256_VROUND(b, c, d, e, f, g, h, a, (i) + 7)

}  // namespace

void Sha256Compress4xScalar(uint32_t states[4][8],
                            const uint8_t* const blocks[4]) {
  __m128i v[8], w[16];
  for (int s = 0; s < 8; ++s) {
    v[s] = _mm_set_epi32(static_cast<int>(states[3][s]),
                         static_cast<int>(states[2][s]),
                         static_cast<int>(states[1][s]),
                         static_cast<int>(states[0][s]));
  }
  for (int i = 0; i < 16; ++i) {
    w[i] = _mm_set_epi32(static_cast<int>(Load32(blocks[3] + i * 4)),
                         static_cast<int>(Load32(blocks[2] + i * 4)),
                         static_cast<int>(Load32(blocks[1] + i * 4)),
                         static_cast<int>(Load32(blocks[0] + i * 4)));
  }
  __m128i a = v[0], b = v[1], c = v[2], d = v[3];
  __m128i e = v[4], f = v[5], g = v[6], h = v[7];

  WEDGE_SHA256_VROUND8(0);
  WEDGE_SHA256_VROUND8(8);
  WEDGE_SHA256_VROUND8(16);
  WEDGE_SHA256_VROUND8(24);
  WEDGE_SHA256_VROUND8(32);
  WEDGE_SHA256_VROUND8(40);
  WEDGE_SHA256_VROUND8(48);
  WEDGE_SHA256_VROUND8(56);

  v[0] = VAdd(v[0], a); v[1] = VAdd(v[1], b);
  v[2] = VAdd(v[2], c); v[3] = VAdd(v[3], d);
  v[4] = VAdd(v[4], e); v[5] = VAdd(v[5], f);
  v[6] = VAdd(v[6], g); v[7] = VAdd(v[7], h);

  for (int s = 0; s < 8; ++s) {
    alignas(16) uint32_t lane[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lane), v[s]);
    for (int l = 0; l < 4; ++l) states[l][s] = lane[l];
  }
}

#else  // !__SSE2__: plain-C interleaved fallback.

void Sha256Compress4xScalar(uint32_t states[4][8],
                            const uint8_t* const blocks[4]) {
  // Transposed working state: v[word][lane]. The fixed-trip-count lane
  // loops unroll cleanly and keep the four dependency chains independent.
  uint32_t v[8][4];
  uint32_t w[16][4];
  for (int s = 0; s < 8; ++s)
    for (int l = 0; l < 4; ++l) v[s][l] = states[l][s];
  for (int i = 0; i < 16; ++i)
    for (int l = 0; l < 4; ++l) w[i][l] = Load32(blocks[l] + i * 4);

  for (int i = 0; i < 64; ++i) {
    if (i >= 16) {
      for (int l = 0; l < 4; ++l) {
        w[i & 15][l] += SmallSigma1(w[(i - 2) & 15][l]) + w[(i - 7) & 15][l] +
                        SmallSigma0(w[(i - 15) & 15][l]);
      }
    }
    for (int l = 0; l < 4; ++l) {
      uint32_t t1 = v[7][l] + BigSigma1(v[4][l]) +
                    Ch(v[4][l], v[5][l], v[6][l]) + kSha256K[i] + w[i & 15][l];
      uint32_t t2 = BigSigma0(v[0][l]) + Maj(v[0][l], v[1][l], v[2][l]);
      v[7][l] = v[6][l];
      v[6][l] = v[5][l];
      v[5][l] = v[4][l];
      v[4][l] = v[3][l] + t1;
      v[3][l] = v[2][l];
      v[2][l] = v[1][l];
      v[1][l] = v[0][l];
      v[0][l] = t1 + t2;
    }
  }
  for (int s = 0; s < 8; ++s)
    for (int l = 0; l < 4; ++l) states[l][s] += v[s][l];
}

#endif  // __SSE2__

}  // namespace internal
}  // namespace wedge
