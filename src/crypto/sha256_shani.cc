// SHA-256 compression using the x86 SHA New Instructions. Compiled with
// -msha -msse4.1; the dispatcher only routes here after cpuid confirms
// the extensions, so no illegal instruction can execute on older CPUs.
// Round structure follows the canonical Intel/Walton formulation: state
// is kept as the two packed vectors ABEF / CDGH that sha256rnds2
// operates on, and the 64 rounds run as 16 groups of 4 with sha256msg1/
// sha256msg2 producing the message schedule on the fly.

#include "crypto/sha256_kernels.h"

#if defined(WEDGE_HAVE_SHA256_SHANI)

#include <immintrin.h>

namespace wedge {
namespace internal {

namespace {

// Two sha256rnds2 invocations = 4 rounds. `msg` holds W[i..i+3]+K[i..i+3].
inline void Rounds4(__m128i& state0, __m128i& state1, __m128i msg) {
  state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
  msg = _mm_shuffle_epi32(msg, 0x0E);
  state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
}

inline __m128i AddK(__m128i msg, int i) {
  return _mm_add_epi32(
      msg, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kSha256K[i])));
}

}  // namespace

void Sha256CompressShaNi(uint32_t state[8], const uint8_t* data,
                         size_t blocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Repack {a,b,c,d}/{e,f,g,h} into the ABEF/CDGH layout.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);

    // Rounds 0-11: schedule not yet self-referential.
    Rounds4(state0, state1, AddK(msg0, 0));
    Rounds4(state0, state1, AddK(msg1, 4));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);
    Rounds4(state0, state1, AddK(msg2, 8));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-51: the steady-state 4-round pattern, message registers
    // rotating through (cur, next, prev) roles.
#define WEDGE_SHANI_QROUND(cur, nxt, prv, pre, k)              \
    do {                                                       \
      Rounds4(state0, state1, AddK(cur, k));                   \
      __m128i t = _mm_alignr_epi8(cur, prv, 4);                \
      nxt = _mm_add_epi32(nxt, t);                             \
      nxt = _mm_sha256msg2_epu32(nxt, cur);                    \
      pre = _mm_sha256msg1_epu32(pre, cur);                    \
    } while (0)

    WEDGE_SHANI_QROUND(msg3, msg0, msg2, msg2, 12);
    WEDGE_SHANI_QROUND(msg0, msg1, msg3, msg3, 16);
    WEDGE_SHANI_QROUND(msg1, msg2, msg0, msg0, 20);
    WEDGE_SHANI_QROUND(msg2, msg3, msg1, msg1, 24);
    WEDGE_SHANI_QROUND(msg3, msg0, msg2, msg2, 28);
    WEDGE_SHANI_QROUND(msg0, msg1, msg3, msg3, 32);
    WEDGE_SHANI_QROUND(msg1, msg2, msg0, msg0, 36);
    WEDGE_SHANI_QROUND(msg2, msg3, msg1, msg1, 40);
    WEDGE_SHANI_QROUND(msg3, msg0, msg2, msg2, 44);
    WEDGE_SHANI_QROUND(msg0, msg1, msg3, msg3, 48);
#undef WEDGE_SHANI_QROUND

    // Rounds 52-63: schedule winds down (no more sha256msg1).
    Rounds4(state0, state1, AddK(msg1, 52));
    {
      __m128i t = _mm_alignr_epi8(msg1, msg0, 4);
      msg2 = _mm_add_epi32(msg2, t);
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    }
    Rounds4(state0, state1, AddK(msg2, 56));
    {
      __m128i t = _mm_alignr_epi8(msg2, msg1, 4);
      msg3 = _mm_add_epi32(msg3, t);
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    }
    Rounds4(state0, state1, AddK(msg3, 60));

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  // Unpack ABEF/CDGH back to {a..d}/{e..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace internal
}  // namespace wedge

#endif  // WEDGE_HAVE_SHA256_SHANI
