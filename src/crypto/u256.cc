#include "crypto/u256.h"

namespace wedge {

namespace {

using uint128 = unsigned __int128;

/// x mod m via binary long division over the 512-bit numerator.
/// Generic fallback; hot paths use ReduceWide.
U256 ModWide(const U512& x, const U256& m) {
  U256 r = U256::Zero();
  for (int i = 511; i >= 0; --i) {
    // r = (r << 1) | bit_i(x); track the bit shifted out of r.
    bool top = r.Bit(255);
    r = r.Shl(1);
    if ((x.limb[i / 64] >> (i % 64)) & 1) {
      r.limb[0] |= 1;
    }
    if (top || r >= m) {
      U256 tmp;
      U256::SubWithBorrow(r, m, &tmp);  // Borrow is cancelled by `top`.
      r = tmp;
    }
  }
  return r;
}

}  // namespace

Result<U256> U256::FromBytesBE(const Bytes& b) {
  if (b.size() != 32) {
    return Status::InvalidArgument("U256 requires 32 bytes");
  }
  return FromBytesBEPadded(b);
}

Result<U256> U256::FromBytesBEPadded(const Bytes& b) {
  if (b.size() > 32) {
    return Status::InvalidArgument("U256 input longer than 32 bytes");
  }
  U256 out;
  size_t off = 32 - b.size();
  for (size_t i = 0; i < b.size(); ++i) {
    size_t byte_index = off + i;       // Position within a 32-byte BE buffer.
    size_t limb_index = 3 - byte_index / 8;
    size_t shift = (7 - byte_index % 8) * 8;
    out.limb[limb_index] |= static_cast<uint64_t>(b[i]) << shift;
  }
  return out;
}

Result<U256> U256::FromHex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.empty() || hex.size() > 64) {
    return Status::InvalidArgument("U256 hex must be 1..64 digits");
  }
  std::string padded(64 - hex.size(), '0');
  padded.append(hex);
  WEDGE_ASSIGN_OR_RETURN(Bytes raw, HexDecode(padded));
  return FromBytesBE(raw);
}

U256 U256::FromHash(const std::array<uint8_t, 32>& h) {
  U256 out;
  for (int i = 0; i < 32; ++i) {
    size_t limb_index = 3 - i / 8;
    size_t shift = (7 - i % 8) * 8;
    out.limb[limb_index] |= static_cast<uint64_t>(h[i]) << shift;
  }
  return out;
}

Bytes U256::ToBytesBE() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    size_t limb_index = 3 - i / 8;
    size_t shift = (7 - i % 8) * 8;
    out[i] = static_cast<uint8_t>(limb[limb_index] >> shift);
  }
  return out;
}

std::string U256::ToHex() const { return HexEncode(ToBytesBE()); }

std::string U256::ToDecimal() const {
  if (IsZero()) return "0";
  std::string digits;
  U256 v = *this;
  const U256 ten(10);
  while (!v.IsZero()) {
    U256 q, r;
    v.DivMod(ten, &q, &r).ok();  // Divisor is non-zero.
    digits.push_back(static_cast<char>('0' + r.ToU64()));
    v = q;
  }
  return std::string(digits.rbegin(), digits.rend());
}

int U256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) {
      return i * 64 + (64 - __builtin_clzll(limb[i]));
    }
  }
  return 0;
}

int U256::TrailingZeros() const {
  for (int i = 0; i < 4; ++i) {
    if (limb[i] != 0) {
      return i * 64 + __builtin_ctzll(limb[i]);
    }
  }
  return 256;
}

int U256::Compare(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

bool U256::AddWithCarry(const U256& a, const U256& b, U256* out) {
  uint128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    uint128 sum = static_cast<uint128>(a.limb[i]) + b.limb[i] + carry;
    out->limb[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  return carry != 0;
}

bool U256::SubWithBorrow(const U256& a, const U256& b, U256* out) {
  uint128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint128 diff = static_cast<uint128>(a.limb[i]) - b.limb[i] - borrow;
    out->limb[i] = static_cast<uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
  return borrow != 0;
}

U256 U256::operator+(const U256& o) const {
  U256 out;
  AddWithCarry(*this, o, &out);
  return out;
}

U256 U256::operator-(const U256& o) const {
  U256 out;
  SubWithBorrow(*this, o, &out);
  return out;
}

U512 U256::MulWide(const U256& a, const U256& b) {
  U512 res;
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      uint128 cur = static_cast<uint128>(res.limb[i + j]) +
                    static_cast<uint128>(a.limb[i]) * b.limb[j] + carry;
      res.limb[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    res.limb[i + 4] = carry;
  }
  return res;
}

U256 U256::operator*(const U256& o) const { return MulWide(*this, o).Lo(); }

U256 U256::Shl(int n) const {
  U256 out;
  if (n >= 256) return out;
  int limb_shift = n / 64;
  int bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = 0;
    int src = i - limb_shift;
    if (src >= 0) {
      v = limb[src] << bit_shift;
      if (bit_shift > 0 && src - 1 >= 0) {
        v |= limb[src - 1] >> (64 - bit_shift);
      }
    }
    out.limb[i] = v;
  }
  return out;
}

U256 U256::Shr(int n) const {
  U256 out;
  if (n >= 256) return out;
  int limb_shift = n / 64;
  int bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    uint64_t v = 0;
    int src = i + limb_shift;
    if (src < 4) {
      v = limb[src] >> bit_shift;
      if (bit_shift > 0 && src + 1 < 4) {
        v |= limb[src + 1] << (64 - bit_shift);
      }
    }
    out.limb[i] = v;
  }
  return out;
}

U256 U256::operator&(const U256& o) const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = limb[i] & o.limb[i];
  return out;
}

U256 U256::operator|(const U256& o) const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = limb[i] | o.limb[i];
  return out;
}

Status U256::DivMod(const U256& divisor, U256* quotient,
                    U256* remainder) const {
  if (divisor.IsZero()) {
    return Status::InvalidArgument("division by zero");
  }
  U256 q, r;
  int bits = BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    r = r.Shl(1);
    if (Bit(i)) r.limb[0] |= 1;
    if (r >= divisor) {
      r = r - divisor;
      q.limb[i / 64] |= 1ULL << (i % 64);
    }
  }
  *quotient = q;
  *remainder = r;
  return Status::Ok();
}

U256 U256::Mod(const U256& a, const U256& m) {
  U256 q, r;
  a.DivMod(m, &q, &r).ok();
  return r;
}

bool U512::IsZero() const {
  uint64_t acc = 0;
  for (uint64_t l : limb) acc |= l;
  return acc == 0;
}

U512 U512::Add(const U512& a, const U512& b) {
  U512 out;
  uint128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    uint128 sum = static_cast<uint128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  return out;
}

U512 U512::FromU256(const U256& v) {
  U512 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = v.limb[i];
  return out;
}

U256 ReduceWide(const U512& x, const U256& m, const U256& c) {
  U512 t = x;
  // Fold the high half: H*2^256 + L == H*c + L (mod 2^256 - c).
  while (!t.Hi().IsZero()) {
    U512 folded = U256::MulWide(t.Hi(), c);
    t = U512::Add(folded, U512::FromU256(t.Lo()));
  }
  U256 r = t.Lo();
  while (r >= m) r = r - m;
  return r;
}

U256 AddMod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  bool carry = U256::AddWithCarry(a, b, &sum);
  if (carry || sum >= m) {
    U256 out;
    U256::SubWithBorrow(sum, m, &out);  // Carry cancels any borrow.
    return out;
  }
  return sum;
}

U256 SubMod(const U256& a, const U256& b, const U256& m) {
  U256 diff;
  bool borrow = U256::SubWithBorrow(a, b, &diff);
  if (borrow) {
    U256 out;
    U256::AddWithCarry(diff, m, &out);
    return out;
  }
  return diff;
}

U256 MulMod(const U256& a, const U256& b, const U256& m) {
  return ModWide(U256::MulWide(a, b), m);
}

U256 PowMod(const U256& base, const U256& exp, const U256& m) {
  U256 result = U256::One();
  U256 b = U256::Mod(base, m);
  int bits = exp.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = MulMod(result, result, m);
    if (exp.Bit(i)) result = MulMod(result, b, m);
  }
  return result;
}

U256 InvMod(const U256& a, const U256& m) {
  // Fermat's little theorem: a^(m-2) mod m for prime m.
  return PowMod(a, m - U256(2), m);
}

}  // namespace wedge
