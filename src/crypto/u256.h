#ifndef WEDGEBLOCK_CRYPTO_U256_H_
#define WEDGEBLOCK_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace wedge {

struct U512;

/// 256-bit unsigned integer, little-endian 64-bit limbs.
///
/// Used for secp256k1 field/scalar elements and for wei amounts on the
/// simulated chain. Arithmetic never throws; overflow behaviour is
/// documented per operation.
struct U256 {
  std::array<uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  static constexpr U256 Zero() { return U256(); }
  static constexpr U256 One() { return U256(1); }
  static constexpr U256 Max() {
    return U256(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  }

  /// Parses a 32-byte big-endian buffer.
  static Result<U256> FromBytesBE(const Bytes& b);
  /// Parses big-endian bytes of any length <= 32.
  static Result<U256> FromBytesBEPadded(const Bytes& b);
  /// Parses a hex string (with or without 0x prefix, up to 64 digits).
  static Result<U256> FromHex(std::string_view hex);
  /// Interprets the low 256 bits of a hash as a big-endian integer.
  static U256 FromHash(const std::array<uint8_t, 32>& h);

  /// 32-byte big-endian encoding.
  Bytes ToBytesBE() const;
  /// 64-digit lowercase hex (no 0x prefix).
  std::string ToHex() const;
  /// Decimal string (for human-readable wei amounts).
  std::string ToDecimal() const;

  bool IsZero() const {
    return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
  }
  /// Value of bit `i` (0 = least significant). Requires i < 256.
  bool Bit(int i) const {
    return (limb[i / 64] >> (i % 64)) & 1;
  }
  /// Index of the highest set bit plus one; 0 when the value is zero.
  int BitLength() const;
  /// Number of trailing zero bits; 256 when the value is zero. Lets the
  /// wNAF recoder and gcd-style loops skip runs of zeros in one shift.
  int TrailingZeros() const;

  /// Truncates to the low 64 bits.
  uint64_t ToU64() const { return limb[0]; }
  /// True if the value fits in 64 bits.
  bool FitsU64() const { return (limb[1] | limb[2] | limb[3]) == 0; }

  bool operator==(const U256& o) const { return limb == o.limb; }
  bool operator!=(const U256& o) const { return limb != o.limb; }
  bool operator<(const U256& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const U256& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const U256& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const U256& o) const { return Compare(*this, o) >= 0; }

  /// -1, 0 or 1.
  static int Compare(const U256& a, const U256& b);

  /// out = a + b; returns the carry out of the top limb.
  static bool AddWithCarry(const U256& a, const U256& b, U256* out);
  /// out = a - b; returns the borrow (true when a < b).
  static bool SubWithBorrow(const U256& a, const U256& b, U256* out);

  /// Wrapping arithmetic (mod 2^256).
  U256 operator+(const U256& o) const;
  U256 operator-(const U256& o) const;
  /// Full 512-bit product.
  static U512 MulWide(const U256& a, const U256& b);
  /// Wrapping product (low 256 bits).
  U256 operator*(const U256& o) const;

  /// Logical shifts. `n` in [0, 255].
  U256 Shl(int n) const;
  U256 Shr(int n) const;

  U256 operator&(const U256& o) const;
  U256 operator|(const U256& o) const;

  /// Long division: *this = q * divisor + r, r < divisor.
  /// Fails if divisor is zero.
  Status DivMod(const U256& divisor, U256* quotient, U256* remainder) const;

  /// a mod m via DivMod (generic, slower than field-specific reduction).
  static U256 Mod(const U256& a, const U256& m);
};

/// 512-bit intermediate for wide products.
struct U512 {
  std::array<uint64_t, 8> limb{0, 0, 0, 0, 0, 0, 0, 0};

  /// Low / high 256-bit halves.
  U256 Lo() const { return U256(limb[0], limb[1], limb[2], limb[3]); }
  U256 Hi() const { return U256(limb[4], limb[5], limb[6], limb[7]); }

  bool IsZero() const;
  /// out = a + b (mod 2^512).
  static U512 Add(const U512& a, const U512& b);
  /// Builds a U512 from a 256-bit value.
  static U512 FromU256(const U256& v);
};

/// Reduces a 512-bit value modulo m = 2^256 - c (c must satisfy m > 2^255,
/// i.e. the moduli used by secp256k1's field prime and group order).
/// This is the Solinas-style fast reduction: fold high words as H*c + L.
U256 ReduceWide(const U512& x, const U256& m, const U256& c);

/// Modular arithmetic helpers over an arbitrary odd modulus (generic paths,
/// used in tests and non-hot code).
U256 AddMod(const U256& a, const U256& b, const U256& m);
U256 SubMod(const U256& a, const U256& b, const U256& m);
U256 MulMod(const U256& a, const U256& b, const U256& m);
/// base^exp mod m via square-and-multiply.
U256 PowMod(const U256& base, const U256& exp, const U256& m);
/// Multiplicative inverse modulo a prime m (Fermat). Requires a != 0 mod m.
U256 InvMod(const U256& a, const U256& m);

}  // namespace wedge

#endif  // WEDGEBLOCK_CRYPTO_U256_H_
