#include "merkle/merkle_tree.h"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.h"
#include "crypto/sha256_dispatch.h"

namespace wedge {

namespace {

constexpr uint8_t kLeafPrefix = 0x00;
constexpr uint8_t kInteriorPrefix = 0x01;

// Leaf/interior messages are staged (prefix prepended) into a reused
// scratch buffer in groups of this many, then hashed through the
// multi-lane batch kernels. 32 is a whole number of lanes for both the
// 4-lane portable and 8-lane AVX2 kernels.
constexpr size_t kHashGroup = 32;

// Minimum number of hashes in a level before a parallel build splits it
// across the pool; below this the fork/join overhead dominates.
constexpr size_t kParallelGrain = 256;

// Interior-node message: 0x01 || left || right.
constexpr size_t kInteriorMsgLen = 1 + 2 * sizeof(Hash256);

// Computes parent nodes [parent_begin, parent_end) of a level holding
// `prev_count` nodes, duplicating the last node when prev_count is odd.
// Messages are staged into a scratch buffer in groups and hashed with
// the same-length batch kernel.
void HashInteriorRange(const Hash256* prev, size_t prev_count,
                       size_t parent_begin, size_t parent_end, Hash256* out) {
  uint8_t scratch[kHashGroup * kInteriorMsgLen];
  const uint8_t* ptrs[kHashGroup];
  for (size_t p = parent_begin; p < parent_end; p += kHashGroup) {
    const size_t group = std::min(kHashGroup, parent_end - p);
    for (size_t i = 0; i < group; ++i) {
      uint8_t* msg = scratch + i * kInteriorMsgLen;
      const size_t left = 2 * (p + i);
      const size_t right = (left + 1 < prev_count) ? left + 1 : left;
      msg[0] = kInteriorPrefix;
      std::memcpy(msg + 1, prev[left].data(), sizeof(Hash256));
      std::memcpy(msg + 1 + sizeof(Hash256), prev[right].data(),
                  sizeof(Hash256));
      ptrs[i] = msg;
    }
    Sha256ManySameLen(ptrs, kInteriorMsgLen, group, out + p);
  }
}

}  // namespace

Bytes MerkleProof::Serialize() const {
  Bytes out;
  PutU64(out, leaf_index);
  PutU32(out, static_cast<uint32_t>(path.size()));
  for (const MerkleProofNode& node : path) {
    out.push_back(node.sibling_is_left ? 1 : 0);
    Append(out, HashToBytes(node.sibling));
  }
  return out;
}

Result<MerkleProof> MerkleProof::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  MerkleProof proof;
  WEDGE_ASSIGN_OR_RETURN(proof.leaf_index, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > 64) {
    return Status::InvalidArgument("merkle proof too deep");
  }
  proof.path.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes side, reader.ReadRaw(1));
    WEDGE_ASSIGN_OR_RETURN(Bytes sib, reader.ReadRaw(32));
    MerkleProofNode node;
    node.sibling_is_left = side[0] != 0;
    std::memcpy(node.sibling.data(), sib.data(), 32);
    proof.path.push_back(node);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after merkle proof");
  }
  return proof;
}

Hash256 MerkleTree::HashLeaf(const Bytes& data) {
  Sha256 h;
  h.Update(&kLeafPrefix, 1);
  h.Update(data);
  return h.Finish();
}

Hash256 MerkleTree::HashInterior(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.Update(&kInteriorPrefix, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

void MerkleTree::HashLeavesInto(const Bytes* const* leaves, size_t n,
                                Hash256* out) {
  // Uniform-length leaves (the common case: a sealed batch of equal-size
  // payloads) are staged with their 0x00 prefix into a reused scratch
  // buffer and hashed in multi-lane groups. Mixed lengths fall back to
  // the incremental hasher, which never copies the payload.
  const size_t len = (n > 0) ? leaves[0]->size() : 0;
  bool uniform = true;
  for (size_t i = 1; i < n && uniform; ++i) uniform = leaves[i]->size() == len;
  if (!uniform || n < 4) {
    for (size_t i = 0; i < n; ++i) out[i] = HashLeaf(*leaves[i]);
    return;
  }
  const size_t msg_len = 1 + len;
  Bytes scratch(kHashGroup * msg_len);
  const uint8_t* ptrs[kHashGroup];
  for (size_t i = 0; i < n; i += kHashGroup) {
    const size_t group = std::min(kHashGroup, n - i);
    for (size_t g = 0; g < group; ++g) {
      uint8_t* msg = scratch.data() + g * msg_len;
      msg[0] = kLeafPrefix;
      if (len > 0) std::memcpy(msg + 1, leaves[i + g]->data(), len);
      ptrs[g] = msg;
    }
    Sha256ManySameLen(ptrs, msg_len, group, out + i);
  }
}

void MerkleTree::HashInteriorN(const Hash256* prev, size_t prev_count,
                               Hash256* out) {
  HashInteriorRange(prev, prev_count, 0, (prev_count + 1) / 2, out);
}

Result<MerkleTree> MerkleTree::BuildImpl(const Bytes* const* leaves, size_t n,
                                         ThreadPool* pool) {
  if (n == 0) {
    return Status::InvalidArgument("merkle tree requires at least one leaf");
  }
  MerkleTree tree;
  tree.leaf_count_ = n;

  // Splits [0, count) into pool-sized chunks and runs fn(begin, end) for
  // each across the pool. Chunks only partition the index space, so the
  // hashes produced are identical to a sequential pass.
  const size_t workers = (pool != nullptr) ? pool->num_threads() : 0;
  auto parallel_chunks =
      [&](size_t count, const std::function<void(size_t, size_t)>& fn) {
        const size_t chunks =
            std::min(4 * workers, (count + kParallelGrain - 1) / kParallelGrain);
        if (chunks <= 1) {
          fn(0, count);
          return;
        }
        const size_t per = (count + chunks - 1) / chunks;
        pool->ParallelFor(chunks, [&](size_t c) {
          const size_t begin = c * per;
          const size_t end = std::min(begin + per, count);
          if (begin < end) fn(begin, end);
        });
      };

  std::vector<Hash256> level(n);
  parallel_chunks(n, [&](size_t begin, size_t end) {
    HashLeavesInto(leaves + begin, end - begin, level.data() + begin);
  });
  tree.levels_.push_back(std::move(level));

  while (tree.levels_.back().size() > 1) {
    const std::vector<Hash256>& prev = tree.levels_.back();
    const size_t parents = (prev.size() + 1) / 2;
    std::vector<Hash256> next(parents);
    parallel_chunks(parents, [&](size_t begin, size_t end) {
      HashInteriorRange(prev.data(), prev.size(), begin, end, next.data());
    });
    tree.levels_.push_back(std::move(next));
  }
  return tree;
}

Result<MerkleTree> MerkleTree::Build(const std::vector<Bytes>& leaves) {
  return Build(leaves, nullptr);
}

Result<MerkleTree> MerkleTree::Build(const std::vector<Bytes>& leaves,
                                     ThreadPool* pool) {
  std::vector<const Bytes*> ptrs(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) ptrs[i] = &leaves[i];
  return BuildImpl(ptrs.data(), ptrs.size(), pool);
}

Result<MerkleTree> MerkleTree::Build(const std::vector<SharedBytes>& leaves) {
  return Build(leaves, nullptr);
}

Result<MerkleTree> MerkleTree::Build(const std::vector<SharedBytes>& leaves,
                                     ThreadPool* pool) {
  std::vector<const Bytes*> ptrs(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) ptrs[i] = &leaves[i].get();
  return BuildImpl(ptrs.data(), ptrs.size(), pool);
}

Result<MerkleProof> MerkleTree::Prove(uint64_t index) const {
  MerkleProof proof;
  WEDGE_RETURN_IF_ERROR(ProveInto(index, &proof));
  return proof;
}

Status MerkleTree::ProveInto(uint64_t index, MerkleProof* out) const {
  if (index >= leaf_count_) {
    return Status::OutOfRange("leaf index out of range");
  }
  out->leaf_index = index;
  out->path.clear();
  out->path.reserve(levels_.size() - 1);
  uint64_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<Hash256>& nodes = levels_[lvl];
    MerkleProofNode node;
    if (pos % 2 == 0) {
      // Sibling on the right (or self-duplicate at an odd tail).
      node.sibling = (pos + 1 < nodes.size()) ? nodes[pos + 1] : nodes[pos];
      node.sibling_is_left = false;
    } else {
      node.sibling = nodes[pos - 1];
      node.sibling_is_left = true;
    }
    out->path.push_back(node);
    pos /= 2;
  }
  return Status::Ok();
}

Hash256 ComputeRootFromProof(const Bytes& leaf_data, const MerkleProof& proof) {
  Hash256 acc = MerkleTree::HashLeaf(leaf_data);
  for (const MerkleProofNode& node : proof.path) {
    acc = node.sibling_is_left ? MerkleTree::HashInterior(node.sibling, acc)
                               : MerkleTree::HashInterior(acc, node.sibling);
  }
  return acc;
}

bool VerifyMerkleProof(const Bytes& leaf_data, const MerkleProof& proof,
                       const Hash256& expected_root) {
  return ComputeRootFromProof(leaf_data, proof) == expected_root;
}

}  // namespace wedge
