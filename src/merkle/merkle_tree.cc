#include "merkle/merkle_tree.h"

#include <cstring>

namespace wedge {

namespace {

constexpr uint8_t kLeafPrefix = 0x00;
constexpr uint8_t kInteriorPrefix = 0x01;

}  // namespace

Bytes MerkleProof::Serialize() const {
  Bytes out;
  PutU64(out, leaf_index);
  PutU32(out, static_cast<uint32_t>(path.size()));
  for (const MerkleProofNode& node : path) {
    out.push_back(node.sibling_is_left ? 1 : 0);
    Append(out, HashToBytes(node.sibling));
  }
  return out;
}

Result<MerkleProof> MerkleProof::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  MerkleProof proof;
  WEDGE_ASSIGN_OR_RETURN(proof.leaf_index, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > 64) {
    return Status::InvalidArgument("merkle proof too deep");
  }
  proof.path.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes side, reader.ReadRaw(1));
    WEDGE_ASSIGN_OR_RETURN(Bytes sib, reader.ReadRaw(32));
    MerkleProofNode node;
    node.sibling_is_left = side[0] != 0;
    std::memcpy(node.sibling.data(), sib.data(), 32);
    proof.path.push_back(node);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after merkle proof");
  }
  return proof;
}

Hash256 MerkleTree::HashLeaf(const Bytes& data) {
  Sha256 h;
  h.Update(&kLeafPrefix, 1);
  h.Update(data);
  return h.Finish();
}

Hash256 MerkleTree::HashInterior(const Hash256& left, const Hash256& right) {
  Sha256 h;
  h.Update(&kInteriorPrefix, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

Result<MerkleTree> MerkleTree::Build(const std::vector<Bytes>& leaves) {
  if (leaves.empty()) {
    return Status::InvalidArgument("merkle tree requires at least one leaf");
  }
  MerkleTree tree;
  tree.leaf_count_ = leaves.size();

  std::vector<Hash256> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(HashLeaf(leaf));
  tree.levels_.push_back(std::move(level));

  while (tree.levels_.back().size() > 1) {
    const std::vector<Hash256>& prev = tree.levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      // Odd count: duplicate the last node.
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(HashInterior(prev[i], right));
    }
    tree.levels_.push_back(std::move(next));
  }
  return tree;
}

Result<MerkleProof> MerkleTree::Prove(uint64_t index) const {
  if (index >= leaf_count_) {
    return Status::OutOfRange("leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  uint64_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<Hash256>& nodes = levels_[lvl];
    MerkleProofNode node;
    if (pos % 2 == 0) {
      // Sibling on the right (or self-duplicate at an odd tail).
      node.sibling = (pos + 1 < nodes.size()) ? nodes[pos + 1] : nodes[pos];
      node.sibling_is_left = false;
    } else {
      node.sibling = nodes[pos - 1];
      node.sibling_is_left = true;
    }
    proof.path.push_back(node);
    pos /= 2;
  }
  return proof;
}

Hash256 ComputeRootFromProof(const Bytes& leaf_data, const MerkleProof& proof) {
  Hash256 acc = MerkleTree::HashLeaf(leaf_data);
  for (const MerkleProofNode& node : proof.path) {
    acc = node.sibling_is_left ? MerkleTree::HashInterior(node.sibling, acc)
                               : MerkleTree::HashInterior(acc, node.sibling);
  }
  return acc;
}

bool VerifyMerkleProof(const Bytes& leaf_data, const MerkleProof& proof,
                       const Hash256& expected_root) {
  return ComputeRootFromProof(leaf_data, proof) == expected_root;
}

}  // namespace wedge
