#ifndef WEDGEBLOCK_MERKLE_MERKLE_TREE_H_
#define WEDGEBLOCK_MERKLE_MERKLE_TREE_H_

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace wedge {

class ThreadPool;

/// One step of a Merkle proof path: a sibling hash plus its side.
struct MerkleProofNode {
  Hash256 sibling;
  bool sibling_is_left = false;  ///< True when the sibling is the left child.

  bool operator==(const MerkleProofNode& o) const {
    return sibling == o.sibling && sibling_is_left == o.sibling_is_left;
  }
};

/// Authentication path from a leaf to the Merkle root (Figure 1 in the
/// paper). Together with the leaf data and its index, verifies membership
/// under a given root.
struct MerkleProof {
  uint64_t leaf_index = 0;
  std::vector<MerkleProofNode> path;

  /// Canonical wire encoding (length-prefixed).
  Bytes Serialize() const;
  static Result<MerkleProof> Deserialize(const Bytes& b);

  bool operator==(const MerkleProof& o) const {
    return leaf_index == o.leaf_index && path == o.path;
  }
};

/// Binary Merkle tree over a batch of byte-string leaves.
///
/// Leaves are first hashed with a 0x00 domain-separation prefix; interior
/// nodes hash 0x01 || left || right. The prefix prevents second-preimage
/// attacks that confuse leaves with interior nodes. Odd levels duplicate
/// the last node (Bitcoin-style padding).
class MerkleTree {
 public:
  /// Builds the tree over `leaves`. Requires at least one leaf. When a
  /// `pool` is given, large trees hash their levels in parallel chunks;
  /// the result is byte-identical to the sequential build (same hashes,
  /// just partitioned), so roots and proofs never depend on the pool.
  static Result<MerkleTree> Build(const std::vector<Bytes>& leaves);
  static Result<MerkleTree> Build(const std::vector<Bytes>& leaves,
                                  ThreadPool* pool);
  static Result<MerkleTree> Build(const std::vector<SharedBytes>& leaves);
  static Result<MerkleTree> Build(const std::vector<SharedBytes>& leaves,
                                  ThreadPool* pool);

  /// Root digest (the MRoot committed on-chain in stage-2).
  const Hash256& Root() const { return levels_.back()[0]; }

  /// Number of original (unpadded) leaves.
  uint64_t LeafCount() const { return leaf_count_; }

  /// Generates the authentication path for leaf `index`.
  Result<MerkleProof> Prove(uint64_t index) const;

  /// Fills `out` with the authentication path for leaf `index`, reusing
  /// `out->path`'s capacity. The sealing hot path proves every leaf of a
  /// batch; this variant avoids one vector allocation per response.
  Status ProveInto(uint64_t index, MerkleProof* out) const;

  /// Hash applied to a leaf's raw bytes.
  static Hash256 HashLeaf(const Bytes& data);

  /// Hash of an interior node.
  static Hash256 HashInterior(const Hash256& left, const Hash256& right);

  /// Batch leaf hashing: out[i] = HashLeaf(*leaves[i]) for i in [0, n).
  /// Same-length leaves are routed through the multi-lane SHA-256 batch
  /// kernels (see sha256_dispatch.h).
  static void HashLeavesInto(const Bytes* const* leaves, size_t n,
                             Hash256* out);

  /// Batch interior hashing: computes the full parent level of a level
  /// with `prev_count` nodes into `out` (which must hold
  /// (prev_count + 1) / 2 entries), duplicating the last node when
  /// `prev_count` is odd.
  static void HashInteriorN(const Hash256* prev, size_t prev_count,
                            Hash256* out);

  /// Structural accessors (multi-proof construction): level 0 holds the
  /// leaf hashes, the last level holds only the root.
  size_t Depth() const { return levels_.size(); }
  size_t LevelSize(size_t level) const { return levels_[level].size(); }
  const Hash256& NodeAt(size_t level, uint64_t pos) const {
    return levels_[level][pos];
  }

 private:
  MerkleTree() = default;

  static Result<MerkleTree> BuildImpl(const Bytes* const* leaves, size_t n,
                                      ThreadPool* pool);

  uint64_t leaf_count_ = 0;
  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Hash256>> levels_;
};

/// Recomputes the root implied by (leaf data, proof). Verification succeeds
/// iff the recomputed root equals `expected_root`. This is the client-side
/// check used for stage-1 responses and by the Punishment contract.
Hash256 ComputeRootFromProof(const Bytes& leaf_data, const MerkleProof& proof);

/// True iff the proof authenticates `leaf_data` under `expected_root`.
bool VerifyMerkleProof(const Bytes& leaf_data, const MerkleProof& proof,
                       const Hash256& expected_root);

}  // namespace wedge

#endif  // WEDGEBLOCK_MERKLE_MERKLE_TREE_H_
