#include "merkle/multi_proof.h"

#include <algorithm>
#include <map>

namespace wedge {

Bytes MerkleMultiProof::Serialize() const {
  Bytes out;
  PutU64(out, leaf_count);
  PutU32(out, static_cast<uint32_t>(siblings.size()));
  for (const Hash256& h : siblings) Append(out, HashToBytes(h));
  return out;
}

Result<MerkleMultiProof> MerkleMultiProof::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  MerkleMultiProof proof;
  WEDGE_ASSIGN_OR_RETURN(proof.leaf_count, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  if (n > 1u << 22) return Status::InvalidArgument("multi-proof too large");
  proof.siblings.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadRaw(32));
    WEDGE_ASSIGN_OR_RETURN(Hash256 h, HashFromBytes(raw));
    proof.siblings.push_back(h);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after multi-proof");
  }
  return proof;
}

Result<MerkleMultiProof> BuildMultiProof(const MerkleTree& tree,
                                         std::vector<uint64_t> indices) {
  if (indices.empty()) {
    return Status::InvalidArgument("multi-proof needs at least one index");
  }
  std::sort(indices.begin(), indices.end());
  if (std::adjacent_find(indices.begin(), indices.end()) != indices.end()) {
    return Status::InvalidArgument("duplicate leaf index");
  }
  if (indices.back() >= tree.LeafCount()) {
    return Status::OutOfRange("leaf index out of range");
  }

  MerkleMultiProof proof;
  proof.leaf_count = tree.LeafCount();

  // Walk level by level: positions whose sibling is not in the covered
  // set contribute one sibling hash (unless the sibling is the
  // duplicate-last padding, which the verifier re-derives itself).
  std::vector<uint64_t> covered = indices;
  for (size_t level = 0; level + 1 < tree.Depth(); ++level) {
    uint64_t level_size = tree.LevelSize(level);
    std::vector<uint64_t> parents;
    size_t i = 0;
    while (i < covered.size()) {
      uint64_t pos = covered[i];
      if (pos % 2 == 0 && i + 1 < covered.size() &&
          covered[i + 1] == pos + 1) {
        // Both children covered; no external sibling needed.
        i += 2;
      } else {
        uint64_t sibling = pos ^ 1;
        if (sibling < level_size) {
          proof.siblings.push_back(tree.NodeAt(level, sibling));
        }
        // sibling >= level_size: duplicate-last padding, re-derivable.
        i += 1;
      }
      parents.push_back(pos / 2);
    }
    covered = std::move(parents);
  }
  return proof;
}

bool VerifyMultiProof(const std::vector<std::pair<uint64_t, Bytes>>& leaves,
                      const MerkleMultiProof& proof,
                      const Hash256& expected_root) {
  if (leaves.empty() || proof.leaf_count == 0) return false;

  // Seed the walk with the leaf hashes, sorted and deduplicated by index.
  std::map<uint64_t, Hash256> covered;
  for (const auto& [index, data] : leaves) {
    if (index >= proof.leaf_count) return false;
    if (!covered.emplace(index, MerkleTree::HashLeaf(data)).second) {
      return false;  // Duplicate index.
    }
  }

  size_t next_sibling = 0;
  uint64_t level_size = proof.leaf_count;
  while (level_size > 1) {
    std::map<uint64_t, Hash256> parents;
    for (auto it = covered.begin(); it != covered.end();) {
      uint64_t pos = it->first;
      const Hash256& own = it->second;
      Hash256 left, right;
      auto next = std::next(it);
      if (pos % 2 == 0 && next != covered.end() && next->first == pos + 1) {
        left = own;
        right = next->second;
        std::advance(it, 2);
      } else {
        uint64_t sibling = pos ^ 1;
        Hash256 sib_hash;
        if (sibling < level_size) {
          if (next_sibling >= proof.siblings.size()) return false;
          sib_hash = proof.siblings[next_sibling++];
        } else {
          sib_hash = own;  // Duplicate-last padding.
        }
        if (pos % 2 == 0) {
          left = own;
          right = sib_hash;
        } else {
          left = sib_hash;
          right = own;
        }
        ++it;
      }
      parents.emplace(pos / 2, MerkleTree::HashInterior(left, right));
    }
    covered = std::move(parents);
    level_size = (level_size + 1) / 2;
  }
  if (next_sibling != proof.siblings.size()) return false;  // Unused hashes.
  return covered.size() == 1 && covered.begin()->second == expected_root;
}

}  // namespace wedge
