#ifndef WEDGEBLOCK_MERKLE_MULTI_PROOF_H_
#define WEDGEBLOCK_MERKLE_MULTI_PROOF_H_

#include "merkle/merkle_tree.h"

namespace wedge {

/// A batched Merkle proof authenticating SEVERAL leaves of one tree at
/// once. Sibling hashes shared between the individual authentication
/// paths are included only once, so proving k leaves costs far less than
/// k single proofs — the auditor's range verification (Figure 9) reads
/// whole batches, which is exactly this access pattern. An extension of
/// the paper's stage-1 proof machinery (§7.3 authenticated structures).
struct MerkleMultiProof {
  uint64_t leaf_count = 0;          ///< Tree's (unpadded) leaf count.
  std::vector<Hash256> siblings;    ///< In deterministic traversal order.

  Bytes Serialize() const;
  static Result<MerkleMultiProof> Deserialize(const Bytes& b);

  bool operator==(const MerkleMultiProof& o) const {
    return leaf_count == o.leaf_count && siblings == o.siblings;
  }
};

/// Builds a multi-proof for the given leaf indices (need not be sorted;
/// duplicates rejected). Fails on out-of-range indices or empty input.
Result<MerkleMultiProof> BuildMultiProof(const MerkleTree& tree,
                                         std::vector<uint64_t> indices);

/// Verifies `leaves` (pairs of index and raw leaf bytes) against
/// `expected_root` using the multi-proof. Order-insensitive in the input;
/// returns false on any inconsistency (wrong data, wrong index, wrong or
/// truncated proof).
bool VerifyMultiProof(const std::vector<std::pair<uint64_t, Bytes>>& leaves,
                      const MerkleMultiProof& proof,
                      const Hash256& expected_root);

}  // namespace wedge

#endif  // WEDGEBLOCK_MERKLE_MULTI_PROOF_H_
