#include "net/fault_transport.h"

namespace wedge {

FaultyTransport::FaultyTransport(FaultSpec spec)
    : spec_(spec), rng_(spec.seed) {}

bool FaultyTransport::PartitionedLocked(const std::string& endpoint) const {
  return partitioned_.count("*") > 0 || partitioned_.count(endpoint) > 0;
}

bool FaultyTransport::AllowConnect(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (PartitionedLocked(endpoint) || rng_.Bernoulli(spec_.connect_refuse_rate)) {
    ++counters_.refused_connects;
    return false;
  }
  return true;
}

FaultyTransport::SendDecision FaultyTransport::OnSend(
    const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  SendDecision decision;
  if (PartitionedLocked(endpoint)) {
    ++counters_.dropped_sends;
    decision.action = SendAction::kDrop;
    return decision;
  }
  // Fixed draw order (delay, drop, duplicate) keeps the schedule a pure
  // function of the seed and the send sequence.
  if (rng_.Bernoulli(spec_.send_delay_rate) &&
      spec_.send_delay_max >= spec_.send_delay_min) {
    decision.delay = rng_.Range(spec_.send_delay_min, spec_.send_delay_max);
    if (decision.delay > 0) ++counters_.delayed_sends;
  }
  if (rng_.Bernoulli(spec_.send_drop_rate)) {
    ++counters_.dropped_sends;
    decision.action = SendAction::kDrop;
    return decision;
  }
  if (rng_.Bernoulli(spec_.send_duplicate_rate)) {
    ++counters_.duplicated_sends;
    decision.action = SendAction::kDuplicate;
  }
  return decision;
}

void FaultyTransport::Partition(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_.insert(endpoint);
}

void FaultyTransport::Heal(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_.erase(endpoint);
}

void FaultyTransport::HealAll() {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_.clear();
}

bool FaultyTransport::IsPartitioned(const std::string& endpoint) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PartitionedLocked(endpoint);
}

FaultyTransport::Counters FaultyTransport::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace wedge
