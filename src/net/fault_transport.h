#ifndef WEDGEBLOCK_NET_FAULT_TRANSPORT_H_
#define WEDGEBLOCK_NET_FAULT_TRANSPORT_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "common/random.h"
#include "net/sim_network.h"

namespace wedge {

/// Probabilistic fault rates for a FaultyTransport. All decisions are drawn
/// from one seeded Rng, so a fixed (seed, call sequence) pair replays the
/// exact same fault schedule — chaos runs are reproducible bit-for-bit.
struct FaultSpec {
  uint64_t seed = 1;
  /// Probability that a dial attempt is refused outright (as if the peer's
  /// listener were down), independent of scripted partitions.
  double connect_refuse_rate = 0;
  /// Probability that a frame send kills the connection instead of
  /// delivering (models a mid-stream RST / lossy link that TCP gives up on).
  double send_drop_rate = 0;
  /// Probability that a frame send is delayed by a uniform draw from
  /// [send_delay_min, send_delay_max] before hitting the wire.
  double send_delay_rate = 0;
  Micros send_delay_min = 0;
  Micros send_delay_max = 0;
  /// Probability that a frame is written twice back-to-back. The receiver
  /// must treat the second copy as a stale rpc_id and discard it.
  double send_duplicate_rate = 0;
};

/// Deterministic, seeded network-fault model shared by TcpNodeClient
/// (via TcpClientConfig::faults) and in-process tests. The transport only
/// *decides* — the caller enacts the decision (sleep for a delay, shutdown
/// for a drop, double-write for a duplicate) — so the same object can sit
/// under real sockets or a purely in-memory harness.
///
/// Scripted partitions layer on top of the probabilistic spec: while an
/// endpoint is partitioned, every dial is refused and every send is
/// dropped, deterministically, until Heal()/HealAll(). The wildcard
/// endpoint "*" partitions everything (a full network freeze).
///
/// Thread-safe: all methods may be called from concurrent connections.
class FaultyTransport {
 public:
  explicit FaultyTransport(FaultSpec spec);

  enum class SendAction { kDeliver, kDrop, kDuplicate };
  struct SendDecision {
    SendAction action = SendAction::kDeliver;
    Micros delay = 0;  ///< Sleep this long before enacting `action`.
  };

  /// Returns false when the dial must fail as connection-refused.
  bool AllowConnect(const std::string& endpoint);
  /// Decides the fate of one outbound frame to `endpoint`.
  SendDecision OnSend(const std::string& endpoint);

  /// Scripted partition control. `endpoint` is "host:port", or "*" to cut
  /// every link at once.
  void Partition(const std::string& endpoint);
  void Heal(const std::string& endpoint);
  void HealAll();
  bool IsPartitioned(const std::string& endpoint) const;

  struct Counters {
    uint64_t refused_connects = 0;
    uint64_t dropped_sends = 0;
    uint64_t delayed_sends = 0;
    uint64_t duplicated_sends = 0;
  };
  Counters counters() const;

 private:
  bool PartitionedLocked(const std::string& endpoint) const;

  mutable std::mutex mu_;
  const FaultSpec spec_;
  Rng rng_;
  std::set<std::string> partitioned_;
  Counters counters_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_NET_FAULT_TRANSPORT_H_
