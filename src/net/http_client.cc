#include "net/http_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace wedge {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

int RemainingMs(Micros deadline) {
  Micros now = RealClock::Global()->NowMicros();
  if (now >= deadline) return 0;
  Micros left = deadline - now;
  return static_cast<int>(left / kMicrosPerMilli) + 1;
}

}  // namespace

Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path, Micros timeout) {
  const Micros deadline = RealClock::Global()->NowMicros() + timeout;

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host address " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    close(fd);
    return s;
  }
  pollfd pfd{fd, POLLOUT, 0};
  if (poll(&pfd, 1, RemainingMs(deadline)) <= 0) {
    close(fd);
    return Status::DeadlineExceeded("connect timeout to " + host + ":" +
                                    std::to_string(port));
  }
  int err = 0;
  socklen_t errlen = sizeof(err);
  getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
  if (err != 0) {
    close(fd);
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(err));
  }

  std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pfd.events = POLLOUT;
        if (poll(&pfd, 1, RemainingMs(deadline)) <= 0) {
          close(fd);
          return Status::DeadlineExceeded("send timeout");
        }
        continue;
      }
      if (errno == EINTR) continue;
      Status s = Errno("send");
      close(fd);
      return s;
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n == 0) break;  // EOF: HTTP/1.0 close delimits the body.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pfd.events = POLLIN;
        if (poll(&pfd, 1, RemainingMs(deadline)) <= 0) {
          close(fd);
          return Status::DeadlineExceeded("read timeout");
        }
        continue;
      }
      if (errno == EINTR) continue;
      Status s = Errno("read");
      close(fd);
      return s;
    }
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  // Status line: "HTTP/1.x NNN reason".
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Corruption("malformed http response");
  }
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status::Corruption("malformed http status line");
  }
  int status = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    if (raw[i] < '0' || raw[i] > '9') {
      return Status::Corruption("malformed http status code");
    }
    status = status * 10 + (raw[i] - '0');
  }
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Corruption("http response missing header terminator");
  }
  HttpResponse resp;
  resp.status = status;
  resp.body = raw.substr(header_end + 4);
  return resp;
}

}  // namespace wedge
