#ifndef WEDGEBLOCK_NET_HTTP_CLIENT_H_
#define WEDGEBLOCK_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/result.h"

namespace wedge {

/// Response to one HttpGet: parsed status line plus the raw body.
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP/1.0 GET against an admin endpoint — one
/// request, read to EOF, parse the status line, return the body. This is
/// the scrape side of the observability plane (fleetmon, the chaos
/// harness, tests); it deliberately supports nothing beyond what the
/// AdminHttpServer emits: no redirects, no chunked encoding, no
/// keep-alive. Transport failures and timeouts return typed errors.
Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path,
                             Micros timeout = 5 * kMicrosPerSecond);

}  // namespace wedge

#endif  // WEDGEBLOCK_NET_HTTP_CLIENT_H_
