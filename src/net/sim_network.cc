#include "net/sim_network.h"

#include <algorithm>

namespace wedge {

Micros SimLink::DelayFor(size_t size_bytes) {
  Micros transmission = 0;
  if (config_.bandwidth_bytes_per_sec > 0) {
    transmission = static_cast<Micros>(
        (static_cast<double>(size_bytes) / config_.bandwidth_bytes_per_sec) *
        kMicrosPerSecond);
  }
  Micros jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<Micros>(rng_.Uniform(2 * config_.jitter + 1)) -
             config_.jitter;
  }
  Micros total = config_.base_latency + transmission + jitter;
  return total < 0 ? 0 : total;
}

bool SimLink::ShouldDrop() { return rng_.Bernoulli(config_.drop_probability); }

void MessageBus::RegisterEndpoint(const std::string& name, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_[name] = std::move(handler);
}

Result<Micros> MessageBus::Send(const std::string& from, const std::string& to,
                                Bytes payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sent_counter_ != nullptr) sent_counter_->Add(1);
  if (link_.ShouldDrop()) {
    if (dropped_counter_ != nullptr) dropped_counter_->Add(1);
    return Status::Unavailable("message dropped by the network");
  }
  Micros delay = link_.DelayFor(payload.size());
  if (delay_hist_ != nullptr) delay_hist_->Record(delay);
  Micros deliver_at = clock_->NowMicros() + delay;
  queue_.emplace(deliver_at,
                 InFlightMessage{from, to, std::move(payload)});
  return deliver_at;
}

int MessageBus::DeliverDue() {
  int delivered = 0;
  for (;;) {
    InFlightMessage msg;
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = queue_.begin();
      if (it == queue_.end() || it->first > clock_->NowMicros()) break;
      msg = std::move(it->second);
      queue_.erase(it);
      auto ep = endpoints_.find(msg.to);
      if (ep == endpoints_.end()) continue;  // Dead endpoint: drop.
      handler = ep->second;
    }
    handler(msg.from, msg.payload);
    if (delivered_counter_ != nullptr) delivered_counter_->Add(1);
    ++delivered;
  }
  return delivered;
}

bool MessageBus::Step() {
  Micros next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    next = queue_.begin()->first;
  }
  if (next > clock_->NowMicros()) {
    clock_->SetMicros(next);
  }
  DeliverDue();
  return true;
}

size_t MessageBus::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SignedEnvelope SignedEnvelope::Create(const KeyPair& key, Bytes payload) {
  SignedEnvelope env;
  env.sender = key.address();
  env.payload = std::move(payload);
  Bytes material;
  Append(material, env.sender.ToBytes());
  PutBytes(material, env.payload);
  env.signature = EcdsaSign(key.private_key(), Sha256::Digest(material));
  return env;
}

bool SignedEnvelope::Verify() const {
  Bytes material;
  Append(material, sender.ToBytes());
  PutBytes(material, payload);
  return RecoverSigner(Sha256::Digest(material), signature) == sender;
}

Bytes SignedEnvelope::Serialize() const {
  Bytes out;
  Append(out, sender.ToBytes());
  PutBytes(out, payload);
  Append(out, signature.Serialize());
  return out;
}

Result<SignedEnvelope> SignedEnvelope::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  SignedEnvelope env;
  WEDGE_ASSIGN_OR_RETURN(Bytes addr, reader.ReadRaw(20));
  std::copy(addr.begin(), addr.end(), env.sender.bytes.begin());
  WEDGE_ASSIGN_OR_RETURN(env.payload, reader.ReadBytes());
  WEDGE_ASSIGN_OR_RETURN(Bytes sig, reader.ReadRaw(65));
  WEDGE_ASSIGN_OR_RETURN(env.signature, EcdsaSignature::Deserialize(sig));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after envelope");
  }
  return env;
}

}  // namespace wedge
