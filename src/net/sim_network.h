#ifndef WEDGEBLOCK_NET_SIM_NETWORK_H_
#define WEDGEBLOCK_NET_SIM_NETWORK_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "crypto/ecdsa.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Link parameters for the simulated client <-> Offchain Node network.
/// The paper's prototype ran across two Chameleon Cloud machines; this
/// model reproduces the same asynchronous request/response behaviour with
/// configurable delay, jitter, bandwidth and message drops (the latter
/// drives the omission-attack liveness experiments, §4.7).
struct NetworkConfig {
  Micros base_latency = 200;               ///< One-way propagation delay.
  Micros jitter = 50;                      ///< Uniform +/- jitter.
  uint64_t bandwidth_bytes_per_sec = 1'000'000'000;  ///< 1 GB/s LAN.
  double drop_probability = 0.0;           ///< Per-message drop chance.
};

/// Computes message transmission delays for a link.
class SimLink {
 public:
  SimLink(const NetworkConfig& config, uint64_t rng_seed)
      : config_(config), rng_(rng_seed) {}

  /// One-way delivery delay for a message of `size_bytes`, or a NotFound
  /// style drop (empty optional semantics expressed via Result).
  Micros DelayFor(size_t size_bytes);

  /// True when this message is dropped by the (possibly malicious) link.
  bool ShouldDrop();

  const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
  Rng rng_;
};

/// A deterministic discrete-event message bus over the SimClock.
///
/// Endpoints register handlers by name; Send() schedules delivery at
/// now + link delay; DeliverDue() dispatches everything whose delivery
/// time has passed. Used by liveness/omission tests and the replication
/// model — the hot stage-1 path measures real compute and bypasses it.
class MessageBus {
 public:
  using Handler = std::function<void(const std::string& from, const Bytes&)>;

  /// With `telemetry`, the bus records a `wedge.net.delivery_delay_us`
  /// histogram plus msgs_sent / msgs_delivered / msgs_dropped counters.
  MessageBus(SimClock* clock, const NetworkConfig& config, uint64_t seed,
             Telemetry* telemetry = nullptr)
      : clock_(clock), link_(config, seed) {
    if (telemetry != nullptr) {
      sent_counter_ = telemetry->metrics.GetCounter("wedge.net.msgs_sent");
      delivered_counter_ =
          telemetry->metrics.GetCounter("wedge.net.msgs_delivered");
      dropped_counter_ =
          telemetry->metrics.GetCounter("wedge.net.msgs_dropped");
      delay_hist_ =
          telemetry->metrics.GetHistogram("wedge.net.delivery_delay_us");
    }
  }

  /// Registers (or replaces) the handler for endpoint `name`.
  void RegisterEndpoint(const std::string& name, Handler handler);

  /// Schedules delivery of `payload` to endpoint `to`. Returns the
  /// scheduled delivery time, or Unavailable when the (possibly
  /// malicious) link dropped the message.
  Result<Micros> Send(const std::string& from, const std::string& to,
                      Bytes payload);

  /// Delivers every message whose delivery time has passed on the clock.
  /// Returns the number of messages delivered.
  int DeliverDue();

  /// Advances the clock to the next scheduled delivery (if any) and
  /// delivers it. Returns false when no messages are in flight.
  bool Step();

  size_t InFlight() const;

 private:
  struct InFlightMessage {
    std::string from;
    std::string to;
    Bytes payload;
  };

  SimClock* clock_;
  SimLink link_;
  Counter* sent_counter_ = nullptr;
  Counter* delivered_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Histogram* delay_hist_ = nullptr;
  mutable std::mutex mu_;
  std::map<std::string, Handler> endpoints_;
  std::multimap<Micros, InFlightMessage> queue_;
};

/// A signed message envelope: the paper assumes every exchanged message is
/// cryptographically signed (§3.1). Wraps (sender address, payload) with an
/// ECDSA signature over their canonical encoding.
struct SignedEnvelope {
  Address sender;
  Bytes payload;
  EcdsaSignature signature;

  /// Signs `payload` with `key` and builds the envelope.
  static SignedEnvelope Create(const KeyPair& key, Bytes payload);

  /// True iff the signature verifies against the claimed sender address.
  bool Verify() const;

  Bytes Serialize() const;
  static Result<SignedEnvelope> Deserialize(const Bytes& b);
};

}  // namespace wedge

#endif  // WEDGEBLOCK_NET_SIM_NETWORK_H_
