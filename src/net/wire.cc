#include "net/wire.h"

#include <cstring>

namespace wedge {

Bytes EncodeFrame(const Bytes& payload) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  Append(out, payload);
  return out;
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact once the consumed prefix dominates, keeping the buffer small
  // without a memmove per frame.
  if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + pos_);
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Result<bool> FrameDecoder::Next(Bytes* out) {
  if (poisoned_) {
    return Status::Corruption("frame stream already poisoned");
  }
  if (buffered() < kFrameHeaderBytes) return false;
  const uint8_t* head = buffer_.data() + pos_;
  uint32_t magic = (uint32_t{head[0]} << 24) | (uint32_t{head[1]} << 16) |
                   (uint32_t{head[2]} << 8) | uint32_t{head[3]};
  uint32_t length = (uint32_t{head[4]} << 24) | (uint32_t{head[5]} << 16) |
                    (uint32_t{head[6]} << 8) | uint32_t{head[7]};
  if (magic != kFrameMagic) {
    poisoned_ = true;
    return Status::Corruption("bad frame magic");
  }
  if (length > max_frame_bytes_) {
    poisoned_ = true;
    return Status::OutOfRange("frame length " + std::to_string(length) +
                              " exceeds limit " +
                              std::to_string(max_frame_bytes_));
  }
  if (buffered() < kFrameHeaderBytes + length) return false;
  out->assign(head + kFrameHeaderBytes, head + kFrameHeaderBytes + length);
  pos_ += kFrameHeaderBytes + length;
  return true;
}

Bytes RpcRequest::Encode() const {
  Bytes out;
  PutU64(out, rpc_id);
  PutString(out, op);
  PutBytes(out, body);
  if (trace_id != 0) {
    PutU32(out, kTraceExtMagic);
    PutU64(out, trace_id);
    PutString(out, origin);
  }
  return out;
}

Result<RpcRequest> RpcRequest::Decode(const Bytes& payload) {
  ByteReader reader(payload);
  RpcRequest req;
  WEDGE_ASSIGN_OR_RETURN(req.rpc_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(req.op, reader.ReadString());
  if (req.op.size() > kMaxOpBytes) {
    return Status::OutOfRange("rpc op name too long");
  }
  WEDGE_ASSIGN_OR_RETURN(req.body, reader.ReadBytes());
  if (reader.AtEnd()) return req;  // Legacy frame: untraced.
  WEDGE_ASSIGN_OR_RETURN(uint32_t ext_magic, reader.ReadU32());
  if (ext_magic != kTraceExtMagic) {
    return Status::InvalidArgument("trailing bytes after rpc request");
  }
  WEDGE_ASSIGN_OR_RETURN(req.trace_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(req.origin, reader.ReadString());
  if (req.origin.size() > kMaxTraceOriginBytes) {
    return Status::OutOfRange("trace origin too long");
  }
  if (req.trace_id == 0) {
    return Status::InvalidArgument("trace extension with zero trace_id");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after rpc request");
  }
  return req;
}

RpcResponse RpcResponse::Success(uint64_t id, Bytes body) {
  RpcResponse resp;
  resp.rpc_id = id;
  resp.ok = true;
  resp.body = std::move(body);
  return resp;
}

RpcResponse RpcResponse::Failure(uint64_t id, std::string error) {
  RpcResponse resp;
  resp.rpc_id = id;
  resp.ok = false;
  resp.error = std::move(error);
  return resp;
}

Bytes RpcResponse::Encode() const {
  Bytes out;
  PutU64(out, rpc_id);
  out.push_back(ok ? 1 : 0);
  if (ok) {
    PutBytes(out, body);
  } else {
    PutString(out, error);
  }
  return out;
}

Result<RpcResponse> RpcResponse::Decode(const Bytes& payload) {
  ByteReader reader(payload);
  RpcResponse resp;
  WEDGE_ASSIGN_OR_RETURN(resp.rpc_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(Bytes flag, reader.ReadRaw(1));
  resp.ok = flag[0] != 0;
  if (resp.ok) {
    WEDGE_ASSIGN_OR_RETURN(resp.body, reader.ReadBytes());
  } else {
    WEDGE_ASSIGN_OR_RETURN(resp.error, reader.ReadString());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after rpc response");
  }
  return resp;
}

}  // namespace wedge
