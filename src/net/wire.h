#ifndef WEDGEBLOCK_NET_WIRE_H_
#define WEDGEBLOCK_NET_WIRE_H_

#include <string>
#include <string_view>

#include "common/bytes.h"

namespace wedge {

/// Shared RPC wire protocol for WedgeBlock's client <-> Offchain Node
/// boundary. Both transports — the simulated MessageBus (core/remote) and
/// the real TCP stack (rpc/) — speak exactly this protocol, so a byte
/// stream captured on one decodes identically on the other:
///
///   frame:    [u32 magic "WDGB"][u32 payload length][payload]
///   payload:  SignedEnvelope::Serialize() (sender, signed RPC message)
///   request:  [u64 rpc_id][string op][bytes body]
///   response: [u64 rpc_id][u8 ok][bytes body | string error]
///
/// The message-oriented sim bus carries bare envelope payloads (framing is
/// the bus's job); the byte-stream TCP transport adds the frame header.
/// Every decoder here is bounds-checked and returns a typed error for
/// truncated, oversized or garbage input — a malformed frame must never
/// crash a server (satellite hardening task, ISSUE 3).

/// Frame header magic: rejects non-WedgeBlock traffic (and most stream
/// desynchronization) before any allocation happens.
constexpr uint32_t kFrameMagic = 0x57444742;  // "WDGB"
constexpr size_t kFrameHeaderBytes = 8;       // magic + length.

/// Default ceiling for one frame / one sim message. Sized for the paper's
/// worst case (a 2000-entry batch of ~1 KB values plus per-entry Merkle
/// proofs and signatures is a few MB).
constexpr size_t kDefaultMaxFrameBytes = 32u << 20;

/// Hard cap on the RPC op-name length; ops are short identifiers.
constexpr size_t kMaxOpBytes = 64;

/// Tag opening the optional trace-context extension appended after a
/// request body ("TRAC"). Old decoders rejected any trailing bytes, so a
/// tag (rather than a version bump) keeps the extension self-describing:
/// an extension-less encoding is byte-identical to the legacy format and
/// a frame with trailing garbage still fails with a typed error.
constexpr uint32_t kTraceExtMagic = 0x54524143;  // "TRAC"

/// Hard cap on the trace-origin annotation; origins are short labels
/// ("loadgen", "fleetmon", "chaos").
constexpr size_t kMaxTraceOriginBytes = 64;

/// Wraps `payload` in a frame header for a byte-stream transport.
Bytes EncodeFrame(const Bytes& payload);

/// Incremental frame parser for a TCP receive path: feed arbitrary byte
/// chunks, pop complete payloads. Malformed input (bad magic, length over
/// the limit) poisons the decoder — a byte stream cannot be resynchronized
/// after corruption, so the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw received bytes to the internal buffer.
  void Feed(const uint8_t* data, size_t n);

  /// Pops the next complete frame payload into `out`. Returns true when a
  /// frame was produced, false when more bytes are needed, or a typed
  /// error (kCorruption / kOutOfRange) when the stream is malformed.
  Result<bool> Next(Bytes* out);

  /// True once a malformed header has been seen; every later Next() fails.
  bool poisoned() const { return poisoned_; }
  /// Bytes buffered but not yet returned as frames.
  size_t buffered() const { return buffer_.size() - pos_; }

 private:
  size_t max_frame_bytes_;
  Bytes buffer_;
  size_t pos_ = 0;  // Consumed prefix of buffer_ (compacted lazily).
  bool poisoned_ = false;
};

/// One RPC request as carried inside a SignedEnvelope payload.
///
/// Wire layout: [u64 rpc_id][string op][bytes body] plus an optional
/// trace-context extension [u32 "TRAC"][u64 trace_id][string origin].
/// The extension is emitted only when trace_id != 0, so untraced
/// requests encode byte-identically to the pre-extension format and old
/// frames decode unchanged (trace_id defaults to 0 = untraced).
struct RpcRequest {
  uint64_t rpc_id = 0;
  std::string op;
  Bytes body;
  uint64_t trace_id = 0;  ///< Cross-process trace id (0 = untraced).
  std::string origin;     ///< Trace origin label; carried iff traced.

  Bytes Encode() const;
  /// Rejects truncated input, oversized op names and trailing bytes.
  static Result<RpcRequest> Decode(const Bytes& payload);
};

/// One RPC response as carried inside a SignedEnvelope payload.
struct RpcResponse {
  uint64_t rpc_id = 0;
  bool ok = false;
  Bytes body;         ///< Set when ok.
  std::string error;  ///< Set when !ok.

  static RpcResponse Success(uint64_t id, Bytes body);
  static RpcResponse Failure(uint64_t id, std::string error);

  Bytes Encode() const;
  /// Rejects truncated input and trailing bytes.
  static Result<RpcResponse> Decode(const Bytes& payload);
};

}  // namespace wedge

#endif  // WEDGEBLOCK_NET_WIRE_H_
