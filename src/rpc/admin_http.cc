#include "rpc/admin_http.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "telemetry/export.h"

namespace wedge {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string MakeResponse(int status, const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " +
                    ReasonPhrase(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

AdminHttpServer::AdminHttpServer(Telemetry* telemetry, AdminHttpConfig config,
                                 HealthFn health)
    : telemetry_(telemetry),
      config_(std::move(config)),
      health_(std::move(health)) {}

AdminHttpServer::~AdminHttpServer() { Shutdown(); }

Status AdminHttpServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  stop_.store(false);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + config_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind admin " + config_.bind_address + ":" +
                     std::to_string(config_.port));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 64) < 0) {
    Status s = Errno("listen admin");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(admin listen)");

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) return Errno("admin epoll setup");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void AdminHttpServer::Shutdown() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  (void)!write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  for (auto& [fd, conn] : conns_) close(fd);
  conns_.clear();
  if (wake_fd_ >= 0) close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) close(epoll_fd_);
  epoll_fd_ = -1;
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

void AdminHttpServer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    epoll_event events[32];
    int n = epoll_wait(epoll_fd_, events, 32, 500);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t v;
        (void)!read(wake_fd_, &v, sizeof(v));
        continue;
      }
      if (fd == listen_fd_) {
        for (;;) {
          int cfd = accept4(listen_fd_, nullptr, nullptr,
                            SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          int one = 1;
          setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          auto conn = std::make_unique<Connection>();
          conn->fd = cfd;
          epoll_event cev{};
          cev.events = EPOLLIN | EPOLLRDHUP;
          cev.data.fd = cfd;
          if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &cev) < 0) {
            close(cfd);
            continue;
          }
          conns_.emplace(cfd, std::move(conn));
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Connection& conn = *it->second;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushOut(conn);
        if (alive && conn.responding && conn.out_pos == conn.out.size()) {
          alive = false;  // Reply fully flushed: HTTP/1.0 close.
        }
      }
      if (alive && (events[i].events & (EPOLLIN | EPOLLRDHUP)) &&
          !conn.responding) {
        char buf[4096];
        for (;;) {
          ssize_t r = read(fd, buf, sizeof(buf));
          if (r == 0) {
            alive = false;  // EOF before a full request head.
            break;
          }
          if (r < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            alive = false;
            break;
          }
          conn.in.append(buf, static_cast<size_t>(r));
          if (conn.in.size() > config_.max_request_bytes) {
            alive = false;  // Oversized head: drop without a reply.
            break;
          }
          if (MaybeRespond(conn)) {
            alive = FlushOut(conn);
            if (alive && conn.out_pos == conn.out.size()) alive = false;
            break;
          }
        }
      }
      if (alive) {
        epoll_event cev{};
        cev.events = EPOLLRDHUP |
                     (conn.responding ? EPOLLOUT : EPOLLIN);
        cev.data.fd = fd;
        epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &cev);
      } else {
        CloseConn(fd);
      }
    }
  }
}

bool AdminHttpServer::MaybeRespond(Connection& conn) {
  size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // Tolerate bare-LF clients for the terminator too.
    head_end = conn.in.find("\n\n");
    if (head_end == std::string::npos) return false;
  }
  conn.out = Render(conn.in.substr(0, head_end));
  conn.out_pos = 0;
  conn.responding = true;
  requests_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string AdminHttpServer::Render(const std::string& request_head) {
  // Request line: METHOD SP PATH SP HTTP/x.y
  size_t line_end = request_head.find("\r\n");
  if (line_end == std::string::npos) line_end = request_head.find('\n');
  if (line_end == std::string::npos) line_end = request_head.size();
  const std::string line = request_head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    return MakeResponse(400, "text/plain", "bad request\n");
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET") {
    return MakeResponse(405, "text/plain", "only GET is served\n");
  }
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body = Body(path, &status, &content_type);
  return MakeResponse(status, content_type, body);
}

std::string AdminHttpServer::Body(const std::string& path, int* status,
                                  std::string* content_type) {
  if (path == "/metrics") {
    return MetricsToPrometheus(telemetry_->metrics.Snapshot());
  }
  if (path == "/metrics.json") {
    *content_type = "application/json";
    return MetricsToJsonLines(telemetry_->metrics.Snapshot());
  }
  if (path == "/tracez") {
    *content_type = "application/json";
    return TraceToJsonLines(telemetry_->tracer.Recent(config_.tracez_spans));
  }
  if (path == "/healthz") {
    AdminHealth health;
    if (health_) {
      health = health_();
    } else {
      health.ready = true;
    }
    if (!health.ready) *status = 503;
    *content_type = "application/json";
    return std::string("{\"ready\": ") + (health.ready ? "true" : "false") +
           ", \"detail\": " + health.detail + "}\n";
  }
  *status = 404;
  return "unknown path " + path + "\n";
}

bool AdminHttpServer::FlushOut(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    ssize_t n = send(conn.fd, conn.out.data() + conn.out_pos,
                     conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn.out_pos += static_cast<size_t>(n);
  }
  return true;
}

void AdminHttpServer::CloseConn(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  auto it = conns_.find(fd);
  if (it != conns_.end()) conns_.erase(it);
  close(fd);
}

}  // namespace wedge
