#ifndef WEDGEBLOCK_RPC_ADMIN_HTTP_H_
#define WEDGEBLOCK_RPC_ADMIN_HTTP_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "telemetry/telemetry.h"

namespace wedge {

struct AdminHttpConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// A request whose header section exceeds this closes the connection.
  size_t max_request_bytes = 8192;
  /// Spans served by /tracez (the newest ones from the tracer ring).
  size_t tracez_spans = 256;
};

/// Readiness answer for /healthz: `ready` selects 200 vs 503, `detail`
/// is a rendered JSON object appended to the response body (per-shard
/// recovery state, aggregator backlog, ...). Must be thread-safe.
struct AdminHealth {
  bool ready = false;
  std::string detail = "{}";
};

/// Live observability endpoint for a wedgeblockd process: a minimal
/// HTTP/1.0 listener (GET only, Connection: close) on its own epoll-run
/// thread, serving the process's Telemetry without touching the RPC data
/// plane:
///
///   /metrics       Prometheus text exposition (MetricsToPrometheus)
///   /metrics.json  JSONL metrics snapshot (MetricsToJsonLines — the
///                  lossless, bucket-carrying format fleetmon merges)
///   /healthz       200/503 readiness from the health callback
///   /tracez        newest spans from the tracer ring, as JSONL
///
/// Robustness: garbage input gets a clean 400 and close; unknown paths
/// 404; non-GET methods 405; oversized headers close the connection. No
/// request can block the loop — reads and writes are nonblocking with
/// per-connection buffers, and response bodies are rendered up front.
class AdminHttpServer {
 public:
  using HealthFn = std::function<AdminHealth()>;

  /// `telemetry` must outlive the server. `health` may be null (then
  /// /healthz always reports ready once the server is up).
  AdminHttpServer(Telemetry* telemetry, AdminHttpConfig config,
                  HealthFn health = nullptr);
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  Status Start();
  void Shutdown();  ///< Idempotent; the destructor calls it.

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::string in;    ///< Request bytes until the blank line.
    std::string out;   ///< Rendered response awaiting the socket.
    size_t out_pos = 0;
    bool responding = false;  ///< Request parsed; draining the reply.
  };

  void Loop();
  /// True once a full request head is buffered; renders the response.
  bool MaybeRespond(Connection& conn);
  std::string Render(const std::string& request_head);
  std::string Body(const std::string& path, int* status,
                   std::string* content_type);
  bool FlushOut(Connection& conn);
  void CloseConn(int fd);

  Telemetry* const telemetry_;
  const AdminHttpConfig config_;
  const HealthFn health_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_RPC_ADMIN_HTTP_H_
