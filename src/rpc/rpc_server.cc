#include "rpc/rpc_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace wedge {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

RpcServer::RpcServer(OffchainNode* node, KeyPair transport_key,
                     RpcServerConfig config, Telemetry* telemetry)
    : RpcServer(
          [node](std::string_view op, const Bytes& body) {
            return DispatchNodeRpc(*node, op, body);
          },
          std::move(transport_key), std::move(config), telemetry) {}

RpcServer::RpcServer(Handler handler, KeyPair transport_key,
                     RpcServerConfig config, Telemetry* telemetry)
    : handler_(std::move(handler)),
      key_(std::move(transport_key)),
      config_(std::move(config)),
      owned_telemetry_(telemetry == nullptr ? std::make_unique<Telemetry>()
                                            : nullptr),
      telemetry_(telemetry == nullptr ? owned_telemetry_.get() : telemetry) {
  MetricsRegistry& m = telemetry_->metrics;
  connections_gauge_ = m.GetGauge("wedge.rpc.connections");
  accepted_counter_ = m.GetCounter("wedge.rpc.conns_accepted");
  rejected_counter_ = m.GetCounter("wedge.rpc.conns_rejected");
  requests_counter_ = m.GetCounter("wedge.rpc.requests");
  error_responses_counter_ = m.GetCounter("wedge.rpc.responses_error");
  malformed_counter_ = m.GetCounter("wedge.rpc.malformed_frames");
  bytes_in_counter_ = m.GetCounter("wedge.rpc.bytes_in");
  bytes_out_counter_ = m.GetCounter("wedge.rpc.bytes_out");
  append_hist_ = m.GetHistogram("wedge.rpc.append_us");
  read_hist_ = m.GetHistogram("wedge.rpc.read_us");
  read_batch_hist_ = m.GetHistogram("wedge.rpc.read_batch_us");
  slow_requests_counter_ = m.GetCounter("wedge.rpc.slow_requests");
}

Histogram* RpcServer::OpHistogram(const std::string& op) {
  std::lock_guard<std::mutex> lock(op_hist_mu_);
  auto it = op_hists_.find(op);
  if (it != op_hists_.end()) return it->second;
  Histogram* h =
      telemetry_->metrics.GetHistogram("wedge.rpc.op_us{op=" + op + "}");
  op_hists_.emplace(op, h);
  return h;
}

RpcServer::~RpcServer() { Shutdown(); }

Status RpcServer::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  stop_.store(false);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " + config_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("bind " + config_.bind_address + ":" +
                     std::to_string(config_.port));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status s = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");

  accept_wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (accept_wake_fd_ < 0) return Errno("eventfd");

  int n_workers = config_.num_workers < 1 ? 1 : config_.num_workers;
  workers_.clear();
  for (int i = 0; i < n_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (w->epoll_fd < 0 || w->wake_fd < 0) return Errno("worker setup");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_fd;
    epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev);
    workers_.push_back(std::move(w));
  }

  running_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    Worker* worker = w.get();
    worker->thread = std::thread([this, worker] { WorkerLoop(*worker); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void RpcServer::Shutdown() {
  if (!running_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  (void)!write(accept_wake_fd_, &one, sizeof(one));
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    (void)!write(w->wake_fd, &one, sizeof(one));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
    if (w->wake_fd >= 0) close(w->wake_fd);
    if (w->epoll_fd >= 0) close(w->epoll_fd);
  }
  workers_.clear();
  if (accept_wake_fd_ >= 0) close(accept_wake_fd_);
  accept_wake_fd_ = -1;
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
}

void RpcServer::AcceptLoop() {
  int epfd = epoll_create1(EPOLL_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = accept_wake_fd_;
  epoll_ctl(epfd, EPOLL_CTL_ADD, accept_wake_fd_, &ev);

  while (!stop_.load(std::memory_order_acquire)) {
    epoll_event events[16];
    int n = epoll_wait(epfd, events, 16, 500);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd != listen_fd_) continue;  // Wakeup.
      for (;;) {
        int fd = accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN or transient error: wait for epoll.
        if (open_connections_.load(std::memory_order_relaxed) >=
            config_.max_connections) {
          rejected_counter_->Add(1);
          close(fd);
          continue;
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        accepted_counter_->Add(1);
        open_connections_.fetch_add(1, std::memory_order_relaxed);
        connections_gauge_->Add(1);
        Worker& w = *workers_[next_worker_++ % workers_.size()];
        {
          std::lock_guard<std::mutex> lock(w.mu);
          w.incoming.push_back(fd);
        }
        uint64_t v = 1;
        (void)!write(w.wake_fd, &v, sizeof(v));
      }
    }
  }
  close(epfd);
}

void RpcServer::AdoptIncoming(Worker& worker) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    fds.swap(worker.incoming);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Connection>(fd, config_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
      connections_gauge_->Add(-1);
      continue;
    }
    conn->armed_events = ev.events;
    worker.conns.emplace(fd, std::move(conn));
  }
}

void RpcServer::WorkerLoop(Worker& worker) {
  while (!stop_.load(std::memory_order_acquire)) {
    epoll_event events[64];
    int n = epoll_wait(worker.epoll_fd, events, 64, 500);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == worker.wake_fd) {
        uint64_t v;
        (void)!read(worker.wake_fd, &v, sizeof(v));
        AdoptIncoming(worker);
        continue;
      }
      auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;
      Connection& conn = *it->second;
      bool alive = true;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        alive = false;
      }
      if (alive && (events[i].events & EPOLLOUT)) {
        alive = FlushWrites(conn);
        // Backpressure release: resume reading (and serve frames that
        // were already buffered) once the peer drained our replies.
        if (alive && conn.paused &&
            conn.unflushed() < config_.write_high_watermark / 2) {
          conn.paused = false;
          alive = ProcessFrames(worker, conn);
        }
      }
      if (alive && (events[i].events & (EPOLLIN | EPOLLRDHUP))) {
        alive = HandleReadable(worker, conn);
      }
      if (alive) {
        UpdateInterest(worker, conn);
      } else {
        CloseConnection(worker, fd);
      }
    }
  }
  DrainAndCloseAll(worker);
}

bool RpcServer::HandleReadable(Worker& worker, Connection& conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    if (conn.paused) break;  // Backpressure: stop consuming input.
    ssize_t n = read(conn.fd, buf, sizeof(buf));
    if (n == 0) {
      // Peer EOF — but a pipelining client may have half-closed after
      // sending requests whose replies are still queued (or not yet
      // produced). Serve and flush them before the close, otherwise the
      // server acks at the TCP level and then drops the responses.
      DrainConnection(worker, conn,
                      RealClock::Global()->NowMicros() +
                          config_.drain_timeout);
      return false;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    bytes_in_counter_->Add(static_cast<uint64_t>(n));
    conn.decoder.Feed(buf, static_cast<size_t>(n));
    if (!ProcessFrames(worker, conn)) return false;
  }
  return true;
}

bool RpcServer::ProcessFrames(Worker& worker, Connection& conn) {
  (void)worker;
  int served_this_pass = 0;
  for (;;) {
    Bytes payload;
    Result<bool> has = conn.decoder.Next(&payload);
    if (!has.ok()) {
      // Bad magic or oversize length: the stream cannot be resynced.
      malformed_counter_->Add(1);
      return false;
    }
    if (!has.value()) break;
    if (!ServePayload(conn, payload)) return false;
    // Bound the work (and reply memory) one pipelined peer can queue
    // before we push bytes back out.
    if (++served_this_pass >= config_.max_inflight_requests ||
        conn.unflushed() >= config_.write_high_watermark) {
      if (!FlushWrites(conn)) return false;
      served_this_pass = 0;
      if (conn.unflushed() >= config_.write_high_watermark) {
        conn.paused = true;
        break;
      }
    }
  }
  return FlushWrites(conn);
}

bool RpcServer::ServePayload(Connection& conn, const Bytes& payload) {
  auto envelope = SignedEnvelope::Deserialize(payload);
  if (!envelope.ok() || !envelope->Verify()) {
    // A byte-stream peer sending unsigned/forged envelopes is broken or
    // malicious; unlike the lossy sim bus there is nothing to "drop".
    malformed_counter_->Add(1);
    return false;
  }
  auto request = RpcRequest::Decode(envelope->payload);
  if (!request.ok()) {
    malformed_counter_->Add(1);
    ByteReader reader(envelope->payload);
    auto rpc_id = reader.ReadU64();
    if (!rpc_id.ok()) return false;  // Not even correlatable: close.
    error_responses_counter_->Add(1);
    QueueReply(conn, RpcResponse::Failure(rpc_id.value(),
                                          request.status().ToString()));
    return true;
  }

  requests_counter_->Add(1);
  Micros start = RealClock::Global()->NowMicros();
  Result<Bytes> result = Status::Internal("handler not invoked");
  {
    // Install the frame's trace context for the duration of the dispatch:
    // every tracer span the node emits on this thread (ingest, seal,
    // stage1_signed, ...) is stamped with the client's trace_id, which is
    // what stitches the cross-process timeline together.
    ScopedTrace scope(request->trace_id, request->origin);
    if (request->trace_id != 0) {
      telemetry_->tracer.Event(0, trace_stage::kRpcRecv, 0,
                               "op=" + request->op);
    }
    result = handler_(request->op, request->body);
  }
  Micros elapsed = RealClock::Global()->NowMicros() - start;
  if (request->op == kOpAppend || request->op == kOpAppendTenant) {
    append_hist_->Record(elapsed);
  } else if (request->op == kOpRead || request->op == kOpReadTenant ||
             request->op == kOpAggProof) {
    read_hist_->Record(elapsed);
  } else if (request->op == kOpReadBatch ||
             request->op == kOpReadBatchTenant) {
    read_batch_hist_->Record(elapsed);
  }
  OpHistogram(request->op)->Record(elapsed);
  if (config_.slow_request_micros > 0 &&
      elapsed >= config_.slow_request_micros) {
    slow_requests_counter_->Add(1);
    // Tenant ops carry the tenant id as the leading u64 of the body;
    // legacy single-tenant ops serve tenant 0.
    uint64_t tenant = 0;
    if (request->op == kOpAppendTenant || request->op == kOpReadTenant ||
        request->op == kOpReadBatchTenant) {
      ByteReader body_reader(request->body);
      auto t = body_reader.ReadU64();
      if (t.ok()) tenant = t.value();
    }
    int shard = config_.shard_for_tenant ? config_.shard_for_tenant(tenant)
                                         : -1;
    std::fprintf(stderr,
                 "{\"kind\": \"slow_request\", \"op\": \"%s\", "
                 "\"tenant\": %llu, \"shard\": %d, \"trace_id\": %llu, "
                 "\"us\": %lld, \"ok\": %s}\n",
                 request->op.c_str(),
                 static_cast<unsigned long long>(tenant), shard,
                 static_cast<unsigned long long>(request->trace_id),
                 static_cast<long long>(elapsed),
                 result.ok() ? "true" : "false");
  }

  if (result.ok()) {
    QueueReply(conn, RpcResponse::Success(request->rpc_id,
                                          std::move(result).value()));
  } else {
    error_responses_counter_->Add(1);
    QueueReply(conn, RpcResponse::Failure(request->rpc_id,
                                          result.status().ToString()));
  }
  return true;
}

void RpcServer::QueueReply(Connection& conn, const RpcResponse& response) {
  SignedEnvelope envelope = SignedEnvelope::Create(key_, response.Encode());
  Bytes frame = EncodeFrame(envelope.Serialize());
  // Compact the flushed prefix before growing the buffer.
  if (conn.write_pos > 0 && conn.write_pos >= conn.write_buf.size() / 2) {
    conn.write_buf.erase(conn.write_buf.begin(),
                         conn.write_buf.begin() + conn.write_pos);
    conn.write_pos = 0;
  }
  Append(conn.write_buf, frame);
}

bool RpcServer::FlushWrites(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    // MSG_NOSIGNAL: a peer that disappears mid-reply must surface as EPIPE
    // on this connection, not SIGPIPE-kill the server.
    ssize_t n = send(conn.fd, conn.write_buf.data() + conn.write_pos,
                     conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    bytes_out_counter_->Add(static_cast<uint64_t>(n));
    conn.write_pos += static_cast<size_t>(n);
  }
  if (conn.write_pos == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_pos = 0;
  }
  return true;
}

void RpcServer::UpdateInterest(Worker& worker, Connection& conn) {
  uint32_t want = EPOLLRDHUP;
  if (!conn.paused) want |= EPOLLIN;
  if (conn.unflushed() > 0) want |= EPOLLOUT;
  if (want == conn.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.armed_events = want;
}

void RpcServer::CloseConnection(Worker& worker, int fd) {
  epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  worker.conns.erase(fd);
  close(fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  connections_gauge_->Add(-1);
}

void RpcServer::DrainConnection(Worker& worker, Connection& conn,
                                Micros deadline) {
  // Loop because ProcessFrames may re-pause under the write high
  // watermark: serve, flush hard, repeat until the decoder is empty, the
  // socket dies, or the budget runs out.
  for (;;) {
    conn.paused = false;
    bool ok = ProcessFrames(worker, conn);
    while (ok && conn.unflushed() > 0 &&
           RealClock::Global()->NowMicros() < deadline) {
      if (!FlushWrites(conn)) {
        ok = false;
        break;
      }
      if (conn.unflushed() > 0) usleep(1000);
    }
    if (!ok || !conn.paused ||
        RealClock::Global()->NowMicros() >= deadline) {
      break;
    }
  }
}

void RpcServer::DrainAndCloseAll(Worker& worker) {
  // Graceful shutdown must not swallow work the server already took in:
  // every decoded request is served and every queued (signed) reply is
  // flushed within the drain budget before the sockets close.
  Micros deadline = RealClock::Global()->NowMicros() + config_.drain_timeout;
  for (auto& [fd, conn] : worker.conns) {
    DrainConnection(worker, *conn, deadline);
    epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
    connections_gauge_->Add(-1);
  }
  worker.conns.clear();
}

}  // namespace wedge
