#ifndef WEDGEBLOCK_RPC_RPC_SERVER_H_
#define WEDGEBLOCK_RPC_RPC_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/offchain_node.h"
#include "core/rpc_codec.h"
#include "net/sim_network.h"
#include "net/wire.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Tuning knobs for the TCP serving stack.
struct RpcServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker event loops; each owns its own epoll instance and a disjoint
  /// set of connections, so workers never contend on connection state.
  int num_workers = 2;
  /// Frames larger than this poison the connection (see net/wire.h).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Requests decoded per processing pass before the worker forces a
  /// write flush — bounds memory for deeply pipelined clients.
  int max_inflight_requests = 64;
  /// When a connection's pending write buffer grows past this, the worker
  /// stops reading from it (backpressure) until the peer drains replies.
  size_t write_high_watermark = 8u << 20;
  int max_connections = 1024;
  /// Graceful-shutdown budget for flushing already-queued replies.
  Micros drain_timeout = 2 * kMicrosPerSecond;
  /// Requests slower than this (wall clock around dispatch) emit one
  /// structured JSONL line on stderr with op, tenant, shard, trace_id
  /// and duration, and bump wedge.rpc.slow_requests. 0 disables.
  Micros slow_request_micros = 0;
  /// Resolves the shard serving a tenant for the slow-request log (the
  /// sharded daemon binds its engine's router); -1 when unset/unknown.
  std::function<int(uint64_t tenant)> shard_for_tenant;
};

/// Epoll-based TCP RPC server fronting one OffchainNode: the real-transport
/// counterpart of RemoteNodeServer (core/remote.h). One acceptor thread
/// hands connections round-robin to `num_workers` event-loop threads; each
/// connection carries length-prefixed frames (net/wire.h) whose payloads
/// are SignedEnvelope-wrapped RpcRequests, exactly as on the sim bus.
/// Replies are signed with the node operator's transport key.
///
/// Robustness rules (tested by wire_test/rpc_test):
///  - a malformed frame header (bad magic, oversize) closes the connection;
///  - a well-signed but undecodable request gets an error response when
///    its rpc_id prefix is readable, else the connection is closed;
///  - unsigned/forged envelopes close the connection;
///  - the server never crashes on arbitrary bytes.
///
/// Telemetry (`wedge.rpc.*`): connections gauge, conns_accepted /
/// requests / responses_error / malformed_frames / bytes_in / bytes_out
/// counters, and per-op latency histograms (append_us, read_us,
/// read_batch_us) measured on the real clock around dispatch.
class RpcServer {
 public:
  /// Decodes an op body and produces a reply body (or a typed error the
  /// server encodes into the error response). DispatchNodeRpc bound to a
  /// node and DispatchEngineRpc bound to a sharded engine are the two
  /// handlers in the tree; any Result-returning dispatcher works. Must be
  /// thread-safe — every worker calls it concurrently.
  using Handler =
      std::function<Result<Bytes>(std::string_view op, const Bytes& body)>;

  RpcServer(OffchainNode* node, KeyPair transport_key, RpcServerConfig config,
            Telemetry* telemetry = nullptr);
  /// Serves an arbitrary dispatch handler (e.g. a ShardedLogEngine).
  RpcServer(Handler handler, KeyPair transport_key, RpcServerConfig config,
            Telemetry* telemetry = nullptr);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and spawns the acceptor + worker threads.
  Status Start();

  /// Graceful shutdown: stop accepting, flush queued replies (bounded by
  /// config.drain_timeout), close every connection, join all threads.
  /// Idempotent.
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_counter_ == nullptr ? 0 : requests_counter_->Value();
  }

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    Bytes write_buf;       ///< Encoded reply frames awaiting the socket.
    size_t write_pos = 0;  ///< Flushed prefix of write_buf.
    bool paused = false;   ///< EPOLLIN disabled for backpressure.
    uint32_t armed_events = 0;  ///< Events currently registered in epoll.

    explicit Connection(int fd_in, size_t max_frame)
        : fd(fd_in), decoder(max_frame) {}
    size_t unflushed() const { return write_buf.size() - write_pos; }
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: new connections or shutdown.
    std::thread thread;
    std::mutex mu;                   ///< Guards incoming only.
    std::vector<int> incoming;       ///< Accepted fds awaiting adoption.
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
  };

  void AcceptLoop();
  void WorkerLoop(Worker& worker);
  void AdoptIncoming(Worker& worker);
  /// Reads until EAGAIN; returns false when the connection must close.
  bool HandleReadable(Worker& worker, Connection& conn);
  /// Decodes and serves buffered frames; returns false to close.
  bool ProcessFrames(Worker& worker, Connection& conn);
  /// Serves one envelope payload; returns false to close the connection.
  bool ServePayload(Connection& conn, const Bytes& payload);
  void QueueReply(Connection& conn, const RpcResponse& response);
  /// Flushes write_buf until EAGAIN; returns false on socket error.
  bool FlushWrites(Connection& conn);
  /// Serves every frame already decoded off `conn` and pushes the queued
  /// replies out (bounded blocking, until `deadline`). Used on peer EOF
  /// and on shutdown, where the connection is about to close: a request
  /// the server already read must never lose its produced response.
  void DrainConnection(Worker& worker, Connection& conn, Micros deadline);
  void UpdateInterest(Worker& worker, Connection& conn);
  void CloseConnection(Worker& worker, int fd);
  void DrainAndCloseAll(Worker& worker);

  const Handler handler_;
  const KeyPair key_;
  const RpcServerConfig config_;
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* const telemetry_;

  Gauge* connections_gauge_ = nullptr;
  Counter* accepted_counter_ = nullptr;
  Counter* rejected_counter_ = nullptr;
  Counter* requests_counter_ = nullptr;
  Counter* error_responses_counter_ = nullptr;
  Counter* malformed_counter_ = nullptr;
  Counter* bytes_in_counter_ = nullptr;
  Counter* bytes_out_counter_ = nullptr;
  Histogram* append_hist_ = nullptr;
  Histogram* read_hist_ = nullptr;
  Histogram* read_batch_hist_ = nullptr;
  Counter* slow_requests_counter_ = nullptr;

  /// Lazily-resolved per-op latency histograms
  /// (`wedge.rpc.op_us{op=<op>}`). Ops are a small fixed set, so the map
  /// stays tiny; resolved pointers are stable for the registry lifetime.
  Histogram* OpHistogram(const std::string& op);
  mutable std::mutex op_hist_mu_;
  std::unordered_map<std::string, Histogram*> op_hists_;

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<int> open_connections_{0};
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_worker_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_RPC_RPC_SERVER_H_
