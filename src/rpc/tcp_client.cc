#include "rpc/tcp_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace wedge {

TcpNodeClient::TcpNodeClient(KeyPair key, const Address& server_address,
                             TcpClientConfig config)
    : key_(std::move(key)),
      server_address_(server_address),
      config_(std::move(config)),
      endpoint_(config_.host + ":" + std::to_string(config_.port)),
      jitter_rng_(config_.retry_jitter_seed) {
  int n = config_.pool_size < 1 ? 1 : config_.pool_size;
  for (int i = 0; i < n; ++i) pool_.push_back(std::make_unique<Conn>());
}

TcpNodeClient::~TcpNodeClient() { Close(); }

Status TcpNodeClient::Connect() {
  Status last = Status::Ok();
  int up = 0;
  for (auto& conn : pool_) {
    Status s = EnsureConnected(*conn);
    if (s.ok()) {
      ++up;
    } else {
      last = s;
    }
  }
  if (up == 0) {
    return Status::Unavailable("could not reach " + config_.host + ":" +
                               std::to_string(config_.port) + " (" +
                               last.ToString() + ")");
  }
  return Status::Ok();
}

void TcpNodeClient::Close() {
  if (closed_.exchange(true)) return;
  for (auto& conn : pool_) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->fd >= 0) shutdown(conn->fd, SHUT_RDWR);
    }
    if (conn->reader.joinable()) conn->reader.join();
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->fd >= 0) close(conn->fd);
    conn->fd = -1;
    conn->connected = false;
  }
}

Status TcpNodeClient::EnsureConnected(Conn& conn) {
  if (closed_.load()) return Status::FailedPrecondition("client closed");
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    if (conn.connected) return Status::Ok();
    Micros now = RealClock::Global()->NowMicros();
    if (now < conn.next_attempt_at) {
      return Status::Unavailable("connection down, backing off");
    }
    // Claim this dial attempt: concurrent callers back off until it
    // resolves (success resets the backoff state below).
    conn.next_attempt_at =
        now + (conn.backoff > 0 ? conn.backoff : config_.reconnect_backoff_min);
  }
  // The old reader has observed the dead socket (connected was false);
  // join it outside conn.mu — its exit path takes that mutex.
  if (conn.reader.joinable()) conn.reader.join();

  if (config_.faults != nullptr && !config_.faults->AllowConnect(endpoint_)) {
    std::lock_guard<std::mutex> lock(conn.mu);
    conn.backoff = conn.backoff == 0
                       ? config_.reconnect_backoff_min
                       : std::min(conn.backoff * 2,
                                  config_.reconnect_backoff_max);
    conn.next_attempt_at = RealClock::Global()->NowMicros() + conn.backoff;
    return Status::Unavailable("connect " + endpoint_ +
                               ": refused (injected fault)");
  }

  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host " + config_.host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::Unavailable("connect " + config_.host + ":" +
                                   std::to_string(config_.port) + ": " +
                                   strerror(errno));
    close(fd);
    std::lock_guard<std::mutex> lock(conn.mu);
    conn.backoff = conn.backoff == 0
                       ? config_.reconnect_backoff_min
                       : std::min(conn.backoff * 2,
                                  config_.reconnect_backoff_max);
    conn.next_attempt_at = RealClock::Global()->NowMicros() + conn.backoff;
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::lock_guard<std::mutex> write_lock(conn.write_mu);
  std::lock_guard<std::mutex> lock(conn.mu);
  if (closed_.load()) {
    close(fd);
    return Status::FailedPrecondition("client closed");
  }
  if (conn.fd >= 0) {
    close(conn.fd);
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  conn.fd = fd;
  conn.connected = true;
  conn.backoff = 0;
  conn.next_attempt_at = 0;
  conn.reader = std::thread([this, &conn] { ReaderLoop(conn); });
  return Status::Ok();
}

void TcpNodeClient::ReaderLoop(Conn& conn) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    fd = conn.fd;
  }
  FrameDecoder decoder(config_.max_frame_bytes);
  std::vector<uint8_t> buf(64 * 1024);
  bool broken = false;
  while (!broken) {
    ssize_t n = read(fd, buf.data(), buf.size());
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    decoder.Feed(buf.data(), static_cast<size_t>(n));
    for (;;) {
      Bytes payload;
      Result<bool> has = decoder.Next(&payload);
      if (!has.ok()) {
        broken = true;  // Unsyncable garbage from the server side.
        break;
      }
      if (!has.value()) break;
      HandlePayload(conn, payload);
    }
  }
  if (broken) shutdown(fd, SHUT_RDWR);
  FailAllWaiters(conn, Status::Unavailable("connection lost"));
}

void TcpNodeClient::HandlePayload(Conn& conn, const Bytes& payload) {
  auto envelope = SignedEnvelope::Deserialize(payload);
  if (!envelope.ok() || !envelope->Verify() ||
      envelope->sender != server_address_) {
    discarded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto response = RpcResponse::Decode(envelope->payload);
  if (!response.ok()) {
    discarded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::shared_ptr<Waiter> waiter;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    auto it = conn.waiters.find(response->rpc_id);
    if (it != conn.waiters.end()) {
      waiter = it->second;
      conn.waiters.erase(it);
    }
  }
  if (waiter == nullptr) {
    // Stale (timed-out caller already left) or mismatched rpc_id: never
    // deliver it to some other waiter.
    discarded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(waiter->mu);
    waiter->response = std::move(response).value();
    waiter->done = true;
  }
  waiter->cv.notify_all();
}

void TcpNodeClient::FailAllWaiters(Conn& conn, const Status& status) {
  std::unordered_map<uint64_t, std::shared_ptr<Waiter>> orphans;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    orphans.swap(conn.waiters);
    conn.connected = false;
  }
  for (auto& [id, waiter] : orphans) {
    (void)id;
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->error = status;
      waiter->done = true;
    }
    waiter->cv.notify_all();
  }
}

Status TcpNodeClient::WriteFrame(Conn& conn, const Bytes& frame) {
  std::lock_guard<std::mutex> write_lock(conn.write_mu);
  int fd;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    if (!conn.connected) return Status::Unavailable("connection lost");
    fd = conn.fd;
  }
  int copies = 1;
  if (config_.faults != nullptr) {
    FaultyTransport::SendDecision decision = config_.faults->OnSend(endpoint_);
    if (decision.delay > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(decision.delay));
    }
    if (decision.action == FaultyTransport::SendAction::kDrop) {
      // Kill the whole connection, as a mid-stream RST would: the reader
      // fails every in-flight call and the socket is redialed with backoff.
      shutdown(fd, SHUT_RDWR);
      return Status::Unavailable("write failed: dropped (injected fault)");
    }
    if (decision.action == FaultyTransport::SendAction::kDuplicate) {
      copies = 2;
    }
  }
  for (int copy = 0; copy < copies; ++copy) {
    size_t sent = 0;
    while (sent < frame.size()) {
      // MSG_NOSIGNAL: a server that closed on us must fail this call with
      // EPIPE instead of delivering SIGPIPE to the process.
      ssize_t n = send(fd, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        // Wake the reader so in-flight calls fail fast, not at timeout.
        shutdown(fd, SHUT_RDWR);
        return Status::Unavailable("write failed: " +
                                   std::string(strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
  }
  return Status::Ok();
}

Histogram* TcpNodeClient::OpHistogram(std::string_view op) {
  if (config_.telemetry == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(op_hist_mu_);
  std::string key(op);
  auto it = op_hists_.find(key);
  if (it != op_hists_.end()) return it->second;
  Histogram* h = config_.telemetry->metrics.GetHistogram(
      "wedge.client.rpc_us{op=" + key + "}");
  op_hists_.emplace(std::move(key), h);
  return h;
}

Result<Bytes> TcpNodeClient::Call(std::string_view op, const Bytes& body,
                                  bool idempotent) {
  if (closed_.load()) return Status::FailedPrecondition("client closed");
  // Records the whole call (retries included) into
  // wedge.client.rpc_us{op=...} on every exit path.
  struct LatencyRecorder {
    Histogram* hist;
    Micros start;
    ~LatencyRecorder() {
      if (hist != nullptr) {
        hist->Record(RealClock::Global()->NowMicros() - start);
      }
    }
  } recorder{OpHistogram(op), RealClock::Global()->NowMicros()};
  RpcRequest request;
  request.rpc_id = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  request.op = std::string(op);
  request.body = body;
  // Propagate the calling thread's trace context (ScopedTrace) onto the
  // wire; untraced calls encode byte-identically to the legacy format.
  request.trace_id = CurrentTraceId();
  if (request.trace_id != 0) request.origin = CurrentTraceOrigin();
  SignedEnvelope envelope = SignedEnvelope::Create(key_, request.Encode());
  Bytes payload = envelope.Serialize();
  if (payload.size() > config_.max_frame_bytes) {
    return Status::InvalidArgument("request exceeds frame limit (" +
                                   std::to_string(payload.size()) + " > " +
                                   std::to_string(config_.max_frame_bytes) +
                                   ")");
  }
  Bytes frame = EncodeFrame(payload);

  int attempts = std::max(1, config_.max_call_attempts);
  Micros backoff = config_.retry_backoff_min;
  Result<Bytes> result = Status::Unavailable("no call attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      Micros jitter;
      {
        std::lock_guard<std::mutex> lock(jitter_mu_);
        jitter = backoff > 1 ? jitter_rng_.Uniform(backoff / 2) : 0;
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff + jitter));
      backoff = std::min(backoff * 2, config_.retry_backoff_max);
      if (closed_.load()) return Status::FailedPrecondition("client closed");
    }
    bool request_sent = false;
    result = CallAttempt(request.rpc_id, frame, &request_sent);
    if (result.ok()) return result;
    // Only kUnavailable is retry-safe: the peer never replied. A sent
    // non-idempotent request (append) may still have executed before the
    // connection died, so it must surface the failure instead of risking
    // a duplicate entry. kDeadlineExceeded is never retried here for the
    // same reason.
    bool retryable =
        result.status().code() == Code::kUnavailable &&
        (idempotent || !request_sent);
    if (!retryable) return result;
  }
  return result;
}

Result<Bytes> TcpNodeClient::CallAttempt(uint64_t rpc_id, const Bytes& frame,
                                         bool* request_sent) {
  Status last = Status::Unavailable("connection pool exhausted");
  size_t start = next_conn_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < pool_.size(); ++i) {
    Conn& conn = *pool_[(start + i) % pool_.size()];
    Status st = EnsureConnected(conn);
    if (!st.ok()) {
      last = st;
      continue;
    }
    auto waiter = std::make_shared<Waiter>();
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      if (!conn.connected) continue;
      conn.waiters.emplace(rpc_id, waiter);
    }
    *request_sent = true;  // Bytes may hit the wire from here on.
    st = WriteFrame(conn, frame);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(conn.mu);
      conn.waiters.erase(rpc_id);
      last = st;
      continue;
    }

    std::unique_lock<std::mutex> wl(waiter->mu);
    bool done = waiter->cv.wait_for(
        wl, std::chrono::microseconds(config_.rpc_timeout),
        [&] { return waiter->done; });
    if (!done) {
      wl.unlock();
      bool deregistered;
      {
        std::lock_guard<std::mutex> lock(conn.mu);
        deregistered = conn.waiters.erase(rpc_id) == 1;
      }
      if (deregistered) {
        return Status::DeadlineExceeded("rpc timed out (omission or loss)");
      }
      // The reader claimed the waiter between our timeout and the
      // deregistration — the response is a moment away; take it.
      wl.lock();
      waiter->cv.wait(wl, [&] { return waiter->done; });
    }
    if (!waiter->error.ok()) return waiter->error;
    if (!waiter->response.ok) {
      // Error responses carry a "<CodeName>: <message>" status string, so
      // typed server-side failures (e.g. quota kResourceExhausted) stay
      // typed across the wire instead of collapsing into kUnavailable.
      return Status::FromWireString(waiter->response.error);
    }
    return std::move(waiter->response.body);
  }
  return last;
}

Result<std::vector<Stage1Response>> TcpNodeClient::Append(
    const std::vector<AppendRequest>& requests) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply,
      Call(kOpAppend, EncodeAppendBody(requests), /*idempotent=*/false));
  return DecodeAppendReply(reply);
}

Result<Stage1Response> TcpNodeClient::ReadOne(const EntryIndex& index) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply, Call(kOpRead, EncodeReadBody(index), /*idempotent=*/true));
  return DecodeReadReply(reply);
}

Result<BatchReadResponse> TcpNodeClient::ReadBatch(
    uint64_t log_id, const std::vector<uint32_t>& offsets) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply, Call(kOpReadBatch, EncodeReadBatchBody(log_id, offsets),
                        /*idempotent=*/true));
  return DecodeReadBatchReply(reply);
}

Result<std::vector<Stage1Response>> TcpNodeClient::AppendForTenant(
    TenantId tenant, const std::vector<AppendRequest>& requests) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply,
      Call(kOpAppendTenant, EncodeTenantAppendBody(tenant, requests),
           /*idempotent=*/false));
  return DecodeAppendReply(reply);
}

Result<Stage1Response> TcpNodeClient::ReadOneForTenant(
    TenantId tenant, const EntryIndex& index) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply, Call(kOpReadTenant, EncodeTenantReadBody(tenant, index),
                        /*idempotent=*/true));
  return DecodeReadReply(reply);
}

Result<BatchReadResponse> TcpNodeClient::ReadBatchForTenant(
    TenantId tenant, uint64_t log_id, const std::vector<uint32_t>& offsets) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply,
      Call(kOpReadBatchTenant,
           EncodeTenantReadBatchBody(tenant, log_id, offsets),
           /*idempotent=*/true));
  return DecodeReadBatchReply(reply);
}

Result<AggregationProof> TcpNodeClient::FetchAggregationProof(
    TenantId tenant, uint64_t log_id) {
  WEDGE_ASSIGN_OR_RETURN(
      Bytes reply, Call(kOpAggProof, EncodeAggProofBody(tenant, log_id),
                        /*idempotent=*/true));
  return DecodeAggProofReply(reply);
}

}  // namespace wedge
