#ifndef WEDGEBLOCK_RPC_TCP_CLIENT_H_
#define WEDGEBLOCK_RPC_TCP_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/rpc_codec.h"
#include "net/fault_transport.h"
#include "net/sim_network.h"
#include "net/wire.h"
#include "telemetry/telemetry.h"

namespace wedge {

struct TcpClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Connections in the pool. Calls are spread round-robin; each
  /// connection pipelines any number of concurrent callers.
  int pool_size = 1;
  Micros rpc_timeout = 5 * kMicrosPerSecond;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Exponential reconnect backoff bounds for broken connections.
  Micros reconnect_backoff_min = 50 * kMicrosPerMilli;
  Micros reconnect_backoff_max = 2 * kMicrosPerSecond;
  /// Total attempts per call when the failure is retry-safe (see Call's
  /// retry rules). 1 disables retries entirely.
  int max_call_attempts = 3;
  /// Exponential backoff between retry attempts, plus a deterministic
  /// jitter draw of up to half the current backoff (seeded, so runs
  /// replay exactly).
  Micros retry_backoff_min = 20 * kMicrosPerMilli;
  Micros retry_backoff_max = 500 * kMicrosPerMilli;
  uint64_t retry_jitter_seed = 0x7E7B;
  /// Optional deterministic fault injection on this client's dials and
  /// frame sends (shared across clients to script fleet-wide partitions).
  std::shared_ptr<FaultyTransport> faults;
  /// Optional client-side telemetry sink: per-op RPC latency histograms
  /// (`wedge.client.rpc_us{op=<op>}`, wall clock around the whole call
  /// including retries). Must outlive the client; null disables.
  Telemetry* telemetry = nullptr;
};

/// Real-socket counterpart of RemoteNodeClient (core/remote.h): same
/// interface shape, same signed envelope payloads, but over a pool of TCP
/// connections with request pipelining. Each pooled connection has one
/// reader thread that correlates responses to waiting callers by rpc_id,
/// so many threads can have calls in flight on one socket and responses
/// may return out of order. A response with an unknown rpc_id (stale,
/// duplicated, or forged) is counted and discarded — it is never handed
/// to the wrong waiter.
///
/// Failure behaviour: a broken socket fails all of its in-flight calls
/// with kUnavailable and is redialed lazily with exponential backoff;
/// calls spill over to the other pool connections meanwhile. A call that
/// sees no reply within rpc_timeout returns kDeadlineExceeded (the
/// omission-attack surface, §4.7) — the request may have executed
/// server-side, so it is never blindly retried here. kUnavailable
/// failures are retried up to max_call_attempts times with exponential
/// backoff + seeded jitter, but for non-idempotent ops (appends) only
/// while the request provably never reached the wire.
///
/// Thread-safe: any number of threads may call Append/ReadOne/ReadBatch
/// concurrently.
class TcpNodeClient {
 public:
  /// `server_address` pins the transport key replies must be signed with.
  TcpNodeClient(KeyPair key, const Address& server_address,
                TcpClientConfig config);
  ~TcpNodeClient();

  TcpNodeClient(const TcpNodeClient&) = delete;
  TcpNodeClient& operator=(const TcpNodeClient&) = delete;

  /// Dials the pool. OK when at least one connection is up (the rest
  /// retry lazily on use).
  Status Connect();

  /// Shuts every connection down and joins the reader threads. Idempotent;
  /// the destructor calls it.
  void Close();

  Result<std::vector<Stage1Response>> Append(
      const std::vector<AppendRequest>& requests);
  Result<Stage1Response> ReadOne(const EntryIndex& index);
  Result<BatchReadResponse> ReadBatch(uint64_t log_id,
                                      const std::vector<uint32_t>& offsets);

  /// Tenant-scoped variants against a sharded daemon (core/rpc_codec.h
  /// "appendT"/"readT"/"readBatchT"). Server-side quota rejections come
  /// back as typed Code::kResourceExhausted statuses, not transport
  /// errors — the connection stays usable.
  Result<std::vector<Stage1Response>> AppendForTenant(
      TenantId tenant, const std::vector<AppendRequest>& requests);
  Result<Stage1Response> ReadOneForTenant(TenantId tenant,
                                          const EntryIndex& index);
  Result<BatchReadResponse> ReadBatchForTenant(
      TenantId tenant, uint64_t log_id,
      const std::vector<uint32_t>& offsets);
  /// Fetches the engine-signed batch-root -> forest-root proof for a
  /// sealed batch ("aggProof").
  Result<AggregationProof> FetchAggregationProof(TenantId tenant,
                                                 uint64_t log_id);

  uint64_t reconnects() const { return reconnects_.load(); }
  /// Responses dropped because no waiter matched their rpc_id.
  uint64_t discarded_responses() const { return discarded_.load(); }
  /// Retry attempts made after kUnavailable failures (not first attempts).
  uint64_t retries() const { return retries_.load(); }

 private:
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status error;       ///< Transport-level failure (timeout handled by caller).
    RpcResponse response;
  };

  struct Conn {
    std::mutex mu;  ///< Guards fd/connected/waiters/backoff state.
    int fd = -1;
    bool connected = false;
    std::thread reader;
    std::unordered_map<uint64_t, std::shared_ptr<Waiter>> waiters;
    Micros backoff = 0;
    Micros next_attempt_at = 0;
    std::mutex write_mu;  ///< Serializes frame writes from pipelined callers.
  };

  /// `idempotent` ops (reads, proof fetches) retry on any kUnavailable;
  /// non-idempotent ops (appends) retry only when the attempt failed
  /// before any byte of the request was written.
  Result<Bytes> Call(std::string_view op, const Bytes& body, bool idempotent);
  /// One pass over the pool. Sets *request_sent once any attempt started
  /// writing the request to a socket.
  Result<Bytes> CallAttempt(uint64_t rpc_id, const Bytes& frame,
                            bool* request_sent);
  /// Lazily-resolved `wedge.client.rpc_us{op=<op>}` histogram (null when
  /// the config carries no telemetry).
  Histogram* OpHistogram(std::string_view op);
  Status EnsureConnected(Conn& conn);
  void ReaderLoop(Conn& conn);
  void HandlePayload(Conn& conn, const Bytes& payload);
  /// Fails every in-flight waiter on `conn` (socket died).
  void FailAllWaiters(Conn& conn, const Status& status);
  Status WriteFrame(Conn& conn, const Bytes& frame);

  const KeyPair key_;
  const Address server_address_;
  const TcpClientConfig config_;
  const std::string endpoint_;  ///< "host:port" key for fault injection.
  std::vector<std::unique_ptr<Conn>> pool_;
  std::atomic<uint64_t> next_rpc_id_{1};
  std::atomic<uint64_t> next_conn_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> discarded_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<bool> closed_{false};
  std::mutex jitter_mu_;
  Rng jitter_rng_;
  std::mutex op_hist_mu_;
  std::unordered_map<std::string, Histogram*> op_hists_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_RPC_TCP_CLIENT_H_
