#include "shard/agg_journal.h"

#include <unistd.h>

#include <cstring>

namespace wedge {

namespace {

constexpr uint8_t kRecordEpochClosed = 1;
constexpr uint8_t kRecordEpochConfirmed = 2;

Bytes EncodeEpochClosed(uint64_t epoch, const Hash256& root,
                        const std::vector<JournalLeaf>& leaves) {
  Bytes payload;
  payload.push_back(kRecordEpochClosed);
  PutU64(payload, epoch);
  Append(payload, HashToBytes(root));
  PutU32(payload, static_cast<uint32_t>(leaves.size()));
  for (const JournalLeaf& leaf : leaves) {
    PutU32(payload, leaf.shard_id);
    PutU64(payload, leaf.log_id);
    Append(payload, HashToBytes(leaf.mroot));
  }
  return payload;
}

Bytes EncodeEpochConfirmed(uint64_t epoch) {
  Bytes payload;
  payload.push_back(kRecordEpochConfirmed);
  PutU64(payload, epoch);
  return payload;
}

/// Applies one replayed payload to `epochs`. False = record is well-formed
/// bytes but semantically out of sequence (treated like a torn tail).
bool ApplyPayload(const Bytes& payload, std::vector<JournaledEpoch>* epochs) {
  ByteReader reader(payload);
  auto type_raw = reader.ReadRaw(1);
  if (!type_raw.ok()) return false;
  uint8_t type = type_raw.value()[0];
  if (type == kRecordEpochClosed) {
    JournaledEpoch entry;
    auto epoch = reader.ReadU64();
    if (!epoch.ok() || epoch.value() != epochs->size()) return false;
    entry.epoch = epoch.value();
    auto root_raw = reader.ReadRaw(32);
    if (!root_raw.ok()) return false;
    auto root = HashFromBytes(root_raw.value());
    if (!root.ok()) return false;
    entry.root = root.value();
    auto count = reader.ReadU32();
    if (!count.ok()) return false;
    entry.leaves.reserve(count.value());
    for (uint32_t i = 0; i < count.value(); ++i) {
      JournalLeaf leaf;
      auto shard = reader.ReadU32();
      auto log_id = reader.ReadU64();
      auto mroot_raw = reader.ReadRaw(32);
      if (!shard.ok() || !log_id.ok() || !mroot_raw.ok()) return false;
      auto mroot = HashFromBytes(mroot_raw.value());
      if (!mroot.ok()) return false;
      leaf.shard_id = shard.value();
      leaf.log_id = log_id.value();
      leaf.mroot = mroot.value();
      entry.leaves.push_back(leaf);
    }
    if (!reader.AtEnd()) return false;
    epochs->push_back(std::move(entry));
    return true;
  }
  if (type == kRecordEpochConfirmed) {
    auto epoch = reader.ReadU64();
    if (!epoch.ok() || !reader.AtEnd()) return false;
    if (epoch.value() >= epochs->size()) return false;
    (*epochs)[epoch.value()].confirmed = true;
    return true;
  }
  return false;  // Unknown record type: stop, like a torn tail.
}

}  // namespace

Result<std::unique_ptr<AggregatorJournal>> AggregatorJournal::Open(
    const std::string& path, const Options& options) {
  std::unique_ptr<AggregatorJournal> journal(
      new AggregatorJournal(path, options));

  FILE* replay = std::fopen(path.c_str(), "rb");
  long valid_end = 0;
  if (replay != nullptr) {
    for (;;) {
      uint8_t len_raw[4];
      if (std::fread(len_raw, 1, 4, replay) != 4) break;
      uint32_t len = (static_cast<uint32_t>(len_raw[0]) << 24) |
                     (static_cast<uint32_t>(len_raw[1]) << 16) |
                     (static_cast<uint32_t>(len_raw[2]) << 8) |
                     static_cast<uint32_t>(len_raw[3]);
      Bytes payload(len);
      if (len > 0 && std::fread(payload.data(), 1, len, replay) != len) break;
      uint8_t checksum[32];
      if (std::fread(checksum, 1, 32, replay) != 32) break;
      Hash256 expect = Sha256::Digest(payload);
      if (std::memcmp(checksum, expect.data(), 32) != 0) break;  // Corrupt.
      if (!ApplyPayload(payload, &journal->epochs_)) break;
      valid_end = std::ftell(replay);
    }
    std::fclose(replay);
  }

  FILE* f = std::fopen(path.c_str(), replay != nullptr ? "rb+" : "wb+");
  if (f == nullptr) {
    return Status::Internal("cannot open aggregator journal: " + path);
  }
  if (replay != nullptr) {
    if (std::fseek(f, 0, SEEK_END) == 0 && std::ftell(f) > valid_end) {
      (void)!ftruncate(fileno(f), valid_end);
    }
    std::fseek(f, valid_end, SEEK_SET);
  }
  journal->file_ = f;
  return journal;
}

AggregatorJournal::~AggregatorJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status AggregatorJournal::AppendRecordLocked(const Bytes& payload) {
  Bytes record;
  PutU32(record, static_cast<uint32_t>(payload.size()));
  wedge::Append(record, payload);
  Hash256 checksum = Sha256::Digest(payload);
  wedge::Append(record, HashToBytes(checksum));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Internal("short write to aggregator journal");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("fflush failed on aggregator journal");
  }
  if (options_.fsync_on_append && fsync(fileno(file_)) != 0) {
    return Status::Internal("fsync failed on aggregator journal");
  }
  return Status::Ok();
}

Status AggregatorJournal::AppendEpoch(uint64_t epoch, const Hash256& root,
                                      const std::vector<JournalLeaf>& leaves) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != epochs_.size()) {
    return Status::FailedPrecondition(
        "journal epochs must be consecutive (got " + std::to_string(epoch) +
        ", expected " + std::to_string(epochs_.size()) + ")");
  }
  WEDGE_RETURN_IF_ERROR(AppendRecordLocked(EncodeEpochClosed(epoch, root,
                                                             leaves)));
  JournaledEpoch entry;
  entry.epoch = epoch;
  entry.root = root;
  entry.leaves = leaves;
  epochs_.push_back(std::move(entry));
  return Status::Ok();
}

Status AggregatorJournal::AppendConfirmed(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch >= epochs_.size()) {
    return Status::FailedPrecondition("confirm for unknown epoch " +
                                      std::to_string(epoch));
  }
  if (epochs_[epoch].confirmed) return Status::Ok();  // Idempotent.
  WEDGE_RETURN_IF_ERROR(AppendRecordLocked(EncodeEpochConfirmed(epoch)));
  epochs_[epoch].confirmed = true;
  return Status::Ok();
}

}  // namespace wedge
