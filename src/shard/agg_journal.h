#ifndef WEDGEBLOCK_SHARD_AGG_JOURNAL_H_
#define WEDGEBLOCK_SHARD_AGG_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace wedge {

/// One (shard_id, log_id, MRoot) forest leaf as journaled with its epoch.
struct JournalLeaf {
  uint32_t shard_id = 0;
  uint64_t log_id = 0;
  Hash256 mroot{};
};

/// An epoch as recovered from the journal.
struct JournaledEpoch {
  uint64_t epoch = 0;
  Hash256 root{};
  std::vector<JournalLeaf> leaves;
  /// True when a confirm record followed the close record: the epoch's
  /// forest root was seen committed on chain before the crash.
  bool confirmed = false;
};

/// Durable write-ahead journal for EpochRootAggregator. Two record types:
/// an epoch-close record (epoch number, forest root, every leaf), written
/// BEFORE the updateForestRoot transaction is submitted, and an
/// epoch-confirm record, written when the transaction is seen committed.
/// Replaying the journal therefore recovers exactly which sealed batch
/// roots were assigned to which epoch, and which epochs still need their
/// root (re)submitted — the aggregator-side half of crash recovery
/// (ShardedLogEngine::Recover() supplies the shard-side half).
///
/// On-disk format mirrors FileLogStore:
/// [u32 payload_len][payload][32B sha256(payload)]; Open() replays and
/// truncates a torn tail (partial or corrupt final record) instead of
/// failing. Epoch-close records must arrive with consecutive epoch
/// numbers from 0 (the aggregator's numbering); replay stops at the first
/// record that breaks the sequence, treating it like a torn tail.
///
/// Thread-safe: appends may come from concurrent Tick()/CloseEpoch()
/// paths (the aggregator serializes them under its own mutex anyway).
class AggregatorJournal {
 public:
  struct Options {
    /// fsync after every record. Same trade-off as FileLogStore: off by
    /// default, on for chaos/durability runs.
    bool fsync_on_append = false;
  };

  /// Opens (creating if needed) the journal at `path`, replaying any
  /// existing records into epochs().
  static Result<std::unique_ptr<AggregatorJournal>> Open(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<AggregatorJournal>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  ~AggregatorJournal();

  /// Journals the close of `epoch` over `leaves` with forest root `root`.
  /// Epochs must be appended consecutively from the replayed tail.
  Status AppendEpoch(uint64_t epoch, const Hash256& root,
                     const std::vector<JournalLeaf>& leaves);

  /// Journals the on-chain confirmation of a previously closed epoch.
  Status AppendConfirmed(uint64_t epoch);

  /// State replayed by Open(), ordered by epoch number (dense from 0).
  /// Live appends through this object keep it in sync.
  const std::vector<JournaledEpoch>& epochs() const { return epochs_; }

  const std::string& path() const { return path_; }

 private:
  AggregatorJournal(std::string path, const Options& options)
      : path_(std::move(path)), options_(options) {}

  Status AppendRecordLocked(const Bytes& payload);

  const std::string path_;
  const Options options_;
  mutable std::mutex mu_;
  std::vector<JournaledEpoch> epochs_;
  FILE* file_ = nullptr;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_AGG_JOURNAL_H_
