#include "shard/epoch_aggregator.h"

#include <algorithm>

#include "contracts/root_record.h"

namespace wedge {

namespace {

uint64_t PositionKey(uint32_t shard_id, uint64_t log_id) {
  // Shard counts are tiny; log ids never plausibly reach 2^56.
  return (log_id << 8) | (shard_id & 0xFF);
}

}  // namespace

EpochRootAggregator::EpochRootAggregator(std::vector<OffchainNode*> shards,
                                         KeyPair engine_key,
                                         Blockchain* chain,
                                         const Address& root_record_address,
                                         Telemetry* telemetry)
    : shards_(std::move(shards)),
      key_(std::move(engine_key)),
      chain_(chain),
      root_record_address_(root_record_address),
      telemetry_(telemetry),
      roots_staged_counter_(
          telemetry->metrics.GetCounter("wedge.engine.roots_staged")),
      epochs_closed_counter_(
          telemetry->metrics.GetCounter("wedge.engine.epochs_closed")),
      forest_txs_counter_(
          telemetry->metrics.GetCounter("wedge.engine.forest_txs")),
      forest_tx_retries_counter_(
          telemetry->metrics.GetCounter("wedge.engine.forest_tx_retries")),
      agg_lag_hist_(
          telemetry->metrics.GetHistogram("wedge.engine.agg_lag_us")),
      epoch_leaves_hist_(
          telemetry->metrics.GetHistogram("wedge.engine.epoch_leaves")),
      cursor_(shards_.size(), 0) {}

Micros EpochRootAggregator::Now() const {
  return chain_ != nullptr ? chain_->clock()->NowMicros()
                           : RealClock::Global()->NowMicros();
}

Status EpochRootAggregator::AttachJournal(AggregatorJournal* journal) {
  Micros now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) {
    return Status::FailedPrecondition("journal already attached");
  }
  if (!epochs_.empty() || !staged_.empty()) {
    return Status::FailedPrecondition(
        "journal must be attached before the aggregator does any work");
  }
  for (const JournaledEpoch& entry : journal->epochs()) {
    EpochRecord record;
    std::vector<Bytes> leaf_bytes;
    leaf_bytes.reserve(entry.leaves.size());
    for (const JournalLeaf& leaf : entry.leaves) {
      record.leaves.push_back(StagedRoot{leaf.shard_id, leaf.log_id,
                                         leaf.mroot, now});
      leaf_bytes.push_back(
          ForestLeafBytes(leaf.shard_id, leaf.log_id, leaf.mroot));
      if (leaf.shard_id < cursor_.size()) {
        cursor_[leaf.shard_id] =
            std::max(cursor_[leaf.shard_id], leaf.log_id + 1);
      }
    }
    WEDGE_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(leaf_bytes));
    if (tree.Root() != entry.root) {
      return Status::Corruption(
          "journaled forest root for epoch " + std::to_string(entry.epoch) +
          " does not match its journaled leaves");
    }
    record.root = entry.root;
    record.tree = std::make_shared<const MerkleTree>(std::move(tree));
    record.confirmed = entry.confirmed;
    uint64_t epoch = epochs_.size();
    for (size_t i = 0; i < record.leaves.size(); ++i) {
      index_[PositionKey(record.leaves[i].shard_id,
                         record.leaves[i].log_id)] = {epoch, i};
    }
    epochs_.push_back(std::move(record));
  }
  journal_ = journal;
  return Status::Ok();
}

Status EpochRootAggregator::RecoverEpochs(uint64_t* resubmitted,
                                          uint64_t* confirmed) {
  uint64_t resubmit_count = 0;
  uint64_t confirm_count = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t epoch = 0; epoch < epochs_.size(); ++epoch) {
    EpochRecord& record = epochs_[epoch];
    // tx != 0 means a transaction from THIS process lifetime is in
    // flight; its receipt is Tick()'s business. Recovery only touches
    // epochs that have nothing pending — the journal-replayed ones and
    // those whose submission failed outright.
    if (record.confirmed || record.tx != 0) continue;
    if (chain_ != nullptr && EpochRecordedOnChainLocked(epoch)) {
      MarkConfirmedLocked(epoch);
      ++confirm_count;
      continue;
    }
    if (chain_ == nullptr) {
      MarkConfirmedLocked(epoch);  // Nothing to submit to (benches).
      ++confirm_count;
      continue;
    }
    forest_tx_retries_counter_->Add(1);
    WEDGE_RETURN_IF_ERROR(SubmitEpochLocked(epoch).status());
    ++resubmit_count;
  }
  if (resubmitted != nullptr) *resubmitted = resubmit_count;
  if (confirmed != nullptr) *confirmed = confirm_count;
  return Status::Ok();
}

void EpochRootAggregator::PollShards() {
  Micros now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    uint64_t sealed = shards_[s]->LogPositions();
    for (uint64_t id = cursor_[s]; id < sealed; ++id) {
      auto root = shards_[s]->PositionRoot(id);
      if (!root.ok()) break;  // Torn tail; retry next poll.
      staged_.push_back(StagedRoot{static_cast<uint32_t>(s), id,
                                   root.value(), now});
      roots_staged_counter_->Add(1);
      cursor_[s] = id + 1;
    }
  }
}

Result<TxId> EpochRootAggregator::CloseEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (staged_.empty()) {
    return Status::NotFound("no batch roots staged for this epoch");
  }
  size_t take = std::min<size_t>(
      staged_.size(), RootRecordContract::kMaxRootsPerCall);

  EpochRecord record;
  record.leaves.assign(staged_.begin(), staged_.begin() + take);
  staged_.erase(staged_.begin(), staged_.begin() + take);

  bool equivocate = byzantine_mode_.load(std::memory_order_relaxed) ==
                    AggByzantineMode::kEquivocateBatchRoot;
  std::vector<Bytes> leaf_bytes;
  leaf_bytes.reserve(record.leaves.size());
  Micros now = Now();
  for (StagedRoot& leaf : record.leaves) {
    if (equivocate) leaf.mroot[0] ^= 0xFF;  // Lie at the forest level.
    leaf_bytes.push_back(
        ForestLeafBytes(leaf.shard_id, leaf.log_id, leaf.mroot));
    agg_lag_hist_->Record(now - leaf.staged_at);
  }
  WEDGE_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(leaf_bytes));
  record.root = tree.Root();
  record.tree = std::make_shared<const MerkleTree>(std::move(tree));

  uint64_t epoch = epochs_.size();
  if (journal_ != nullptr) {
    // Journal BEFORE the transaction: a crash between the two leaves a
    // journaled-but-unsubmitted epoch, which Recover resubmits. The
    // reverse order could strand an on-chain root the restarted
    // aggregator knows nothing about.
    std::vector<JournalLeaf> journal_leaves;
    journal_leaves.reserve(record.leaves.size());
    for (const StagedRoot& leaf : record.leaves) {
      journal_leaves.push_back(JournalLeaf{leaf.shard_id, leaf.log_id,
                                           leaf.mroot});
    }
    Status journaled = journal_->AppendEpoch(epoch, record.root,
                                             journal_leaves);
    if (!journaled.ok()) {
      // Un-stage: put the leaves back where PollShards left them so the
      // next CloseEpoch retries the same epoch.
      staged_.insert(staged_.begin(), record.leaves.begin(),
                     record.leaves.end());
      return journaled;
    }
  }
  for (size_t i = 0; i < record.leaves.size(); ++i) {
    index_[PositionKey(record.leaves[i].shard_id,
                       record.leaves[i].log_id)] = {epoch, i};
  }
  epochs_.push_back(std::move(record));
  epochs_closed_counter_->Add(1);
  epoch_leaves_hist_->Record(static_cast<int64_t>(take));
  if (telemetry_ != nullptr) {
    // One span per folded leaf, keyed by the batch's log id: the trace
    // tool joins these to the (traced) ingest span of the same log id in
    // this process's dump, extending a client trace into the aggregator.
    const EpochRecord& closed = epochs_[epoch];
    for (const StagedRoot& leaf : closed.leaves) {
      telemetry_->tracer.Event(leaf.log_id, trace_stage::kAggEpoch, 1,
                               "epoch=" + std::to_string(epoch) +
                                   " shard=" + std::to_string(leaf.shard_id));
    }
  }

  if (chain_ == nullptr) {
    MarkConfirmedLocked(epoch);
    return TxId(0);
  }
  return SubmitEpochLocked(epoch);
}

void EpochRootAggregator::MarkConfirmedLocked(uint64_t epoch) {
  epochs_[epoch].confirmed = true;
  if (telemetry_ != nullptr) {
    for (const StagedRoot& leaf : epochs_[epoch].leaves) {
      telemetry_->tracer.Event(leaf.log_id, trace_stage::kAggConfirmed, 1,
                               "epoch=" + std::to_string(epoch) +
                                   " shard=" + std::to_string(leaf.shard_id));
    }
  }
  if (journal_ != nullptr) {
    // Best effort: losing a confirm record only costs one redundant
    // chain lookup on the next recovery, never correctness.
    (void)journal_->AppendConfirmed(epoch);
  }
}

Result<TxId> EpochRootAggregator::SubmitEpochLocked(uint64_t epoch) {
  EpochRecord& record = epochs_[epoch];
  Transaction tx;
  tx.from = key_.address();
  tx.to = root_record_address_;
  tx.method = "updateForestRoot";
  PutU64(tx.calldata, epoch);
  PutU32(tx.calldata, static_cast<uint32_t>(record.leaves.size()));
  Append(tx.calldata, HashToBytes(record.root));
  WEDGE_ASSIGN_OR_RETURN(TxId id, chain_->Submit(tx));
  record.tx = id;
  record.submitted_block = chain_->HeadNumber();
  forest_txs_counter_->Add(1);
  all_tx_ids_.push_back(id);
  return id;
}

bool EpochRootAggregator::EpochRecordedOnChainLocked(uint64_t epoch) const {
  Bytes query;
  PutU64(query, epoch);
  auto raw = chain_->Call(root_record_address_, "getForestRoot", query);
  if (!raw.ok() || raw.value().empty()) return false;
  return raw.value()[0] != 0;
}

void EpochRootAggregator::Tick() {
  if (chain_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t epoch = 0; epoch < epochs_.size(); ++epoch) {
    EpochRecord& record = epochs_[epoch];
    if (record.confirmed) continue;
    if (record.tx != 0) {
      auto receipt = chain_->GetReceipt(record.tx);
      if (receipt.ok() && receipt.value().success) {
        MarkConfirmedLocked(epoch);
        continue;
      }
      if (!receipt.ok() &&
          chain_->HeadNumber() <
              record.submitted_block + kConfirmationDeadlineBlocks) {
        continue;  // Still pending within the deadline: keep waiting.
      }
      // Reverted, or presumed lost past the deadline: fall through to
      // recovery instead of blindly resubmitting.
    }
    // Recovery for an epoch with no confirmed transaction — because the
    // attempt reverted, vanished past the deadline, or the initial
    // CloseEpoch submission itself failed (tx == 0). A revert here is
    // usually "epoch != forestTail" from a retry race: some EARLIER
    // attempt (whose id we may no longer hold) actually landed, so check
    // the chain before spending another transaction — resubmitting a
    // recorded epoch can only revert, forever.
    if (EpochRecordedOnChainLocked(epoch)) {
      // The forest slot is filled. Only this engine's key may write it,
      // and every attempt for an epoch carries the same root, so the
      // recorded root is ours: the epoch is committed.
      MarkConfirmedLocked(epoch);
      continue;
    }
    forest_tx_retries_counter_->Add(1);
    auto resubmitted = SubmitEpochLocked(epoch);
    if (!resubmitted.ok()) return;  // Chain unavailable; retry next tick.
  }
}

Result<AggregationProof> EpochRootAggregator::Prove(uint32_t shard_id,
                                                    uint64_t log_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(PositionKey(shard_id, log_id));
  if (it == index_.end()) {
    return Status::NotFound("batch root not aggregated yet");
  }
  const auto [epoch, leaf_idx] = it->second;
  const EpochRecord& record = epochs_[epoch];

  AggregationProof proof;
  proof.epoch = epoch;
  proof.shard_id = shard_id;
  proof.log_id = log_id;
  proof.mroot = record.leaves[leaf_idx].mroot;
  proof.forest_root = record.root;
  WEDGE_ASSIGN_OR_RETURN(proof.forest_path, record.tree->Prove(leaf_idx));
  if (byzantine_mode_.load(std::memory_order_relaxed) ==
          AggByzantineMode::kCorruptAggProof &&
      !proof.forest_path.path.empty()) {
    // Corrupt BEFORE signing: the statement stays attributable to the
    // engine's key, which is exactly what makes it punishable.
    proof.forest_path.path[0].sibling[0] ^= 0xFF;
  }
  proof.engine_signature = EcdsaSign(key_.private_key(), proof.SignedHash());
  return proof;
}

uint64_t EpochRootAggregator::epochs_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.size();
}

uint64_t EpochRootAggregator::staged_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_.size();
}

uint64_t EpochRootAggregator::epochs_confirmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const EpochRecord& record : epochs_) {
    if (record.confirmed) ++n;
  }
  return n;
}

uint64_t EpochRootAggregator::epochs_unconfirmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const EpochRecord& record : epochs_) {
    if (!record.confirmed) ++n;
  }
  return n;
}

std::vector<TxId> EpochRootAggregator::ForestTxIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_tx_ids_;
}

}  // namespace wedge
