#ifndef WEDGEBLOCK_SHARD_EPOCH_AGGREGATOR_H_
#define WEDGEBLOCK_SHARD_EPOCH_AGGREGATOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chain/blockchain.h"
#include "contracts/forest_record.h"
#include "core/offchain_node.h"
#include "shard/agg_journal.h"

namespace wedge {

/// How the aggregator misbehaves (test hooks, mirroring the node-level
/// ByzantineMode).
enum class AggByzantineMode {
  kHonest = 0,
  /// Prove() flips a byte of the Merkle path and signs the corrupted
  /// statement: attributable evidence for the forest punishment path.
  kCorruptAggProof,
  /// CloseEpoch() aggregates (and files on-chain) flipped batch roots:
  /// the aggregation-level root disagrees with what stage 1 signed.
  kEquivocateBatchRoot,
};

/// Replaces N per-shard stage-2 streams with one: every epoch the
/// aggregator collects each shard's newly sealed batch roots, builds a
/// second-level Merkle tree over (shard_id, log_id, MRoot) leaves, and
/// submits the single forest root on-chain via
/// RootRecord::updateForestRoot — one transaction per epoch instead of
/// one updateRecords call per shard-batch group, amortizing the 21k base
/// cost and the SSTOREs across all shards.
///
/// Clients fetch an engine-signed AggregationProof (batch root -> forest
/// root) to complete their two-level verification; see
/// contracts/forest_record.h for its punishment semantics.
///
/// Thread-safe. `shards` and `chain` must outlive the aggregator;
/// `chain` may be null (aggregation without submission, for benches).
class EpochRootAggregator {
 public:
  EpochRootAggregator(std::vector<OffchainNode*> shards, KeyPair engine_key,
                      Blockchain* chain, const Address& root_record_address,
                      Telemetry* telemetry);

  /// Scans every shard's store for batch roots sealed since the last
  /// poll and stages them for the next epoch, stamping each with the
  /// poll time (the start of its aggregation-lag measurement).
  void PollShards();

  /// Builds the forest tree over everything staged and submits one
  /// updateForestRoot transaction. Returns NotFound when nothing is
  /// staged (no transaction wasted on empty epochs), the TxId otherwise
  /// (0 without a chain).
  Result<TxId> CloseEpoch();

  /// Receipt bookkeeping for submitted epochs: resubmits the forest root
  /// when the transaction reverted, has been pending past the
  /// confirmation deadline, or the initial CloseEpoch submission failed
  /// outright. Before every resubmission the chain's forest record is
  /// consulted — an epoch already recorded there (e.g. an earlier attempt
  /// landed after we had given up on it) is marked confirmed instead of
  /// being resubmitted into a guaranteed revert. Call once per block.
  void Tick();

  /// Attaches a durable journal and replays its state: every journaled
  /// epoch is rebuilt in memory (leaves, forest tree, proof index), the
  /// per-shard poll cursors advance past every journaled leaf, and
  /// journal-confirmed epochs are marked confirmed. Must be called before
  /// any PollShards/CloseEpoch, on a freshly constructed aggregator.
  /// `journal` must outlive the aggregator; with one attached, CloseEpoch
  /// journals the epoch before submitting its transaction and every
  /// confirmation is journaled too.
  Status AttachJournal(AggregatorJournal* journal);

  /// Crash-recovery pass over epochs with no in-flight transaction
  /// (replayed from the journal, or whose submission failed): each is
  /// marked confirmed when the chain's forest record already holds its
  /// root, resubmitted otherwise. Epochs with an in-flight transaction
  /// are left to Tick(), which makes a second Recover call (or a
  /// Recover after a clean shutdown) a no-op. Returns counts through the
  /// out-params (either may be null).
  Status RecoverEpochs(uint64_t* resubmitted, uint64_t* confirmed);

  /// Engine-signed two-level proof for a sealed batch. Fails with
  /// NotFound until the batch's epoch has been closed.
  Result<AggregationProof> Prove(uint32_t shard_id, uint64_t log_id);

  uint64_t epochs_closed() const;
  uint64_t staged_count() const;
  /// Closed epochs whose forest root is confirmed on chain.
  uint64_t epochs_confirmed() const;
  /// Closed-but-unconfirmed epochs (>0 is normal while a tx is in
  /// flight; a value that keeps growing means the aggregator is wedged —
  /// the /healthz readiness signal).
  uint64_t epochs_unconfirmed() const;
  std::vector<TxId> ForestTxIds() const;

  void set_byzantine_mode(AggByzantineMode mode) {
    byzantine_mode_.store(mode, std::memory_order_relaxed);
  }

  /// Blocks an epoch may stay unconfirmed before its root is resubmitted.
  static constexpr uint64_t kConfirmationDeadlineBlocks = 8;

 private:
  struct StagedRoot {
    uint32_t shard_id = 0;
    uint64_t log_id = 0;
    Hash256 mroot{};
    Micros staged_at = 0;
  };
  struct EpochRecord {
    std::vector<StagedRoot> leaves;
    Hash256 root{};
    std::shared_ptr<const MerkleTree> tree;
    TxId tx = 0;
    uint64_t submitted_block = 0;
    bool confirmed = false;
  };

  Micros Now() const;
  Result<TxId> SubmitEpochLocked(uint64_t epoch);
  /// True when the Root Record contract already holds a forest root for
  /// `epoch` (only this engine's key can have written it).
  bool EpochRecordedOnChainLocked(uint64_t epoch) const;
  /// Flips the confirmed bit and journals it (journal failure is logged
  /// into the status but never un-confirms: the chain already holds the
  /// root, which is the durable source of truth).
  void MarkConfirmedLocked(uint64_t epoch);

  std::vector<OffchainNode*> shards_;
  const KeyPair key_;
  Blockchain* const chain_;
  const Address root_record_address_;
  Telemetry* telemetry_ = nullptr;  ///< Span sink; may be null.
  AggregatorJournal* journal_ = nullptr;  ///< Optional; not owned.
  std::atomic<AggByzantineMode> byzantine_mode_{AggByzantineMode::kHonest};

  Counter* roots_staged_counter_;
  Counter* epochs_closed_counter_;
  Counter* forest_txs_counter_;
  Counter* forest_tx_retries_counter_;
  Histogram* agg_lag_hist_;
  Histogram* epoch_leaves_hist_;

  mutable std::mutex mu_;
  std::vector<uint64_t> cursor_;  ///< Per-shard next unpolled log id.
  std::vector<StagedRoot> staged_;
  std::vector<EpochRecord> epochs_;  ///< Indexed by epoch number.
  /// (shard, log) -> (epoch, leaf index). Shard counts are far below
  /// 256, so the key packs the shard into the log id's low byte.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> index_;
  std::vector<TxId> all_tx_ids_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_EPOCH_AGGREGATOR_H_
