#include "shard/fleet_router.h"

namespace wedge {

FleetRouter::FleetRouter(KeyPair client_key, const Address& engine_address,
                         FleetRouterConfig config, Telemetry* telemetry)
    : config_(std::move(config)),
      ring_(static_cast<uint32_t>(config_.endpoints.size()),
            config_.vnodes_per_shard),
      telemetry_(telemetry) {
  if (telemetry_ == nullptr) {
    owned_telemetry_ = std::make_unique<Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  requests_ = telemetry_->metrics.GetCounter("wedge.router.requests");
  fast_fails_ = telemetry_->metrics.GetCounter("wedge.router.fast_fails");
  probes_ = telemetry_->metrics.GetCounter("wedge.router.probes");
  trips_ = telemetry_->metrics.GetCounter("wedge.router.trips");
  open_breakers_ = telemetry_->metrics.GetGauge("wedge.router.open_breakers");

  for (const FleetEndpoint& endpoint : config_.endpoints) {
    TcpClientConfig client_config = config_.client;
    client_config.host = endpoint.host;
    client_config.port = endpoint.port;
    // Per-endpoint clients report wedge.client.rpc_us{op=...} into the
    // router's registry unless the template already names a sink.
    if (client_config.telemetry == nullptr) {
      client_config.telemetry = telemetry_;
    }
    auto shard = std::make_unique<Shard>();
    shard->client = std::make_unique<TcpNodeClient>(
        client_key, engine_address, std::move(client_config));
    shards_.push_back(std::move(shard));
  }
}

FleetRouter::~FleetRouter() { Close(); }

Status FleetRouter::Connect() {
  Status last = Status::Ok();
  int up = 0;
  for (auto& shard : shards_) {
    Status s = shard->client->Connect();
    if (s.ok()) {
      ++up;
    } else {
      last = s;
    }
  }
  if (up == 0) {
    return Status::Unavailable("no fleet endpoint reachable (" +
                               last.ToString() + ")");
  }
  return Status::Ok();
}

void FleetRouter::Close() {
  for (auto& shard : shards_) shard->client->Close();
}

Status FleetRouter::Admit(Shard& shard, bool* is_probe) {
  *is_probe = false;
  std::lock_guard<std::mutex> lock(shard.mu);
  switch (shard.health) {
    case ShardHealth::kClosed:
      return Status::Ok();
    case ShardHealth::kOpen: {
      Micros now = RealClock::Global()->NowMicros();
      if (now < shard.opened_at + config_.breaker_open_duration) {
        fast_fails_->Add(1);
        return Status::Unavailable("shard circuit open");
      }
      shard.health = ShardHealth::kHalfOpen;
      shard.probe_in_flight = true;
      *is_probe = true;
      probes_->Add(1);
      return Status::Ok();
    }
    case ShardHealth::kHalfOpen:
      if (shard.probe_in_flight) {
        // One probe at a time; everyone else keeps fast-failing until it
        // resolves.
        fast_fails_->Add(1);
        return Status::Unavailable("shard circuit half-open, probing");
      }
      shard.probe_in_flight = true;
      *is_probe = true;
      probes_->Add(1);
      return Status::Ok();
  }
  return Status::Ok();
}

void FleetRouter::OnOutcome(Shard& shard, bool is_probe,
                            const Status& status) {
  // Only transport-level silence counts against the breaker: a typed
  // application error (NotFound, ResourceExhausted, ...) proves the
  // shard answered.
  bool transport_failure = status.code() == Code::kUnavailable ||
                           status.code() == Code::kDeadlineExceeded;
  std::lock_guard<std::mutex> lock(shard.mu);
  if (is_probe) shard.probe_in_flight = false;
  if (!transport_failure) {
    if (shard.health != ShardHealth::kClosed) open_breakers_->Add(-1);
    shard.health = ShardHealth::kClosed;
    shard.consecutive_failures = 0;
    return;
  }
  if (shard.health == ShardHealth::kHalfOpen) {
    // Failed probe: back to a full open interval.
    shard.health = ShardHealth::kOpen;
    shard.opened_at = RealClock::Global()->NowMicros();
    return;
  }
  if (shard.health == ShardHealth::kClosed) {
    if (++shard.consecutive_failures >= config_.breaker_failure_threshold) {
      shard.health = ShardHealth::kOpen;
      shard.opened_at = RealClock::Global()->NowMicros();
      trips_->Add(1);
      open_breakers_->Add(1);
    }
  }
}

template <typename Fn>
auto FleetRouter::Routed(TenantId tenant, Fn&& fn)
    -> decltype(fn(std::declval<TcpNodeClient&>())) {
  uint32_t s = ring_.ShardFor(tenant);
  Shard& shard = *shards_[s];
  requests_->Add(1);
  if (CurrentTraceId() != 0) {
    // Traced call: record which shard the ring chose so the merged
    // timeline shows client -> router -> shard under one trace_id.
    telemetry_->tracer.Event(0, trace_stage::kRouterPick, 0,
                             "shard=" + std::to_string(s) +
                                 " tenant=" + std::to_string(tenant));
  }
  bool is_probe = false;
  Status admitted = Admit(shard, &is_probe);
  if (!admitted.ok()) {
    return Status(admitted.code(),
                  admitted.message() + " (shard " + std::to_string(s) + ")");
  }
  auto result = fn(*shard.client);
  OnOutcome(shard, is_probe, result.status());
  return result;
}

Result<std::vector<Stage1Response>> FleetRouter::Append(
    TenantId tenant, const std::vector<AppendRequest>& requests) {
  return Routed(tenant, [&](TcpNodeClient& client) {
    return client.AppendForTenant(tenant, requests);
  });
}

Result<Stage1Response> FleetRouter::ReadOne(TenantId tenant,
                                            const EntryIndex& index) {
  return Routed(tenant, [&](TcpNodeClient& client) {
    return client.ReadOneForTenant(tenant, index);
  });
}

Result<BatchReadResponse> FleetRouter::ReadBatch(
    TenantId tenant, uint64_t log_id, const std::vector<uint32_t>& offsets) {
  return Routed(tenant, [&](TcpNodeClient& client) {
    return client.ReadBatchForTenant(tenant, log_id, offsets);
  });
}

Result<AggregationProof> FleetRouter::FetchAggregationProof(
    TenantId tenant, uint64_t log_id) {
  return Routed(tenant, [&](TcpNodeClient& client) {
    return client.FetchAggregationProof(tenant, log_id);
  });
}

FleetRouter::ShardHealth FleetRouter::Health(uint32_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->health;
}

uint64_t FleetRouter::retries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->client->retries();
  return total;
}

}  // namespace wedge
