#ifndef WEDGEBLOCK_SHARD_FLEET_ROUTER_H_
#define WEDGEBLOCK_SHARD_FLEET_ROUTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/tcp_client.h"
#include "shard/router.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// One shard process of a fleet, addressed over real TCP.
struct FleetEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct FleetRouterConfig {
  /// One endpoint per shard process; endpoint i serves ring shard i.
  std::vector<FleetEndpoint> endpoints;
  /// Virtual nodes per shard on the consistent-hash ring (must match the
  /// server side only in so far as tenants map stably; each process is a
  /// self-contained engine, so any consistent client-side map works).
  uint32_t vnodes_per_shard = 64;
  /// Template for the per-endpoint TcpNodeClient (host/port overridden).
  TcpClientConfig client;
  /// Consecutive transport failures before a shard's breaker opens.
  int breaker_failure_threshold = 3;
  /// How long an open breaker fast-fails before letting one probe through.
  Micros breaker_open_duration = 500 * kMicrosPerMilli;
};

/// Client-side router for a fleet of wedgeblockd shard processes: routes
/// each tenant to its shard over the same consistent-hash ring the
/// in-process engine uses, with per-shard health tracking and a circuit
/// breaker. Because log data lives only on its shard, a dead shard is
/// never "failed over" — instead its breaker converts connect/RPC hangs
/// into immediate typed kUnavailable errors so only that shard's tenants
/// degrade while the rest of the fleet keeps serving at full speed.
///
/// Breaker per shard: Closed (normal) -> Open after
/// `breaker_failure_threshold` consecutive transport failures
/// (kUnavailable / kDeadlineExceeded; typed application errors like
/// NotFound count as contact) -> after `breaker_open_duration` one
/// half-open probe is admitted — success closes the breaker, failure
/// re-opens it for another interval.
///
/// Telemetry (`wedge.router.*`): requests / fast_fails / probes / trips /
/// retries counters and an open_breakers gauge.
///
/// Thread-safe: many worker threads may route concurrently.
class FleetRouter {
 public:
  enum class ShardHealth { kClosed, kOpen, kHalfOpen };

  /// `engine_address` pins the transport key every shard process signs
  /// replies with (the fleet shares one engine key).
  FleetRouter(KeyPair client_key, const Address& engine_address,
              FleetRouterConfig config, Telemetry* telemetry = nullptr);
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Dials every endpoint. OK when at least one shard is reachable (the
  /// rest stay lazy, guarded by their breakers).
  Status Connect();
  void Close();

  Result<std::vector<Stage1Response>> Append(
      TenantId tenant, const std::vector<AppendRequest>& requests);
  Result<Stage1Response> ReadOne(TenantId tenant, const EntryIndex& index);
  Result<BatchReadResponse> ReadBatch(TenantId tenant, uint64_t log_id,
                                      const std::vector<uint32_t>& offsets);
  Result<AggregationProof> FetchAggregationProof(TenantId tenant,
                                                 uint64_t log_id);

  uint32_t ShardFor(TenantId tenant) const { return ring_.ShardFor(tenant); }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  ShardHealth Health(uint32_t shard) const;
  /// Direct access to a shard's client (chaos audits, diagnostics).
  TcpNodeClient& client(uint32_t shard) { return *shards_[shard]->client; }

  uint64_t fast_fails() const { return fast_fails_->Value(); }
  uint64_t breaker_trips() const { return trips_->Value(); }
  uint64_t probes() const { return probes_->Value(); }
  /// Sum of every endpoint client's kUnavailable retry attempts.
  uint64_t retries() const;

 private:
  struct Shard {
    std::unique_ptr<TcpNodeClient> client;
    mutable std::mutex mu;
    ShardHealth health = ShardHealth::kClosed;
    int consecutive_failures = 0;
    Micros opened_at = 0;
    bool probe_in_flight = false;
  };

  /// Fast-fails with kUnavailable while the breaker is open; admits one
  /// probe in half-open.
  Status Admit(Shard& shard, bool* is_probe);
  void OnOutcome(Shard& shard, bool is_probe, const Status& status);
  template <typename Fn>
  auto Routed(TenantId tenant, Fn&& fn)
      -> decltype(fn(std::declval<TcpNodeClient&>()));

  const FleetRouterConfig config_;
  ShardRouter ring_;
  std::unique_ptr<Telemetry> owned_telemetry_;
  Telemetry* telemetry_;
  std::vector<std::unique_ptr<Shard>> shards_;

  Counter* requests_ = nullptr;
  Counter* fast_fails_ = nullptr;
  Counter* probes_ = nullptr;
  Counter* trips_ = nullptr;
  Gauge* open_breakers_ = nullptr;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_FLEET_ROUTER_H_
