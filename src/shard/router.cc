#include "shard/router.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"

namespace wedge {

namespace {

uint64_t RingPoint(const char* domain, size_t domain_len, uint64_t a,
                   uint64_t b) {
  Bytes msg;
  msg.reserve(domain_len + 16);
  msg.insert(msg.end(), domain, domain + domain_len);
  PutU64(msg, a);
  PutU64(msg, b);
  Hash256 digest = Sha256::Digest(msg);
  uint64_t point = 0;
  for (int i = 0; i < 8; ++i) point = (point << 8) | digest[i];
  return point;
}

constexpr char kShardDomain[] = "wedge.ring.shard";
constexpr char kTenantDomain[] = "wedge.ring.tenant";

}  // namespace

ShardRouter::ShardRouter(uint32_t num_shards, uint32_t vnodes_per_shard)
    : num_shards_(num_shards == 0 ? 1 : num_shards) {
  ring_.reserve(static_cast<size_t>(num_shards_) * vnodes_per_shard);
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    for (uint32_t vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      ring_.emplace_back(RingPoint(kShardDomain, sizeof(kShardDomain) - 1,
                                   shard, vnode),
                         shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint64_t ShardRouter::TenantPoint(uint64_t tenant) {
  return RingPoint(kTenantDomain, sizeof(kTenantDomain) - 1, tenant, 0);
}

uint32_t ShardRouter::ShardFor(uint64_t tenant) const {
  if (num_shards_ == 1) return 0;
  uint64_t point = TenantPoint(tenant);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<uint64_t, uint32_t>& e, uint64_t p) {
        return e.first < p;
      });
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the ring.
  return it->second;
}

}  // namespace wedge
