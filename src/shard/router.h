#ifndef WEDGEBLOCK_SHARD_ROUTER_H_
#define WEDGEBLOCK_SHARD_ROUTER_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace wedge {

/// Consistent-hash tenant -> shard router. Each shard projects
/// `vnodes_per_shard` points onto a 64-bit SHA-256-derived ring; a tenant
/// maps to the shard owning the first ring point at or after the tenant's
/// own hash point.
///
/// The ring is a pure function of (num_shards, vnodes_per_shard): two
/// processes — or one process across a restart — build byte-identical
/// rings, so routing is stable without any persisted state. Consistent
/// hashing (rather than `tenant % N`) keeps most tenants pinned to their
/// shard when the shard count changes, which is what makes file-backed
/// shard stores reusable across resizes.
///
/// Immutable after construction, hence freely shared across RPC workers.
class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards, uint32_t vnodes_per_shard = 64);

  uint32_t ShardFor(uint64_t tenant) const;
  uint32_t num_shards() const { return num_shards_; }

  /// The ring point a tenant hashes to (exposed for tests).
  static uint64_t TenantPoint(uint64_t tenant);

 private:
  uint32_t num_shards_;
  /// Sorted (point, shard) pairs.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_ROUTER_H_
