#include "shard/shard_rpc.h"

namespace wedge {

namespace {

constexpr TenantId kLegacyTenant = 0;

Result<Bytes> DispatchAppend(ShardedLogEngine& engine, TenantId tenant,
                             ByteReader& reader) {
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count == 0 || count > 1u << 20) {
    return Status::InvalidArgument("bad append count");
  }
  std::vector<AppendRequest> requests;
  requests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes raw, reader.ReadBytes());
    WEDGE_ASSIGN_OR_RETURN(AppendRequest req, AppendRequest::Deserialize(raw));
    requests.push_back(std::move(req));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after append body");
  }
  WEDGE_ASSIGN_OR_RETURN(std::vector<Stage1Response> responses,
                         engine.Append(tenant, std::move(requests)));
  Bytes out;
  PutU32(out, static_cast<uint32_t>(responses.size()));
  for (const Stage1Response& r : responses) PutBytes(out, r.Serialize());
  return out;
}

Result<Bytes> DispatchRead(ShardedLogEngine& engine, TenantId tenant,
                           ByteReader& reader) {
  EntryIndex index;
  WEDGE_ASSIGN_OR_RETURN(index.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(index.offset, reader.ReadU32());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after read body");
  }
  WEDGE_ASSIGN_OR_RETURN(Stage1Response response,
                         engine.ReadOne(tenant, index));
  return response.Serialize();
}

Result<Bytes> DispatchReadBatch(ShardedLogEngine& engine, TenantId tenant,
                                ByteReader& reader) {
  uint64_t log_id;
  WEDGE_ASSIGN_OR_RETURN(log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count > 1u << 20) {
    return Status::InvalidArgument("bad readBatch count");
  }
  std::vector<uint32_t> offsets;
  offsets.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(uint32_t off, reader.ReadU32());
    offsets.push_back(off);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after readBatch body");
  }
  WEDGE_ASSIGN_OR_RETURN(BatchReadResponse response,
                         engine.ReadBatch(tenant, log_id, std::move(offsets)));
  return response.Serialize();
}

}  // namespace

Result<Bytes> DispatchEngineRpc(ShardedLogEngine& engine,
                                std::string_view op, const Bytes& body) {
  ByteReader reader(body);
  if (op == kOpAppendTenant || op == kOpReadTenant ||
      op == kOpReadBatchTenant || op == kOpAggProof) {
    // The wire tenant id is client-asserted. For appends the engine can
    // bind it to the request's publisher key
    // (ShardedEngineConfig::authenticate_tenants, typed PermissionDenied
    // on mismatch); without that flag, per-tenant quotas assume
    // cooperative clients.
    WEDGE_ASSIGN_OR_RETURN(TenantId tenant, reader.ReadU64());
    if (op == kOpAppendTenant) return DispatchAppend(engine, tenant, reader);
    if (op == kOpReadTenant) return DispatchRead(engine, tenant, reader);
    if (op == kOpReadBatchTenant) {
      return DispatchReadBatch(engine, tenant, reader);
    }
    // aggProof: [u64 tenant][u64 log_id] -> serialized AggregationProof.
    WEDGE_ASSIGN_OR_RETURN(uint64_t log_id, reader.ReadU64());
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after aggProof body");
    }
    WEDGE_ASSIGN_OR_RETURN(AggregationProof proof,
                           engine.ProveAggregation(tenant, log_id));
    return proof.Serialize();
  }
  // Legacy single-node ops keep working against a sharded daemon,
  // scoped to tenant 0.
  if (op == kOpAppend) return DispatchAppend(engine, kLegacyTenant, reader);
  if (op == kOpRead) return DispatchRead(engine, kLegacyTenant, reader);
  if (op == kOpReadBatch) {
    return DispatchReadBatch(engine, kLegacyTenant, reader);
  }
  return Status::NotFound("unknown rpc op");
}

}  // namespace wedge
