#ifndef WEDGEBLOCK_SHARD_SHARD_RPC_H_
#define WEDGEBLOCK_SHARD_SHARD_RPC_H_

#include "core/rpc_codec.h"
#include "shard/sharded_engine.h"

namespace wedge {

/// Server-side dispatch for the sharded engine: the tenant-scoped ops
/// ("appendT"/"readT"/"readBatchT"/"aggProof", see core/rpc_codec.h) plus
/// the legacy single-node ops, which are served as tenant 0 — so a
/// pre-sharding client keeps working against a sharded daemon.
///
/// Quota rejections propagate as typed ResourceExhausted errors; the RPC
/// server encodes them into the error response via Status::ToString and
/// Status::FromWireString recovers them client-side.
Result<Bytes> DispatchEngineRpc(ShardedLogEngine& engine,
                                std::string_view op, const Bytes& body);

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_SHARD_RPC_H_
