#include "shard/sharded_engine.h"

#include "storage/log_store.h"
#include "storage/segstore/segment_store.h"

namespace wedge {

ShardedLogEngine::ShardedLogEngine(const ShardedEngineConfig& config,
                                   KeyPair engine_key, Telemetry* telemetry)
    : config_(config),
      key_(std::move(engine_key)),
      router_(config.num_shards, config.router_vnodes),
      telemetry_(telemetry) {
  if (telemetry_ == nullptr) {
    owned_telemetry_ = std::make_unique<Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
}

Result<std::unique_ptr<ShardedLogEngine>> ShardedLogEngine::Create(
    const ShardedEngineConfig& config, KeyPair engine_key,
    std::vector<std::unique_ptr<LogStore>> stores, Blockchain* chain,
    const Address& root_record_address, Telemetry* telemetry,
    std::unique_ptr<AggregatorJournal> journal) {
  if (config.num_shards == 0 || config.num_shards > 256) {
    return Status::InvalidArgument("num_shards must be in [1, 256]");
  }
  if (journal != nullptr && !config.forest_stage2) {
    return Status::InvalidArgument(
        "the aggregator journal is meaningless without forest_stage2");
  }
  if (!config.forest_stage2 && config.num_shards != 1) {
    return Status::InvalidArgument(
        "classic per-shard stage-2 (forest_stage2=false) is only the "
        "degenerate single-shard configuration");
  }
  if (!stores.empty() && stores.size() != config.num_shards) {
    return Status::InvalidArgument("store count != num_shards");
  }
  if (config.authenticate_tenants && !config.node.verify_client_signatures) {
    return Status::InvalidArgument(
        "authenticate_tenants binds tenant ids to publisher keys, which "
        "is meaningless without verify_client_signatures");
  }

  std::unique_ptr<ShardedLogEngine> e(
      new ShardedLogEngine(config, std::move(engine_key), telemetry));
  e->admission_ = std::make_unique<AdmissionController>(
      config.quota,
      chain != nullptr ? static_cast<const Clock*>(chain->clock())
                       : RealClock::Global(),
      &e->telemetry_->metrics);

  for (uint32_t i = 0; i < config.num_shards; ++i) {
    OffchainNodeConfig node_config = config.node;
    // Every shard signs with the same engine key, so the shard identity
    // must live inside the signed stage-1 statement — otherwise two
    // shards' dense log-id namespaces collide and honest signatures can
    // be replayed across shards as fake "equivocation" evidence.
    node_config.shard_id = i;
    Blockchain* shard_chain = chain;
    if (config.forest_stage2) {
      // Forest mode: the aggregator owns stage 2; shards never submit.
      node_config.auto_stage2 = false;
      shard_chain = nullptr;
    }
    std::unique_ptr<LogStore> store =
        stores.empty() ? std::make_unique<MemoryLogStore>()
                       : std::move(stores[i]);
    e->shards_.push_back(std::make_unique<OffchainNode>(
        node_config, e->key_, std::move(store), shard_chain,
        root_record_address, e->telemetry_));

    std::string prefix = "wedge.shard." + std::to_string(i) + ".";
    e->shard_counters_.push_back(ShardCounters{
        e->telemetry_->metrics.GetCounter(prefix + "appends"),
        e->telemetry_->metrics.GetCounter(prefix + "entries"),
        e->telemetry_->metrics.GetCounter(prefix + "reads"),
    });
  }

  if (config.forest_stage2) {
    std::vector<OffchainNode*> shard_ptrs;
    for (auto& s : e->shards_) shard_ptrs.push_back(s.get());
    e->aggregator_ = std::make_unique<EpochRootAggregator>(
        std::move(shard_ptrs), e->key_, chain, root_record_address,
        e->telemetry_);
    if (journal != nullptr) {
      e->journal_ = std::move(journal);
      WEDGE_RETURN_IF_ERROR(e->aggregator_->AttachJournal(e->journal_.get()));
    }
  }
  return e;
}

Result<ShardedLogEngine::RecoveryReport> ShardedLogEngine::Recover() {
  if (aggregator_ == nullptr) {
    return Status::FailedPrecondition("recovery needs forest_stage2");
  }
  RecoveryReport report;
  report.journaled_epochs = aggregator_->epochs_closed();

  // Storage-tier reconciliation happened when each shard's store was
  // opened (segment backend: O(segments) trailer reads + WAL-tail
  // replay, stray .tmp cleanup); fold what it found into the one report
  // so a single Recover() call accounts for all three layers — segment
  // store, aggregator journal, on-chain forest roots.
  for (auto& shard : shards_) {
    if (auto* seg = dynamic_cast<SegmentLogStore*>(&shard->store())) {
      const SegmentLogStore::RecoveryInfo& info = seg->recovery();
      report.store_segments += info.segments;
      report.store_wal_positions += info.wal_positions;
      report.store_wal_truncated_bytes += info.wal_truncated_bytes;
      report.store_tmp_files_removed += info.tmp_files_removed;
    }
  }

  // Shard-tail reconciliation: the file stores already replayed every
  // sealed (hence acked) batch; anything past the journal's per-shard
  // cursors was sealed but never epoch-assigned, so stage it now and
  // close it into fresh epochs (journaled, then submitted).
  aggregator_->PollShards();
  report.restaged_roots = aggregator_->staged_count();
  while (aggregator_->staged_count() > 0) {
    WEDGE_RETURN_IF_ERROR(aggregator_->CloseEpoch().status());
    ++report.recovered_epochs;
  }

  // Chain reconciliation for everything replayed from the journal.
  WEDGE_RETURN_IF_ERROR(aggregator_->RecoverEpochs(
      &report.resubmitted_epochs, &report.confirmed_epochs));

  Counter* restaged =
      telemetry_->metrics.GetCounter("wedge.engine.recover_restaged");
  Counter* resubmits =
      telemetry_->metrics.GetCounter("wedge.engine.recover_resubmits");
  restaged->Add(report.restaged_roots);
  resubmits->Add(report.resubmitted_epochs);
  return report;
}

Result<std::vector<Stage1Response>> ShardedLogEngine::Append(
    TenantId tenant, std::vector<AppendRequest> requests) {
  if (config_.authenticate_tenants) {
    // Before any quota is charged: the claimed tenant must be the one
    // derived from the publisher key of every request. The shard then
    // verifies those publishers' signatures, so a spoofer would need the
    // victim's key — checked here, a mismatched id can neither spend a
    // victim's budget nor register junk tenants.
    for (const AppendRequest& req : requests) {
      if (PublisherTenant(req.publisher) != tenant) {
        return Status::PermissionDenied(
            "append under tenant " + std::to_string(tenant) +
            " carries a request from publisher " + req.publisher.ToHex() +
            " (tenant " + std::to_string(PublisherTenant(req.publisher)) +
            ")");
      }
    }
  }
  WEDGE_RETURN_IF_ERROR(admission_->AdmitAppend(tenant, requests.size()));
  uint32_t s = router_.ShardFor(tenant);
  size_t entries = requests.size();
  auto result = shards_[s]->Append(std::move(requests));
  // Refund rate tokens for entries the shard dropped (forged signatures,
  // whole-call failure): junk submitted under a tenant's name must not
  // drain the budget of appends that never landed.
  size_t appended = result.ok() ? result.value().size() : 0;
  admission_->EndAppend(tenant, entries - appended);
  if (result.ok()) {
    shard_counters_[s].appends->Add(1);
    shard_counters_[s].entries->Add(appended);
  }
  return result;
}

Result<Stage1Response> ShardedLogEngine::ReadOne(TenantId tenant,
                                                 const EntryIndex& index) {
  uint32_t s = router_.ShardFor(tenant);
  auto result = shards_[s]->ReadOne(index);
  if (result.ok()) shard_counters_[s].reads->Add(1);
  return result;
}

Result<BatchReadResponse> ShardedLogEngine::ReadBatch(
    TenantId tenant, uint64_t log_id, std::vector<uint32_t> offsets) {
  uint32_t s = router_.ShardFor(tenant);
  auto result = shards_[s]->ReadBatch(log_id, std::move(offsets));
  if (result.ok()) shard_counters_[s].reads->Add(1);
  return result;
}

Result<AggregationProof> ShardedLogEngine::ProveAggregation(
    TenantId tenant, uint64_t log_id) {
  if (aggregator_ == nullptr) {
    return Status::FailedPrecondition(
        "aggregation proofs need forest_stage2");
  }
  return aggregator_->Prove(router_.ShardFor(tenant), log_id);
}

void ShardedLogEngine::Tick() {
  ++ticks_;
  if (aggregator_ == nullptr) {
    for (auto& shard : shards_) shard->Stage2Tick();
    return;
  }
  aggregator_->PollShards();
  uint32_t every = config_.epoch_ticks == 0 ? 1 : config_.epoch_ticks;
  if (ticks_ % every == 0) {
    // NotFound just means an empty epoch — no transaction to waste.
    (void)aggregator_->CloseEpoch();
  }
  aggregator_->Tick();
}

Result<TxId> ShardedLogEngine::AggregateNow() {
  if (aggregator_ == nullptr) {
    return Status::FailedPrecondition(
        "aggregation needs forest_stage2");
  }
  for (auto& shard : shards_) {
    // Seal whatever is staged so the poll below sees it; an empty stage
    // is not an error here.
    (void)shard->FlushStagedBatch();
  }
  aggregator_->PollShards();
  return aggregator_->CloseEpoch();
}

Status ShardedLogEngine::RetireTenant(TenantId tenant) {
  OffchainNode& shard = *shards_[router_.ShardFor(tenant)];
  auto* seg = dynamic_cast<SegmentLogStore*>(&shard.store());
  if (seg == nullptr) {
    return Status::FailedPrecondition(
        "tenant retirement needs the segment store backend");
  }
  return seg->RetireTenant(tenant);
}

Result<uint64_t> ShardedLogEngine::CompactStorage() {
  uint64_t reclaimed = 0;
  for (auto& shard : shards_) {
    auto* seg = dynamic_cast<SegmentLogStore*>(&shard->store());
    if (seg == nullptr) continue;
    WEDGE_ASSIGN_OR_RETURN(SegmentLogStore::CompactionStats stats,
                           seg->Compact());
    reclaimed += stats.bytes_reclaimed;
  }
  return reclaimed;
}

Result<std::unique_ptr<ShardedDeployment>> ShardedDeployment::Create(
    const ShardedDeploymentConfig& config, uint64_t publisher_seed) {
  std::unique_ptr<ShardedDeployment> d(new ShardedDeployment());
  d->config_ = config;
  d->publisher_seed_ = publisher_seed;
  d->telemetry_ = std::make_unique<Telemetry>(&d->clock_);
  d->chain_ = std::make_unique<Blockchain>(config.chain, &d->clock_,
                                           d->telemetry_.get());

  KeyPair engine_key = KeyPair::FromSeed(config.engine_key_seed);
  KeyPair publisher_key = KeyPair::FromSeed(publisher_seed);
  d->chain_->Fund(engine_key.address(), config.engine_funding);
  d->chain_->Fund(publisher_key.address(), config.client_funding);

  WEDGE_ASSIGN_OR_RETURN(
      d->root_record_address_,
      d->chain_->Deploy(
          engine_key.address(),
          std::make_unique<RootRecordContract>(engine_key.address())));
  WEDGE_ASSIGN_OR_RETURN(
      d->punishment_address_,
      d->chain_->Deploy(
          engine_key.address(),
          std::make_unique<PunishmentContract>(
              publisher_key.address(), engine_key.address(),
              d->root_record_address_,
              d->clock_.NowSeconds() + config.escrow_lock_seconds,
              config.omission_grace_seconds),
          config.escrow));

  std::vector<std::unique_ptr<LogStore>> stores;
  std::unique_ptr<AggregatorJournal> journal;
  if (!config.log_dir.empty()) {
    StoreBackendOptions store_options;
    store_options.fsync = config.log_fsync;
    store_options.segment_positions = config.store_segment_positions;
    store_options.metrics = &d->telemetry_->metrics;
    for (uint32_t i = 0; i < config.engine.num_shards; ++i) {
      const std::string base =
          config.log_dir + "/shard-" + std::to_string(i);
      const std::string path =
          config.store_backend == StoreBackend::kSegment ? base + ".seg"
                                                         : base + ".log";
      WEDGE_ASSIGN_OR_RETURN(
          auto store, OpenLogStore(config.store_backend, path, store_options));
      stores.push_back(std::move(store));
    }
    if (config.engine.forest_stage2) {
      AggregatorJournal::Options journal_options;
      journal_options.fsync_on_append = config.log_fsync;
      WEDGE_ASSIGN_OR_RETURN(
          journal, AggregatorJournal::Open(
                       config.log_dir + "/aggregator.journal",
                       journal_options));
    }
  }
  WEDGE_ASSIGN_OR_RETURN(
      d->engine_,
      ShardedLogEngine::Create(config.engine, engine_key, std::move(stores),
                               d->chain_.get(), d->root_record_address_,
                               d->telemetry_.get(), std::move(journal)));
  return d;
}

PublisherClient ShardedDeployment::MakePublisher(TenantId tenant) {
  KeyPair key = KeyPair::FromSeed(publisher_seed_);
  PublisherClient publisher(
      std::move(key), &engine_->shard(engine_->ShardFor(tenant)),
      chain_.get(), root_record_address_, punishment_address_);
  publisher.set_omission_grace_seconds(config_.omission_grace_seconds);
  return publisher;
}

UserClient ShardedDeployment::MakeUser(TenantId tenant, uint64_t seed) {
  KeyPair key = KeyPair::FromSeed(seed);
  chain_->Fund(key.address(), config_.client_funding);
  return UserClient(std::move(key),
                    &engine_->shard(engine_->ShardFor(tenant)),
                    chain_.get(), root_record_address_);
}

void ShardedDeployment::AdvanceBlocks(int count) {
  for (int i = 0; i < count; ++i) {
    clock_.AdvanceSeconds(config_.chain.block_interval_seconds);
    chain_->PumpUntilNow();
    engine_->Tick();
  }
}

}  // namespace wedge
