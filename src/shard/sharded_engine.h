#ifndef WEDGEBLOCK_SHARD_SHARDED_ENGINE_H_
#define WEDGEBLOCK_SHARD_SHARDED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "contracts/punishment.h"
#include "contracts/root_record.h"
#include "core/client.h"
#include "core/rpc_codec.h"
#include "shard/epoch_aggregator.h"
#include "shard/router.h"
#include "shard/token_bucket.h"
#include "storage/backend.h"

namespace wedge {

struct ShardedEngineConfig {
  /// Number of independent OffchainNode shards.
  uint32_t num_shards = 1;
  /// Per-shard node configuration (applied to every shard).
  OffchainNodeConfig node;
  /// Per-tenant admission quotas (all-zero = admit everything).
  TenantQuotaConfig quota;
  /// Close an aggregation epoch every N Tick() calls (i.e. every N
  /// blocks when the caller ticks per block).
  uint32_t epoch_ticks = 1;
  /// When true (the default for num_shards > 1), shards do no stage-2 of
  /// their own; the EpochRootAggregator submits one forest root per
  /// epoch. When false — allowed only with num_shards == 1 — the single
  /// shard runs the classic per-batch updateRecords stream, making the
  /// engine behaviourally identical to a bare OffchainNode (the
  /// degenerate configuration the regression benches pin down).
  bool forest_stage2 = true;
  /// Virtual nodes per shard on the consistent-hash ring.
  uint32_t router_vnodes = 64;
  /// Require every append's wire tenant id to equal
  /// PublisherTenant(request.publisher) — the id derived from the key the
  /// node verifies signatures against — so quotas bind to keys instead of
  /// client-asserted u64s (spoofing a victim's id or cycling fresh ids to
  /// evade/exhaust quotas then needs forging signatures). Needs
  /// node.verify_client_signatures; off by default because the wire id is
  /// free-form for cooperative deployments (see AdmissionController).
  bool authenticate_tenants = false;
};

/// N independent OffchainNode shards behind a consistent-hash
/// tenant -> shard router, with per-tenant token-bucket admission control
/// and a single epoch-aggregated stage-2 stream (see
/// shard/epoch_aggregator.h). Every shard signs with the same engine key,
/// so one escrow/Punishment deployment covers the whole engine and a
/// client needs no per-shard trust setup.
///
/// Log ids are SHARD-LOCAL (each shard's store numbers its positions
/// densely from 0; stage-1 signatures commit to the (shard_id, log_id)
/// pair — see contracts/stage1_message.h — so the dense namespaces can
/// never be confused for each other); a reader therefore addresses an
/// entry by (tenant, log_id, offset) and the engine routes by tenant.
/// Thread-safe to the same degree OffchainNode is: Append/Read may be
/// called from many RPC workers concurrently.
class ShardedLogEngine {
 public:
  /// `stores` must be empty (memory stores) or have exactly
  /// config.num_shards entries. `chain` may be null (benches).
  /// `journal` (optional, forest mode only) is attached to the
  /// aggregator and replayed before the engine serves anything, so a
  /// restarted engine resumes its epoch numbering and proof index where
  /// the journal left off; call Recover() afterwards to reconcile the
  /// replayed state with the shard tails and the chain.
  static Result<std::unique_ptr<ShardedLogEngine>> Create(
      const ShardedEngineConfig& config, KeyPair engine_key,
      std::vector<std::unique_ptr<LogStore>> stores, Blockchain* chain,
      const Address& root_record_address, Telemetry* telemetry,
      std::unique_ptr<AggregatorJournal> journal = nullptr);

  /// What one Recover() pass did.
  struct RecoveryReport {
    uint64_t journaled_epochs = 0;   ///< Epochs replayed from the journal.
    uint64_t restaged_roots = 0;     ///< Sealed roots no journaled epoch held.
    uint64_t recovered_epochs = 0;   ///< New epochs closed over those roots.
    uint64_t resubmitted_epochs = 0; ///< Journaled epochs resubmitted on chain.
    uint64_t confirmed_epochs = 0;   ///< Epochs found already recorded.
    // Storage-tier recovery (segment backend; zero on other backends).
    uint64_t store_segments = 0;       ///< Sealed segments across all shards.
    uint64_t store_wal_positions = 0;  ///< Live WAL-tail positions replayed.
    uint64_t store_wal_truncated_bytes = 0;  ///< Torn WAL bytes dropped.
    uint64_t store_tmp_files_removed = 0;    ///< Interrupted seal scratch.
  };

  /// One-pass crash recovery (forest mode): reconciles every shard's
  /// recovered log tail against the journal — any batch root sealed
  /// before the crash but never assigned to an epoch is staged and closed
  /// into fresh epochs — then checks every epoch with no in-flight
  /// transaction against the chain's forest record, resubmitting the
  /// ones whose root never landed. Idempotent: a second call (or a call
  /// after a clean shutdown) finds nothing to do. Generalizes
  /// OffchainNode::Recover to the sharded topology.
  Result<RecoveryReport> Recover();

  /// Routed, admission-controlled append. Quota rejections are typed
  /// Status::ResourceExhausted, which the RPC layer forwards verbatim.
  Result<std::vector<Stage1Response>> Append(
      TenantId tenant, std::vector<AppendRequest> requests);

  Result<Stage1Response> ReadOne(TenantId tenant, const EntryIndex& index);
  Result<BatchReadResponse> ReadBatch(TenantId tenant, uint64_t log_id,
                                      std::vector<uint32_t> offsets);

  /// Engine-signed batch-root -> forest-root proof for a tenant's sealed
  /// batch. FailedPrecondition in the degenerate (classic stage-2)
  /// configuration.
  Result<AggregationProof> ProveAggregation(TenantId tenant,
                                            uint64_t log_id);

  /// One "block" of background progress: classic mode ticks each shard's
  /// stage-2 submitter; forest mode polls shard roots, closes an epoch
  /// every `epoch_ticks` calls, and runs aggregator receipt bookkeeping.
  void Tick();

  /// Seals staged batches on every shard (see
  /// OffchainNode::FlushStagedBatch), then force-closes an epoch over
  /// everything sealed so far. For tests and draining.
  Result<TxId> AggregateNow();

  /// Marks a tenant's stored payloads as garbage on its shard's store
  /// (segment backend only — FailedPrecondition otherwise). Space is
  /// reclaimed by CompactStorage() or the store's background thread;
  /// log-id density and every other tenant's proofs are preserved.
  Status RetireTenant(TenantId tenant);
  /// Runs compaction on every shard store that supports it. Returns the
  /// total bytes reclaimed.
  Result<uint64_t> CompactStorage();

  uint32_t ShardFor(TenantId tenant) const {
    return router_.ShardFor(tenant);
  }
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  OffchainNode& shard(uint32_t i) { return *shards_[i]; }
  /// Null in the degenerate (classic stage-2) configuration.
  EpochRootAggregator* aggregator() { return aggregator_.get(); }
  AdmissionController& admission() { return *admission_; }
  const ShardRouter& router() const { return router_; }
  const Address& address() const { return key_.address(); }
  const ShardedEngineConfig& config() const { return config_; }
  Telemetry& telemetry() { return *telemetry_; }

 private:
  ShardedLogEngine(const ShardedEngineConfig& config, KeyPair engine_key,
                   Telemetry* telemetry);

  ShardedEngineConfig config_;
  KeyPair key_;
  ShardRouter router_;
  Telemetry* telemetry_;
  std::unique_ptr<Telemetry> owned_telemetry_;
  std::unique_ptr<AdmissionController> admission_;
  std::vector<std::unique_ptr<OffchainNode>> shards_;
  std::unique_ptr<AggregatorJournal> journal_;
  std::unique_ptr<EpochRootAggregator> aggregator_;
  uint64_t ticks_ = 0;

  struct ShardCounters {
    Counter* appends;
    Counter* entries;
    Counter* reads;
  };
  std::vector<ShardCounters> shard_counters_;
};

/// End-to-end setup of a sharded WedgeBlock instance — the sharded
/// counterpart of Deployment (core/wedgeblock.h): simulated chain,
/// funded engine + publisher accounts, RootRecord + Punishment contracts
/// (escrowed, bound to the engine key), and the engine itself.
struct ShardedDeploymentConfig {
  ChainConfig chain;
  ShardedEngineConfig engine;
  Wei escrow = EthToWei(32);
  Wei engine_funding = EthToWei(1000);
  Wei client_funding = EthToWei(1000);
  uint64_t engine_key_seed = 0xED6E;
  int64_t escrow_lock_seconds = 30 * 24 * 3600;
  int64_t omission_grace_seconds = 600;
  /// Per-shard durable stores under `log_dir` ("" = in-memory
  /// regardless of `store_backend`). Forest mode also keeps the
  /// aggregator journal at `<log_dir>/aggregator.journal`.
  std::string log_dir;
  /// Which LogStore implementation backs each shard when log_dir is
  /// set: kFile -> `<log_dir>/shard-<i>.log`, kSegment ->
  /// `<log_dir>/shard-<i>.seg/` (WAL + sealed segments).
  StoreBackend store_backend = StoreBackend::kFile;
  /// Segment backend: positions per sealed segment (0 = store default).
  uint64_t store_segment_positions = 0;
  bool log_fsync = false;
};

class ShardedDeployment {
 public:
  static Result<std::unique_ptr<ShardedDeployment>> Create(
      const ShardedDeploymentConfig& config,
      uint64_t publisher_seed = 0xC11E);

  SimClock& clock() { return clock_; }
  Blockchain& chain() { return *chain_; }
  ShardedLogEngine& engine() { return *engine_; }
  Telemetry& telemetry() { return *telemetry_; }
  const Address& root_record_address() const { return root_record_address_; }
  const Address& punishment_address() const { return punishment_address_; }

  /// A publisher client bound to the shard serving `tenant` (the
  /// Punishment contract is bound to the publisher key passed to
  /// Create, whichever tenant it publishes under).
  PublisherClient MakePublisher(TenantId tenant);
  UserClient MakeUser(TenantId tenant, uint64_t seed);

  /// Advances simulated time, mines pending blocks, and ticks the
  /// engine (stage-2 / epoch aggregation progress).
  void AdvanceBlocks(int count);

 private:
  ShardedDeployment() : clock_(0) {}

  ShardedDeploymentConfig config_;
  uint64_t publisher_seed_ = 0;
  SimClock clock_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<Blockchain> chain_;
  std::unique_ptr<ShardedLogEngine> engine_;
  Address root_record_address_;
  Address punishment_address_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_SHARDED_ENGINE_H_
