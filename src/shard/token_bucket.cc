#include "shard/token_bucket.h"

#include <algorithm>
#include <string>

namespace wedge {

bool TokenBucket::TryTake(double n, Micros now) {
  if (now > last_refill_) {
    double elapsed =
        static_cast<double>(now - last_refill_) / kMicrosPerSecond;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_refill_ = now;
  }
  if (tokens_ < n) return false;
  tokens_ -= n;
  return true;
}

AdmissionController::AdmissionController(const TenantQuotaConfig& config,
                                         const Clock* clock,
                                         MetricsRegistry* metrics)
    : config_(config),
      effective_burst_(config.burst_entries > 0
                           ? config.burst_entries
                           : 2.0 * config.entries_per_second),
      clock_(clock),
      rate_rejections_(
          metrics->GetCounter("wedge.engine.quota_rejections_rate")),
      inflight_rejections_(
          metrics->GetCounter("wedge.engine.quota_rejections_inflight")),
      tenant_rejections_(
          metrics->GetCounter("wedge.engine.quota_rejections_tenant")) {}

AdmissionController::TenantState& AdmissionController::StateForLocked(
    uint64_t tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(tenant,
                      TenantState{TokenBucket(config_.entries_per_second,
                                              effective_burst_,
                                              clock_->NowMicros()),
                                  0})
             .first;
  }
  return it->second;
}

Status AdmissionController::AdmitAppend(uint64_t tenant, size_t entries) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.max_tenants > 0 && tenants_.count(tenant) == 0 &&
      tenants_.size() >= config_.max_tenants) {
    tenant_rejections_->Add(1);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " over the " +
        std::to_string(config_.max_tenants) + "-tenant cap");
  }
  TenantState& state = StateForLocked(tenant);
  if (config_.max_inflight_appends > 0 &&
      state.inflight >= config_.max_inflight_appends) {
    inflight_rejections_->Add(1);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) +
        " has too many in-flight appends");
  }
  if (config_.entries_per_second > 0 &&
      !state.bucket.TryTake(static_cast<double>(entries),
                            clock_->NowMicros())) {
    rate_rejections_->Add(1);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " exceeded its append rate");
  }
  ++state.inflight;
  return Status::Ok();
}

void AdmissionController::EndAppend(uint64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end() && it->second.inflight > 0) {
    --it->second.inflight;
  }
}

}  // namespace wedge
