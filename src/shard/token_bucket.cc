#include "shard/token_bucket.h"

#include <algorithm>
#include <string>

namespace wedge {

bool TokenBucket::TryTake(double n, Micros now) {
  if (now > last_refill_) {
    double elapsed =
        static_cast<double>(now - last_refill_) / kMicrosPerSecond;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_refill_ = now;
  }
  if (tokens_ < n) return false;
  tokens_ -= n;
  return true;
}

AdmissionController::AdmissionController(const TenantQuotaConfig& config,
                                         const Clock* clock,
                                         MetricsRegistry* metrics)
    : config_(config),
      effective_burst_(config.burst_entries > 0
                           ? config.burst_entries
                           : 2.0 * config.entries_per_second),
      clock_(clock),
      rate_rejections_(
          metrics->GetCounter("wedge.engine.quota_rejections_rate")),
      inflight_rejections_(
          metrics->GetCounter("wedge.engine.quota_rejections_inflight")),
      tenant_rejections_(
          metrics->GetCounter("wedge.engine.quota_rejections_tenant")) {}

void AdmissionController::EvictIdleLocked(Micros now) {
  if (config_.idle_tenant_seconds <= 0) return;
  const Micros horizon =
      static_cast<Micros>(config_.idle_tenant_seconds) * kMicrosPerSecond;
  for (auto it = tenants_.begin(); it != tenants_.end();) {
    if (it->second.inflight == 0 && now - it->second.last_active >= horizon) {
      it = tenants_.erase(it);
    } else {
      ++it;
    }
  }
}

Status AdmissionController::AdmitAppend(uint64_t tenant, size_t entries) {
  if (config_.entries_per_second <= 0 && config_.max_inflight_appends == 0 &&
      config_.max_tenants == 0) {
    // No per-tenant quota configured: admit without materializing any
    // state, so the no-quota engine holds zero per-tenant memory no
    // matter how many ids it sees.
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(mu_);
  const Micros now = clock_->NowMicros();
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    // A new tenant id must pass every check BEFORE any state is created:
    // a rejected request may not consume a cap slot or a map entry
    // (otherwise junk ids exhaust max_tenants, or — with no cap — grow
    // the map without bound).
    if (config_.max_tenants > 0) {
      if (tenants_.size() >= config_.max_tenants) EvictIdleLocked(now);
      if (tenants_.size() >= config_.max_tenants) {
        tenant_rejections_->Add(1);
        return Status::ResourceExhausted(
            "tenant " + std::to_string(tenant) + " over the " +
            std::to_string(config_.max_tenants) + "-tenant cap");
      }
    } else if (tenants_.size() >= kIdleSweepSize) {
      EvictIdleLocked(now);
    }
    if (config_.entries_per_second > 0 &&
        static_cast<double>(entries) > effective_burst_) {
      // A fresh bucket holds exactly `effective_burst_` tokens, so this
      // request cannot be admitted — reject it statelessly.
      rate_rejections_->Add(1);
      return Status::ResourceExhausted(
          "tenant " + std::to_string(tenant) + " exceeded its append rate");
    }
    it = tenants_
             .emplace(tenant,
                      TenantState{TokenBucket(config_.entries_per_second,
                                              effective_burst_, now),
                                  0, now})
             .first;
  }
  TenantState& state = it->second;
  if (config_.max_inflight_appends > 0 &&
      state.inflight >= config_.max_inflight_appends) {
    inflight_rejections_->Add(1);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) +
        " has too many in-flight appends");
  }
  if (config_.entries_per_second > 0 &&
      !state.bucket.TryTake(static_cast<double>(entries), now)) {
    rate_rejections_->Add(1);
    return Status::ResourceExhausted(
        "tenant " + std::to_string(tenant) + " exceeded its append rate");
  }
  ++state.inflight;
  state.last_active = now;
  return Status::Ok();
}

void AdmissionController::EndAppend(uint64_t tenant, size_t unused_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  if (it->second.inflight > 0) --it->second.inflight;
  if (unused_entries > 0 && config_.entries_per_second > 0) {
    it->second.bucket.Refund(static_cast<double>(unused_entries));
  }
  it->second.last_active = clock_->NowMicros();
}

size_t AdmissionController::tracked_tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

}  // namespace wedge
