#ifndef WEDGEBLOCK_SHARD_TOKEN_BUCKET_H_
#define WEDGEBLOCK_SHARD_TOKEN_BUCKET_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/clock.h"
#include "common/status.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Per-tenant admission limits. Zero means "unlimited" for every knob, so
/// a default-constructed config admits everything (the degenerate
/// single-tenant engine must behave exactly like a bare OffchainNode).
struct TenantQuotaConfig {
  /// Sustained entries/second each tenant may append.
  double entries_per_second = 0;
  /// Bucket capacity: how many entries a tenant may burst above the
  /// sustained rate. Defaults to 2 seconds worth of rate when 0.
  double burst_entries = 0;
  /// Concurrent in-flight append RPCs per tenant.
  uint32_t max_inflight_appends = 0;
  /// Hard cap on the number of distinct tenants admitted (0 = unlimited).
  uint64_t max_tenants = 0;
  /// Seconds a tenant with no in-flight appends may sit idle before its
  /// admission state (token bucket + cap slot) is evicted. Eviction runs
  /// opportunistically when new tenants register, so dead ids neither
  /// hold cap slots forever nor grow the state map without bound.
  /// 0 disables eviction.
  int64_t idle_tenant_seconds = 300;
};

/// Classic token bucket: refills at `rate` tokens/second up to `burst`,
/// TryTake succeeds while tokens remain. Not thread-safe on its own — the
/// AdmissionController serializes access per tenant.
class TokenBucket {
 public:
  TokenBucket(double rate, double burst, Micros now)
      : rate_(rate), burst_(burst), tokens_(burst), last_refill_(now) {}

  bool TryTake(double n, Micros now);
  /// Returns tokens taken for work that was never performed (capped at
  /// burst, so a refund can never mint capacity).
  void Refund(double n) { tokens_ = std::min(burst_, tokens_ + n); }
  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  Micros last_refill_;
};

/// Tenant-keyed admission control for the sharded engine: a token bucket
/// (rate + burst) plus an in-flight cap per tenant. Rejections are typed
/// Status::ResourceExhausted so the RPC layer can surface them to clients
/// as quota errors rather than transport failures.
///
/// Tenant state is only materialized for ADMITTED requests — a rejected
/// id never consumes a cap slot or map entry — and idle tenants are
/// evicted (TenantQuotaConfig::idle_tenant_seconds), so hostile or
/// misconfigured clients cycling through ids cannot pin memory. Note the
/// tenant id itself is a wire field: unless the engine authenticates it
/// against the publisher key (ShardedEngineConfig::authenticate_tenants),
/// these quotas assume cooperative clients.
///
/// Thread-safe; every shard's RPC workers go through one controller.
class AdmissionController {
 public:
  AdmissionController(const TenantQuotaConfig& config, const Clock* clock,
                      MetricsRegistry* metrics);

  /// Gate for an append of `entries` entries: checks the tenant cap, the
  /// rate quota, and the in-flight cap; on success the in-flight slot is
  /// held until EndAppend. Returns kResourceExhausted on any quota hit.
  Status AdmitAppend(uint64_t tenant, size_t entries);
  /// Releases the in-flight slot taken by a successful AdmitAppend and
  /// refunds `unused_entries` rate tokens — the entries the node dropped
  /// (e.g. forged signatures), so junk sent under a tenant's name cannot
  /// drain that tenant's rate budget.
  void EndAppend(uint64_t tenant, size_t unused_entries = 0);

  uint64_t rate_rejections() const { return rate_rejections_->Value(); }
  uint64_t inflight_rejections() const {
    return inflight_rejections_->Value();
  }
  uint64_t tenant_rejections() const { return tenant_rejections_->Value(); }
  /// Tenants currently holding admission state (for tests/introspection).
  size_t tracked_tenants() const;

  /// Tenants the idle sweep considers in one pass, and the map size that
  /// triggers a sweep even without a tenant cap.
  static constexpr size_t kIdleSweepSize = 4096;

 private:
  struct TenantState {
    TokenBucket bucket;
    uint32_t inflight = 0;
    Micros last_active = 0;
  };

  /// Erases tenants with no in-flight appends that have been idle past
  /// config_.idle_tenant_seconds. Caller holds mu_.
  void EvictIdleLocked(Micros now);

  const TenantQuotaConfig config_;
  const double effective_burst_;
  const Clock* const clock_;
  Counter* rate_rejections_;
  Counter* inflight_rejections_;
  Counter* tenant_rejections_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, TenantState> tenants_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_TOKEN_BUCKET_H_
