#ifndef WEDGEBLOCK_SHARD_TOKEN_BUCKET_H_
#define WEDGEBLOCK_SHARD_TOKEN_BUCKET_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/clock.h"
#include "common/status.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// Per-tenant admission limits. Zero means "unlimited" for every knob, so
/// a default-constructed config admits everything (the degenerate
/// single-tenant engine must behave exactly like a bare OffchainNode).
struct TenantQuotaConfig {
  /// Sustained entries/second each tenant may append.
  double entries_per_second = 0;
  /// Bucket capacity: how many entries a tenant may burst above the
  /// sustained rate. Defaults to 2 seconds worth of rate when 0.
  double burst_entries = 0;
  /// Concurrent in-flight append RPCs per tenant.
  uint32_t max_inflight_appends = 0;
  /// Hard cap on the number of distinct tenants admitted (0 = unlimited).
  uint64_t max_tenants = 0;
};

/// Classic token bucket: refills at `rate` tokens/second up to `burst`,
/// TryTake succeeds while tokens remain. Not thread-safe on its own — the
/// AdmissionController serializes access per tenant.
class TokenBucket {
 public:
  TokenBucket(double rate, double burst, Micros now)
      : rate_(rate), burst_(burst), tokens_(burst), last_refill_(now) {}

  bool TryTake(double n, Micros now);
  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  Micros last_refill_;
};

/// Tenant-keyed admission control for the sharded engine: a token bucket
/// (rate + burst) plus an in-flight cap per tenant. Rejections are typed
/// Status::ResourceExhausted so the RPC layer can surface them to clients
/// as quota errors rather than transport failures.
///
/// Thread-safe; every shard's RPC workers go through one controller.
class AdmissionController {
 public:
  AdmissionController(const TenantQuotaConfig& config, const Clock* clock,
                      MetricsRegistry* metrics);

  /// Gate for an append of `entries` entries: checks the tenant cap, the
  /// rate quota, and the in-flight cap; on success the in-flight slot is
  /// held until EndAppend. Returns kResourceExhausted on any quota hit.
  Status AdmitAppend(uint64_t tenant, size_t entries);
  /// Releases the in-flight slot taken by a successful AdmitAppend.
  void EndAppend(uint64_t tenant);

  uint64_t rate_rejections() const { return rate_rejections_->Value(); }
  uint64_t inflight_rejections() const {
    return inflight_rejections_->Value();
  }
  uint64_t tenant_rejections() const { return tenant_rejections_->Value(); }

 private:
  struct TenantState {
    TokenBucket bucket;
    uint32_t inflight = 0;
  };

  TenantState& StateForLocked(uint64_t tenant);

  const TenantQuotaConfig config_;
  const double effective_burst_;
  const Clock* const clock_;
  Counter* rate_rejections_;
  Counter* inflight_rejections_;
  Counter* tenant_rejections_;

  std::mutex mu_;
  std::unordered_map<uint64_t, TenantState> tenants_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_SHARD_TOKEN_BUCKET_H_
