#include "storage/backend.h"

#include "storage/segstore/segment_store.h"

namespace wedge {

std::string_view StoreBackendName(StoreBackend backend) {
  switch (backend) {
    case StoreBackend::kMemory:
      return "memory";
    case StoreBackend::kFile:
      return "file";
    case StoreBackend::kSegment:
      return "segment";
  }
  return "unknown";
}

Result<StoreBackend> ParseStoreBackend(std::string_view name) {
  if (name == "memory") return StoreBackend::kMemory;
  if (name == "file") return StoreBackend::kFile;
  if (name == "segment") return StoreBackend::kSegment;
  return Status::InvalidArgument("unknown store backend: " +
                                 std::string(name) +
                                 " (expected memory|file|segment)");
}

Result<std::unique_ptr<LogStore>> OpenLogStore(
    const StoreBackend backend, const std::string& path,
    const StoreBackendOptions& options) {
  switch (backend) {
    case StoreBackend::kMemory:
      return std::unique_ptr<LogStore>(std::make_unique<MemoryLogStore>());
    case StoreBackend::kFile: {
      FileLogStore::Options file_options;
      file_options.fsync_on_append = options.fsync;
      file_options.metrics = options.metrics;
      WEDGE_ASSIGN_OR_RETURN(auto store,
                             FileLogStore::Open(path, file_options));
      return std::unique_ptr<LogStore>(std::move(store));
    }
    case StoreBackend::kSegment: {
      SegmentLogStore::Options seg_options;
      seg_options.durability = options.fsync
                                   ? SegmentLogStore::Durability::kGroupCommit
                                   : SegmentLogStore::Durability::kNone;
      if (options.segment_positions > 0) {
        seg_options.segment_positions = options.segment_positions;
      }
      seg_options.metrics = options.metrics;
      WEDGE_ASSIGN_OR_RETURN(auto store,
                             SegmentLogStore::Open(path, seg_options));
      return std::unique_ptr<LogStore>(std::move(store));
    }
  }
  return Status::InvalidArgument("unknown store backend");
}

}  // namespace wedge
