#ifndef WEDGEBLOCK_STORAGE_BACKEND_H_
#define WEDGEBLOCK_STORAGE_BACKEND_H_

#include <memory>
#include <string>
#include <string_view>

#include "storage/log_store.h"

namespace wedge {

/// Selectable LogStore implementation behind one factory, so every layer
/// that persists positions (deployments, wedgeblockd --store=, benches,
/// the chaos harness) names backends the same way.
enum class StoreBackend {
  kMemory,   ///< MemoryLogStore: no persistence (benches, tests).
  kFile,     ///< FileLogStore: one append-only file, replayed O(entries).
  kSegment,  ///< SegmentLogStore: WAL group-commit + sealed segments,
             ///< recovered O(segments) (src/storage/segstore/).
};

/// "memory" | "file" | "segment".
std::string_view StoreBackendName(StoreBackend backend);
Result<StoreBackend> ParseStoreBackend(std::string_view name);

struct StoreBackendOptions {
  /// Power-loss durability before ack. file: fsync per append; segment:
  /// group-commit fdatasync (one sync per batch window). Off, both are
  /// still process-crash durable (flushed past stdio before ack).
  bool fsync = false;
  /// Segment backend only: seal a segment every N positions (0 = the
  /// store's default). Small values make tests and chaos runs cross
  /// seal boundaries with tiny workloads.
  uint64_t segment_positions = 0;
  MetricsRegistry* metrics = nullptr;
};

/// Opens a store at `path` — a file path for kFile, a directory for
/// kSegment, ignored for kMemory.
Result<std::unique_ptr<LogStore>> OpenLogStore(StoreBackend backend,
                                               const std::string& path,
                                               const StoreBackendOptions& options);

}  // namespace wedge

#endif  // WEDGEBLOCK_STORAGE_BACKEND_H_
