#include "storage/decentralized_archive.h"

#include "merkle/merkle_tree.h"

namespace wedge {

DecentralizedArchive::DecentralizedArchive(int num_peers, int replication_k,
                                           uint64_t seed)
    : replication_k_(replication_k), seed_(seed) {
  peers_.resize(static_cast<size_t>(num_peers));
}

std::vector<int> DecentralizedArchive::PlacementFor(uint64_t log_id) const {
  // Rendezvous-style deterministic placement seeded by (seed, log_id):
  // the same position always maps to the same k peers, so readers can
  // locate copies without an index.
  Rng rng(seed_ ^ (log_id * 0x9E3779B97F4A7C15ULL + 1));
  std::vector<int> all(peers_.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  // Partial Fisher-Yates for the first k slots.
  for (int i = 0; i < replication_k_; ++i) {
    size_t j = i + rng.Uniform(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(replication_k_);
  return all;
}

Status DecentralizedArchive::Archive(const LogPosition& position) {
  if (replication_k_ < 1 ||
      replication_k_ > static_cast<int>(peers_.size())) {
    return Status::InvalidArgument("replication factor out of range");
  }
  for (int peer : PlacementFor(position.log_id)) {
    peers_[peer].copies[position.log_id] = position;
  }
  return Status::Ok();
}

Result<LogPosition> DecentralizedArchive::Fetch(
    uint64_t log_id, const Hash256& expected_root) const {
  for (int peer : PlacementFor(log_id)) {
    const Peer& p = peers_[peer];
    if (!p.alive) continue;
    auto it = p.copies.find(log_id);
    if (it == p.copies.end()) continue;
    // Trust nothing: recompute the Merkle root over the returned data.
    auto tree = MerkleTree::Build(it->second.data_list);
    if (!tree.ok()) continue;
    if (tree->Root() != expected_root) continue;  // Corrupt copy.
    LogPosition verified = it->second;
    verified.mroot = tree->Root();
    return verified;
  }
  return Status::Unavailable("no live peer holds an intact copy");
}

void DecentralizedArchive::KillPeer(int peer) {
  if (peer >= 0 && peer < num_peers()) peers_[peer].alive = false;
}

void DecentralizedArchive::RevivePeer(int peer) {
  if (peer >= 0 && peer < num_peers()) peers_[peer].alive = true;
}

Status DecentralizedArchive::CorruptCopy(int peer, uint64_t log_id) {
  if (peer < 0 || peer >= num_peers()) {
    return Status::InvalidArgument("no such peer");
  }
  auto it = peers_[peer].copies.find(log_id);
  if (it == peers_[peer].copies.end()) {
    return Status::NotFound("peer holds no copy of this position");
  }
  if (it->second.data_list.empty()) {
    return Status::Internal("nothing to corrupt");
  }
  // Idempotent corruption: replace the first entry outright.
  it->second.data_list[0] = ToBytes("corrupted-by-byzantine-peer");
  return Status::Ok();
}

int DecentralizedArchive::LiveCopies(uint64_t log_id) const {
  int count = 0;
  for (int peer : PlacementFor(log_id)) {
    const Peer& p = peers_[peer];
    if (!p.alive) continue;
    auto it = p.copies.find(log_id);
    if (it == p.copies.end()) continue;
    auto tree = MerkleTree::Build(it->second.data_list);
    if (tree.ok() && tree->Root() == it->second.mroot) ++count;
  }
  return count;
}

}  // namespace wedge
