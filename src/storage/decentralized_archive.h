#ifndef WEDGEBLOCK_STORAGE_DECENTRALIZED_ARCHIVE_H_
#define WEDGEBLOCK_STORAGE_DECENTRALIZED_ARCHIVE_H_

#include <unordered_map>

#include "common/random.h"
#include "storage/log_store.h"

namespace wedge {

/// Decentralized archival storage (paper §4.7): against the extreme
/// omission attack — an Offchain Node destroying the log — the paper
/// proposes keeping a persistent copy on a decentralized storage network.
/// This models such a network as N independent peers; every archived log
/// position is replicated onto k distinct peers chosen pseudo-randomly,
/// and retrieval succeeds as long as any holding peer is still alive.
///
/// Integrity does not depend on the peers: Fetch() verifies the returned
/// position's recomputed Merkle root against the root the caller read
/// from the Root Record contract, so a byzantine peer can at worst cause
/// a retry, never a wrong result.
class DecentralizedArchive {
 public:
  /// `num_peers` storage peers; each position lands on `replication_k`
  /// of them. Requires 1 <= replication_k <= num_peers.
  DecentralizedArchive(int num_peers, int replication_k, uint64_t seed);

  /// Archives a log position onto k live-or-dead peers (placement does
  /// not look at liveness — like a real DHT write, some copies may land
  /// on peers that later disappear).
  Status Archive(const LogPosition& position);

  /// Retrieves a position, trying its holding peers in order, skipping
  /// dead peers and discarding any copy whose recomputed Merkle root
  /// does not equal `expected_root`. Unavailable when no live peer holds
  /// an intact copy.
  Result<LogPosition> Fetch(uint64_t log_id,
                            const Hash256& expected_root) const;

  /// Simulates peer churn / attacks.
  void KillPeer(int peer);
  void RevivePeer(int peer);
  /// Corrupts peer `peer`'s copy of `log_id` (byzantine storage).
  Status CorruptCopy(int peer, uint64_t log_id);

  int num_peers() const { return static_cast<int>(peers_.size()); }
  int replication() const { return replication_k_; }
  /// Number of live peers currently holding an intact copy of `log_id`.
  int LiveCopies(uint64_t log_id) const;

 private:
  struct Peer {
    bool alive = true;
    std::unordered_map<uint64_t, LogPosition> copies;
  };

  /// Deterministic placement: k distinct peers for a position.
  std::vector<int> PlacementFor(uint64_t log_id) const;

  const int replication_k_;
  const uint64_t seed_;
  std::vector<Peer> peers_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_STORAGE_DECENTRALIZED_ARCHIVE_H_
