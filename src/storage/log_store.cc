#include "storage/log_store.h"

#include <unistd.h>

#include <cstring>

#include "common/clock.h"

namespace wedge {

Bytes LogPosition::Serialize() const {
  Bytes out;
  PutU64(out, log_id);
  PutU32(out, static_cast<uint32_t>(data_list.size()));
  for (const SharedBytes& entry : data_list) PutBytes(out, entry);
  Append(out, HashToBytes(mroot));
  return out;
}

Result<LogPosition> LogPosition::Deserialize(const Bytes& b) {
  ByteReader reader(b);
  LogPosition pos;
  WEDGE_ASSIGN_OR_RETURN(pos.log_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  pos.data_list.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(Bytes entry, reader.ReadBytes());
    pos.data_list.push_back(std::move(entry));
  }
  WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(pos.mroot, HashFromBytes(root_raw));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after log position");
  }
  return pos;
}

Status MemoryLogStore::Append(const LogPosition& position) {
  std::lock_guard<std::mutex> lock(mu_);
  if (position.log_id != positions_.size()) {
    return Status::FailedPrecondition("log positions must be consecutive");
  }
  positions_.push_back(position);
  return Status::Ok();
}

Result<LogPosition> MemoryLogStore::Get(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_id >= positions_.size()) {
    return Status::NotFound("log position does not exist");
  }
  return positions_[log_id];
}

Result<SharedBytes> MemoryLogStore::GetEntry(const EntryIndex& index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index.log_id >= positions_.size()) {
    return Status::NotFound("log position does not exist");
  }
  const LogPosition& pos = positions_[index.log_id];
  if (index.offset >= pos.data_list.size()) {
    return Status::NotFound("entry offset out of range");
  }
  return pos.data_list[index.offset];
}

uint64_t MemoryLogStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return positions_.size();
}

Status MemoryLogStore::Scan(
    uint64_t first, uint64_t last,
    const std::function<bool(const LogPosition&)>& callback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (first > last || last >= positions_.size()) {
    return Status::OutOfRange("scan range outside the log");
  }
  for (uint64_t i = first; i <= last; ++i) {
    if (!callback(positions_[i])) break;
  }
  return Status::Ok();
}

Result<std::unique_ptr<FileLogStore>> FileLogStore::Open(
    const std::string& path, const Options& options) {
  std::unique_ptr<FileLogStore> store(new FileLogStore(path, options));

  // Replay existing records (if any), stopping at the first torn record.
  FILE* replay = std::fopen(path.c_str(), "rb");
  long valid_end = 0;
  if (replay != nullptr) {
    for (;;) {
      uint8_t len_raw[4];
      if (std::fread(len_raw, 1, 4, replay) != 4) break;
      uint32_t len = (static_cast<uint32_t>(len_raw[0]) << 24) |
                     (static_cast<uint32_t>(len_raw[1]) << 16) |
                     (static_cast<uint32_t>(len_raw[2]) << 8) |
                     static_cast<uint32_t>(len_raw[3]);
      Bytes payload(len);
      if (len > 0 && std::fread(payload.data(), 1, len, replay) != len) break;
      uint8_t checksum[32];
      if (std::fread(checksum, 1, 32, replay) != 32) break;
      Hash256 expect = Sha256::Digest(payload);
      if (std::memcmp(checksum, expect.data(), 32) != 0) break;  // Corrupt.
      auto pos = LogPosition::Deserialize(payload);
      if (!pos.ok() ||
          pos.value().log_id != store->positions_.size()) {
        break;
      }
      store->positions_.push_back(std::move(pos).value());
      valid_end = std::ftell(replay);
    }
    std::fclose(replay);
  }

  // Reopen for appending, truncating any torn tail.
  FILE* f = std::fopen(path.c_str(), replay != nullptr ? "rb+" : "wb+");
  if (f == nullptr) {
    return Status::Internal("cannot open log file: " + path);
  }
  if (replay != nullptr) {
    // Drop the invalid tail (best effort; failure keeps the longer file,
    // which recovery tolerates anyway).
    if (std::fseek(f, 0, SEEK_END) == 0 && std::ftell(f) > valid_end) {
      (void)!ftruncate(fileno(f), valid_end);
    }
    std::fseek(f, valid_end, SEEK_SET);
  }
  store->file_ = f;
  store->acked_bytes_ = static_cast<uint64_t>(valid_end);
  return store;
}

FileLogStore::~FileLogStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileLogStore::Append(const LogPosition& position) {
  Stopwatch watch(RealClock::Global());
  std::lock_guard<std::mutex> lock(mu_);
  WEDGE_RETURN_IF_ERROR(poison_);
  if (position.log_id != positions_.size()) {
    return Status::FailedPrecondition("log positions must be consecutive");
  }
  Bytes payload = position.Serialize();
  Bytes record;
  PutU32(record, static_cast<uint32_t>(payload.size()));
  wedge::Append(record, payload);  // Qualified: Append is shadowed here.
  Hash256 checksum = Sha256::Digest(payload);
  wedge::Append(record, HashToBytes(checksum));

  // Fault injection: a full disk writes part of the record, then fails.
  size_t allowed = record.size();
  bool injected = false;
  if (options_.fail_after_bytes != 0 &&
      acked_bytes_ + record.size() > options_.fail_after_bytes) {
    allowed = options_.fail_after_bytes > acked_bytes_
                  ? static_cast<size_t>(options_.fail_after_bytes -
                                        acked_bytes_)
                  : 0;
    injected = true;
  }

  std::string error;
  if (std::fwrite(record.data(), 1, allowed, file_) != record.size() ||
      injected) {
    error = "short write to log file";
  } else if (std::fflush(file_) != 0) {
    // Always push the record into the page cache before acking: a record
    // left in the stdio buffer dies with the process, and a SIGKILL would
    // then silently reuse this log_id for a different batch after replay.
    // fsync (power-loss durability) stays optional; process-crash
    // durability is not.
    error = "fflush failed on append";
  } else if (options_.fsync_on_append) {
    Stopwatch fsync_watch(RealClock::Global());
    if (fsync(fileno(file_)) != 0) {
      error = "fsync failed on append";
    } else if (fsync_hist_ != nullptr) {
      fsync_hist_->Record(fsync_watch.ElapsedMicros());
    }
  }
  if (!error.empty()) return RollbackAppendLocked(error);

  positions_.push_back(position);
  acked_bytes_ += record.size();
  if (append_hist_ != nullptr) append_hist_->Record(watch.ElapsedMicros());
  return Status::Ok();
}

Status FileLogStore::RollbackAppendLocked(const std::string& error) {
  // Roll the file back to the last acked record so the failed (possibly
  // torn) frame can never sit in front of a later, acked one. Flush
  // first (best effort) so buffered partial bytes reach the fd before
  // the truncate; clear stdio's sticky error either way.
  std::fflush(file_);
  std::clearerr(file_);
  if (ftruncate(fileno(file_), static_cast<off_t>(acked_bytes_)) != 0 ||
      std::fseek(file_, static_cast<long>(acked_bytes_), SEEK_SET) != 0) {
    // Even the rollback failed: a torn frame may survive ahead of the
    // write cursor. Fail every later operation instead of risking an
    // acked record landing behind a torn one (recovery would drop it).
    poison_ = Status::IoError(
        error + "; rollback failed, store is read-only: " + path_);
    return poison_;
  }
  return Status::IoError(error + ": " + path_);
}

Result<LogPosition> FileLogStore::Get(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_id >= positions_.size()) {
    return Status::NotFound("log position does not exist");
  }
  return positions_[log_id];
}

Result<SharedBytes> FileLogStore::GetEntry(const EntryIndex& index) const {
  Stopwatch watch(RealClock::Global());
  std::lock_guard<std::mutex> lock(mu_);
  if (index.log_id >= positions_.size()) {
    return Status::NotFound("log position does not exist");
  }
  const LogPosition& pos = positions_[index.log_id];
  if (index.offset >= pos.data_list.size()) {
    return Status::NotFound("entry offset out of range");
  }
  if (read_hist_ != nullptr) read_hist_->Record(watch.ElapsedMicros());
  return pos.data_list[index.offset];
}

uint64_t FileLogStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return positions_.size();
}

Status FileLogStore::Scan(
    uint64_t first, uint64_t last,
    const std::function<bool(const LogPosition&)>& callback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (first > last || last >= positions_.size()) {
    return Status::OutOfRange("scan range outside the log");
  }
  for (uint64_t i = first; i <= last; ++i) {
    if (!callback(positions_[i])) break;
  }
  return Status::Ok();
}

Status FileLogStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  WEDGE_RETURN_IF_ERROR(poison_);
  if (std::fflush(file_) != 0) {
    return Status::IoError("fflush failed: " + path_);
  }
  if (options_.fsync_on_append && fsync(fileno(file_)) != 0) {
    return Status::IoError("fsync failed: " + path_);
  }
  return Status::Ok();
}

ReplicatedLogStore::ReplicatedLogStore(
    std::unique_ptr<LogStore> primary,
    std::vector<std::unique_ptr<LogStore>> followers)
    : primary_(std::move(primary)), followers_(std::move(followers)) {}

Status ReplicatedLogStore::Append(const LogPosition& position) {
  WEDGE_RETURN_IF_ERROR(primary_->Append(position));
  for (auto& follower : followers_) {
    WEDGE_RETURN_IF_ERROR(follower->Append(position));
  }
  return Status::Ok();
}

Result<LogPosition> ReplicatedLogStore::Get(uint64_t log_id) const {
  return primary_->Get(log_id);
}

Result<SharedBytes> ReplicatedLogStore::GetEntry(const EntryIndex& index) const {
  return primary_->GetEntry(index);
}

uint64_t ReplicatedLogStore::Size() const { return primary_->Size(); }

Status ReplicatedLogStore::Scan(
    uint64_t first, uint64_t last,
    const std::function<bool(const LogPosition&)>& callback) const {
  return primary_->Scan(first, last, callback);
}

}  // namespace wedge
