#ifndef WEDGEBLOCK_STORAGE_LOG_STORE_H_
#define WEDGEBLOCK_STORAGE_LOG_STORE_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "telemetry/metrics.h"

namespace wedge {

/// One position of the append-only log (paper §4.1): a batch of client
/// data objects plus the Merkle root computed over them.
struct LogPosition {
  uint64_t log_id = 0;            ///< Monotonically increasing position id.
  /// The batched append payloads. SharedBytes so sealing can hand the
  /// same allocation to the store, the Merkle tree and every stage-1
  /// response without copying ~1 KB per entry (copies bump a refcount).
  std::vector<SharedBytes> data_list;
  Hash256 mroot{};                ///< Merkle root over data_list.

  /// Canonical serialization (used by the file store and replication).
  Bytes Serialize() const;
  static Result<LogPosition> Deserialize(const Bytes& b);
};

/// Address of a single entry: which log position and where inside it.
struct EntryIndex {
  uint64_t log_id = 0;
  uint32_t offset = 0;

  bool operator==(const EntryIndex& o) const {
    return log_id == o.log_id && offset == o.offset;
  }
};

/// Abstract append-only store for log positions. Implementations must be
/// thread-safe: the Offchain Node appends from its batching thread while
/// read requests are served concurrently.
class LogStore {
 public:
  virtual ~LogStore() = default;

  /// Appends a position. Positions must arrive with consecutive log_ids
  /// starting at 0; anything else fails with FailedPrecondition. When
  /// Append returns OK the position is durable (to the store's
  /// configured durability level) and visible to readers.
  virtual Status Append(const LogPosition& position) = 0;

  /// Two-phase append for stores with delayed durability (group commit).
  /// AppendPrepare stages the position — subject to the same consecutive
  /// log_id rule — and returns a durability token; the position MUST NOT
  /// be acked (or exposed to aggregation) until WaitDurable(token)
  /// returns OK. The split lets the caller release its sealing-order
  /// ticket between the two calls, so concurrent sealers coalesce into
  /// one group commit instead of serializing a sync each.
  ///
  /// Default: Append() is already durable on return, so prepare == append
  /// and the wait is a no-op.
  virtual Result<uint64_t> AppendPrepare(const LogPosition& position) {
    Status s = Append(position);
    if (!s.ok()) return s;
    return position.log_id;
  }
  /// Blocks until every position up to the token's is durable (or the
  /// store failed — the typed error is returned to every waiter).
  virtual Status WaitDurable(uint64_t /*token*/) { return Status::Ok(); }

  /// Merkle root of a position. Stores that garbage-collect payloads
  /// override this to answer from index metadata, so a GC'd position
  /// still serves the root that live aggregation proofs commit to.
  virtual Result<Hash256> GetRoot(uint64_t log_id) const {
    auto pos = Get(log_id);
    if (!pos.ok()) return pos.status();
    return pos.value().mroot;
  }
  /// Entry count of a position (same GC rationale as GetRoot).
  virtual Result<uint32_t> GetEntryCount(uint64_t log_id) const {
    auto pos = Get(log_id);
    if (!pos.ok()) return pos.status();
    return static_cast<uint32_t>(pos.value().data_list.size());
  }

  /// Fetches a whole position.
  virtual Result<LogPosition> Get(uint64_t log_id) const = 0;

  /// Fetches one entry's payload (a shared reference, not a copy).
  virtual Result<SharedBytes> GetEntry(const EntryIndex& index) const = 0;

  /// Number of stored positions.
  virtual uint64_t Size() const = 0;

  /// Visits positions [first, last] in order. Stops early if the callback
  /// returns false.
  virtual Status Scan(
      uint64_t first, uint64_t last,
      const std::function<bool(const LogPosition&)>& callback) const = 0;
};

/// Heap-backed store.
class MemoryLogStore : public LogStore {
 public:
  Status Append(const LogPosition& position) override;
  Result<LogPosition> Get(uint64_t log_id) const override;
  Result<SharedBytes> GetEntry(const EntryIndex& index) const override;
  uint64_t Size() const override;
  Status Scan(uint64_t first, uint64_t last,
              const std::function<bool(const LogPosition&)>& callback)
      const override;

 private:
  mutable std::mutex mu_;
  std::vector<LogPosition> positions_;
};

/// File-backed store with crash recovery.
///
/// Record format: [u32 payload_len][payload][32B sha256(payload)], where
/// payload = LogPosition::Serialize(). Open() replays the file and
/// truncates a torn tail (partial final record) instead of failing.
class FileLogStore : public LogStore {
 public:
  struct Options {
    /// fsync the log file after every Append. Default off: the paper's
    /// prototype buffers writes on the stage-1 path; turning this on
    /// trades append latency for durability of the most recent records
    /// (a torn tail is truncated on recovery either way).
    bool fsync_on_append = false;
    /// Optional metrics sink (must outlive the store). When set, the
    /// store records wall-clock `wedge.store.append_us`,
    /// `wedge.store.fsync_us` and `wedge.store.read_us` histograms.
    MetricsRegistry* metrics = nullptr;
    /// Fault injection (tests): when non-zero, any append that would
    /// grow the file past this many bytes fails the same way a full
    /// disk does — the record is written SHORT (torn), the append
    /// returns kIoError, and nothing is acked. Recovery must truncate
    /// the torn tail and lose no acked record.
    uint64_t fail_after_bytes = 0;
  };

  /// Opens (creating if needed) the store at `path` and recovers its
  /// in-memory index.
  static Result<std::unique_ptr<FileLogStore>> Open(const std::string& path,
                                                    const Options& options);
  static Result<std::unique_ptr<FileLogStore>> Open(const std::string& path) {
    return Open(path, Options());
  }

  ~FileLogStore() override;

  Status Append(const LogPosition& position) override;
  Result<LogPosition> Get(uint64_t log_id) const override;
  Result<SharedBytes> GetEntry(const EntryIndex& index) const override;
  uint64_t Size() const override;
  Status Scan(uint64_t first, uint64_t last,
              const std::function<bool(const LogPosition&)>& callback)
      const override;

  /// Flushes buffered writes to the OS (and to disk with fsync_on_append).
  Status Sync();

  const Options& options() const { return options_; }

 private:
  /// Restores the file to the last acked record after a failed append;
  /// poisons the store when the rollback itself fails. Returns the typed
  /// kIoError the append surfaces.
  Status RollbackAppendLocked(const std::string& error);

  FileLogStore(std::string path, const Options& options)
      : path_(std::move(path)), options_(options) {
    if (options_.metrics != nullptr) {
      append_hist_ = options_.metrics->GetHistogram("wedge.store.append_us");
      fsync_hist_ = options_.metrics->GetHistogram("wedge.store.fsync_us");
      read_hist_ = options_.metrics->GetHistogram("wedge.store.read_us");
    }
  }

  std::string path_;
  const Options options_;
  Histogram* append_hist_ = nullptr;
  Histogram* fsync_hist_ = nullptr;
  Histogram* read_hist_ = nullptr;
  mutable std::mutex mu_;
  // The recovered/served view. Positions are also cached in memory; the
  // file is the durable copy replayed on Open().
  std::vector<LogPosition> positions_;
  FILE* file_ = nullptr;
  /// File offset after the last fully acked record. A failed append is
  /// rolled back to this watermark (or the store is poisoned when even
  /// the rollback fails), so there is no acked-then-lost window.
  uint64_t acked_bytes_ = 0;
  /// First unrecoverable I/O failure; all later ops fail with it.
  Status poison_;
};

/// Primary + follower replication (the "replicated" curves in Figures 3
/// and 5): every append is applied to the primary and forwarded to each
/// follower before it is acknowledged.
class ReplicatedLogStore : public LogStore {
 public:
  /// `followers` may be empty (degenerates to the primary alone).
  ReplicatedLogStore(std::unique_ptr<LogStore> primary,
                     std::vector<std::unique_ptr<LogStore>> followers);

  Status Append(const LogPosition& position) override;
  Result<LogPosition> Get(uint64_t log_id) const override;
  Result<SharedBytes> GetEntry(const EntryIndex& index) const override;
  uint64_t Size() const override;
  Status Scan(uint64_t first, uint64_t last,
              const std::function<bool(const LogPosition&)>& callback)
      const override;

  size_t follower_count() const { return followers_.size(); }

 private:
  std::unique_ptr<LogStore> primary_;
  std::vector<std::unique_ptr<LogStore>> followers_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_STORAGE_LOG_STORE_H_
