#include "storage/segstore/segment.h"

#include <fcntl.h>
#include <libgen.h>
#include <unistd.h>

#include <cstring>

namespace wedge {

namespace {
/// AppendRequest::Serialize() layout prefix: 20 raw publisher-address
/// bytes at offset 0 (see core/data_model.cc), then a u64 sequence. An
/// entry shorter than that cannot carry a publisher.
constexpr size_t kAddressBytes = 20;
constexpr size_t kMinOwnedEntryBytes = kAddressBytes + 8;
}  // namespace

uint64_t EntryOwnerTenant(const SharedBytes& entry) {
  if (entry.size() < kMinOwnedEntryBytes) return kMixedOwnerTenant;
  uint64_t id = 0;
  for (size_t i = 0; i < 8; ++i) {
    id = (id << 8) | entry.data()[i];
  }
  return id;
}

uint64_t PositionOwnerTenant(const LogPosition& position) {
  if (position.data_list.empty()) return kMixedOwnerTenant;
  uint64_t owner = EntryOwnerTenant(position.data_list[0]);
  if (owner == kMixedOwnerTenant) return kMixedOwnerTenant;
  for (size_t i = 1; i < position.data_list.size(); ++i) {
    if (EntryOwnerTenant(position.data_list[i]) != owner) {
      return kMixedOwnerTenant;
    }
  }
  return owner;
}

void AppendFramedRecord(Bytes& out, const Bytes& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  Append(out, payload);
  Append(out, HashToBytes(Sha256::Digest(payload)));
}

Bytes EncodePositionPayload(const LogPosition& position) {
  Bytes payload;
  payload.push_back(kRecordPosition);
  Append(payload, position.Serialize());
  return payload;
}

Bytes EncodeTombstonePayload(uint64_t log_id, uint32_t entry_count,
                             uint64_t owner, const Hash256& mroot) {
  Bytes payload;
  payload.push_back(kRecordTombstone);
  PutU64(payload, log_id);
  PutU32(payload, entry_count);
  PutU64(payload, owner);
  Append(payload, HashToBytes(mroot));
  return payload;
}

Result<DecodedRecord> DecodeRecordPayload(const Bytes& payload) {
  if (payload.empty()) {
    return Status::Corruption("empty segment record payload");
  }
  DecodedRecord out;
  out.kind = payload[0];
  Bytes body(payload.begin() + 1, payload.end());
  if (out.kind == kRecordPosition) {
    WEDGE_ASSIGN_OR_RETURN(out.position, LogPosition::Deserialize(body));
    out.log_id = out.position.log_id;
    out.entry_count = static_cast<uint32_t>(out.position.data_list.size());
    out.owner = PositionOwnerTenant(out.position);
    out.mroot = out.position.mroot;
    return out;
  }
  if (out.kind == kRecordTombstone) {
    ByteReader reader(body);
    WEDGE_ASSIGN_OR_RETURN(out.log_id, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(out.entry_count, reader.ReadU32());
    WEDGE_ASSIGN_OR_RETURN(out.owner, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
    WEDGE_ASSIGN_OR_RETURN(out.mroot, HashFromBytes(root_raw));
    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after tombstone record");
    }
    return out;
  }
  return Status::Corruption("unknown segment record kind " +
                            std::to_string(out.kind));
}

Bytes EncodeFooter(const std::vector<SegmentIndexEntry>& entries,
                   const std::vector<TenantExtent>& extents) {
  Bytes out;
  PutU32(out, static_cast<uint32_t>(entries.size()));
  for (const SegmentIndexEntry& e : entries) {
    PutU64(out, e.offset);
    PutU32(out, e.record_len);
    out.push_back(e.kind);
    PutU64(out, e.owner);
    PutU32(out, e.entry_count);
    Append(out, HashToBytes(e.mroot));
  }
  PutU32(out, static_cast<uint32_t>(extents.size()));
  for (const TenantExtent& x : extents) {
    PutU64(out, x.tenant);
    PutU64(out, x.first_id);
    PutU64(out, x.last_id);
  }
  return out;
}

Result<std::pair<std::vector<SegmentIndexEntry>, std::vector<TenantExtent>>>
DecodeFooter(const Bytes& footer, uint32_t expect_count) {
  ByteReader reader(footer);
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  if (count != expect_count) {
    return Status::Corruption("segment footer count mismatch");
  }
  std::vector<SegmentIndexEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SegmentIndexEntry e;
    WEDGE_ASSIGN_OR_RETURN(e.offset, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(e.record_len, reader.ReadU32());
    WEDGE_ASSIGN_OR_RETURN(Bytes kind_raw, reader.ReadRaw(1));
    e.kind = kind_raw[0];
    WEDGE_ASSIGN_OR_RETURN(e.owner, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(e.entry_count, reader.ReadU32());
    WEDGE_ASSIGN_OR_RETURN(Bytes root_raw, reader.ReadRaw(32));
    WEDGE_ASSIGN_OR_RETURN(e.mroot, HashFromBytes(root_raw));
    entries.push_back(e);
  }
  WEDGE_ASSIGN_OR_RETURN(uint32_t n_extents, reader.ReadU32());
  std::vector<TenantExtent> extents;
  extents.reserve(n_extents);
  for (uint32_t i = 0; i < n_extents; ++i) {
    TenantExtent x;
    WEDGE_ASSIGN_OR_RETURN(x.tenant, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(x.first_id, reader.ReadU64());
    WEDGE_ASSIGN_OR_RETURN(x.last_id, reader.ReadU64());
    extents.push_back(x);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after segment footer");
  }
  return std::make_pair(std::move(entries), std::move(extents));
}

Bytes EncodeTrailer(const SegmentTrailer& trailer) {
  Bytes out;
  out.insert(out.end(), kSegmentMagic, kSegmentMagic + 4);
  PutU32(out, kSegmentVersion);
  PutU64(out, trailer.base_id);
  PutU32(out, trailer.count);
  PutU64(out, trailer.footer_off);
  PutU32(out, trailer.footer_len);
  Append(out, HashToBytes(trailer.footer_sha));
  return out;
}

Result<SegmentTrailer> DecodeTrailer(const Bytes& raw) {
  if (raw.size() != kSegmentTrailerBytes) {
    return Status::Corruption("segment trailer has wrong size");
  }
  if (std::memcmp(raw.data(), kSegmentMagic, 4) != 0) {
    return Status::Corruption("segment trailer magic mismatch");
  }
  ByteReader reader(raw);
  (void)reader.ReadRaw(4);  // Magic, checked above.
  WEDGE_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kSegmentVersion) {
    return Status::Corruption("unsupported segment version " +
                              std::to_string(version));
  }
  SegmentTrailer t;
  WEDGE_ASSIGN_OR_RETURN(t.base_id, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(t.count, reader.ReadU32());
  WEDGE_ASSIGN_OR_RETURN(t.footer_off, reader.ReadU64());
  WEDGE_ASSIGN_OR_RETURN(t.footer_len, reader.ReadU32());
  WEDGE_ASSIGN_OR_RETURN(Bytes sha_raw, reader.ReadRaw(32));
  WEDGE_ASSIGN_OR_RETURN(t.footer_sha, HashFromBytes(sha_raw));
  return t;
}

std::vector<TenantExtent> BuildExtents(
    const std::vector<SegmentIndexEntry>& entries, uint64_t base_id) {
  std::vector<TenantExtent> extents;
  for (size_t i = 0; i < entries.size(); ++i) {
    uint64_t owner = entries[i].owner;
    if (owner == kMixedOwnerTenant) continue;
    uint64_t id = base_id + i;
    if (!extents.empty() && extents.back().tenant == owner &&
        extents.back().last_id + 1 == id) {
      extents.back().last_id = id;
    } else {
      extents.push_back(TenantExtent{owner, id, id});
    }
  }
  return extents;
}

Status WriteSegmentFile(const std::string& path, uint64_t base_id,
                        const std::vector<Bytes>& payloads,
                        std::vector<SegmentIndexEntry>* entries) {
  if (payloads.size() != entries->size()) {
    return Status::InvalidArgument("payloads/entries size mismatch");
  }
  Bytes file_bytes;
  for (size_t i = 0; i < payloads.size(); ++i) {
    (*entries)[i].offset = file_bytes.size();
    (*entries)[i].record_len =
        static_cast<uint32_t>(payloads[i].size() + kRecordFrameBytes);
    AppendFramedRecord(file_bytes, payloads[i]);
  }
  Bytes footer = EncodeFooter(*entries, BuildExtents(*entries, base_id));
  SegmentTrailer trailer;
  trailer.base_id = base_id;
  trailer.count = static_cast<uint32_t>(entries->size());
  trailer.footer_off = file_bytes.size();
  trailer.footer_len = static_cast<uint32_t>(footer.size());
  trailer.footer_sha = Sha256::Digest(footer);
  Append(file_bytes, footer);
  Append(file_bytes, EncodeTrailer(trailer));

  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create segment file: " + path);
  }
  size_t written = 0;
  while (written < file_bytes.size()) {
    ssize_t n =
        ::write(fd, file_bytes.data() + written, file_bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      return Status::IoError("short write to segment file: " + path);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync failed on segment file: " + path);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close failed on segment file: " + path);
  }
  return Status::Ok();
}

Result<SegmentTrailer> ReadSegmentTrailer(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open segment file: " + path);
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < static_cast<off_t>(kSegmentTrailerBytes)) {
    ::close(fd);
    return Status::Corruption("segment file too small for trailer: " + path);
  }
  Bytes raw(kSegmentTrailerBytes);
  ssize_t n = ::pread(fd, raw.data(), raw.size(),
                      size - static_cast<off_t>(kSegmentTrailerBytes));
  ::close(fd);
  if (n != static_cast<ssize_t>(raw.size())) {
    return Status::IoError("cannot read segment trailer: " + path);
  }
  return DecodeTrailer(raw);
}

Status SyncParentDir(const std::string& path) {
  std::string copy = path;
  const char* dir = ::dirname(copy.data());
  int fd = ::open(dir, O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError(std::string("cannot open directory: ") + dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError(std::string("fsync failed on directory: ") + dir);
  }
  return Status::Ok();
}

}  // namespace wedge
