#ifndef WEDGEBLOCK_STORAGE_SEGSTORE_SEGMENT_H_
#define WEDGEBLOCK_STORAGE_SEGSTORE_SEGMENT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "storage/log_store.h"

namespace wedge {

/// On-disk formats of the segmented store (src/storage/segstore/).
///
/// Everything durable is built from one framed-record primitive (the same
/// framing FileLogStore uses, so torn-tail recovery logic is shared by
/// inspection):
///
///   record  := [u32 payload_len BE][payload][32B sha256(payload)]
///
/// Record payloads are kind-prefixed:
///
///   payload := [u8 kind][body]
///     kind 0 (position):  body = LogPosition::Serialize()
///     kind 1 (tombstone): body = [u64 log_id][u32 entry_count]
///                                [u64 owner_tenant][32B mroot]
///
/// The WAL (`wal.log`) holds only kind-0 records. A sealed segment
/// (`seg-<seq>.seg`) holds one record per position (kind 0, or kind 1
/// after compaction dropped a retired tenant's payload), followed by a
/// footer index and a fixed-size trailer:
///
///   footer  := [u32 count]
///              count * [u64 offset][u32 record_len][u8 kind]
///                      [u64 owner_tenant][u32 entry_count][32B mroot]
///              [u32 n_extents]
///              n_extents * [u64 tenant][u64 first_id][u64 last_id]
///   trailer := [4B "WSGF"][u32 version][u64 base_id][u32 count]
///              [u64 footer_off][u32 footer_len][32B sha256(footer)]
///
/// The trailer is exactly kSegmentTrailerBytes long and always the last
/// bytes of the file, so startup recovery learns a segment's id range
/// with a single pread — O(segments) startup, not O(entries). The footer
/// (checksummed by the trailer) is loaded lazily on first read access.

inline constexpr char kSegmentMagic[4] = {'W', 'S', 'G', 'F'};
inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr size_t kSegmentTrailerBytes = 4 + 4 + 8 + 4 + 8 + 4 + 32;
/// Frame overhead around a record payload: length prefix + checksum.
inline constexpr size_t kRecordFrameBytes = 4 + 32;

/// Record payload kinds.
inline constexpr uint8_t kRecordPosition = 0;
inline constexpr uint8_t kRecordTombstone = 1;

/// Owner tenant of a position whose entries span multiple tenants (or
/// whose entries are too short to carry a publisher address). Mixed
/// positions are never garbage-collected.
inline constexpr uint64_t kMixedOwnerTenant = ~0ull;

/// Tenant that owns a serialized AppendRequest: the first 8 bytes of the
/// publisher address, which AppendRequest::Serialize places at offset 0.
/// Mirrors PublisherTenant (core/rpc_codec.h) without a core dependency;
/// tests pin the two together.
uint64_t EntryOwnerTenant(const SharedBytes& entry);
/// Owner of a whole position: the common owner of every entry, or
/// kMixedOwnerTenant when entries disagree / are malformed / absent.
uint64_t PositionOwnerTenant(const LogPosition& position);

/// One footer row: everything needed to read (or skip) a record without
/// touching the records region.
struct SegmentIndexEntry {
  uint64_t offset = 0;       ///< Byte offset of the record frame.
  uint32_t record_len = 0;   ///< Whole frame length (incl. framing).
  uint8_t kind = kRecordPosition;
  uint64_t owner = kMixedOwnerTenant;
  uint32_t entry_count = 0;
  Hash256 mroot{};
};

/// Contiguous run of positions owned by one tenant (footer metadata used
/// by compaction to decide cheaply whether a segment holds GC-able data).
struct TenantExtent {
  uint64_t tenant = 0;
  uint64_t first_id = 0;
  uint64_t last_id = 0;
};

/// Trailer contents (the O(1)-readable identity of a sealed segment).
struct SegmentTrailer {
  uint64_t base_id = 0;
  uint32_t count = 0;
  uint64_t footer_off = 0;
  uint32_t footer_len = 0;
  Hash256 footer_sha{};
};

/// Frames `payload` into `out` ([len][payload][sha256]).
void AppendFramedRecord(Bytes& out, const Bytes& payload);

/// Encodes a kind-0 record payload for `position`.
Bytes EncodePositionPayload(const LogPosition& position);
/// Encodes a kind-1 tombstone payload.
Bytes EncodeTombstonePayload(uint64_t log_id, uint32_t entry_count,
                             uint64_t owner, const Hash256& mroot);

/// Decoded record payload (either kind).
struct DecodedRecord {
  uint8_t kind = kRecordPosition;
  LogPosition position;      ///< Valid when kind == kRecordPosition.
  uint64_t log_id = 0;       ///< Valid for both kinds.
  uint32_t entry_count = 0;  ///< Valid for both kinds.
  uint64_t owner = kMixedOwnerTenant;  ///< Tombstones only (else derived).
  Hash256 mroot{};           ///< Valid for both kinds.
};
Result<DecodedRecord> DecodeRecordPayload(const Bytes& payload);

/// Serializes the footer + trailer for a sealed segment.
Bytes EncodeFooter(const std::vector<SegmentIndexEntry>& entries,
                   const std::vector<TenantExtent>& extents);
Result<std::pair<std::vector<SegmentIndexEntry>, std::vector<TenantExtent>>>
DecodeFooter(const Bytes& footer, uint32_t expect_count);
Bytes EncodeTrailer(const SegmentTrailer& trailer);
Result<SegmentTrailer> DecodeTrailer(const Bytes& raw);

/// Computes the per-tenant extents of an index (consecutive same-owner
/// runs; kMixedOwnerTenant runs are excluded).
std::vector<TenantExtent> BuildExtents(
    const std::vector<SegmentIndexEntry>& entries, uint64_t base_id);

/// Writes a complete sealed segment file (records + footer + trailer) at
/// `path` and fsyncs it. `payloads[i]` is the unframed record payload for
/// `(*entries)[i]`, whose kind/owner/entry_count/mroot the caller filled
/// in; the writer frames each payload and fills in offset/record_len.
/// Returns typed kIoError on any write/sync failure.
Status WriteSegmentFile(const std::string& path, uint64_t base_id,
                        const std::vector<Bytes>& payloads,
                        std::vector<SegmentIndexEntry>* entries);

/// Reads and validates the fixed trailer of a sealed segment.
Result<SegmentTrailer> ReadSegmentTrailer(const std::string& path);

/// fsyncs the directory containing `path` so a rename into it is durable.
Status SyncParentDir(const std::string& path);

}  // namespace wedge

#endif  // WEDGEBLOCK_STORAGE_SEGSTORE_SEGMENT_H_
