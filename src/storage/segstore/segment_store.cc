#include "storage/segstore/segment_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/clock.h"

namespace wedge {

namespace {

constexpr char kWalName[] = "wal.log";
constexpr char kRetiredName[] = "retired.tenants";

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError("cannot stat: " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

/// seg-<seq>.seg -> seq, or nullopt-ish failure via bool.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  if (name.size() < 9 || name.compare(0, 4, "seg-") != 0 ||
      name.compare(name.size() - 4, 4, ".seg") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

bool HasSuffix(const std::string& name, const char* suffix) {
  size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

}  // namespace

SegmentLogStore::Segment::~Segment() {
  if (fd >= 0) ::close(fd);
}

SegmentLogStore::SegmentLogStore(std::string dir, const Options& options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.metrics != nullptr) {
    batch_hist_ =
        options_.metrics->GetHistogram("wedge.store.group_commit_batch");
    wait_hist_ =
        options_.metrics->GetHistogram("wedge.store.group_commit_wait_us");
    sync_hist_ =
        options_.metrics->GetHistogram("wedge.store.group_commit_sync_us");
    seals_counter_ = options_.metrics->GetCounter("wedge.store.seals");
    compactions_counter_ =
        options_.metrics->GetCounter("wedge.store.compactions");
    reclaimed_counter_ =
        options_.metrics->GetCounter("wedge.store.gc_reclaimed_bytes");
  }
}

SegmentLogStore::~SegmentLogStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  compaction_cv_.notify_all();
  if (compaction_thread_.joinable()) compaction_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_file_ != nullptr) {
    std::fflush(wal_file_);
    if (options_.durability == Durability::kGroupCommit) {
      ::fdatasync(fileno(wal_file_));
    }
    std::fclose(wal_file_);
  }
}

std::string SegmentLogStore::SegmentPath(size_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06zu.seg", seq);
  return dir_ + "/" + name;
}

Result<std::unique_ptr<SegmentLogStore>> SegmentLogStore::Open(
    const std::string& dir, const Options& options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create store directory: " + dir);
  }
  std::unique_ptr<SegmentLogStore> store(new SegmentLogStore(dir, options));
  {
    std::unique_lock<std::mutex> lock(store->mu_);
    WEDGE_RETURN_IF_ERROR(store->RecoverLocked());
  }
  if (options.background_compaction) {
    store->compaction_thread_ =
        std::thread([s = store.get()] { s->CompactionThreadMain(); });
  }
  return store;
}

Status SegmentLogStore::RecoverLocked() {
  // Pass 1: directory listing. Interrupted seal/compaction scratch
  // (*.tmp) is deleted — a .tmp was never renamed into place, so the WAL
  // (seal) or the original segment (compaction) still holds every byte.
  std::vector<std::pair<uint64_t, std::string>> seg_names;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot open store directory: " + dir_);
  }
  while (struct dirent* ent = ::readdir(d)) {
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    if (HasSuffix(name, ".tmp")) {
      ::unlink((dir_ + "/" + name).c_str());
      ++recovery_.tmp_files_removed;
      continue;
    }
    uint64_t seq = 0;
    if (ParseSegmentName(name, &seq)) {
      seg_names.emplace_back(seq, dir_ + "/" + name);
    }
  }
  ::closedir(d);

  // Pass 2: one trailer pread per segment — O(segments), no entry replay.
  std::sort(seg_names.begin(), seg_names.end());
  uint64_t next_base = 0;
  for (size_t i = 0; i < seg_names.size(); ++i) {
    if (seg_names[i].first != i) {
      return Status::Corruption("segment sequence gap at " +
                                seg_names[i].second);
    }
    WEDGE_ASSIGN_OR_RETURN(SegmentTrailer trailer,
                           ReadSegmentTrailer(seg_names[i].second));
    if (trailer.base_id != next_base) {
      return Status::Corruption("segment id gap at " + seg_names[i].second);
    }
    auto seg = std::make_shared<Segment>();
    seg->path = seg_names[i].second;
    seg->base_id = trailer.base_id;
    seg->count = trailer.count;
    seg->footer_off = trailer.footer_off;
    seg->footer_len = trailer.footer_len;
    seg->footer_sha = trailer.footer_sha;
    WEDGE_ASSIGN_OR_RETURN(seg->file_bytes, FileSize(seg->path));
    next_base = trailer.base_id + trailer.count;
    segments_.push_back(std::move(seg));
  }
  recovery_.segments = segments_.size();
  recovery_.sealed_positions = next_base;

  // Pass 3: replay the (bounded) WAL tail past the sealed range.
  wal_base_id_ = next_base;
  WEDGE_RETURN_IF_ERROR(ReplayWalLocked(next_base));
  prepared_count_ = next_base + wal_positions_.size();
  durable_count_ = prepared_count_;
  recovery_.wal_positions = wal_positions_.size();

  return LoadRetiredLocked();
}

Status SegmentLogStore::ReplayWalLocked(uint64_t sealed_end) {
  const std::string path = dir_ + "/" + kWalName;
  FILE* replay = std::fopen(path.c_str(), "rb");
  long valid_end = 0;
  if (replay != nullptr) {
    for (;;) {
      uint8_t len_raw[4];
      if (std::fread(len_raw, 1, 4, replay) != 4) break;
      uint32_t len = (static_cast<uint32_t>(len_raw[0]) << 24) |
                     (static_cast<uint32_t>(len_raw[1]) << 16) |
                     (static_cast<uint32_t>(len_raw[2]) << 8) |
                     static_cast<uint32_t>(len_raw[3]);
      Bytes payload(len);
      if (len > 0 && std::fread(payload.data(), 1, len, replay) != len) break;
      uint8_t checksum[32];
      if (std::fread(checksum, 1, 32, replay) != 32) break;
      Hash256 expect = Sha256::Digest(payload);
      if (std::memcmp(checksum, expect.data(), 32) != 0) break;  // Torn.
      auto decoded = DecodeRecordPayload(payload);
      if (!decoded.ok() || decoded.value().kind != kRecordPosition) break;
      uint64_t id = decoded.value().log_id;
      if (id < sealed_end) {
        // A crash between segment rename and WAL truncation leaves the
        // sealed prefix in the WAL; the segment is authoritative.
        ++recovery_.wal_skipped;
        valid_end = std::ftell(replay);
        continue;
      }
      if (id != sealed_end + wal_positions_.size()) break;  // Torn/corrupt.
      wal_positions_.push_back(std::move(decoded).value().position);
      valid_end = std::ftell(replay);
    }
    std::fseek(replay, 0, SEEK_END);
    long file_end = std::ftell(replay);
    if (file_end > valid_end) {
      recovery_.wal_truncated_bytes =
          static_cast<uint64_t>(file_end - valid_end);
    }
    std::fclose(replay);
  }

  if (recovery_.wal_skipped > 0) {
    // Drop the already-sealed prefix so "the WAL holds only unsealed
    // positions" is an invariant, not just a steady state.
    return RewriteWalLocked();
  }

  FILE* f = std::fopen(path.c_str(), replay != nullptr ? "rb+" : "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open WAL: " + path);
  }
  std::setvbuf(f, nullptr, _IOFBF, 1 << 20);
  if (replay != nullptr) {
    if (std::fseek(f, 0, SEEK_END) == 0 && std::ftell(f) > valid_end) {
      (void)!::ftruncate(fileno(f), valid_end);
    }
    std::fseek(f, valid_end, SEEK_SET);
  }
  wal_file_ = f;
  wal_bytes_ = static_cast<uint64_t>(valid_end);
  return Status::Ok();
}

Status SegmentLogStore::RewriteWalLocked() {
  const std::string path = dir_ + "/" + kWalName;
  const std::string tmp = path + ".tmp";
  if (wal_file_ != nullptr) {
    std::fclose(wal_file_);
    wal_file_ = nullptr;
  }
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create WAL rewrite: " + tmp);
  }
  Bytes out;
  for (const LogPosition& pos : wal_positions_) {
    AppendFramedRecord(out, EncodePositionPayload(pos));
  }
  if (!out.empty() && std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
    std::fclose(f);
    return Status::IoError("short write rewriting WAL");
  }
  if (std::fflush(f) != 0 || ::fdatasync(fileno(f)) != 0) {
    std::fclose(f);
    return Status::IoError("cannot sync WAL rewrite");
  }
  std::fclose(f);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename WAL rewrite into place");
  }
  WEDGE_RETURN_IF_ERROR(SyncParentDir(path));
  f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot reopen WAL: " + path);
  }
  std::setvbuf(f, nullptr, _IOFBF, 1 << 20);
  std::fseek(f, 0, SEEK_END);
  wal_file_ = f;
  wal_bytes_ = out.size();
  return Status::Ok();
}

Status SegmentLogStore::LoadRetiredLocked() {
  const std::string path = dir_ + "/" + kRetiredName;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::Ok();  // Nothing retired yet.
  uint8_t len_raw[4];
  Status bad = Status::Corruption("retired-tenant file is corrupt: " + path);
  if (std::fread(len_raw, 1, 4, f) != 4) {
    std::fclose(f);
    return bad;
  }
  uint32_t len = (static_cast<uint32_t>(len_raw[0]) << 24) |
                 (static_cast<uint32_t>(len_raw[1]) << 16) |
                 (static_cast<uint32_t>(len_raw[2]) << 8) |
                 static_cast<uint32_t>(len_raw[3]);
  Bytes payload(len);
  uint8_t checksum[32];
  if ((len > 0 && std::fread(payload.data(), 1, len, f) != len) ||
      std::fread(checksum, 1, 32, f) != 32) {
    std::fclose(f);
    return bad;
  }
  std::fclose(f);
  Hash256 expect = Sha256::Digest(payload);
  if (std::memcmp(checksum, expect.data(), 32) != 0) return bad;
  ByteReader reader(payload);
  WEDGE_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    WEDGE_ASSIGN_OR_RETURN(uint64_t tenant, reader.ReadU64());
    retired_.insert(tenant);
  }
  return Status::Ok();
}

Status SegmentLogStore::PersistRetiredLocked() {
  const std::string path = dir_ + "/" + kRetiredName;
  const std::string tmp = path + ".tmp";
  Bytes payload;
  PutU32(payload, static_cast<uint32_t>(retired_.size()));
  for (uint64_t tenant : retired_) PutU64(payload, tenant);
  Bytes record;
  AppendFramedRecord(record, payload);
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot create retired-tenant file: " + tmp);
  }
  if (std::fwrite(record.data(), 1, record.size(), f) != record.size() ||
      std::fflush(f) != 0 || ::fdatasync(fileno(f)) != 0) {
    std::fclose(f);
    return Status::IoError("cannot write retired-tenant file: " + tmp);
  }
  std::fclose(f);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename retired-tenant file into place");
  }
  return SyncParentDir(path);
}

Status SegmentLogStore::WalWriteLocked(const Bytes& payload) {
  Bytes record;
  AppendFramedRecord(record, payload);
  if (std::fwrite(record.data(), 1, record.size(), wal_file_) !=
      record.size()) {
    // A partial frame may now sit in the stdio buffer where later appends
    // would land behind it; there is no clean rollback through stdio, so
    // fail the store (crash-equivalent: recovery truncates the torn tail,
    // and nothing unacked was ever exposed).
    poison_ = Status::IoError("short write to WAL; store is read-only");
    commit_cv_.notify_all();
    return poison_;
  }
  wal_bytes_ += record.size();
  return Status::Ok();
}

Result<uint64_t> SegmentLogStore::AppendPrepare(const LogPosition& position) {
  std::unique_lock<std::mutex> lock(mu_);
  WEDGE_RETURN_IF_ERROR(poison_);
  if (position.log_id != prepared_count_) {
    return Status::FailedPrecondition("log positions must be consecutive");
  }
  WEDGE_RETURN_IF_ERROR(WalWriteLocked(EncodePositionPayload(position)));
  wal_positions_.push_back(position);
  ++prepared_count_;

  if (options_.durability == Durability::kSyncEachAppend) {
    if (std::fflush(wal_file_) != 0 || ::fsync(fileno(wal_file_)) != 0) {
      poison_ = Status::IoError("WAL sync failed; store is read-only");
      commit_cv_.notify_all();
      return poison_;
    }
    durable_count_ = prepared_count_;
  }

  if (wal_positions_.size() >= options_.segment_positions ||
      wal_bytes_ >= options_.segment_bytes) {
    WEDGE_RETURN_IF_ERROR(SealLocked(lock));
  }
  return position.log_id;
}

Status SegmentLogStore::WaitDurable(uint64_t token) {
  std::unique_lock<std::mutex> lock(mu_);
  return WaitDurableLocked(token, lock);
}

Status SegmentLogStore::WaitDurableLocked(uint64_t token,
                                          std::unique_lock<std::mutex>& lock) {
  if (token >= prepared_count_) {
    return Status::InvalidArgument("WaitDurable token was never prepared");
  }
  Stopwatch wait_watch(RealClock::Global());
  while (durable_count_ <= token) {
    WEDGE_RETURN_IF_ERROR(poison_);
    if (!sync_in_flight_) {
      // Leader: one flush (+ fdatasync) covers every append prepared so
      // far; the whole cohort's acks release together below. When the
      // store is seeing concurrent appenders (a cohort formed last
      // window, or more than our own append is already outstanding), the
      // leader lingers briefly first so the rest of the cohort — threads
      // released by the previous sync that haven't re-prepared yet —
      // lands in this window instead of splitting it in half. A solo
      // synchronous appender never observes a cohort, so it skips the
      // linger and keeps bare per-append sync latency.
      sync_in_flight_ = true;
      const bool cohort_active =
          last_commit_batch_ > 1 || prepared_count_ - durable_count_ > 1;
      if (options_.durability == Durability::kGroupCommit &&
          options_.group_commit_linger_us > 0 && cohort_active) {
        lock.unlock();
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.group_commit_linger_us));
        lock.lock();
        if (!poison_.ok()) {
          sync_in_flight_ = false;
          commit_cv_.notify_all();
          return poison_;
        }
      }
      const uint64_t target = prepared_count_;
      const uint64_t prev_durable = durable_count_;
      FILE* f = wal_file_;
      lock.unlock();
      Stopwatch sync_watch(RealClock::Global());
      bool ok = std::fflush(f) == 0;
      if (ok && options_.durability == Durability::kGroupCommit) {
        ok = ::fdatasync(fileno(f)) == 0;
      }
      const int64_t sync_us = sync_watch.ElapsedMicros();
      lock.lock();
      sync_in_flight_ = false;
      if (!ok) {
        poison_ = Status::IoError("group commit sync failed; store is "
                                  "read-only");
        commit_cv_.notify_all();
        return poison_;
      }
      durable_count_ = std::max(durable_count_, target);
      if (durable_count_ > prev_durable) {
        last_commit_batch_ = durable_count_ - prev_durable;
        if (batch_hist_ != nullptr) {
          batch_hist_->Record(static_cast<int64_t>(last_commit_batch_));
        }
      }
      if (sync_hist_ != nullptr) sync_hist_->Record(sync_us);
      commit_cv_.notify_all();
    } else {
      commit_cv_.wait(lock);
    }
  }
  if (wait_hist_ != nullptr) wait_hist_->Record(wait_watch.ElapsedMicros());
  return Status::Ok();
}

Status SegmentLogStore::Append(const LogPosition& position) {
  std::unique_lock<std::mutex> lock(mu_);
  WEDGE_RETURN_IF_ERROR(poison_);
  if (position.log_id != prepared_count_) {
    return Status::FailedPrecondition("log positions must be consecutive");
  }
  WEDGE_RETURN_IF_ERROR(WalWriteLocked(EncodePositionPayload(position)));
  wal_positions_.push_back(position);
  ++prepared_count_;
  if (options_.durability == Durability::kSyncEachAppend) {
    if (std::fflush(wal_file_) != 0 || ::fsync(fileno(wal_file_)) != 0) {
      poison_ = Status::IoError("WAL sync failed; store is read-only");
      commit_cv_.notify_all();
      return poison_;
    }
    durable_count_ = prepared_count_;
  }
  if (wal_positions_.size() >= options_.segment_positions ||
      wal_bytes_ >= options_.segment_bytes) {
    WEDGE_RETURN_IF_ERROR(SealLocked(lock));
  }
  return WaitDurableLocked(position.log_id, lock);
}

Status SegmentLogStore::SealLocked(std::unique_lock<std::mutex>& lock) {
  // A sync in flight is reading the WAL stream concurrently; wait it out
  // (syncs are bounded, and nothing new can start while we hold mu_).
  commit_cv_.wait(lock, [this] { return !sync_in_flight_; });
  WEDGE_RETURN_IF_ERROR(poison_);
  if (wal_positions_.empty()) return Status::Ok();

  const uint64_t base_id = wal_base_id_;
  const size_t seq = segments_.size();
  const std::string final_path = SegmentPath(seq);
  const std::string tmp_path = final_path + ".tmp";

  std::vector<Bytes> payloads;
  std::vector<SegmentIndexEntry> entries;
  payloads.reserve(wal_positions_.size());
  entries.reserve(wal_positions_.size());
  for (const LogPosition& pos : wal_positions_) {
    SegmentIndexEntry e;
    e.kind = kRecordPosition;
    e.owner = PositionOwnerTenant(pos);
    e.entry_count = static_cast<uint32_t>(pos.data_list.size());
    e.mroot = pos.mroot;
    entries.push_back(e);
    payloads.push_back(EncodePositionPayload(pos));
  }
  Status written = WriteSegmentFile(tmp_path, base_id, payloads, &entries);
  if (!written.ok()) {
    poison_ = written;
    commit_cv_.notify_all();
    return poison_;
  }
  if (options_.crash_point == CrashPoint::kSealAfterTempWrite) {
    poison_ = Status::Internal("simulated crash after segment temp write");
    commit_cv_.notify_all();
    return poison_;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    poison_ = Status::IoError("cannot rename sealed segment into place");
    commit_cv_.notify_all();
    return poison_;
  }
  Status dir_sync = SyncParentDir(final_path);
  if (!dir_sync.ok()) {
    poison_ = dir_sync;
    commit_cv_.notify_all();
    return poison_;
  }

  auto seg = std::make_shared<Segment>();
  seg->path = final_path;
  seg->base_id = base_id;
  seg->count = static_cast<uint32_t>(entries.size());
  Bytes footer = EncodeFooter(entries, BuildExtents(entries, base_id));
  seg->footer_off = entries.back().offset + entries.back().record_len;
  seg->footer_len = static_cast<uint32_t>(footer.size());
  seg->footer_sha = Sha256::Digest(footer);
  seg->file_bytes = seg->footer_off + footer.size() + kSegmentTrailerBytes;
  seg->index_loaded = true;
  seg->entries = std::move(entries);
  seg->extents = BuildExtents(seg->entries, base_id);
  segments_.push_back(std::move(seg));
  if (seals_counter_ != nullptr) seals_counter_->Add(1);

  // The segment now owns [base_id, base_id + count); everything in it is
  // fsynced, so any group-commit waiter in that range is satisfied.
  durable_count_ =
      std::max(durable_count_, base_id + wal_positions_.size());

  if (options_.crash_point == CrashPoint::kSealBeforeWalTruncate) {
    poison_ = Status::Internal("simulated crash before WAL truncation");
    commit_cv_.notify_all();
    return poison_;
  }

  // Reset the WAL (fclose flushes any buffered bytes first; their
  // contents are already in the sealed segment, and "wb" truncates).
  std::fclose(wal_file_);
  wal_file_ = nullptr;
  FILE* f = std::fopen((dir_ + "/" + kWalName).c_str(), "wb");
  if (f == nullptr) {
    poison_ = Status::IoError("cannot reset WAL after seal");
    commit_cv_.notify_all();
    return poison_;
  }
  std::setvbuf(f, nullptr, _IOFBF, 1 << 20);
  wal_file_ = f;
  wal_base_id_ += wal_positions_.size();
  wal_positions_.clear();
  wal_bytes_ = 0;
  commit_cv_.notify_all();

  if (options_.background_compaction && !retired_.empty()) {
    compaction_pending_ = true;
    compaction_cv_.notify_all();
  }
  return Status::Ok();
}

Status SegmentLogStore::SealNow() {
  std::unique_lock<std::mutex> lock(mu_);
  WEDGE_RETURN_IF_ERROR(poison_);
  return SealLocked(lock);
}

SegmentLogStore::Segment* SegmentLogStore::FindSegmentLocked(
    uint64_t log_id) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), log_id,
      [](uint64_t id, const std::shared_ptr<Segment>& s) {
        return id < s->base_id;
      });
  if (it == segments_.begin()) return nullptr;
  Segment* seg = std::prev(it)->get();
  if (log_id >= seg->base_id + seg->count) return nullptr;
  return seg;
}

Status SegmentLogStore::EnsureIndexLoadedLocked(Segment* segment) const {
  if (segment->index_loaded) return Status::Ok();
  if (segment->fd < 0) {
    segment->fd = ::open(segment->path.c_str(), O_RDONLY);
    if (segment->fd < 0) {
      return Status::IoError("cannot open segment: " + segment->path);
    }
  }
  Bytes footer(segment->footer_len);
  ssize_t n = ::pread(segment->fd, footer.data(), footer.size(),
                      static_cast<off_t>(segment->footer_off));
  if (n != static_cast<ssize_t>(footer.size())) {
    return Status::IoError("cannot read segment footer: " + segment->path);
  }
  if (Sha256::Digest(footer) != segment->footer_sha) {
    return Status::Corruption("segment footer checksum mismatch: " +
                              segment->path);
  }
  WEDGE_ASSIGN_OR_RETURN(auto decoded, DecodeFooter(footer, segment->count));
  segment->entries = std::move(decoded.first);
  segment->extents = std::move(decoded.second);
  segment->index_loaded = true;
  return Status::Ok();
}

Result<Bytes> SegmentLogStore::ReadPayloadLocked(Segment* segment,
                                                 uint64_t log_id) const {
  WEDGE_RETURN_IF_ERROR(EnsureIndexLoadedLocked(segment));
  if (segment->fd < 0) {
    segment->fd = ::open(segment->path.c_str(), O_RDONLY);
    if (segment->fd < 0) {
      return Status::IoError("cannot open segment: " + segment->path);
    }
  }
  const SegmentIndexEntry& e = segment->entries[log_id - segment->base_id];
  Bytes frame(e.record_len);
  ssize_t n = ::pread(segment->fd, frame.data(), frame.size(),
                      static_cast<off_t>(e.offset));
  if (n != static_cast<ssize_t>(frame.size())) {
    return Status::IoError("cannot read segment record: " + segment->path);
  }
  if (frame.size() < kRecordFrameBytes) {
    return Status::Corruption("segment record frame too small");
  }
  uint32_t len = (static_cast<uint32_t>(frame[0]) << 24) |
                 (static_cast<uint32_t>(frame[1]) << 16) |
                 (static_cast<uint32_t>(frame[2]) << 8) |
                 static_cast<uint32_t>(frame[3]);
  if (len + kRecordFrameBytes != frame.size()) {
    return Status::Corruption("segment record length mismatch");
  }
  Bytes payload(frame.begin() + 4, frame.begin() + 4 + len);
  Hash256 expect = Sha256::Digest(payload);
  if (std::memcmp(frame.data() + 4 + len, expect.data(), 32) != 0) {
    return Status::Corruption("segment record checksum mismatch: " +
                              segment->path);
  }
  return payload;
}

Result<DecodedRecord> SegmentLogStore::ReadRecordLocked(
    Segment* segment, uint64_t log_id) const {
  WEDGE_ASSIGN_OR_RETURN(Bytes payload, ReadPayloadLocked(segment, log_id));
  WEDGE_ASSIGN_OR_RETURN(DecodedRecord record, DecodeRecordPayload(payload));
  if (record.log_id != log_id) {
    return Status::Corruption("segment record id mismatch");
  }
  return record;
}

Result<LogPosition> SegmentLogStore::Get(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_id >= durable_count_) {
    return Status::NotFound("log position does not exist");
  }
  if (log_id >= wal_base_id_) {
    return wal_positions_[log_id - wal_base_id_];
  }
  Segment* seg = FindSegmentLocked(log_id);
  if (seg == nullptr) {
    return Status::NotFound("log position does not exist");
  }
  WEDGE_ASSIGN_OR_RETURN(DecodedRecord record,
                         ReadRecordLocked(seg, log_id));
  if (record.kind == kRecordTombstone) {
    return Status::NotFound("log position was garbage-collected");
  }
  return std::move(record.position);
}

Result<SharedBytes> SegmentLogStore::GetEntry(const EntryIndex& index) const {
  WEDGE_ASSIGN_OR_RETURN(LogPosition pos, Get(index.log_id));
  if (index.offset >= pos.data_list.size()) {
    return Status::NotFound("entry offset out of range");
  }
  return pos.data_list[index.offset];
}

uint64_t SegmentLogStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_count_;
}

Status SegmentLogStore::Scan(
    uint64_t first, uint64_t last,
    const std::function<bool(const LogPosition&)>& callback) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (first > last || last >= durable_count_) {
      return Status::OutOfRange("scan range outside the log");
    }
  }
  for (uint64_t id = first; id <= last; ++id) {
    auto pos = Get(id);
    if (!pos.ok()) {
      // GC'd positions are simply absent from a scan.
      if (pos.status().code() == Code::kNotFound) continue;
      return pos.status();
    }
    if (!callback(pos.value())) break;
  }
  return Status::Ok();
}

Result<Hash256> SegmentLogStore::GetRoot(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_id >= durable_count_) {
    return Status::NotFound("log position does not exist");
  }
  if (log_id >= wal_base_id_) {
    return wal_positions_[log_id - wal_base_id_].mroot;
  }
  Segment* seg = FindSegmentLocked(log_id);
  if (seg == nullptr) {
    return Status::NotFound("log position does not exist");
  }
  // Footer-only: no payload read, and tombstones still answer (live
  // aggregation proofs over GC'd neighbors must keep verifying).
  WEDGE_RETURN_IF_ERROR(EnsureIndexLoadedLocked(seg));
  return seg->entries[log_id - seg->base_id].mroot;
}

Result<uint32_t> SegmentLogStore::GetEntryCount(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_id >= durable_count_) {
    return Status::NotFound("log position does not exist");
  }
  if (log_id >= wal_base_id_) {
    return static_cast<uint32_t>(
        wal_positions_[log_id - wal_base_id_].data_list.size());
  }
  Segment* seg = FindSegmentLocked(log_id);
  if (seg == nullptr) {
    return Status::NotFound("log position does not exist");
  }
  WEDGE_RETURN_IF_ERROR(EnsureIndexLoadedLocked(seg));
  return seg->entries[log_id - seg->base_id].entry_count;
}

uint64_t SegmentLogStore::SegmentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

std::set<uint64_t> SegmentLogStore::RetiredTenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_;
}

Status SegmentLogStore::RetireTenant(uint64_t tenant) {
  if (tenant == kMixedOwnerTenant) {
    return Status::InvalidArgument("cannot retire the mixed-owner tenant");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    WEDGE_RETURN_IF_ERROR(poison_);
    if (!retired_.insert(tenant).second) return Status::Ok();
    WEDGE_RETURN_IF_ERROR(PersistRetiredLocked());
    if (options_.background_compaction) compaction_pending_ = true;
  }
  if (options_.background_compaction) compaction_cv_.notify_all();
  return Status::Ok();
}

Status SegmentLogStore::CompactSegmentLocked(
    std::unique_lock<std::mutex>& lock, size_t seg_index,
    CompactionStats* stats) {
  std::shared_ptr<Segment> old_seg = segments_[seg_index];
  WEDGE_RETURN_IF_ERROR(EnsureIndexLoadedLocked(old_seg.get()));

  // Does this segment hold any live (kind-0) position of a retired
  // tenant? Extents answer without scanning when no owner matches.
  bool needs = false;
  for (const TenantExtent& x : old_seg->extents) {
    if (retired_.count(x.tenant) == 0) continue;
    for (uint64_t id = x.first_id; id <= x.last_id; ++id) {
      if (old_seg->entries[id - old_seg->base_id].kind == kRecordPosition) {
        needs = true;
        break;
      }
    }
    if (needs) break;
  }
  if (!needs) return Status::Ok();

  // Build the rewritten contents: live records copied byte-identically
  // (raw payload bytes, no re-serialization), retired positions replaced
  // by tombstones that keep id/root/count for proof continuity.
  std::vector<Bytes> payloads;
  std::vector<SegmentIndexEntry> entries;
  payloads.reserve(old_seg->count);
  entries.reserve(old_seg->count);
  uint64_t dropped = 0;
  for (uint32_t i = 0; i < old_seg->count; ++i) {
    SegmentIndexEntry e = old_seg->entries[i];
    const uint64_t id = old_seg->base_id + i;
    if (e.kind == kRecordPosition && retired_.count(e.owner) != 0) {
      e.kind = kRecordTombstone;
      payloads.push_back(
          EncodeTombstonePayload(id, e.entry_count, e.owner, e.mroot));
      ++dropped;
    } else {
      WEDGE_ASSIGN_OR_RETURN(Bytes payload,
                             ReadPayloadLocked(old_seg.get(), id));
      payloads.push_back(std::move(payload));
    }
    entries.push_back(e);
  }

  // Rewrite with mu_ released: the source segment is immutable, readers
  // keep using its still-open fd even after the rename replaces the
  // directory entry, and compact_mu_ keeps other passes out.
  const std::string tmp_path = old_seg->path + ".tmp";
  const std::string final_path = old_seg->path;
  const uint64_t base_id = old_seg->base_id;
  lock.unlock();
  Status written = WriteSegmentFile(tmp_path, base_id, payloads, &entries);
  if (written.ok() && ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    written = Status::IoError("cannot rename compacted segment into place");
  }
  if (written.ok()) written = SyncParentDir(final_path);
  auto new_bytes = written.ok() ? FileSize(final_path) : Result<uint64_t>(written);
  lock.lock();
  if (!written.ok()) {
    ::unlink(tmp_path.c_str());
    return written;
  }
  WEDGE_RETURN_IF_ERROR(new_bytes.status());

  Bytes footer = EncodeFooter(entries, BuildExtents(entries, base_id));
  auto seg = std::make_shared<Segment>();
  seg->path = final_path;
  seg->base_id = base_id;
  seg->count = static_cast<uint32_t>(entries.size());
  seg->footer_off = entries.back().offset + entries.back().record_len;
  seg->footer_len = static_cast<uint32_t>(footer.size());
  seg->footer_sha = Sha256::Digest(footer);
  seg->file_bytes = new_bytes.value();
  seg->index_loaded = true;
  seg->extents = BuildExtents(entries, base_id);
  seg->entries = std::move(entries);

  stats->segments_rewritten += 1;
  stats->positions_dropped += dropped;
  if (old_seg->file_bytes > seg->file_bytes) {
    stats->bytes_reclaimed += old_seg->file_bytes - seg->file_bytes;
  }
  segments_[seg_index] = std::move(seg);
  return Status::Ok();
}

Result<SegmentLogStore::CompactionStats> SegmentLogStore::Compact() {
  std::lock_guard<std::mutex> serialize(compact_mu_);
  CompactionStats stats;
  std::unique_lock<std::mutex> lock(mu_);
  WEDGE_RETURN_IF_ERROR(poison_);
  if (retired_.empty()) return stats;
  // segments_ only grows at the tail (seals) while mu_ is dropped inside
  // CompactSegmentLocked, and compact_mu_ excludes concurrent passes, so
  // a stable index walk visits every pre-existing segment exactly once.
  for (size_t i = 0; i < segments_.size(); ++i) {
    WEDGE_RETURN_IF_ERROR(CompactSegmentLocked(lock, i, &stats));
  }
  if (compactions_counter_ != nullptr && stats.segments_rewritten > 0) {
    compactions_counter_->Add(1);
  }
  if (reclaimed_counter_ != nullptr) {
    reclaimed_counter_->Add(static_cast<int64_t>(stats.bytes_reclaimed));
  }
  return stats;
}

void SegmentLogStore::CompactionThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    compaction_cv_.wait(
        lock, [this] { return compaction_pending_ || shutting_down_; });
    if (shutting_down_) return;
    compaction_pending_ = false;
    lock.unlock();
    (void)Compact();  // Failures poison the store; nothing to do here.
    lock.lock();
  }
}

}  // namespace wedge
