#ifndef WEDGEBLOCK_STORAGE_SEGSTORE_SEGMENT_STORE_H_
#define WEDGEBLOCK_STORAGE_SEGSTORE_SEGMENT_STORE_H_

#include <condition_variable>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/segstore/segment.h"

namespace wedge {

/// Segmented durable log store: an active write-ahead log with
/// group-commit, sealed immutable segments with a footer index, and
/// tenant-granularity compaction/GC (see segment.h for on-disk formats
/// and DESIGN.md "Durable storage engine" for the recovery state
/// machine).
///
/// Directory layout:
///   <dir>/wal.log          active WAL (framed kind-0 records)
///   <dir>/seg-<seq>.seg    sealed segments, seq dense from 0
///   <dir>/retired.tenants  persisted GC set (framed u64 list)
///   <dir>/*.tmp            in-flight seal/compaction scratch (removed
///                          on recovery)
///
/// Write path: AppendPrepare buffers the framed record into the WAL's
/// stdio stream under the store mutex (cheap — no syscall past the
/// buffer) and returns a durability token. WaitDurable(token) runs the
/// group commit: the first waiter becomes leader, flushes + fdatasyncs
/// everything prepared so far in ONE sync, and releases every waiter it
/// covered together; late waiters piggyback on the in-flight sync or
/// lead the next one. `wedge.store.group_commit_batch` records how many
/// appends each sync amortized and `wedge.store.group_commit_wait_us`
/// the per-append wait. The plain Append() is prepare + wait (the
/// durable-synchronous degenerate case).
///
/// Visibility: Size()/Get()/Scan() expose only DURABLE positions. A
/// prepared-but-unsynced position is invisible so nothing downstream
/// (epoch aggregation, read proofs) can commit to a root that a crash
/// could still revoke — the caller acks only after WaitDurable returns.
///
/// When the WAL reaches segment_positions/segment_bytes it is sealed:
/// records + footer + trailer are written to seg-<seq>.seg.tmp, fsynced,
/// renamed into place, the directory fsynced, and only then is the WAL
/// truncated. Every crash window in that sequence is recoverable (stray
/// .tmp removed; WAL records already covered by a sealed segment are
/// skipped on replay).
///
/// Startup is O(segments + WAL tail): one trailer pread per segment plus
/// a replay of the (bounded) active WAL; segment footers are loaded
/// lazily on first read and verified against the trailer checksum.
class SegmentLogStore : public LogStore {
 public:
  enum class Durability {
    /// Group-flush only (no fsync): durable against process crash, like
    /// FileLogStore's default. The group leader still batches the
    /// fflush, so acks release together.
    kNone,
    /// Group-commit fdatasync: power-loss durable, one sync per batch
    /// window. The default.
    kGroupCommit,
    /// fflush + fsync inline in every AppendPrepare (no coalescing).
    /// The per-append-fsync baseline the storage bench compares against.
    kSyncEachAppend,
  };

  /// Simulated crash points for recovery tests: the store completes the
  /// seal up to the chosen point, then poisons itself (as if the process
  /// died there); the test reopens the directory to exercise recovery.
  enum class CrashPoint {
    kNone,
    kSealAfterTempWrite,    ///< Segment .tmp written, never renamed.
    kSealBeforeWalTruncate, ///< Segment renamed, WAL left un-truncated.
  };

  struct Options {
    Durability durability = Durability::kGroupCommit;
    /// How long a group-commit leader lingers before issuing the sync,
    /// letting the rest of a concurrent cohort land in the same window.
    /// Adaptive: the linger is skipped while the store observes no
    /// concurrency (solo synchronous appenders keep per-append sync
    /// latency), and turns on once cohorts form — without it a leader
    /// elected right after the previous release syncs a half-formed
    /// cohort (~half the concurrent appenders per window).
    uint32_t group_commit_linger_us = 200;
    /// Seal the WAL into a segment after this many positions...
    uint32_t segment_positions = 256;
    /// ...or this many payload bytes, whichever comes first.
    uint64_t segment_bytes = 64ull << 20;
    /// Run Compact() on a background thread whenever a tenant is
    /// retired (off: the caller compacts explicitly).
    bool background_compaction = false;
    MetricsRegistry* metrics = nullptr;
    CrashPoint crash_point = CrashPoint::kNone;
  };

  /// What recovery found when the directory was opened.
  struct RecoveryInfo {
    uint64_t segments = 0;            ///< Sealed segments discovered.
    uint64_t sealed_positions = 0;    ///< Positions covered by segments.
    uint64_t wal_positions = 0;       ///< Live WAL tail replayed.
    uint64_t wal_skipped = 0;         ///< WAL records a segment already held.
    uint64_t wal_truncated_bytes = 0; ///< Torn tail dropped from the WAL.
    uint64_t tmp_files_removed = 0;   ///< Interrupted seal/compaction scratch.
  };

  struct CompactionStats {
    uint64_t segments_rewritten = 0;
    uint64_t positions_dropped = 0;
    uint64_t bytes_reclaimed = 0;
  };

  /// Opens (creating if needed) the store at directory `dir` and runs
  /// O(segments) recovery.
  static Result<std::unique_ptr<SegmentLogStore>> Open(const std::string& dir,
                                                       const Options& options);

  ~SegmentLogStore() override;

  // LogStore interface. Append == AppendPrepare + WaitDurable.
  Status Append(const LogPosition& position) override;
  Result<uint64_t> AppendPrepare(const LogPosition& position) override;
  Status WaitDurable(uint64_t token) override;
  Result<LogPosition> Get(uint64_t log_id) const override;
  Result<SharedBytes> GetEntry(const EntryIndex& index) const override;
  uint64_t Size() const override;
  Status Scan(uint64_t first, uint64_t last,
              const std::function<bool(const LogPosition&)>& callback)
      const override;
  /// Served from the footer index (or tombstone) without touching the
  /// record payload — a GC'd position still answers, so live
  /// aggregation proofs over retired neighbors keep verifying.
  Result<Hash256> GetRoot(uint64_t log_id) const override;
  Result<uint32_t> GetEntryCount(uint64_t log_id) const override;

  /// Marks every position owned by `tenant` as garbage. Persisted (the
  /// set survives restarts); reclamation happens at the next Compact().
  Status RetireTenant(uint64_t tenant);
  /// Rewrites every sealed segment holding retired tenants' data,
  /// replacing their positions with tombstones (log-id density and all
  /// live records preserved byte-identically). Safe concurrently with
  /// appends and reads.
  Result<CompactionStats> Compact();

  /// Seals the current WAL tail (if non-empty) into a segment now.
  Status SealNow();

  const RecoveryInfo& recovery() const { return recovery_; }
  const Options& options() const { return options_; }
  uint64_t SegmentCount() const;
  std::set<uint64_t> RetiredTenants() const;

 private:
  struct Segment {
    std::string path;
    uint64_t base_id = 0;
    uint32_t count = 0;
    uint64_t footer_off = 0;
    uint32_t footer_len = 0;
    Hash256 footer_sha{};
    uint64_t file_bytes = 0;
    /// Lazily populated by EnsureIndexLoadedLocked().
    bool index_loaded = false;
    std::vector<SegmentIndexEntry> entries;
    std::vector<TenantExtent> extents;
    int fd = -1;

    ~Segment();
  };

  explicit SegmentLogStore(std::string dir, const Options& options);

  Status RecoverLocked();
  Status ReplayWalLocked(uint64_t sealed_end);
  Status RewriteWalLocked();
  Status LoadRetiredLocked();
  Status PersistRetiredLocked();

  /// Writes one framed record to the WAL stream; no flush. Rolls the
  /// stream back (poisoning on failure) so a failed append never leaves
  /// a half-record ahead of later appends.
  Status WalWriteLocked(const Bytes& payload);
  /// Seals wal_positions_ into a new segment. Requires no sync in
  /// flight. On success the WAL is empty and durable_count_ covers the
  /// sealed range.
  Status SealLocked(std::unique_lock<std::mutex>& lock);
  /// Group-commit: returns once log ids <= token are durable (or the
  /// store failed). See class comment.
  Status WaitDurableLocked(uint64_t token, std::unique_lock<std::mutex>& lock);

  Segment* FindSegmentLocked(uint64_t log_id) const;
  Status EnsureIndexLoadedLocked(Segment* segment) const;
  /// Unframed payload bytes of one record (checksum-verified).
  Result<Bytes> ReadPayloadLocked(Segment* segment, uint64_t log_id) const;
  Result<DecodedRecord> ReadRecordLocked(Segment* segment,
                                         uint64_t log_id) const;

  Status CompactSegmentLocked(std::unique_lock<std::mutex>& lock,
                              size_t seg_index, CompactionStats* stats);

  void CompactionThreadMain();

  std::string SegmentPath(size_t seq) const;

  const std::string dir_;
  const Options options_;

  Histogram* batch_hist_ = nullptr;
  Histogram* wait_hist_ = nullptr;
  Histogram* sync_hist_ = nullptr;
  Counter* seals_counter_ = nullptr;
  Counter* compactions_counter_ = nullptr;
  Counter* reclaimed_counter_ = nullptr;

  /// Serializes whole compaction passes (mu_ still guards the state the
  /// pass snapshots and swaps; segment rewrites run with mu_ released).
  std::mutex compact_mu_;
  mutable std::mutex mu_;
  mutable std::condition_variable commit_cv_;
  Status poison_;                 ///< First unrecoverable I/O failure.
  FILE* wal_file_ = nullptr;
  uint64_t wal_bytes_ = 0;        ///< Bytes written to the current WAL.
  uint64_t wal_base_id_ = 0;      ///< Log id of wal_positions_[0].
  std::vector<LogPosition> wal_positions_;
  uint64_t prepared_count_ = 0;   ///< Ids < this are written (maybe buffered).
  uint64_t durable_count_ = 0;    ///< Ids < this are durable & visible.
  bool sync_in_flight_ = false;
  uint64_t last_commit_batch_ = 1;  ///< Cohort size of the previous sync.
  std::vector<std::shared_ptr<Segment>> segments_;
  std::set<uint64_t> retired_;
  RecoveryInfo recovery_;

  std::thread compaction_thread_;
  std::condition_variable compaction_cv_;
  bool compaction_pending_ = false;
  bool shutting_down_ = false;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_STORAGE_SEGSTORE_SEGMENT_STORE_H_
