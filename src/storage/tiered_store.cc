#include "storage/tiered_store.h"

#include "common/clock.h"

namespace wedge {

TieredLogStore::TieredLogStore(size_t hot_capacity,
                               DecentralizedArchive* archive,
                               MetricsRegistry* metrics)
    : hot_capacity_(hot_capacity < 1 ? 1 : hot_capacity), archive_(archive) {
  if (metrics != nullptr) {
    cold_read_counter_ = metrics->GetCounter("wedge.store.cold_reads");
    fetch_hist_ = metrics->GetHistogram("wedge.store.archive_fetch_us");
  }
}

Status TieredLogStore::Append(const LogPosition& position) {
  std::lock_guard<std::mutex> lock(mu_);
  if (position.log_id != roots_.size()) {
    return Status::FailedPrecondition("log positions must be consecutive");
  }
  // Archive FIRST: a position may only leave the hot tier once a durable
  // copy exists.
  WEDGE_RETURN_IF_ERROR(archive_->Archive(position));
  roots_.push_back(position.mroot);
  hot_.emplace(position.log_id, position);
  while (hot_.size() > hot_capacity_) {
    hot_.erase(hot_.begin());  // Oldest position spills to cold-only.
  }
  return Status::Ok();
}

Result<LogPosition> TieredLogStore::FetchLocked(uint64_t log_id) const {
  if (log_id >= roots_.size()) {
    return Status::NotFound("log position does not exist");
  }
  auto it = hot_.find(log_id);
  if (it != hot_.end()) return it->second;
  ++cold_reads_;
  if (cold_read_counter_ != nullptr) cold_read_counter_->Add(1);
  // Cold read: the archive verifies the recomputed root against our
  // index, so byzantine peers cannot slip in tampered data.
  Stopwatch watch(RealClock::Global());
  Result<LogPosition> fetched = archive_->Fetch(log_id, roots_[log_id]);
  if (fetch_hist_ != nullptr) fetch_hist_->Record(watch.ElapsedMicros());
  return fetched;
}

Result<LogPosition> TieredLogStore::Get(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FetchLocked(log_id);
}

Result<SharedBytes> TieredLogStore::GetEntry(const EntryIndex& index) const {
  std::lock_guard<std::mutex> lock(mu_);
  WEDGE_ASSIGN_OR_RETURN(LogPosition pos, FetchLocked(index.log_id));
  if (index.offset >= pos.data_list.size()) {
    return Status::NotFound("entry offset out of range");
  }
  return pos.data_list[index.offset];
}

uint64_t TieredLogStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_.size();
}

Status TieredLogStore::Scan(
    uint64_t first, uint64_t last,
    const std::function<bool(const LogPosition&)>& callback) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (first > last || last >= roots_.size()) {
    return Status::OutOfRange("scan range outside the log");
  }
  for (uint64_t id = first; id <= last; ++id) {
    WEDGE_ASSIGN_OR_RETURN(LogPosition pos, FetchLocked(id));
    if (!callback(pos)) break;
  }
  return Status::Ok();
}

Result<Hash256> TieredLogStore::GetRoot(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_id >= roots_.size()) {
    return Status::NotFound("log position does not exist");
  }
  return roots_[log_id];
}

size_t TieredLogStore::HotCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hot_.size();
}

uint64_t TieredLogStore::ColdReads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cold_reads_;
}

}  // namespace wedge
