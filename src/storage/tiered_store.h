#ifndef WEDGEBLOCK_STORAGE_TIERED_STORE_H_
#define WEDGEBLOCK_STORAGE_TIERED_STORE_H_

#include <map>

#include "storage/decentralized_archive.h"

namespace wedge {

/// Hot/cold tiered log storage: the Offchain Node keeps only the most
/// recent `hot_capacity` positions in memory; older positions spill to a
/// DecentralizedArchive (the §4.7 persistence layer) and are fetched —
/// and integrity-verified against their recorded Merkle roots — on
/// demand. This bounds the node's local footprint for long-lived logs
/// (the paper's 10M-entry read experiment would hold ~10 GB otherwise)
/// without weakening any guarantee: archive fetches are verified the
/// same way clients verify reads.
class TieredLogStore : public LogStore {
 public:
  /// `archive` must outlive the store. hot_capacity >= 1. With
  /// `metrics`, cold reads bump a `wedge.store.cold_reads` counter and
  /// archive fetches record a wall-clock
  /// `wedge.store.archive_fetch_us` histogram.
  TieredLogStore(size_t hot_capacity, DecentralizedArchive* archive,
                 MetricsRegistry* metrics = nullptr);

  Status Append(const LogPosition& position) override;
  Result<LogPosition> Get(uint64_t log_id) const override;
  Result<SharedBytes> GetEntry(const EntryIndex& index) const override;
  uint64_t Size() const override;
  Status Scan(uint64_t first, uint64_t last,
              const std::function<bool(const LogPosition&)>& callback)
      const override;
  /// Served from the local root index: a root lookup for a cold
  /// position must not cost (or depend on) an archive round trip.
  Result<Hash256> GetRoot(uint64_t log_id) const override;

  /// Positions currently held in the hot tier.
  size_t HotCount() const;
  /// Archive fetches served so far (cold reads).
  uint64_t ColdReads() const;

 private:
  Result<LogPosition> FetchLocked(uint64_t log_id) const;

  const size_t hot_capacity_;
  DecentralizedArchive* const archive_;
  Counter* cold_read_counter_ = nullptr;
  Histogram* fetch_hist_ = nullptr;

  mutable std::mutex mu_;
  std::map<uint64_t, LogPosition> hot_;       // Ordered: eviction = begin().
  std::vector<Hash256> roots_;                // Root index for ALL positions.
  mutable uint64_t cold_reads_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_STORAGE_TIERED_STORE_H_
