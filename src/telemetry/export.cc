#include "telemetry/export.h"

#include <cstdio>

namespace wedge {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

/// Splits a registry name with an optional `{key=value}` suffix (the
/// convention for labeled metrics, e.g. `wedge.rpc.op_us{op=append}`)
/// into a sanitized Prometheus metric name and a rendered label list
/// (`op="append"`, empty when the name carries no labels).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  labels->clear();
  size_t open = name.find('{');
  if (open == std::string::npos || name.back() != '}') {
    *base = Sanitize(name);
    return;
  }
  *base = Sanitize(name.substr(0, open));
  std::string inner = name.substr(open + 1, name.size() - open - 2);
  // key=value[,key=value...] -> key="value"[,key="value"...]
  size_t pos = 0;
  while (pos < inner.size()) {
    size_t comma = inner.find(',', pos);
    if (comma == std::string::npos) comma = inner.size();
    std::string part = inner.substr(pos, comma - pos);
    size_t eq = part.find('=');
    if (!labels->empty()) *labels += ",";
    if (eq == std::string::npos) {
      *labels += Sanitize(part) + "=\"\"";
    } else {
      *labels += Sanitize(part.substr(0, eq)) + "=\"" + part.substr(eq + 1) +
                 "\"";
    }
    pos = comma + 1;
  }
}

void AppendHistogramJson(std::string& out, const std::string& name,
                         const HistogramSnapshot& h) {
  out += "{\"kind\": \"histogram\", \"name\": \"" + name +
         "\", \"count\": " + std::to_string(h.count) +
         ", \"sum\": " + std::to_string(h.sum) +
         ", \"min\": " + std::to_string(h.min) +
         ", \"max\": " + std::to_string(h.max) +
         ", \"p50\": " + std::to_string(h.ValueAtQuantile(0.50)) +
         ", \"p90\": " + std::to_string(h.ValueAtQuantile(0.90)) +
         ", \"p95\": " + std::to_string(h.ValueAtQuantile(0.95)) +
         ", \"p99\": " + std::to_string(h.ValueAtQuantile(0.99));
  // Raw (bucket index, count) pairs make the line losslessly mergeable
  // across processes (fleetmon sums bucket-wise; quantiles of the merged
  // distribution are then recomputed, not averaged).
  if (!h.buckets.empty()) {
    out += ", \"buckets\": [";
    bool first = true;
    for (const auto& [bucket, count] : h.buckets) {
      if (!first) out += ", ";
      first = false;
      out += "[" + std::to_string(bucket) + ", " + std::to_string(count) + "]";
    }
    out += "]";
  }
  out += "}\n";
}

}  // namespace

std::string MetricsToJsonLines(const MetricsSnapshot& snap) {
  std::string out;
  out += "{\"kind\": \"snapshot\", \"t_us\": " + std::to_string(snap.at) +
         "}\n";
  for (const auto& [name, value] : snap.counters) {
    out += "{\"kind\": \"counter\", \"name\": \"" + name +
           "\", \"value\": " + std::to_string(value) + "}\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "{\"kind\": \"gauge\", \"name\": \"" + name +
           "\", \"value\": " + std::to_string(value) + "}\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    AppendHistogramJson(out, name, h);
  }
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  // Labeled variants of one base metric (`wedge.rpc.op_us{op=append}`,
  // `...{op=read}`) must share a single # TYPE line; snapshot names are
  // sorted, so same-base entries are adjacent and one look-back suffices.
  std::string last_typed;
  for (const auto& [name, value] : snap.counters) {
    std::string n, labels;
    SplitLabels(name, &n, &labels);
    if (n != last_typed) out += "# TYPE " + n + " counter\n";
    last_typed = n;
    out += n + (labels.empty() ? "" : "{" + labels + "}") + " " +
           std::to_string(value) + "\n";
  }
  last_typed.clear();
  for (const auto& [name, value] : snap.gauges) {
    std::string n, labels;
    SplitLabels(name, &n, &labels);
    if (n != last_typed) out += "# TYPE " + n + " gauge\n";
    last_typed = n;
    out += n + (labels.empty() ? "" : "{" + labels + "}") + " " +
           std::to_string(value) + "\n";
  }
  last_typed.clear();
  for (const auto& [name, h] : snap.histograms) {
    std::string n, labels;
    SplitLabels(name, &n, &labels);
    const std::string prefix = labels.empty() ? "" : labels + ",";
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    if (n != last_typed) out += "# TYPE " + n + " histogram\n";
    last_typed = n;
    uint64_t cumulative = 0;
    for (const auto& [bucket, count] : h.buckets) {
      cumulative += count;
      out += n + "_bucket{" + prefix + "le=\"" +
             std::to_string(Histogram::BucketUpperBound(bucket)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{" + prefix + "le=\"+Inf\"} " +
           std::to_string(h.count) + "\n";
    out += n + "_sum" + suffix + " " + std::to_string(h.sum) + "\n";
    out += n + "_count" + suffix + " " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string TraceToJsonLines(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& ev : events) {
    out += ev.ToJson();
    out += "\n";
  }
  return out;
}

Status WriteTelemetryFile(const std::string& path, const Telemetry& telemetry,
                          bool append) {
  std::string body;
  bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  MetricsSnapshot snap = telemetry.metrics.Snapshot();
  if (prometheus) {
    body = MetricsToPrometheus(snap);
  } else {
    body = MetricsToJsonLines(snap) + telemetry.tracer.ToJsonLines();
  }
  FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open telemetry output: " + path);
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal("short write to telemetry output: " + path);
  }
  return Status::Ok();
}

}  // namespace wedge
