#include "telemetry/export.h"

#include <cstdio>

namespace wedge {

namespace {

std::string Sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

void AppendHistogramJson(std::string& out, const std::string& name,
                         const HistogramSnapshot& h) {
  out += "{\"kind\": \"histogram\", \"name\": \"" + name +
         "\", \"count\": " + std::to_string(h.count) +
         ", \"sum\": " + std::to_string(h.sum) +
         ", \"min\": " + std::to_string(h.min) +
         ", \"max\": " + std::to_string(h.max) +
         ", \"p50\": " + std::to_string(h.ValueAtQuantile(0.50)) +
         ", \"p90\": " + std::to_string(h.ValueAtQuantile(0.90)) +
         ", \"p95\": " + std::to_string(h.ValueAtQuantile(0.95)) +
         ", \"p99\": " + std::to_string(h.ValueAtQuantile(0.99)) + "}\n";
}

}  // namespace

std::string MetricsToJsonLines(const MetricsSnapshot& snap) {
  std::string out;
  out += "{\"kind\": \"snapshot\", \"t_us\": " + std::to_string(snap.at) +
         "}\n";
  for (const auto& [name, value] : snap.counters) {
    out += "{\"kind\": \"counter\", \"name\": \"" + name +
           "\", \"value\": " + std::to_string(value) + "}\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "{\"kind\": \"gauge\", \"name\": \"" + name +
           "\", \"value\": " + std::to_string(value) + "}\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    AppendHistogramJson(out, name, h);
  }
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string n = Sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    std::string n = Sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string n = Sanitize(name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (const auto& [bucket, count] : h.buckets) {
      cumulative += count;
      out += n + "_bucket{le=\"" +
             std::to_string(Histogram::BucketUpperBound(bucket)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string TraceToJsonLines(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& ev : events) {
    out += ev.ToJson();
    out += "\n";
  }
  return out;
}

Status WriteTelemetryFile(const std::string& path, const Telemetry& telemetry,
                          bool append) {
  std::string body;
  bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  MetricsSnapshot snap = telemetry.metrics.Snapshot();
  if (prometheus) {
    body = MetricsToPrometheus(snap);
  } else {
    body = MetricsToJsonLines(snap) + telemetry.tracer.ToJsonLines();
  }
  FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open telemetry output: " + path);
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal("short write to telemetry output: " + path);
  }
  return Status::Ok();
}

}  // namespace wedge
