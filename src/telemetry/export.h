#ifndef WEDGEBLOCK_TELEMETRY_EXPORT_H_
#define WEDGEBLOCK_TELEMETRY_EXPORT_H_

#include <string>

#include "common/status.h"
#include "telemetry/telemetry.h"

namespace wedge {

/// JSON Lines rendering of a metrics snapshot: one object per metric,
/// {"kind":"counter"|"gauge"|"histogram", "name":..., ...}. Histogram
/// lines carry count/sum/min/max plus p50/p90/p95/p99 estimates.
std::string MetricsToJsonLines(const MetricsSnapshot& snap);

/// Prometheus text exposition format. Metric names are sanitized
/// (`wedge.node.append_us` -> `wedge_node_append_us`); histograms render
/// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
std::string MetricsToPrometheus(const MetricsSnapshot& snap);

/// JSON Lines rendering of a trace (one {"kind":"span",...} per event).
std::string TraceToJsonLines(const std::vector<TraceEvent>& events);

/// Writes a full telemetry dump to `path`: metrics lines followed by
/// span lines as JSONL — the format tools/trace_summary.py reads. A path
/// ending in ".prom" writes Prometheus text instead (metrics only).
/// `append` adds to an existing file rather than truncating it.
Status WriteTelemetryFile(const std::string& path, const Telemetry& telemetry,
                          bool append = false);

}  // namespace wedge

#endif  // WEDGEBLOCK_TELEMETRY_EXPORT_H_
