#include "telemetry/fleet_merge.h"

#include <algorithm>
#include <map>

namespace wedge {

namespace {

// Minimal field extraction for the fixed JSONL shapes this repo itself
// emits (MetricsToJsonLines). Not a general JSON parser: values are
// unescaped identifiers and integers, which is all the exporter writes.

bool FindStringField(std::string_view line, std::string_view key,
                     std::string* out) {
  std::string needle = "\"" + std::string(key) + "\": \"";
  size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  pos += needle.size();
  size_t end = line.find('"', pos);
  if (end == std::string_view::npos) return false;
  out->assign(line.substr(pos, end - pos));
  return true;
}

bool FindIntField(std::string_view line, std::string_view key, int64_t* out) {
  std::string needle = "\"" + std::string(key) + "\": ";
  size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  pos += needle.size();
  bool negative = false;
  if (pos < line.size() && line[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  int64_t v = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    v = v * 10 + (line[pos] - '0');
    ++pos;
  }
  *out = negative ? -v : v;
  return true;
}

// Parses the `"buckets": [[i, c], ...]` array (absent when empty).
bool ParseBuckets(std::string_view line,
                  std::vector<std::pair<uint32_t, uint64_t>>* out) {
  constexpr std::string_view kKey = "\"buckets\": [";
  size_t pos = line.find(kKey);
  if (pos == std::string_view::npos) return true;  // No buckets: fine.
  pos += kKey.size();
  while (pos < line.size() && line[pos] != ']') {
    if (line[pos] != '[') return false;
    ++pos;
    uint64_t vals[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      while (pos < line.size() && (line[pos] == ' ' || line[pos] == ',')) ++pos;
      if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') {
        return false;
      }
      while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        vals[i] = vals[i] * 10 + (line[pos] - '0');
        ++pos;
      }
    }
    if (pos >= line.size() || line[pos] != ']') return false;
    ++pos;  // Closing bracket of the pair.
    while (pos < line.size() && (line[pos] == ',' || line[pos] == ' ')) ++pos;
    out->emplace_back(static_cast<uint32_t>(vals[0]), vals[1]);
  }
  return pos < line.size();  // Must have stopped on the array's ']'.
}

void MergeHistogramInto(HistogramSnapshot* dst, const HistogramSnapshot& src) {
  if (src.count == 0) return;
  if (dst->count == 0) {
    *dst = src;
    return;
  }
  dst->min = std::min(dst->min, src.min);
  dst->max = std::max(dst->max, src.max);
  dst->count += src.count;
  dst->sum += src.sum;
  std::map<uint32_t, uint64_t> merged(dst->buckets.begin(),
                                      dst->buckets.end());
  for (const auto& [bucket, count] : src.buckets) merged[bucket] += count;
  dst->buckets.assign(merged.begin(), merged.end());
}

}  // namespace

Result<MetricsSnapshot> ParseMetricsJsonLines(std::string_view text) {
  MetricsSnapshot snap;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    std::string kind;
    if (!FindStringField(line, "kind", &kind)) continue;
    if (kind == "snapshot") {
      int64_t at = 0;
      if (FindIntField(line, "t_us", &at)) snap.at = at;
      continue;
    }
    if (kind == "counter" || kind == "gauge") {
      std::string name;
      int64_t value = 0;
      if (!FindStringField(line, "name", &name) ||
          !FindIntField(line, "value", &value)) {
        return Status::Corruption("malformed metric line: " +
                                  std::string(line));
      }
      if (kind == "counter") {
        snap.counters.emplace_back(name, static_cast<uint64_t>(value));
      } else {
        snap.gauges.emplace_back(name, value);
      }
      continue;
    }
    if (kind == "histogram") {
      std::string name;
      HistogramSnapshot h;
      int64_t count = 0, sum = 0, min = 0, max = 0;
      if (!FindStringField(line, "name", &name) ||
          !FindIntField(line, "count", &count) ||
          !FindIntField(line, "sum", &sum) ||
          !FindIntField(line, "min", &min) ||
          !FindIntField(line, "max", &max) ||
          !ParseBuckets(line, &h.buckets)) {
        return Status::Corruption("malformed histogram line: " +
                                  std::string(line));
      }
      h.count = static_cast<uint64_t>(count);
      h.sum = sum;
      h.min = min;
      h.max = max;
      snap.histograms.emplace_back(name, std::move(h));
      continue;
    }
    // Span lines and future kinds are not metrics; skip them.
  }
  return snap;
}

MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& snaps) {
  MetricsSnapshot out;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  for (const MetricsSnapshot& snap : snaps) {
    out.at = std::max(out.at, snap.at);
    for (const auto& [name, value] : snap.counters) counters[name] += value;
    for (const auto& [name, value] : snap.gauges) gauges[name] += value;
    for (const auto& [name, h] : snap.histograms) {
      MergeHistogramInto(&histograms[name], h);
    }
  }
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.assign(gauges.begin(), gauges.end());
  for (auto& [name, h] : histograms) {
    out.histograms.emplace_back(name, std::move(h));
  }
  return out;
}

double CounterSkew(const std::vector<MetricsSnapshot>& snaps,
                   const std::string& counter) {
  if (snaps.empty()) return 0.0;
  uint64_t total = 0, peak = 0;
  for (const MetricsSnapshot& snap : snaps) {
    uint64_t v = snap.CounterValue(counter);
    total += v;
    peak = std::max(peak, v);
  }
  if (total == 0) return 0.0;
  double mean = static_cast<double>(total) / snaps.size();
  return static_cast<double>(peak) / mean;
}

}  // namespace wedge
