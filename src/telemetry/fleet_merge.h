#ifndef WEDGEBLOCK_TELEMETRY_FLEET_MERGE_H_
#define WEDGEBLOCK_TELEMETRY_FLEET_MERGE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "telemetry/metrics.h"

namespace wedge {

/// Fleet-wide metrics aggregation: parse the JSONL snapshots scraped
/// from N `wedgeblockd` admin endpoints back into MetricsSnapshot form
/// and merge them losslessly. The shard-merge rules mirror what
/// Histogram::Snapshot() already does across its internal shards —
/// counters and bucket counts add, min/max fold, and quantiles of the
/// merged distribution are recomputed from the merged buckets (never
/// averaged across processes, which would be meaningless).

/// Parses one JSONL metrics document as produced by MetricsToJsonLines
/// (and served by the admin endpoint's /metrics.json). Span lines and
/// unknown kinds are skipped; a structurally broken metric line is a
/// typed error (the scraper treats that target as down for the round).
Result<MetricsSnapshot> ParseMetricsJsonLines(std::string_view text);

/// Merges per-process snapshots into one fleet view: counters and
/// gauges sum name-wise, histograms merge bucket-wise (count/sum add,
/// min/max fold). `at` is the max of the inputs' timestamps — inputs
/// come from different clock domains, so it is a label, not a time.
MetricsSnapshot MergeSnapshots(const std::vector<MetricsSnapshot>& snaps);

/// Imbalance of one counter across the fleet: max over per-process
/// values divided by their mean. 1.0 = perfectly even; 0 when the
/// counter is zero or absent everywhere. The skew of
/// `wedge.node.entries_appended` across shards is the router-balance
/// health signal fleetmon reports.
double CounterSkew(const std::vector<MetricsSnapshot>& snaps,
                   const std::string& counter);

}  // namespace wedge

#endif  // WEDGEBLOCK_TELEMETRY_FLEET_MERGE_H_
