#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <thread>

namespace wedge {

uint32_t Histogram::BucketIndex(int64_t value) {
  if (value < 4) return value < 0 ? 0 : static_cast<uint32_t>(value);
  uint64_t v = static_cast<uint64_t>(value);
  uint32_t k = 63 - static_cast<uint32_t>(std::countl_zero(v));
  uint32_t sub = static_cast<uint32_t>((v >> (k - 2)) & 3);
  return 4 + (k - 2) * 4 + sub;
}

int64_t Histogram::BucketLowerBound(uint32_t bucket) {
  if (bucket < 4) return static_cast<int64_t>(bucket);
  uint32_t q = (bucket - 4) / 4;
  uint32_t sub = (bucket - 4) % 4;
  return static_cast<int64_t>(static_cast<uint64_t>(4 + sub) << q);
}

int64_t Histogram::BucketUpperBound(uint32_t bucket) {
  if (bucket < 4) return static_cast<int64_t>(bucket);
  uint32_t q = (bucket - 4) / 4;
  uint32_t sub = (bucket - 4) % 4;
  return static_cast<int64_t>((static_cast<uint64_t>(5 + sub) << q) - 1);
}

Histogram::Shard& Histogram::LocalShard() {
  size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shards_[idx];
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  Shard& shard = LocalShard();
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  std::array<uint64_t, kNumBuckets> merged{};
  int64_t min = INT64_MAX, max = INT64_MIN;
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
    for (uint32_t b = 0; b < kNumBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  snap.min = snap.count == 0 ? 0 : min;
  snap.max = snap.count == 0 ? 0 : max;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    if (merged[b] > 0) snap.buckets.emplace_back(b, merged[b]);
  }
  return snap;
}

int64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (const auto& [bucket, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) {
      return std::min(Histogram::BucketUpperBound(bucket), max);
    }
  }
  return max;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.at = clock_ == nullptr ? 0 : clock_->NowMicros();
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

}  // namespace wedge
