#ifndef WEDGEBLOCK_TELEMETRY_METRICS_H_
#define WEDGEBLOCK_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"

namespace wedge {

/// Monotonic event counter. Lock-free; safe to bump from any thread.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (mempool depth, queue length, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one histogram, merged across all shards.
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< 0 when count == 0.
  int64_t max = 0;
  /// (bucket index, count) for every non-empty bucket, ascending.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;

  /// Estimated value at quantile q in [0, 1]. The estimate is the upper
  /// edge of the bucket holding the rank (clamped to the observed max),
  /// so true_q <= estimate <= true_q * 1.25 (see bucket scheme below).
  int64_t ValueAtQuantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log-bucketed histogram for latency/size distributions.
///
/// Bucket scheme (HdrHistogram-style, 4 sub-buckets per octave): values
/// 0..3 get exact buckets; a value v >= 4 with k = floor(log2 v) lands in
/// bucket 4 + (k-2)*4 + ((v >> (k-2)) & 3). Each bucket spans at most
/// 25% of its lower edge, bounding quantile-estimation error at 25%.
///
/// Recording is wait-free: each thread hashes into one of kShards shard
/// slots and bumps relaxed atomics; Snapshot() merges all shards. A
/// snapshot is not an atomic cut across concurrent writers, but every
/// recorded value is counted exactly once.
class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 248;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Negative values clamp to 0.
  void Record(int64_t value);

  HistogramSnapshot Snapshot() const;

  /// Bucket math, exposed for the boundary tests.
  static uint32_t BucketIndex(int64_t value);
  static int64_t BucketLowerBound(uint32_t bucket);  ///< Inclusive.
  static int64_t BucketUpperBound(uint32_t bucket);  ///< Inclusive.

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };

  Shard& LocalShard();

  std::array<Shard, kShards> shards_;
};

/// Everything a registry holds, resolved by (sorted) name — the input to
/// the exporters and the bench row writers.
struct MetricsSnapshot {
  Micros at = 0;  ///< Registry clock at snapshot time (0 without a clock).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by exact name (0 when absent).
  uint64_t CounterValue(const std::string& name) const;
  /// Histogram by exact name (nullptr when absent).
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// Process- or deployment-scoped registry of named metrics.
///
/// Naming convention: `wedge.<subsystem>.<name>`, with `_us` suffix for
/// microsecond histograms (see DESIGN.md "Telemetry"). Lookup takes a
/// mutex; callers resolve pointers once at construction and keep them —
/// registered metrics are never removed, so pointers stay valid for the
/// registry's lifetime.
class MetricsRegistry {
 public:
  /// `clock` stamps snapshots (a SimClock keeps exports deterministic);
  /// may be null.
  explicit MetricsRegistry(const Clock* clock = nullptr) : clock_(clock) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  const Clock* const clock_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_TELEMETRY_METRICS_H_
