#ifndef WEDGEBLOCK_TELEMETRY_TELEMETRY_H_
#define WEDGEBLOCK_TELEMETRY_TELEMETRY_H_

#include "telemetry/metrics.h"
#include "telemetry/tracer.h"

namespace wedge {

/// The measurement substrate every subsystem reports into: one metrics
/// registry plus one lifecycle tracer, sharing a clock. A Deployment
/// owns one (on its SimClock, so exports are deterministic per seed) and
/// hands the pointer down to the chain, node, stores, and network;
/// components accept a null pointer and fall back to a private instance
/// or no-op.
struct Telemetry {
  Telemetry() : metrics(nullptr), tracer(nullptr) {
    tracer.SetDropCounter(metrics.GetCounter("wedge.trace.dropped"));
  }
  explicit Telemetry(const Clock* clock) : metrics(clock), tracer(clock) {
    tracer.SetDropCounter(metrics.GetCounter("wedge.trace.dropped"));
  }

  MetricsRegistry metrics;
  Tracer tracer;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_TELEMETRY_TELEMETRY_H_
