#include "telemetry/tracer.h"

#include "telemetry/metrics.h"

namespace wedge {

namespace {

// Thread-local trace context installed by ScopedTrace. Plain globals
// (not function-local statics) so reads stay a TLS load on the hot path.
thread_local uint64_t g_trace_id = 0;
thread_local std::string g_trace_origin;

}  // namespace

ScopedTrace::ScopedTrace(uint64_t trace_id, std::string origin)
    : saved_id_(g_trace_id), saved_origin_(std::move(g_trace_origin)) {
  g_trace_id = trace_id;
  g_trace_origin = std::move(origin);
}

ScopedTrace::~ScopedTrace() {
  g_trace_id = saved_id_;
  g_trace_origin = std::move(saved_origin_);
}

uint64_t CurrentTraceId() { return g_trace_id; }

std::string CurrentTraceOrigin() { return g_trace_origin; }

std::string TraceEvent::ToJson() const {
  std::string out = "{\"kind\": \"span\", \"seq\": " + std::to_string(seq) +
                    ", \"t_us\": " + std::to_string(at) +
                    ", \"log_id\": " + std::to_string(log_id) +
                    ", \"stage\": \"" + stage + "\"";
  if (count > 0) out += ", \"count\": " + std::to_string(count);
  if (!note.empty()) out += ", \"note\": \"" + note + "\"";
  if (trace_id != 0) {
    out += ", \"trace_id\": " + std::to_string(trace_id);
    if (!origin.empty()) out += ", \"origin\": \"" + origin + "\"";
  }
  out += "}";
  return out;
}

void Tracer::Event(uint64_t log_id, const char* stage, uint64_t count,
                   std::string note) {
  TraceEvent ev;
  ev.at = clock_ == nullptr ? 0 : clock_->NowMicros();
  ev.log_id = log_id;
  ev.stage = stage;
  ev.count = count;
  ev.note = std::move(note);
  ev.trace_id = g_trace_id;
  if (ev.trace_id != 0) ev.origin = g_trace_origin;
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Add(1);
  }
}

void Tracer::SetDropCounter(Counter* counter) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_counter_ = counter;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->Add(1);
  }
}

size_t Tracer::Capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceEvent>(events_.begin(), events_.end());
}

std::vector<TraceEvent> Tracer::EventsFor(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.log_id == log_id) out.push_back(ev);
  }
  return out;
}

std::vector<TraceEvent> Tracer::Recent(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t take = n < events_.size() ? n : events_.size();
  return std::vector<TraceEvent>(events_.end() - take, events_.end());
}

bool Tracer::ChainEndsConfirmed(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TraceEvent* last = nullptr;
  for (const TraceEvent& ev : events_) {
    if (ev.log_id == log_id) last = &ev;
  }
  return last != nullptr && last->stage == trace_stage::kConfirmed;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t Tracer::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string Tracer::ToJsonLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const TraceEvent& ev : events_) {
    out += ev.ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace wedge
