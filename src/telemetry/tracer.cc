#include "telemetry/tracer.h"

namespace wedge {

std::string TraceEvent::ToJson() const {
  std::string out = "{\"kind\": \"span\", \"seq\": " + std::to_string(seq) +
                    ", \"t_us\": " + std::to_string(at) +
                    ", \"log_id\": " + std::to_string(log_id) +
                    ", \"stage\": \"" + stage + "\"";
  if (count > 0) out += ", \"count\": " + std::to_string(count);
  if (!note.empty()) out += ", \"note\": \"" + note + "\"";
  out += "}";
  return out;
}

void Tracer::Event(uint64_t log_id, const char* stage, uint64_t count,
                   std::string note) {
  TraceEvent ev;
  ev.at = clock_ == nullptr ? 0 : clock_->NowMicros();
  ev.log_id = log_id;
  ev.stage = stage;
  ev.count = count;
  ev.note = std::move(note);
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<TraceEvent> Tracer::EventsFor(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.log_id == log_id) out.push_back(ev);
  }
  return out;
}

bool Tracer::ChainEndsConfirmed(uint64_t log_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TraceEvent* last = nullptr;
  for (const TraceEvent& ev : events_) {
    if (ev.log_id == log_id) last = &ev;
  }
  return last != nullptr && last->stage == trace_stage::kConfirmed;
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToJsonLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const TraceEvent& ev : events_) {
    out += ev.ToJson();
    out += "\n";
  }
  return out;
}

}  // namespace wedge
