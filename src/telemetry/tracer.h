#ifndef WEDGEBLOCK_TELEMETRY_TRACER_H_
#define WEDGEBLOCK_TELEMETRY_TRACER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace wedge {

/// Canonical lifecycle stages of a log entry, in pipeline order (the
/// order the Offchain Node actually executes: the batch digest is
/// journaled for stage 2 when the position seals, before the per-entry
/// signing fan-out finishes — see DESIGN.md "Telemetry"):
///   ingest -> seal -> stage2_enqueued -> stage1_signed
///     -> tx_submitted (xN attempts) -> confirmed
/// `tx_retry` and `fault` are annotations, not lifecycle stages.
namespace trace_stage {
inline constexpr const char* kIngest = "ingest";
inline constexpr const char* kSeal = "seal";
inline constexpr const char* kStage1Signed = "stage1_signed";
inline constexpr const char* kStage2Enqueued = "stage2_enqueued";
inline constexpr const char* kTxSubmitted = "tx_submitted";
inline constexpr const char* kTxRetry = "tx_retry";
inline constexpr const char* kConfirmed = "confirmed";
inline constexpr const char* kFault = "fault";
}  // namespace trace_stage

/// One structured span event. `at` comes from the tracer's clock — a
/// SimClock in every deployment, so traces are deterministic for a given
/// seed; `seq` totally orders events that share a timestamp.
struct TraceEvent {
  uint64_t seq = 0;
  Micros at = 0;
  uint64_t log_id = 0;   ///< Log position the event belongs to.
  std::string stage;
  uint64_t count = 0;    ///< Entries covered (0 when not meaningful).
  std::string note;      ///< Annotations, e.g. "attempt=2 cause=timeout".

  /// One JSON object, schema {"kind":"span",...}. Fields must not need
  /// escaping (stages and notes are plain identifiers/key=value pairs).
  std::string ToJson() const;
};

/// Appends structured lifecycle events; thread-safe. The Offchain Node,
/// Stage2Submitter, and FaultInjector all write here so a single dump
/// shows every entry's path from ingest to on-chain confirmation.
class Tracer {
 public:
  /// `clock` may be null (timestamps 0, sequence still orders events).
  explicit Tracer(const Clock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Event(uint64_t log_id, const char* stage, uint64_t count = 0,
             std::string note = {});

  std::vector<TraceEvent> Events() const;
  /// Events for one log position, in seq order.
  std::vector<TraceEvent> EventsFor(uint64_t log_id) const;
  /// True iff the position has events and its last one is `confirmed`.
  bool ChainEndsConfirmed(uint64_t log_id) const;
  size_t EventCount() const;

  /// JSON Lines dump of every event, in seq order.
  std::string ToJsonLines() const;

 private:
  const Clock* const clock_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  uint64_t next_seq_ = 0;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_TELEMETRY_TRACER_H_
