#ifndef WEDGEBLOCK_TELEMETRY_TRACER_H_
#define WEDGEBLOCK_TELEMETRY_TRACER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace wedge {

class Counter;

/// Canonical lifecycle stages of a log entry, in pipeline order (the
/// order the Offchain Node actually executes: the batch digest is
/// journaled for stage 2 when the position seals, before the per-entry
/// signing fan-out finishes — see DESIGN.md "Telemetry"):
///   ingest -> seal -> stage2_enqueued -> stage1_signed
///     -> tx_submitted (xN attempts) -> confirmed
/// `tx_retry` and `fault` are annotations, not lifecycle stages.
///
/// The distributed stages extend the chain across process boundaries
/// (DESIGN.md "Distributed observability"): a client stamps
/// client_enqueue/client_acked around an RPC, the router stamps
/// router_pick when it chooses a shard, the serving process stamps
/// rpc_recv when a traced frame arrives, and the aggregator stamps
/// agg_epoch/agg_confirmed when a shard root is folded into a forest
/// epoch and that epoch lands on chain.
namespace trace_stage {
inline constexpr const char* kIngest = "ingest";
inline constexpr const char* kSeal = "seal";
inline constexpr const char* kStage1Signed = "stage1_signed";
inline constexpr const char* kStage2Enqueued = "stage2_enqueued";
inline constexpr const char* kTxSubmitted = "tx_submitted";
inline constexpr const char* kTxRetry = "tx_retry";
inline constexpr const char* kConfirmed = "confirmed";
inline constexpr const char* kFault = "fault";
// Distributed stages (cross-process trace propagation).
inline constexpr const char* kClientEnqueue = "client_enqueue";
inline constexpr const char* kClientAcked = "client_acked";
inline constexpr const char* kRouterPick = "router_pick";
inline constexpr const char* kRpcRecv = "rpc_recv";
inline constexpr const char* kAggEpoch = "agg_epoch";
inline constexpr const char* kAggConfirmed = "agg_confirmed";
}  // namespace trace_stage

/// One structured span event. `at` comes from the tracer's clock — a
/// SimClock in every deployment, so traces are deterministic for a given
/// seed; `seq` totally orders events that share a timestamp. `trace_id`
/// is nonzero when the event was emitted under a propagated trace
/// context (ScopedTrace below) and stitches spans across processes.
struct TraceEvent {
  uint64_t seq = 0;
  Micros at = 0;
  uint64_t log_id = 0;   ///< Log position the event belongs to.
  std::string stage;
  uint64_t count = 0;    ///< Entries covered (0 when not meaningful).
  std::string note;      ///< Annotations, e.g. "attempt=2 cause=timeout".
  uint64_t trace_id = 0; ///< Cross-process trace id (0 = untraced).
  std::string origin;    ///< Where the trace was born, e.g. "loadgen".

  /// One JSON object, schema {"kind":"span",...}. Fields must not need
  /// escaping (stages and notes are plain identifiers/key=value pairs).
  std::string ToJson() const;
};

/// Installs a trace context on the current thread for its lifetime;
/// every Tracer::Event emitted on this thread while the scope is live is
/// stamped with the context's trace_id/origin. Scopes nest (the inner
/// scope wins, the outer one is restored on destruction), so an RPC
/// worker can install the frame's context around the dispatch without
/// caring what was there before. A trace_id of 0 means "untraced" and
/// is what threads outside any scope see.
class ScopedTrace {
 public:
  ScopedTrace(uint64_t trace_id, std::string origin);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  uint64_t saved_id_;
  std::string saved_origin_;
};

/// Trace context of the calling thread (0 / empty outside any scope).
uint64_t CurrentTraceId();
std::string CurrentTraceOrigin();

/// Appends structured lifecycle events; thread-safe. The Offchain Node,
/// Stage2Submitter, and FaultInjector all write here so a single dump
/// shows every entry's path from ingest to on-chain confirmation.
///
/// Storage is a bounded ring: once `capacity` events are held the oldest
/// are dropped (and counted via SetDropCounter) so a long-running daemon
/// serving /tracez cannot grow without bound. `seq` keeps increasing
/// across drops, so consumers can detect gaps.
class Tracer {
 public:
  /// Default ring capacity; large enough that every deterministic test
  /// and bench trace fits without drops.
  static constexpr size_t kDefaultCapacity = 65536;

  /// `clock` may be null (timestamps 0, sequence still orders events).
  explicit Tracer(const Clock* clock = nullptr,
                  size_t capacity = kDefaultCapacity)
      : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Event(uint64_t log_id, const char* stage, uint64_t count = 0,
             std::string note = {});

  /// Counter bumped once per dropped-oldest event (wedge.trace.dropped).
  /// May be null; pointer must outlive the tracer.
  void SetDropCounter(Counter* counter);
  /// Resizes the ring (drops oldest immediately if shrinking).
  void SetCapacity(size_t capacity);
  size_t Capacity() const;

  std::vector<TraceEvent> Events() const;
  /// Events for one log position, in seq order.
  std::vector<TraceEvent> EventsFor(uint64_t log_id) const;
  /// The most recent `n` events, in seq order (for /tracez).
  std::vector<TraceEvent> Recent(size_t n) const;
  /// True iff the position has events and its last one is `confirmed`.
  bool ChainEndsConfirmed(uint64_t log_id) const;
  size_t EventCount() const;
  /// Total events dropped from the ring since construction.
  uint64_t DroppedCount() const;

  /// JSON Lines dump of every retained event, in seq order.
  std::string ToJsonLines() const;

 private:
  const Clock* const clock_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  size_t capacity_;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
  Counter* drop_counter_ = nullptr;
};

}  // namespace wedge

#endif  // WEDGEBLOCK_TELEMETRY_TRACER_H_
