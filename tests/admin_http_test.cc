// Admin observability endpoint tests: Prometheus exposition that a
// strict line parser accepts, /metrics.json that round-trips through the
// fleet-merge parser, /healthz readiness flips driven by the health
// callback (the induced-wedge path), /tracez span serving, and protocol
// hardening — garbage input gets a clean 400 + close, unknown paths 404,
// non-GET 405, oversized heads are dropped.
//
// Set WEDGE_SKIP_SOCKET_TESTS=1 to skip (everything here is loopback).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "net/http_client.h"
#include "rpc/admin_http.h"
#include "telemetry/fleet_merge.h"
#include "telemetry/telemetry.h"

namespace wedge {
namespace {

bool SocketTestsDisabled() {
  const char* skip = std::getenv("WEDGE_SKIP_SOCKET_TESTS");
  return skip != nullptr && skip[0] == '1';
}

// Raw loopback socket for the malformed-input tests (HttpGet is too
// well-behaved to send garbage).
int DialLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{.tv_sec = 5, .tv_usec = 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

// Sends `raw`, reads until EOF (HTTP/1.0 close), returns everything.
std::string RawExchange(uint16_t port, const std::string& raw) {
  int fd = DialLoopback(port);
  if (fd < 0) return "";
  (void)!::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

class AdminHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (SocketTestsDisabled()) {
      GTEST_SKIP() << "WEDGE_SKIP_SOCKET_TESTS=1";
    }
    telemetry_ = std::make_unique<Telemetry>(RealClock::Global());
    telemetry_->metrics.GetCounter("wedge.rpc.requests")->Add(42);
    telemetry_->metrics.GetGauge("wedge.chain.mempool")->Set(7);
    Histogram* h = telemetry_->metrics.GetHistogram("wedge.rpc.append_us");
    h->Record(100);
    h->Record(1000);
    // A labeled histogram exercises the {op=...} -> {op="..."} path.
    telemetry_->metrics.GetHistogram("wedge.rpc.op_us{op=append}")
        ->Record(250);
    telemetry_->tracer.Event(3, trace_stage::kIngest, 4, "test");

    ready_.store(true);
    AdminHttpConfig config;  // Ephemeral loopback port.
    server_ = std::make_unique<AdminHttpServer>(
        telemetry_.get(), config, [this] {
          AdminHealth health;
          health.ready = ready_.load();
          health.detail = "{\"wedged\": " +
                          std::string(ready_.load() ? "false" : "true") + "}";
          return health;
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<AdminHttpServer> server_;
  std::atomic<bool> ready_{true};
};

TEST_F(AdminHttpTest, MetricsIsParsableEpositionFormat) {
  auto resp = HttpGet("127.0.0.1", server_->port(), "/metrics");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("wedge_rpc_requests 42"), std::string::npos);
  EXPECT_NE(resp->body.find("# TYPE wedge_rpc_requests counter"),
            std::string::npos);
  EXPECT_NE(resp->body.find("wedge_rpc_op_us_bucket{op=\"append\",le="),
            std::string::npos);
  // Strict per-line shape: comment lines or `name[{labels}] value`.
  size_t pos = 0;
  while (pos < resp->body.size()) {
    size_t eol = resp->body.find('\n', pos);
    if (eol == std::string::npos) eol = resp->body.size();
    std::string line = resp->body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << "unparsable line: " << line;
    char* end = nullptr;
    std::string value = line.substr(sp + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end != value.c_str() &&
                (*end == '\0' || value == "+Inf"))
        << "bad sample value in: " << line;
  }
}

TEST_F(AdminHttpTest, MetricsJsonRoundTripsThroughFleetParser) {
  auto resp = HttpGet("127.0.0.1", server_->port(), "/metrics.json");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  auto snap = ParseMetricsJsonLines(resp->body);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->CounterValue("wedge.rpc.requests"), 42u);
  const HistogramSnapshot* h = snap->FindHistogram("wedge.rpc.append_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 1100u);
}

TEST_F(AdminHttpTest, HealthzFlipsOnInducedWedge) {
  auto healthy = HttpGet("127.0.0.1", server_->port(), "/healthz");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->status, 200);
  EXPECT_NE(healthy->body.find("\"ready\": true"), std::string::npos);
  EXPECT_NE(healthy->body.find("\"wedged\": false"), std::string::npos);

  ready_.store(false);  // Induce the wedge the callback reports.
  auto wedged = HttpGet("127.0.0.1", server_->port(), "/healthz");
  ASSERT_TRUE(wedged.ok());
  EXPECT_EQ(wedged->status, 503);
  EXPECT_NE(wedged->body.find("\"ready\": false"), std::string::npos);
  EXPECT_NE(wedged->body.find("\"wedged\": true"), std::string::npos);
}

TEST_F(AdminHttpTest, TracezServesRecentSpans) {
  auto resp = HttpGet("127.0.0.1", server_->port(), "/tracez");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("\"kind\": \"span\""), std::string::npos);
  EXPECT_NE(resp->body.find("\"stage\": \"ingest\""), std::string::npos);
}

TEST_F(AdminHttpTest, UnknownPathIs404AndNonGetIs405) {
  auto missing = HttpGet("127.0.0.1", server_->port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  std::string reply = RawExchange(
      server_->port(), "POST /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 405", 0), 0u) << reply;
}

TEST_F(AdminHttpTest, GarbageGetsCleanFourHundredAndClose) {
  std::string reply =
      RawExchange(server_->port(), "complete garbage, no http here\r\n\r\n");
  EXPECT_EQ(reply.rfind("HTTP/1.0 400", 0), 0u) << reply;
  // RawExchange read to EOF: the server closed after the reply, so the
  // next request on a fresh connection must still be served.
  auto resp = HttpGet("127.0.0.1", server_->port(), "/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
}

TEST_F(AdminHttpTest, OversizedHeadIsDroppedWithoutReply) {
  std::string huge = "GET /metrics HTTP/1.0\r\nX-Pad: ";
  huge += std::string(20000, 'a');  // Far past max_request_bytes.
  std::string reply = RawExchange(server_->port(), huge);
  EXPECT_TRUE(reply.empty()) << reply.substr(0, 80);
  auto resp = HttpGet("127.0.0.1", server_->port(), "/metrics");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
}

TEST_F(AdminHttpTest, QueryStringsAreStripped) {
  auto resp = HttpGet("127.0.0.1", server_->port(), "/healthz?verbose=1");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
}

}  // namespace
}  // namespace wedge
